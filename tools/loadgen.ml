(* Closed-loop load generator for the serve daemon.

     loadgen --socket /tmp/repro-serve.sock --connections 2 --requests 120 \
             --seed 0 --out loadgen-e19.json --shutdown

   Drives the seed-deterministic Workload mix over N connections (request
   i goes to connection i mod N; each connection keeps exactly one request
   outstanding), measures per-request wall latency, then fetches the
   daemon's deterministic stats document.  With --out, writes a
   BENCH-shaped JSON whose e19 "load" metrics entry is exactly that stats
   document — the file tools/bench_diff.exe gates against BENCH_8.json in
   the serve-smoke CI job.  Exits 1 if any request fails, a query class
   goes unanswered, or the cache records zero hits. *)

module Json = Repro_trace.Json
module W = Repro_serve.Workload

let fail_usage () =
  prerr_endline
    "usage: loadgen [--socket PATH] [--connections N] [--requests K] \
     [--seed S] [--n N] [--out FILE] [--shutdown]";
  exit 2

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let pop_line buf =
  let s = Buffer.contents buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear buf;
    Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
    Some (String.sub s 0 i)

let read_line_blocking fd buf =
  let chunk = Bytes.create 4096 in
  let rec go () =
    match pop_line buf with
    | Some line -> line
    | None -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> failwith "connection closed by daemon"
      | k ->
        Buffer.add_subbytes buf chunk 0 k;
        go ())
  in
  go ()

let class_of = function
  | W.Dfs _ -> "dfs"
  | W.Separator _ -> "separator"
  | W.Decompose _ -> "decompose"

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable queue : W.request list;
  mutable inflight : string option; (* class of the outstanding request *)
  mutable sent_at : float;
}

let send_next c latencies =
  match c.queue with
  | [] -> c.inflight <- None
  | r :: rest ->
    c.queue <- rest;
    c.inflight <- Some (class_of r);
    ignore latencies;
    c.sent_at <- Unix.gettimeofday ();
    write_all c.fd (Json.to_string (W.to_json r) ^ "\n")

let () =
  let socket = ref "/tmp/repro-serve.sock" in
  let connections = ref 2 in
  let requests = ref W.canonical_requests in
  let seed = ref W.canonical_mix_seed in
  let n = ref W.canonical_n in
  let out = ref None in
  let shutdown = ref false in
  let argc = Array.length Sys.argv in
  let i = ref 1 in
  let int_opt r =
    if !i + 1 >= argc then fail_usage ();
    (match int_of_string_opt Sys.argv.(!i + 1) with
    | Some v -> r := v
    | None -> fail_usage ());
    incr i
  in
  while !i < argc do
    (match Sys.argv.(!i) with
    | "--socket" when !i + 1 < argc ->
      socket := Sys.argv.(!i + 1);
      incr i
    | "--connections" -> int_opt connections
    | "--requests" -> int_opt requests
    | "--seed" -> int_opt seed
    | "--n" -> int_opt n
    | "--out" when !i + 1 < argc ->
      out := Some Sys.argv.(!i + 1);
      incr i
    | "--shutdown" -> shutdown := true
    | _ -> fail_usage ());
    incr i
  done;
  let c_count = max 1 !connections in
  let mix = W.mix ~seed:!seed ~n:!n ~count:!requests in
  let conns =
    Array.init c_count (fun _ ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX !socket);
        { fd; buf = Buffer.create 256; queue = []; inflight = None;
          sent_at = 0.0 })
  in
  List.iteri
    (fun idx r ->
      let c = conns.(idx mod c_count) in
      c.queue <- c.queue @ [ r ])
    mix;
  (* latency samples per class, in seconds *)
  let latencies = Hashtbl.create 4 in
  let record cls dt =
    let l =
      match Hashtbl.find_opt latencies cls with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.add latencies cls l;
        l
    in
    l := dt :: !l
  in
  let failed = ref 0 in
  let t0 = Unix.gettimeofday () in
  Array.iter (fun c -> send_next c latencies) conns;
  let chunk = Bytes.create 4096 in
  let active () =
    Array.to_list conns |> List.filter (fun c -> c.inflight <> None)
  in
  let rec loop () =
    match active () with
    | [] -> ()
    | live ->
      let fds = List.map (fun c -> c.fd) live in
      let ready, _, _ = Unix.select fds [] [] 10.0 in
      List.iter
        (fun fd ->
          let c = List.find (fun c -> c.fd = fd) live in
          match Unix.read c.fd chunk 0 (Bytes.length chunk) with
          | 0 -> failwith "connection closed by daemon mid-load"
          | k -> (
            Buffer.add_subbytes c.buf chunk 0 k;
            match pop_line c.buf with
            | None -> ()
            | Some line ->
              let dt = Unix.gettimeofday () -. c.sent_at in
              (match c.inflight with
              | Some cls -> record cls dt
              | None -> ());
              (match Json.member "ok" (Json.of_string line) with
              | Some (Json.Bool true) -> ()
              | _ ->
                incr failed;
                Printf.eprintf "request failed: %s\n" line);
              send_next c latencies))
        ready;
      loop ()
  in
  loop ();
  let t1 = Unix.gettimeofday () in
  (* One stats fetch over connection 0 — the deterministic document the
     CI gate compares. *)
  let c0 = conns.(0) in
  write_all c0.fd "{\"op\":\"stats\"}\n";
  let stats = Json.of_string (read_line_blocking c0.fd c0.buf) in
  if !shutdown then begin
    write_all c0.fd "{\"op\":\"shutdown\"}\n";
    ignore (read_line_blocking c0.fd c0.buf)
  end;
  Array.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    conns;
  (* Report. *)
  let wall = t1 -. t0 in
  let total = !requests in
  Printf.printf "connections : %d\nrequests    : %d\nwall        : %.3fs\n"
    c_count total wall;
  if wall > 0.0 then
    Printf.printf "throughput  : %.1f queries/sec\n"
      (float_of_int total /. wall);
  Printf.printf "%-12s %8s %9s %9s %9s\n" "class" "count" "mean(ms)"
    "p50(ms)" "p99(ms)";
  let classes = [ "dfs"; "separator"; "decompose" ] in
  List.iter
    (fun cls ->
      let samples =
        match Hashtbl.find_opt latencies cls with
        | Some l -> Array.of_list !l
        | None -> [||]
      in
      let k = Array.length samples in
      let mean =
        if k = 0 then 0.0
        else Array.fold_left ( +. ) 0.0 samples /. float_of_int k
      in
      Printf.printf "%-12s %8d %9.2f %9.2f %9.2f\n" cls k (1000.0 *. mean)
        (1000.0 *. W.percentile samples 0.5)
        (1000.0 *. W.percentile samples 0.99))
    classes;
  let cache_hits =
    match Option.bind (Json.member "cache" stats) (Json.member "hits") with
    | Some (Json.Int h) -> h
    | _ -> -1
  in
  Printf.printf "cache hits  : %d\n" cache_hits;
  (* The acceptance assertions: every class answered, repeats hit. *)
  List.iter
    (fun cls ->
      let answered =
        match Hashtbl.find_opt latencies cls with
        | Some l -> List.length !l
        | None -> 0
      in
      if answered = 0 then begin
        Printf.eprintf "no %s responses in the mix\n" cls;
        incr failed
      end)
    classes;
  if cache_hits <= 0 then begin
    Printf.eprintf "cache recorded no hits on the repeated-root mix\n";
    incr failed
  end;
  (match !out with
  | None -> ()
  | Some path ->
    let doc =
      Json.Obj
        [
          ("jobs", Json.Int c_count);
          ( "experiments",
            Json.List
              [
                Json.Obj
                  [
                    ("name", Json.String "e19");
                    ("metrics", Json.Obj [ ("load", stats) ]);
                  ];
              ] );
        ]
    in
    let oc = open_out path in
    output_string oc (Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote       : %s\n" path);
  if !failed > 0 then exit 1
