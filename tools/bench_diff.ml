(* Perf-regression gate over BENCH baselines.

     bench_diff BASELINE.json CURRENT.json [--tol 0.30]

   Compares every experiment present in BOTH files (so a --short run that
   covers a subset of the committed full baseline still gates):

   - "metrics" documents (per-span round/message attribution emitted by the
     trace layer) must be EXACTLY equal — they are deterministic by
     construction, so any difference is a real behavioral change;
   - "wall_seconds" may regress by at most the tolerance (default +30%).
     Baselines under 1s are skipped: timer noise dominates there.
   - "peak_rss_kb" may regress by at most the same tolerance.  Baselines
     under 50 MB are skipped: allocator granularity and runtime fixed
     costs dominate small experiments.

   Besides the pass/fail verdict, every shared metrics instance gets a
   per-span delta table: self-attributed charged rounds aggregated by span
   name over both trees (first-visit order), with the old/new/% change —
   so a gate failure, or an intentional baseline regeneration, shows WHERE
   the rounds moved instead of just that they did.

   At least one metrics-bearing comparison must happen, so an empty
   intersection (or a baseline predating the metrics emitter) fails loudly
   instead of vacuously passing. *)

module Json = Repro_trace.Json

let fail_usage () =
  prerr_endline "usage: bench_diff BASELINE.json CURRENT.json [--tol FRACTION]";
  exit 2

let read_file path =
  let ic = try open_in path with Sys_error e -> prerr_endline e; exit 2 in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse path =
  match Json.of_string (read_file path) with
  | j -> j
  | exception Failure e ->
    Printf.eprintf "%s: parse error: %s\n" path e;
    exit 2

let experiments j =
  match Json.member "experiments" j with
  | Some (Json.List l) ->
    List.filter_map
      (fun e ->
        match Json.member "name" e with
        | Some (Json.String name) -> Some (name, e)
        | _ -> None)
      l
  | _ ->
    prerr_endline "malformed BENCH file: no \"experiments\" list";
    exit 2

let wall e =
  match Json.member "wall_seconds" e with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

(* The minimum wall time (s) for the baseline before the tolerance check
   applies at all: under this, scheduler noise swamps the signal. *)
let wall_noise_floor = 1.0

let peak_rss_kb e =
  match Json.member "peak_rss_kb" e with
  | Some (Json.Int i) -> Some i
  | Some (Json.Float f) -> Some (int_of_float f)
  | _ -> None

(* The minimum baseline high-water mark (kB) before the RSS check applies:
   below this, the runtime's fixed allocations dominate the experiment's
   own working set. *)
let rss_noise_floor_kb = 50_000

(* ------------------------------------------------------------------ *)
(* Per-span delta table.                                               *)
(* ------------------------------------------------------------------ *)

let num = function
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> 0.0

(* Self-attributed charged rounds per span name, summed over the whole
   tree; the top-level span also contributes its inclusive total under
   "(total)" so the table always leads with the headline number. *)
let span_profile root =
  let order = ref [] (* names, reverse first-visit order *)
  and acc = Hashtbl.create 32 in
  let add name v =
    match Hashtbl.find_opt acc name with
    | Some r -> r := !r +. v
    | None ->
      order := name :: !order;
      Hashtbl.add acc name (ref v)
  in
  let rec walk j =
    (match Json.member "name" j with
    | Some (Json.String name) ->
      add name (num (Option.bind (Json.member "self" j) (Json.member "charged_rounds")))
    | _ -> ());
    match Json.member "children" j with
    | Some (Json.List cs) -> List.iter walk cs
    | _ -> ()
  in
  add "(total)" (num (Json.member "charged_rounds" root));
  walk root;
  List.rev_map (fun name -> (name, !(Hashtbl.find acc name))) !order

let print_delta_table exp_name inst base cur =
  let bp = span_profile base and cp = span_profile cur in
  let names =
    List.map fst bp
    @ List.filter (fun n -> not (List.mem_assoc n bp)) (List.map fst cp)
  in
  Printf.printf "  %s/%s charged rounds by span:\n" exp_name inst;
  Printf.printf "    %-28s %14s %14s %9s\n" "span" "baseline" "current" "delta";
  List.iter
    (fun name ->
      let b = Option.value ~default:0.0 (List.assoc_opt name bp)
      and c = Option.value ~default:0.0 (List.assoc_opt name cp) in
      let delta =
        if b = c then "="
        else if b = 0.0 then "new"
        else Printf.sprintf "%+.1f%%" (100.0 *. (c -. b) /. b)
      in
      Printf.printf "    %-28s %14.0f %14.0f %9s\n" name b c delta)
    names

let () =
  let baseline_path = ref None and current_path = ref None in
  let tol = ref 0.30 in
  let argc = Array.length Sys.argv in
  let i = ref 1 in
  while !i < argc do
    (match Sys.argv.(!i) with
    | "--tol" when !i + 1 < argc ->
      (match float_of_string_opt Sys.argv.(!i + 1) with
      | Some t when t >= 0.0 -> tol := t
      | _ -> fail_usage ());
      incr i
    | "--tol" -> fail_usage ()
    | path when !baseline_path = None -> baseline_path := Some path
    | path when !current_path = None -> current_path := Some path
    | _ -> fail_usage ());
    incr i
  done;
  let baseline_path, current_path =
    match (!baseline_path, !current_path) with
    | Some b, Some c -> (b, c)
    | _ -> fail_usage ()
  in
  let baseline = experiments (parse baseline_path) in
  let current = experiments (parse current_path) in
  let failures = ref 0 and compared = ref 0 and metric_cmps = ref 0 in
  let failf fmt =
    incr failures;
    Printf.printf fmt
  in
  List.iter
    (fun (name, cur) ->
      match List.assoc_opt name baseline with
      | None -> Printf.printf "~ %-6s only in current, skipped\n" name
      | Some base ->
        incr compared;
        (* Metrics: exact. *)
        (match (Json.member "metrics" base, Json.member "metrics" cur) with
        | Some (Json.Obj bm), Some (Json.Obj cm) ->
          List.iter
            (fun (key, bj) ->
              match List.assoc_opt key cm with
              | None -> failf "! %s/%s: metrics entry missing from current\n" name key
              | Some cj ->
                incr metric_cmps;
                if not (Json.equal bj cj) then
                  failf "! %s/%s: metrics differ from baseline (deterministic counters changed)\n"
                    name key;
                print_delta_table name key bj cj)
            bm;
          List.iter
            (fun (key, _) ->
              if List.assoc_opt key bm = None then
                Printf.printf "~ %s/%s: new metrics entry (not in baseline)\n" name key)
            cm
        | Some _, None | Some (Json.Obj _), Some _ ->
          failf "! %s: baseline has metrics but current does not\n" name
        | None, _ | Some _, Some _ -> ());
        (* Wall clock: tolerance, above the noise floor. *)
        (match (wall base, wall cur) with
        | Some bw, Some cw when bw >= wall_noise_floor ->
          if cw > bw *. (1.0 +. !tol) then
            failf "! %s: wall %.2fs exceeds baseline %.2fs by more than %+.0f%%\n"
              name cw bw (100.0 *. !tol)
          else
            Printf.printf "  %-6s wall %.2fs vs baseline %.2fs (within %+.0f%%)\n"
              name cw bw (100.0 *. !tol)
        | Some bw, Some cw ->
          Printf.printf "  %-6s wall %.2fs vs baseline %.2fs (baseline < %.0fs, not gated)\n"
            name cw bw wall_noise_floor
        | _ -> ());
        (* Peak RSS: tolerance, above the noise floor. *)
        (match (peak_rss_kb base, peak_rss_kb cur) with
        | Some br, Some cr when br >= rss_noise_floor_kb ->
          if float_of_int cr > float_of_int br *. (1.0 +. !tol) then
            failf "! %s: peak RSS %d kB exceeds baseline %d kB by more than %+.0f%%\n"
              name cr br (100.0 *. !tol)
          else
            Printf.printf "  %-6s peak RSS %d kB vs baseline %d kB (within %+.0f%%)\n"
              name cr br (100.0 *. !tol)
        | Some br, Some cr ->
          Printf.printf
            "  %-6s peak RSS %d kB vs baseline %d kB (baseline < %d kB, not gated)\n"
            name cr br rss_noise_floor_kb
        | _ -> ()))
    current;
  if !compared = 0 then begin
    Printf.printf "! no experiment in common between %s and %s\n" baseline_path
      current_path;
    incr failures
  end
  else if !metric_cmps = 0 then begin
    Printf.printf
      "! no metrics compared — baseline %s has no metrics for the experiments run\n"
      baseline_path;
    incr failures
  end;
  Printf.printf "bench-diff: %d experiment(s), %d metrics document(s), %d failure(s)\n"
    !compared !metric_cmps !failures;
  exit (if !failures = 0 then 0 else 1)
