(* The coordinate-free pipeline: a graph that arrives as a bare edge list
   (no drawing, no generator hints) is planarity-tested and embedded with
   the DMP algorithm, then flows through everything the paper builds —
   cycle separator, bounded-diameter decomposition, DFS tree.

   Run with:  dune exec examples/arbitrary_graph.exe *)

open Repro_graph
open Repro_embedding
open Repro_core

(* Stand-in for external input: a planar graph whose labels are scrambled,
   so no structure of the generator survives. *)
let external_edge_list () =
  let emb = Gen.thin ~seed:71 ~keep:0.75 (Gen.grid_diag ~seed:71 ~rows:14 ~cols:14 ()) in
  let g0 = Embedded.graph emb in
  let n = Graph.n g0 in
  let perm = Array.init n Fun.id in
  Repro_util.Rng.shuffle_in_place (Repro_util.Rng.create 7) perm;
  (n, List.map (fun (u, v) -> (perm.(u), perm.(v))) (Graph.edges g0))

let () =
  let n, edges = external_edge_list () in
  let g = Graph.of_edges ~n edges in
  Printf.printf "input: bare edge list with n=%d, m=%d\n" (Graph.n g) (Graph.m g);

  (* 1. Planarity test + embedding (DMP on biconnected blocks). *)
  (match Planarity.outcome g with
  | Planarity.Not_planar -> failwith "unexpected: input is planar"
  | Planarity.Planar rot ->
    Printf.printf "DMP: planar; rotation system passes the Euler check: %b\n"
      (Rotation.is_planar_embedding g rot);
    let emb = Embedded.make ~name:"external" g rot in

    (* 2. Deterministic cycle separator (Theorem 1). *)
    let cfg = Config.of_embedded emb in
    let r = Separator.find cfg in
    let verdict = Check.check_separator cfg r.Separator.separator in
    Printf.printf "separator: %d nodes via phase %s — %s\n" verdict.Check.size
      r.Separator.phase
      (Fmt.str "%a" Check.pp_verdict verdict);
    assert verdict.Check.valid;

    (* 3. Bounded-diameter decomposition (the BDD application of §1.2). *)
    let target = 8 in
    let bdd = Decomposition.bounded_diameter ~diameter_target:target emb in
    assert (Decomposition.check_bounded_diameter emb ~diameter_target:target bdd);
    Printf.printf
      "BDD (target diameter %d): %d pieces, %d levels, %d separator nodes\n"
      target
      (List.length bdd.Decomposition.pieces)
      bdd.Decomposition.levels bdd.Decomposition.separator_count;

    (* 4. Deterministic DFS (Theorem 2). *)
    let dfs = Dfs.run emb ~root:0 in
    assert (Dfs.verify emb ~root:0 dfs);
    Printf.printf "DFS: valid tree in %d recursion phases (depth %d)\n"
      dfs.Dfs.phases
      (Array.fold_left max 0 dfs.Dfs.depth);

    (* And the sanity cross-check: a non-planar graph is refused. *)
    let k33 =
      Graph.of_edges ~n:6
        (List.concat_map (fun i -> List.map (fun j -> (i, 3 + j)) [ 0; 1; 2 ]) [ 0; 1; 2 ])
    in
    assert (not (Planarity.is_planar k33));
    print_endline "K3,3 correctly rejected — pipeline refuses non-planar input")
