examples/arbitrary_graph.ml: Array Check Config Decomposition Dfs Embedded Fmt Fun Gen Graph List Planarity Printf Repro_core Repro_embedding Repro_graph Repro_util Rotation Separator
