examples/arbitrary_graph.mli:
