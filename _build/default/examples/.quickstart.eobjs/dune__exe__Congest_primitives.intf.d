examples/congest_primitives.mli:
