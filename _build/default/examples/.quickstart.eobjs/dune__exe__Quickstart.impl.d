examples/quickstart.ml: Algo Check Config Embedded Fmt Gen Graph List Printf Repro_congest Repro_core Repro_embedding Repro_graph Rounds Separator
