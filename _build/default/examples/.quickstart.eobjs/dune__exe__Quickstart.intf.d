examples/quickstart.mli:
