examples/decomposition.mli:
