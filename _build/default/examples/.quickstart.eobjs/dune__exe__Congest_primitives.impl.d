examples/congest_primitives.ml: Algo Array Bandwidth Composed Embedded Engine Gen Graph Prim Printf Repro_congest Repro_embedding Repro_graph Repro_tree Rotation Rounds
