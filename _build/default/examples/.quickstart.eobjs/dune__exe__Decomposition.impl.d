examples/decomposition.ml: Array Decomposition Embedded Gen Graph List Printf Repro_core Repro_embedding Repro_graph
