examples/dfs_road_network.mli:
