examples/dfs_road_network.ml: Algo Array Awerbuch Dfs Embedded Gen Graph List Printf Repro_baseline Repro_congest Repro_core Repro_embedding Repro_graph Rounds
