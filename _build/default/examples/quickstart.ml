(* Quickstart: generate a planar graph, compute a deterministic cycle
   separator (Theorem 1), verify it, and show the charged CONGEST rounds.

   Run with:  dune exec examples/quickstart.exe *)

open Repro_graph
open Repro_embedding
open Repro_congest
open Repro_core

let () =
  (* A triangulated 20x20 grid: 400 nodes, diameter ~ 40. *)
  let emb = Gen.grid_diag ~seed:42 ~rows:20 ~cols:20 () in
  let g = Embedded.graph emb in
  let d = Algo.diameter g in
  Printf.printf "graph: %s with n=%d, m=%d, D=%d\n" (Embedded.name emb)
    (Graph.n g) (Graph.m g) d;

  (* A planar configuration: embedding + spanning tree with DFS orders. *)
  let cfg = Config.of_embedded emb in

  (* Charged CONGEST accounting (deterministic shortcut cost model). *)
  let rounds = Rounds.create ~n:(Graph.n g) ~d () in

  (* Theorem 1: a cycle separator. *)
  let r = Separator.find ~rounds cfg in
  Printf.printf "separator: %d nodes, found by phase %s (%d candidate(s))\n"
    (List.length r.Separator.separator)
    r.Separator.phase r.Separator.candidates_tried;
  (match r.Separator.endpoints with
  | Some (a, b) -> Printf.printf "closing fundamental edge: (%d, %d)\n" a b
  | None -> print_endline "no closing edge (tree phase)");

  (* Independent validation: tree-path shape + 2n/3 balance. *)
  let verdict = Check.check_separator cfg r.Separator.separator in
  Printf.printf "verdict: %s\n" (Fmt.str "%a" Check.pp_verdict verdict);
  assert verdict.Check.valid;

  (* The balanced-trim post-pass often shortens the path further. *)
  let small = Separator.shrink cfg r.Separator.separator in
  Printf.printf "after balanced trim: %d nodes (still balanced: %b)\n"
    (List.length small)
    (Check.balanced cfg small);

  Printf.printf "charged CONGEST rounds: %.0f  (D=%d, so rounds/D = %.0f)\n"
    (Rounds.total rounds) d
    (Rounds.total rounds /. float_of_int d);
  print_endline "\nper-subroutine breakdown:";
  List.iter
    (fun (label, cost, calls) ->
      Printf.printf "  %-28s %10.0f rounds %4d call(s)\n" label cost calls)
    (Rounds.breakdown rounds)
