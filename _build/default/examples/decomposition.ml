(* Divide-and-conquer via recursive cycle separators — the Lipton–Tarjan
   application pattern that motivated separators in the first place, driven
   entirely by the paper's Theorem 1 machinery (library module
   [Repro_core.Decomposition]).

   Run with:  dune exec examples/decomposition.exe *)

open Repro_graph
open Repro_embedding
open Repro_core

(* Greedy MIS baseline: repeatedly take a minimum-degree vertex. *)
let greedy_mis g =
  let n = Graph.n g in
  let alive = Array.make n true in
  let result = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let best = ref (-1) and best_deg = ref max_int in
    for v = 0 to n - 1 do
      if alive.(v) then begin
        let deg =
          Array.fold_left
            (fun acc u -> if alive.(u) then acc + 1 else acc)
            0 (Graph.neighbors g v)
        in
        if deg < !best_deg then begin
          best := v;
          best_deg := deg
        end
      end
    done;
    if !best < 0 then continue_ := false
    else begin
      result := !best :: !result;
      alive.(!best) <- false;
      Array.iter (fun u -> alive.(u) <- false) (Graph.neighbors g !best)
    end
  done;
  !result

let () =
  let emb = Gen.grid_diag ~seed:11 ~rows:24 ~cols:24 () in
  let g = Embedded.graph emb in
  let n = Graph.n g in
  Printf.printf "planar instance: n=%d, m=%d\n" n (Graph.m g);

  List.iter
    (fun piece_target ->
      let d = Decomposition.build ~piece_target emb in
      assert (Decomposition.check emb ~piece_target d);
      Printf.printf
        "\npiece target %3d: %3d pieces, %d levels, %d separator nodes (%.1f%%)\n"
        piece_target
        (List.length d.Decomposition.pieces)
        d.Decomposition.levels d.Decomposition.separator_count
        (100.0 *. float_of_int d.Decomposition.separator_count /. float_of_int n);
      let mis = Decomposition.independent_set emb d in
      assert (Decomposition.is_independent g mis);
      Printf.printf "  divide-and-conquer independent set: %d nodes\n"
        (List.length mis))
    [ 12; 20; 32 ];

  let greedy = greedy_mis g in
  Printf.printf "\ngreedy (min-degree) baseline:        %d nodes\n"
    (List.length greedy);
  Printf.printf
    "\n(planar graphs always have an independent set of >= n/4 = %d; the\n"
    (n / 4);
  Printf.printf
    " decomposition loses only separator nodes — O(n/sqrt(piece size)) by the\n";
  Printf.printf
    " Lipton–Tarjan analysis — so larger pieces close the gap to greedy.)\n"
