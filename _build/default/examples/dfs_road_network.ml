(* A "road network" scenario: the deterministic Õ(D) DFS of Theorem 2 on a
   large thinned triangulated grid (city blocks with some diagonal avenues
   and closed streets), compared head-to-head with Awerbuch's classic
   O(n)-round distributed DFS.

   Run with:  dune exec examples/dfs_road_network.exe *)

open Repro_graph
open Repro_embedding
open Repro_congest
open Repro_core
open Repro_baseline

let () =
  (* 30x30 blocks, diagonals added, 20% of the non-essential streets
     closed — still connected and planar. *)
  let emb =
    Gen.thin ~seed:7 ~keep:0.8 (Gen.grid_diag ~seed:7 ~rows:30 ~cols:30 ())
  in
  let g = Embedded.graph emb in
  let n = Graph.n g and m = Graph.m g in
  let d = Algo.diameter g in
  let root = Embedded.outer emb in
  Printf.printf "road network: n=%d intersections, m=%d streets, D=%d\n" n m d;

  (* --- This paper's DFS (Theorem 2), with charged round accounting. --- *)
  let rounds = Rounds.create ~n ~d () in
  let ours = Dfs.run ~rounds emb ~root in
  assert (Dfs.verify emb ~root ours);
  Printf.printf "\ndeterministic separator DFS (Theorem 2):\n";
  Printf.printf "  recursion phases : %d (log_1.5 n = %.1f)\n" ours.Dfs.phases
    (log (float_of_int n) /. log 1.5);
  Printf.printf "  max JOIN iters   : %d\n" ours.Dfs.max_join_iterations;
  Printf.printf "  charged rounds   : %.0f (= %.0f x D)\n" (Rounds.total rounds)
    (Rounds.total rounds /. float_of_int d);
  Printf.printf "  separator phases used per recursion:\n";
  List.iter
    (fun (phase, count) -> Printf.printf "    %-16s %d\n" phase count)
    ours.Dfs.separator_phases;

  (* --- Awerbuch's DFS, genuinely executed in the CONGEST engine. --- *)
  let aw = Awerbuch.run g ~root in
  assert (Algo.is_dfs_tree g ~root ~parent:aw.Awerbuch.parent);
  Printf.printf "\nAwerbuch 1985 token DFS (message-level execution):\n";
  Printf.printf "  measured rounds  : %d (~%.1f x n)\n" aw.Awerbuch.rounds
    (float_of_int aw.Awerbuch.rounds /. float_of_int n);
  Printf.printf "  messages         : %d\n" aw.Awerbuch.messages;

  (* --- The two trees agree on what matters. --- *)
  let depth_ours = ours.Dfs.depth in
  let max_depth a = Array.fold_left max 0 a in
  Printf.printf "\nboth outputs are valid DFS trees rooted at %d.\n" root;
  Printf.printf "  our tree depth      : %d\n" (max_depth depth_ours);
  Printf.printf "  awerbuch tree depth : %d\n" (max_depth aw.Awerbuch.depth);
  Printf.printf
    "\nshape: ours costs rounds ~ D*polylog(n); Awerbuch ~ 4n. On planar\n";
  Printf.printf
    "low-diameter networks the separator DFS wins asymptotically, which is\n";
  Printf.printf "exactly the paper's Theorem 2 vs. the 1985 baseline.\n"
