(* Which phase emits the uncertifiable closing edge on grid n=50? *)

open Repro_embedding
open Repro_tree
open Repro_core
open Repro_graph

let () =
  List.iter
    (fun seed ->
      let emb = Gen.by_family ~seed "grid" ~n:50 in
      List.iter
        (fun sp ->
          let cfg = Config.of_embedded ~spanning:sp emb in
          let r = Separator.find cfg in
          match r.Separator.endpoints with
          | Some endpoints when not (Check.cycle_closable cfg ~endpoints) ->
            let (a, b) = endpoints in
            Printf.printf "seed=%d sp=%s phase=%s edge=(%d,%d) real=%b\n" seed
              (Spanning.kind_name sp) r.Separator.phase a b
              (Graph.mem_edge (Config.graph cfg) a b)
          | _ -> ())
        [ Spanning.Bfs; Spanning.Dfs; Spanning.Random seed ])
    [ 434796; 483504 ]
