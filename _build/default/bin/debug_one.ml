(* Grand stress: separators + DFS across generated AND DMP-embedded
   instances, randomized roots and tree kinds; also certifies any reported
   closing edge. *)
open Repro_graph
open Repro_embedding
open Repro_tree
open Repro_core

let shuffle_labels ~seed g =
  let n = Graph.n g in
  let perm = Array.init n Fun.id in
  Repro_util.Rng.shuffle_in_place (Repro_util.Rng.create seed) perm;
  Graph.of_edges ~n (List.map (fun (u, v) -> (perm.(u), perm.(v))) (Graph.edges g))

let () =
  let rng = Repro_util.Rng.create 20260705 in
  let fails = ref 0 and total = ref 0 and certified = ref 0 in
  for i = 1 to 4000 do
    let which = Repro_util.Rng.int rng 7 in
    let n = 4 + Repro_util.Rng.int rng 300 in
    let seed = Repro_util.Rng.int rng 1000000 in
    let family = List.nth Gen.family_names which in
    let emb0 = Gen.by_family ~seed family ~n in
    let use_dmp = Repro_util.Rng.int rng 4 = 0 in
    let emb =
      if not use_dmp then emb0
      else begin
        let g = shuffle_labels ~seed:(seed + 1) (Embedded.graph emb0) in
        match Planarity.embed g with
        | Some rot -> Embedded.make ~name:"dmp" g rot
        | None -> emb0
      end
    in
    let g = Embedded.graph emb in
    let spanning =
      match Repro_util.Rng.int rng 3 with
      | 0 -> Spanning.Bfs
      | 1 -> Spanning.Dfs
      | _ -> Spanning.Random seed
    in
    incr total;
    (try
       let cfg = Config.of_embedded ~spanning emb in
       let r = Separator.find cfg in
       if not (Check.check_separator cfg r.Separator.separator).Check.valid then begin
         incr fails;
         Printf.printf "BAD SEP i=%d %s n=%d seed=%d dmp=%b\n" i family n seed use_dmp
       end;
       (match r.Separator.endpoints with
       | Some endpoints when Graph.n g <= 150 ->
         incr certified;
         if not (Check.cycle_closable cfg ~endpoints) then begin
           incr fails;
           Printf.printf "NOT CLOSABLE i=%d %s n=%d seed=%d\n" i family n seed
         end
       | _ -> ());
       if i mod 3 = 0 then begin
         let root = Repro_util.Rng.int rng (Graph.n g) in
         let d = Dfs.run ~spanning emb ~root in
         if not (Dfs.verify emb ~root d) then begin
           incr fails;
           Printf.printf "BAD DFS i=%d %s n=%d seed=%d root=%d dmp=%b\n" i family n
             seed root use_dmp
         end
       end
     with e ->
       incr fails;
       Printf.printf "EXC i=%d %s n=%d seed=%d dmp=%b: %s\n" i family n seed use_dmp
         (Printexc.to_string e));
    if !fails > 10 then exit 1
  done;
  Printf.printf "grand stress: total=%d closing-edges-certified=%d fails=%d\n" !total
    !certified !fails
