(* Development harness: cross-validates the local face characterization
   (Claims 1/3/4/5, Remark 1) against the exact T+e face-traversal reference
   and, where coordinates exist, against geometric point-in-polygon. *)

open Repro_graph
open Repro_embedding
open Repro_tree
open Repro_core

let check_instance ~name emb spanning =
  let cfg = Config.of_embedded ~spanning emb in
  let tree = Config.tree cfg in
  let g = Config.graph cfg in
  let coords = Embedded.coords emb in
  let mism_interior = ref 0 and mism_weight = ref 0 and mism_geom = ref 0 in
  let checked = ref 0 in
  List.iter
    (fun (u, v) ->
      incr checked;
      let reference = Faces.interior_reference cfg ~u ~v |> List.sort compare in
      let local = Faces.interior cfg ~u ~v |> List.sort compare in
      if reference <> local then begin
        incr mism_interior;
        if !mism_interior <= 3 then begin
          Printf.printf "  INTERIOR mismatch %s e=(%d,%d) case=%s\n" name u v
            (Faces.case_name (Faces.classify cfg ~u ~v));
          Printf.printf "    ref=[%s]\n    loc=[%s]\n"
            (String.concat "," (List.map string_of_int reference))
            (String.concat "," (List.map string_of_int local))
        end
      end;
      (* is_inside agrees with membership in the reference list. *)
      let ref_set = Hashtbl.create 16 in
      List.iter (fun x -> Hashtbl.replace ref_set x ()) reference;
      for z = 0 to Graph.n g - 1 do
        let a = Faces.is_inside cfg ~u ~v z in
        let b = Hashtbl.mem ref_set z in
        if a <> b then begin
          incr mism_interior;
          if !mism_interior <= 6 then
            Printf.printf "  IS_INSIDE mismatch %s e=(%d,%d) z=%d local=%b ref=%b case=%s\n"
              name u v z a b (Faces.case_name (Faces.classify cfg ~u ~v))
        end
      done;
      (* Weight formula vs its proven meaning. *)
      let w_formula = Weights.weight cfg ~u ~v in
      let w_ref = Weights.count_reference cfg ~u ~v in
      if w_formula <> w_ref then begin
        incr mism_weight;
        if !mism_weight <= 6 then
          Printf.printf "  WEIGHT mismatch %s e=(%d,%d) case=%s formula=%d ref=%d\n"
            name u v
            (Faces.case_name (Faces.classify cfg ~u ~v))
            w_formula w_ref
      end;
      (* Geometry: interior nodes are inside the drawn cycle polygon. *)
      (match coords with
      | None -> ()
      | Some coords ->
        let poly =
          Rooted.path tree u v |> List.map (fun x -> coords.(x)) |> Array.of_list
        in
        for z = 0 to Graph.n g - 1 do
          if not (Faces.on_border cfg ~u ~v z) then begin
            let geo = Geometry.point_in_polygon poly coords.(z) in
            let comb = Hashtbl.mem ref_set z in
            if geo <> comb then begin
              incr mism_geom;
              if !mism_geom <= 3 then
                Printf.printf "  GEOMETRY mismatch %s e=(%d,%d) z=%d geo=%b comb=%b\n"
                  name u v z geo comb
            end
          end
        done))
    (Config.fundamental_edges cfg);
  Printf.printf
    "%s [%s]: %d edges checked, interior mismatches=%d, weight mismatches=%d, geometry mismatches=%d\n"
    name
    (Spanning.kind_name spanning)
    !checked !mism_interior !mism_weight !mism_geom;
  !mism_interior + !mism_weight + !mism_geom

let () =
  let total = ref 0 in
  let run name emb =
    List.iter
      (fun sp -> total := !total + check_instance ~name emb sp)
      [ Spanning.Bfs; Spanning.Dfs; Spanning.Random 11 ]
  in
  run "grid5x5" (Gen.grid ~rows:5 ~cols:5);
  run "tgrid4x4" (Gen.grid_diag ~seed:2 ~rows:4 ~cols:4 ());
  run "stacked30" (Gen.stacked_triangulation ~seed:3 ~n:30 ());
  run "wheel9" (Gen.wheel 9);
  run "fan8" (Gen.fan 8);
  run "cycle12" (Gen.cycle 12);
  for seed = 1 to 8 do
    run
      (Printf.sprintf "thin%d" seed)
      (Gen.thin ~seed ~keep:0.55 (Gen.stacked_triangulation ~seed ~n:40 ()))
  done;
  Printf.printf "TOTAL mismatches: %d\n" !total;
  exit (if !total = 0 then 0 else 1)
