bin/debug_separator.ml: Check Config Embedded Fmt Gen Hashtbl List Option Printexc Printf Repro_core Repro_embedding Repro_tree Separator Spanning
