bin/debug_separator.mli:
