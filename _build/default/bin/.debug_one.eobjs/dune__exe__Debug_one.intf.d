bin/debug_one.mli:
