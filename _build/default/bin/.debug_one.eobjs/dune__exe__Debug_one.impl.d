bin/debug_one.ml: Array Check Config Dfs Embedded Fun Gen Graph List Planarity Printexc Printf Repro_core Repro_embedding Repro_graph Repro_tree Repro_util Separator Spanning
