bin/debug_conventions.mli:
