bin/debug_conventions.ml: Array Config Embedded Faces Gen Geometry Graph Hashtbl List Printf Repro_core Repro_embedding Repro_graph Repro_tree Rooted Spanning String Weights
