(* Stress harness for the deterministic DFS construction. *)

open Repro_embedding

open Repro_core

let () =
  let failures = ref 0 and total = ref 0 in
  let max_phases = ref 0 in
  let check name emb =
    incr total;
    let root = Embedded.outer emb in
    match Dfs.run emb ~root with
    | exception e ->
      incr failures;
      Printf.printf "EXCEPTION %s: %s\n" name (Printexc.to_string e)
    | r ->
      max_phases := max !max_phases r.Dfs.phases;
      if not (Dfs.verify emb ~root r) then begin
        incr failures;
        Printf.printf "INVALID DFS %s (phases=%d)\n" name r.Dfs.phases
      end
  in
  List.iter
    (fun family ->
      List.iter
        (fun n ->
          List.iter
            (fun seed -> check (family ^ string_of_int n) (Gen.by_family ~seed family ~n))
            [ 1; 2; 3; 4; 5 ])
        [ 5; 12; 30; 80; 200; 400 ])
    Gen.family_names;
  List.iter
    (fun emb -> check (Embedded.name emb) emb)
    [ Gen.star 50; Gen.path 100; Gen.wheel 40; Gen.caterpillar ~spine:20 ~legs:4 ];
  Printf.printf "total=%d failures=%d max_phases=%d\n" !total !failures !max_phases;
  (* One detailed run. *)
  let emb = Gen.grid_diag ~seed:3 ~rows:20 ~cols:20 () in
  let r = Dfs.run emb ~root:0 in
  Printf.printf "tgrid20x20: phases=%d max_join=%d valid=%b\n" r.Dfs.phases
    r.Dfs.max_join_iterations (Dfs.verify emb ~root:0 r);
  List.iter
    (fun (c, l, j) -> Printf.printf "  phase: comps=%d largest=%d join_iters=%d\n" c l j)
    r.Dfs.phase_log;
  List.iter (fun (p, c) -> Printf.printf "  sep %s: %d\n" p c) r.Dfs.separator_phases;
  exit (if !failures = 0 then 0 else 1)
