bin/debug_dfs.mli:
