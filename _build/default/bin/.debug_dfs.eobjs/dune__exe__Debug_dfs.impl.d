bin/debug_dfs.ml: Dfs Embedded Gen List Printexc Printf Repro_core Repro_embedding
