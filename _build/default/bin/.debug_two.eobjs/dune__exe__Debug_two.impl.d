bin/debug_two.ml: Check Config Gen Graph List Printf Repro_core Repro_embedding Repro_graph Repro_tree Separator Spanning
