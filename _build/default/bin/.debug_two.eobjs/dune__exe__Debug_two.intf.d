bin/debug_two.mli:
