bin/main.mli:
