(* Stress harness for the separator algorithm: runs every generator family
   across sizes, seeds and spanning-tree kinds, validates every output and
   reports the phase distribution. *)

open Repro_embedding
open Repro_tree
open Repro_core

let () =
  let phases = Hashtbl.create 16 in
  let bump k =
    Hashtbl.replace phases k (1 + Option.value ~default:0 (Hashtbl.find_opt phases k))
  in
  let failures = ref 0 and total = ref 0 and extra_candidates = ref 0 in
  let check name emb spanning =
    incr total;
    let cfg = Config.of_embedded ~spanning emb in
    match Separator.find cfg with
    | exception e ->
      incr failures;
      Printf.printf "EXCEPTION %s [%s]: %s\n" name (Spanning.kind_name spanning)
        (Printexc.to_string e)
    | r ->
      bump r.Separator.phase;
      if r.Separator.candidates_tried > 1 then incr extra_candidates;
      let verdict = Check.check_separator cfg r.Separator.separator in
      if not verdict.Check.valid then begin
        incr failures;
        Printf.printf "INVALID %s [%s] phase=%s: %s\n" name
          (Spanning.kind_name spanning) r.Separator.phase
          (Fmt.str "%a" Check.pp_verdict verdict)
      end
  in
  let kinds = [ Spanning.Bfs; Spanning.Dfs; Spanning.Random 5 ] in
  let sizes = [ 10; 17; 25; 60; 150; 400; 900; 1600 ] in
  List.iter
    (fun family ->
      List.iter
        (fun n ->
          List.iter
            (fun seed ->
              let emb = Gen.by_family ~seed family ~n in
              List.iter (fun k -> check (Embedded.name emb) emb k) kinds)
            [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])
        sizes)
    Gen.family_names;
  (* Extra adversarial shapes. *)
  List.iter
    (fun emb -> List.iter (fun k -> check (Embedded.name emb) emb k) kinds)
    [
      Gen.star 50;
      Gen.path 100;
      Gen.wheel 40;
      Gen.caterpillar ~spine:20 ~legs:4;
      Gen.cycle 99;
    ];
  Printf.printf "total=%d failures=%d multi-candidate=%d\n" !total !failures
    !extra_candidates;
  Hashtbl.iter (fun k v -> Printf.printf "  phase %-16s : %d\n" k v) phases;
  exit (if !failures = 0 then 0 else 1)
