test/test_tree.ml: Alcotest Algo Array Embedded Fun Gen Geometry Graph List QCheck QCheck_alcotest Repro_embedding Repro_graph Repro_tree Repro_util Rooted Rotation Spanning
