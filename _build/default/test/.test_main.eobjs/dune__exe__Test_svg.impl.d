test/test_svg.ml: Alcotest Array Embedded Filename Float Gen Graph Option Planarity QCheck QCheck_alcotest Repro_embedding Repro_graph Rotation String Svg Sys
