test/test_weights.ml: Alcotest Check Config Embedded Faces Gen Graph Hashtbl List Printf QCheck QCheck_alcotest Repro_core Repro_embedding Repro_graph Repro_tree Rooted Spanning Weights
