test/test_util.ml: Alcotest Array Fun Gen List Pqueue QCheck QCheck_alcotest Repro_util Rng Stats String Table Union_find
