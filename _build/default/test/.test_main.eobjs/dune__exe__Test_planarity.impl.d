test/test_planarity.ml: Alcotest Array Embedded Fun Gen Graph List Planarity QCheck QCheck_alcotest Repro_core Repro_embedding Repro_graph Repro_util Rotation
