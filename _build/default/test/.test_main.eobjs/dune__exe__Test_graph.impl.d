test/test_graph.ml: Alcotest Algo Array Graph List QCheck QCheck_alcotest Repro_graph Repro_util Rng
