test/test_hidden.ml: Alcotest Config Faces Gen Hidden List QCheck QCheck_alcotest Repro_core Repro_embedding Repro_tree Rooted Spanning Weights
