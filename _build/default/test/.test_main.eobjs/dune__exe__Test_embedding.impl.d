test/test_embedding.ml: Alcotest Algo Array Embedded Gen Geometry Graph List QCheck QCheck_alcotest Repro_embedding Repro_graph Rotation
