test/test_separator.ml: Alcotest Check Config Embedded Fmt Fun Gen List Printf QCheck QCheck_alcotest Repro_congest Repro_core Repro_embedding Repro_graph Repro_tree Rounds Separator Spanning
