test/test_decomposition.ml: Alcotest Array Decomposition Embedded Gen Graph List Printf QCheck QCheck_alcotest Repro_core Repro_embedding Repro_graph
