test/test_congest.ml: Alcotest Algo Array Embedded Engine Fun Gen Graph Hashtbl Prim QCheck QCheck_alcotest Repro_congest Repro_embedding Repro_graph Repro_tree Repro_util Rounds
