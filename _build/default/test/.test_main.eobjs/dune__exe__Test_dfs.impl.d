test/test_dfs.ml: Alcotest Algo Array Dfs Embedded Gen Graph Join List Printf QCheck QCheck_alcotest Repro_congest Repro_core Repro_embedding Repro_graph Rounds
