(** Bit-size accounting for CONGEST messages. *)

val bits_for_int : int -> int
(** Bits to encode a signed integer. *)

val bits_for_id : n:int -> int
(** Bits to encode a vertex identifier in an [n]-vertex network. *)

val default : n:int -> int
(** Default per-edge per-round bandwidth, Θ(log n). *)
