(* Synchronous CONGEST execution engine.

   Nodes run in lock step.  In every round each node consumes the messages
   delivered along its incident edges, updates its local state and emits at
   most one message per incident edge; the engine enforces the per-edge
   bandwidth and reports round/message statistics.  Execution ends when all
   nodes have finished and no message is in flight. *)

open Repro_graph

module type PROGRAM = sig
  type input
  type state
  type msg
  type output

  val msg_bits : msg -> int

  val init : n:int -> id:int -> neighbors:int array -> input -> state * (int * msg) list
  (** Initial state and round-0 outbox (destination, message). *)

  val step : round:int -> id:int -> state -> inbox:(int * msg) list -> state * (int * msg) list
  (** One synchronous round: consume the inbox, emit an outbox. *)

  val finished : state -> bool
  val output : state -> output
end

type stats = {
  rounds : int;
  messages : int;
  max_edge_bits : int;
  total_bits : int;
}

exception Bandwidth_exceeded of { src : int; dst : int; bits : int; limit : int }
exception Duplicate_message of { src : int; dst : int }
exception Did_not_terminate of { max_rounds : int }

module Make (P : PROGRAM) = struct
  let run ?max_rounds ?bandwidth g ~(input : P.input array) =
    let n = Graph.n g in
    if Array.length input <> n then invalid_arg "Engine.run: wrong input arity";
    let bandwidth = match bandwidth with Some b -> b | None -> Bandwidth.default ~n in
    let max_rounds = match max_rounds with Some r -> r | None -> 100 * (n + 10) in
    let states = Array.make n None in
    let inboxes : (int * P.msg) list array = Array.make n [] in
    let messages = ref 0 and max_edge_bits = ref 0 and total_bits = ref 0 in
    let pending = ref 0 in
    let deliver src outbox =
      (* At most one message per incident edge per round. *)
      let seen = Hashtbl.create (List.length outbox) in
      List.iter
        (fun (dst, msg) ->
          if not (Graph.mem_edge g src dst) then
            invalid_arg "Engine: message along a non-edge";
          if Hashtbl.mem seen dst then raise (Duplicate_message { src; dst });
          Hashtbl.add seen dst ();
          let bits = P.msg_bits msg in
          if bits > bandwidth then
            raise (Bandwidth_exceeded { src; dst; bits; limit = bandwidth });
          if bits > !max_edge_bits then max_edge_bits := bits;
          total_bits := !total_bits + bits;
          incr messages;
          incr pending;
          inboxes.(dst) <- (src, msg) :: inboxes.(dst))
        outbox
    in
    for v = 0 to n - 1 do
      let st, outbox = P.init ~n ~id:v ~neighbors:(Graph.neighbors g v) input.(v) in
      states.(v) <- Some st;
      deliver v outbox
    done;
    let round = ref 0 in
    let all_done () =
      !pending = 0
      && Array.for_all
           (function Some st -> P.finished st | None -> true)
           states
    in
    while not (all_done ()) do
      incr round;
      if !round > max_rounds then raise (Did_not_terminate { max_rounds });
      (* Swap in fresh inboxes so this round's sends arrive next round. *)
      let current = Array.copy inboxes in
      Array.fill inboxes 0 n [];
      pending := 0;
      for v = 0 to n - 1 do
        match states.(v) with
        | None -> ()
        | Some st ->
          let inbox = current.(v) in
          if inbox <> [] || not (P.finished st) then begin
            let st', outbox = P.step ~round:!round ~id:v st ~inbox in
            states.(v) <- Some st';
            deliver v outbox
          end
      done
    done;
    let outputs =
      Array.init n (fun v ->
          match states.(v) with
          | Some st -> P.output st
          | None -> assert false)
    in
    ( outputs,
      {
        rounds = !round;
        messages = !messages;
        max_edge_bits = !max_edge_bits;
        total_bits = !total_bits;
      } )
end
