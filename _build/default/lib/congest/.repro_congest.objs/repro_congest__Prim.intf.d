lib/congest/prim.mli: Engine Graph Repro_graph
