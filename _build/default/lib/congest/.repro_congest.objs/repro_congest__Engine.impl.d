lib/congest/engine.ml: Array Bandwidth Graph Hashtbl List Repro_graph
