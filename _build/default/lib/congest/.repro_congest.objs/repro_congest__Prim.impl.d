lib/congest/prim.ml: Array Bandwidth Engine Hashtbl List Queue Repro_graph
