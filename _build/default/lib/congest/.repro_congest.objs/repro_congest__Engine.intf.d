lib/congest/engine.mli: Graph Repro_graph
