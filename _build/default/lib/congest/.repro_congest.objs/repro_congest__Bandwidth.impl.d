lib/congest/bandwidth.ml:
