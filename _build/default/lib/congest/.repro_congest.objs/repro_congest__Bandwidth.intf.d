lib/congest/bandwidth.mli:
