lib/congest/composed.mli: Graph Repro_graph
