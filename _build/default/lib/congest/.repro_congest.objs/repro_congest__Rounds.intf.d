lib/congest/rounds.mli: Format
