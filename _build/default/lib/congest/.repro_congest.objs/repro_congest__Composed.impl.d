lib/congest/composed.ml: Array Engine Fun Graph Hashtbl List Prim Repro_graph Repro_util
