lib/congest/rounds.ml: Fmt Hashtbl List
