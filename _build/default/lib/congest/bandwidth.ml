(* Bit-size accounting for CONGEST messages. *)

let bits_for_int x =
  let x = abs x in
  let rec go acc v = if v = 0 then max acc 1 else go (acc + 1) (v lsr 1) in
  go 0 x + 1 (* sign bit *)

let bits_for_id ~n =
  let rec go acc v = if v = 0 then max acc 1 else go (acc + 1) (v lsr 1) in
  go 0 (max 1 (n - 1))

(* The CONGEST model allows O(log n) bits per edge per round; the constant
   here is generous enough for a tagged pair of identifiers plus a counter,
   which is what every primitive in this repository sends. *)
let default ~n = max 32 (8 * bits_for_id ~n)
