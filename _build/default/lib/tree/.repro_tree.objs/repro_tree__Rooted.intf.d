lib/tree/rooted.mli: Format Repro_embedding Rotation
