lib/tree/spanning.ml: Algo Array Graph List Queue Repro_graph Repro_util Rng Union_find
