lib/tree/spanning.mli: Graph Repro_graph
