lib/tree/rooted.ml: Array Fmt List Queue Repro_embedding Rotation
