(** Spanning-tree constructors (parent arrays; root gets [-1]).

    The graph must be connected; unreachable vertices keep [-2]. *)

open Repro_graph

val bfs : Graph.t -> root:int -> int array
val dfs : Graph.t -> root:int -> int array
val random : Graph.t -> root:int -> seed:int -> int array

type kind = Bfs | Dfs | Random of int

val make : kind -> Graph.t -> root:int -> int array
val kind_name : kind -> string
