(* Small descriptive-statistics helpers used by the bench harness. *)

let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let s = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    sqrt (s /. float_of_int (n - 1))
  end

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median a = percentile a 50.0

let min_max a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.min_max: empty";
  let mn = ref a.(0) and mx = ref a.(0) in
  for i = 1 to n - 1 do
    if a.(i) < !mn then mn := a.(i);
    if a.(i) > !mx then mx := a.(i)
  done;
  (!mn, !mx)

(* Least-squares slope of y against x; used to fit round-complexity curves. *)
let linear_slope ~x ~y =
  let n = Array.length x in
  if n <> Array.length y || n < 2 then invalid_arg "Stats.linear_slope";
  let mx = mean x and my = mean y in
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to n - 1 do
    num := !num +. ((x.(i) -. mx) *. (y.(i) -. my));
    den := !den +. ((x.(i) -. mx) ** 2.0)
  done;
  if !den = 0.0 then 0.0 else !num /. !den

(* Slope of log y against log x: the empirical polynomial exponent. *)
let loglog_slope ~x ~y =
  let lx = Array.map log x and ly = Array.map log y in
  linear_slope ~x:lx ~y:ly
