(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the repository goes through this module, so
    runs are reproducible from an integer seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. *)

val copy : t -> t
(** Independent copy with the same state. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)]. Raises [Invalid_argument] when
    [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform on the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [\[0, bound)]. *)

val bool : t -> bool

val bits : t -> int
(** 62 uniform random bits as a non-negative [int]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val split : t -> t
(** Derive an independent generator (for parallel experiment streams). *)
