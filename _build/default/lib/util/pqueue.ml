(* Binary min-heap keyed by integer priorities. *)

type 'a t = {
  mutable keys : int array;
  mutable data : 'a array;
  mutable len : int;
}

let create () = { keys = [||]; data = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let grow t x =
  let cap = Array.length t.keys in
  if t.len = cap then begin
    let ncap = max 8 (2 * cap) in
    let nkeys = Array.make ncap 0 in
    let ndata = Array.make ncap x in
    Array.blit t.keys 0 nkeys 0 t.len;
    Array.blit t.data 0 ndata 0 t.len;
    t.keys <- nkeys;
    t.data <- ndata
  end

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let d = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- d

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if t.keys.(p) > t.keys.(i) then begin
      swap t p i;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < t.len && t.keys.(l) < t.keys.(i) then l else i in
  let m = if r < t.len && t.keys.(r) < t.keys.(m) then r else m in
  if m <> i then begin
    swap t m i;
    sift_down t m
  end

let push t key x =
  grow t x;
  t.keys.(t.len) <- key;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop_min t =
  if t.len = 0 then None
  else begin
    let key = t.keys.(0) and x = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.keys.(0) <- t.keys.(t.len);
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some (key, x)
  end
