(** Descriptive statistics for the benchmark harness. *)

val mean : float array -> float
val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0, 100\]], linear interpolation. *)

val median : float array -> float
val min_max : float array -> float * float

val linear_slope : x:float array -> y:float array -> float
(** Least-squares slope of [y] against [x]. *)

val loglog_slope : x:float array -> y:float array -> float
(** Empirical polynomial exponent: slope of [log y] vs [log x]. *)
