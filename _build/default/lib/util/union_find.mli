(** Disjoint-set forest (union by rank, path halving). *)

type t

val create : int -> t
(** [create n] builds [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> bool
(** Merge the two sets; returns [true] iff they were distinct. *)

val same : t -> int -> int -> bool

val component_size : t -> int -> int
(** Size of the set containing the element. *)

val components : t -> int
(** Current number of disjoint sets. *)
