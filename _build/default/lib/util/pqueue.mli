(** Binary min-heap with integer keys. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit
(** [push t key x] inserts [x] with priority [key]. *)

val pop_min : 'a t -> (int * 'a) option
(** Remove and return the minimum-key element. *)
