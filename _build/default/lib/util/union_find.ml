(* Disjoint-set forest with union by rank and path halving. *)

type t = {
  parent : int array;
  rank : int array;
  size : int array;
  mutable components : int;
}

let create n =
  {
    parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    size = Array.make n 1;
    components = n;
  }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    (* Path halving: point x at its grandparent. *)
    t.parent.(x) <- t.parent.(p);
    find t t.parent.(x)
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let ra, rb =
      if t.rank.(ra) < t.rank.(rb) then rb, ra else ra, rb
    in
    t.parent.(rb) <- ra;
    t.size.(ra) <- t.size.(ra) + t.size.(rb);
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    t.components <- t.components - 1;
    true
  end

let same t a b = find t a = find t b

let component_size t x = t.size.(find t x)

let components t = t.components
