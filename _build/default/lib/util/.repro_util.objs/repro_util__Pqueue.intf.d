lib/util/pqueue.mli:
