lib/util/table.mli:
