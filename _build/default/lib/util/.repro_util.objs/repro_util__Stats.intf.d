lib/util/stats.mli:
