lib/util/rng.mli:
