(* Deterministic splitmix64 generator.

   All randomness in the repository flows through this module so that every
   experiment and property test is reproducible from an integer seed.  The
   implementation follows Steele, Lea & Flood (OOPSLA 2014). *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(* Rejection sampling keeps the distribution uniform on [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range";
  lo + int t (hi - lo + 1)

let float t bound = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
                    /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let split t =
  let seed = Int64.to_int (next_int64 t) in
  { state = Int64.of_int seed }
