lib/graph/graph.ml: Array Fmt Hashtbl List
