(* Recursive cycle-separator decomposition — the divide-and-conquer pattern
   of Lipton–Tarjan, driven by the deterministic separators of Theorem 1.

   The graph is recursively split until every piece has at most
   [piece_target] vertices.  Distinct pieces are never adjacent (every path
   between them crosses a removed separator node), so any per-piece solution
   of a "closed under non-adjacency" problem combines trivially; the classic
   application, an approximate maximum independent set, is provided. *)

open Repro_graph
open Repro_embedding


type t = {
  pieces : int list list;
  separator : bool array; (* removed separator nodes *)
  levels : int; (* recursion depth *)
  separator_count : int;
}

let build ?rounds ?(piece_target = 20) ?(trim = true) emb =
  if piece_target < 1 then invalid_arg "Decomposition.build: piece_target >= 1";
  let g = Embedded.graph emb in
  let removed = Array.make (Graph.n g) false in
  let pieces = ref [] in
  let levels = ref 0 in
  let rec go members level =
    levels := max !levels level;
    if List.length members <= piece_target then pieces := members :: !pieces
    else begin
      let cfg = Config.of_part ~members ~root:(List.hd members) emb in
      let r = Separator.find ?rounds cfg in
      let sep =
        if trim then Separator.shrink ?rounds cfg r.Separator.separator
        else r.Separator.separator
      in
      let sep_global = List.map (Config.to_global cfg) sep in
      List.iter (fun v -> removed.(v) <- true) sep_global;
      (* Recurse on the connected remainders of this part. *)
      let keep = Hashtbl.create (List.length members) in
      List.iter (fun v -> if not removed.(v) then Hashtbl.replace keep v ()) members;
      let seen = Hashtbl.create 64 in
      List.iter
        (fun v ->
          if Hashtbl.mem keep v && not (Hashtbl.mem seen v) then begin
            let comp = ref [] in
            let queue = Queue.create () in
            Hashtbl.replace seen v ();
            Queue.add v queue;
            while not (Queue.is_empty queue) do
              let x = Queue.pop queue in
              comp := x :: !comp;
              Array.iter
                (fun u ->
                  if Hashtbl.mem keep u && not (Hashtbl.mem seen u) then begin
                    Hashtbl.replace seen u ();
                    Queue.add u queue
                  end)
                (Graph.neighbors g x)
            done;
            go !comp (level + 1)
          end)
        members
    end
  in
  go (List.init (Graph.n g) Fun.id) 0;
  let separator_count =
    Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 removed
  in
  { pieces = !pieces; separator = removed; levels = !levels; separator_count }

(* Structural validation: pieces and separator partition V, every piece is
   within the size target, and no edge joins two distinct pieces. *)
let check emb ~piece_target t =
  let g = Embedded.graph emb in
  let n = Graph.n g in
  let owner = Array.make n (-1) in
  let ok = ref true in
  List.iteri
    (fun i members ->
      if List.length members > piece_target then ok := false;
      List.iter
        (fun v ->
          if owner.(v) >= 0 || t.separator.(v) then ok := false;
          owner.(v) <- i)
        members)
    t.pieces;
  for v = 0 to n - 1 do
    if owner.(v) < 0 && not t.separator.(v) then ok := false
  done;
  Graph.iter_edges g (fun u v ->
      if owner.(u) >= 0 && owner.(v) >= 0 && owner.(u) <> owner.(v) then ok := false);
  !ok

(* Exact maximum independent set of a tiny graph: branch on a max-degree
   vertex.  Exponential in the worst case — callers bound the piece size. *)
let rec exact_mis g alive =
  let pick =
    let best = ref (-1) and best_deg = ref 0 in
    for v = 0 to Graph.n g - 1 do
      if alive.(v) then begin
        let deg =
          Array.fold_left
            (fun acc u -> if alive.(u) then acc + 1 else acc)
            0 (Graph.neighbors g v)
        in
        if deg > !best_deg then begin
          best := v;
          best_deg := deg
        end
      end
    done;
    if !best < 0 then None else Some !best
  in
  match pick with
  | None ->
    let acc = ref [] in
    Array.iteri (fun v a -> if a then acc := v :: !acc) alive;
    !acc
  | Some v ->
    let without =
      let alive' = Array.copy alive in
      alive'.(v) <- false;
      exact_mis g alive'
    in
    let with_v =
      let alive' = Array.copy alive in
      alive'.(v) <- false;
      Array.iter (fun u -> alive'.(u) <- false) (Graph.neighbors g v);
      v :: exact_mis g alive'
    in
    if List.length with_v >= List.length without then with_v else without

(* Lipton–Tarjan application: exact MIS inside every piece; the union is
   independent in G because pieces are pairwise non-adjacent. *)
let independent_set emb t =
  let g = Embedded.graph emb in
  let n = Graph.n g in
  let solution = ref [] in
  List.iter
    (fun members ->
      let keep = Array.make n false in
      List.iter (fun v -> keep.(v) <- true) members;
      let sub, _, old_of_new = Graph.induced g keep in
      let mis = exact_mis sub (Array.make (Graph.n sub) true) in
      List.iter (fun v -> solution := old_of_new.(v) :: !solution) mis)
    t.pieces;
  !solution

(* ------------------------------------------------------------------ *)
(* Bounded-diameter decomposition — the application cited in Section    *)
(* 1.2 (the BDD of Li–Parter, where randomness was only needed for the  *)
(* separators): recursively split until every piece has hop diameter    *)
(* at most the target.                                                  *)
(* ------------------------------------------------------------------ *)

(* Hop diameter of the subgraph induced by the member set.  The double
   sweep is only a lower bound, so it is used as a cheap split trigger; a
   candidate stop is confirmed with the exact all-sources BFS. *)
let piece_diameter_bfs g inside src =
  let dist = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace dist src 0;
  Queue.add src queue;
  let far = ref (src, 0) in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = Hashtbl.find dist u in
    if du > snd !far then far := (u, du);
    Array.iter
      (fun v ->
        if Hashtbl.mem inside v && not (Hashtbl.mem dist v) then begin
          Hashtbl.replace dist v (du + 1);
          Queue.add v queue
        end)
      (Graph.neighbors g u)
  done;
  !far

let piece_diameter_exceeds g members target =
  match members with
  | [] -> false
  | first :: _ ->
    let inside = Hashtbl.create (List.length members) in
    List.iter (fun v -> Hashtbl.replace inside v ()) members;
    let far1, _ = piece_diameter_bfs g inside first in
    let _, sweep = piece_diameter_bfs g inside far1 in
    if sweep > target then true
    else
      (* Confirm exactly. *)
      List.exists
        (fun src -> snd (piece_diameter_bfs g inside src) > target)
        members

let bounded_diameter ?rounds ?(trim = true) ~diameter_target emb =
  if diameter_target < 1 then
    invalid_arg "Decomposition.bounded_diameter: target >= 1";
  let g = Embedded.graph emb in
  let removed = Array.make (Graph.n g) false in
  let pieces = ref [] in
  let levels = ref 0 in
  let rec go members level =
    levels := max !levels level;
    if level > 4 * Graph.n g then
      invalid_arg "Decomposition.bounded_diameter: no progress";
    if not (piece_diameter_exceeds g members diameter_target) then
      pieces := members :: !pieces
    else begin
      let cfg = Config.of_part ~members ~root:(List.hd members) emb in
      let r = Separator.find ?rounds cfg in
      let sep =
        if trim then Separator.shrink ?rounds cfg r.Separator.separator
        else r.Separator.separator
      in
      let sep_global = List.map (Config.to_global cfg) sep in
      (* Guard against stalling when the separator no longer shrinks the
         piece (tiny pieces): drop at least one vertex. *)
      let sep_global =
        if List.for_all (fun v -> removed.(v)) sep_global then [ List.hd members ]
        else sep_global
      in
      List.iter (fun v -> removed.(v) <- true) sep_global;
      let keep = Hashtbl.create (List.length members) in
      List.iter (fun v -> if not removed.(v) then Hashtbl.replace keep v ()) members;
      let seen = Hashtbl.create 64 in
      List.iter
        (fun v ->
          if Hashtbl.mem keep v && not (Hashtbl.mem seen v) then begin
            let comp = ref [] in
            let queue = Queue.create () in
            Hashtbl.replace seen v ();
            Queue.add v queue;
            while not (Queue.is_empty queue) do
              let x = Queue.pop queue in
              comp := x :: !comp;
              Array.iter
                (fun u ->
                  if Hashtbl.mem keep u && not (Hashtbl.mem seen u) then begin
                    Hashtbl.replace seen u ();
                    Queue.add u queue
                  end)
                (Graph.neighbors g x)
            done;
            go !comp (level + 1)
          end)
        members
    end
  in
  go (List.init (Graph.n g) Fun.id) 0;
  let separator_count =
    Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 removed
  in
  { pieces = !pieces; separator = removed; levels = !levels; separator_count }

let check_bounded_diameter emb ~diameter_target t =
  let g = Embedded.graph emb in
  let n = Graph.n g in
  let owner = Array.make n (-1) in
  let ok = ref true in
  List.iteri
    (fun i members ->
      (* Exact per-piece diameter for validation. *)
      let keep = Array.make n false in
      List.iter (fun v -> keep.(v) <- true) members;
      let sub, _, _ = Graph.induced g keep in
      if Algo.diameter_exact sub > diameter_target then ok := false;
      List.iter
        (fun v ->
          if owner.(v) >= 0 || t.separator.(v) then ok := false;
          owner.(v) <- i)
        members)
    t.pieces;
  for v = 0 to n - 1 do
    if owner.(v) < 0 && not t.separator.(v) then ok := false
  done;
  Graph.iter_edges g (fun u v ->
      if owner.(u) >= 0 && owner.(v) >= 0 && owner.(u) <> owner.(v) then ok := false);
  !ok

let is_independent g nodes =
  let chosen = Array.make (Graph.n g) false in
  List.iter (fun v -> chosen.(v) <- true) nodes;
  let ok = ref true in
  Graph.iter_edges g (fun u v -> if chosen.(u) && chosen.(v) then ok := false);
  !ok
