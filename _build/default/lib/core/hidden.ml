(* Hidden nodes and (T, F_e)-compatibility (Definition 4 and Lemma 6).

   A leaf t inside F_e is (T, F_e)-compatible with the endpoint u — i.e. the
   virtual edge ut can be inserted as a valid augmentation — iff no real
   fundamental edge hides it.  Phase 4 of the separator algorithm uses the
   maximal hiding edge as its fallback candidate (Claim 6 of Lemma 7). *)

open Repro_tree

(* Is every node of F_e ∩ T_u also in (the closed region of) F_f?
   Definition 4, condition 2 is the negation of this. *)
let subtree_part_in_face cfg ~e:(u, v) ~f:(a, b) =
  let tree = Config.tree cfg in
  let case = Faces.classify cfg ~u ~v in
  let member z =
    Faces.on_border cfg ~u:a ~v:b z || Faces.is_inside cfg ~u:a ~v:b z
  in
  Faces.inside_children cfg ~u ~v ~case u
  |> List.for_all (fun c ->
         (* All nodes of the subtree of c. *)
         let lo = Rooted.pi_left tree c in
         let ok = ref true in
         for i = lo to lo + Rooted.size tree c - 1 do
           if not (member (Rooted.node_at_left tree i)) then ok := false
         done;
         !ok)

(* Real fundamental edges hiding node [t] in F_e (Definition 4). *)
let hiding_edges cfg ~e:(u, v) ~t =
  Config.fundamental_edges cfg
  |> List.filter (fun (a, b) ->
         (a, b) <> (u, v)
         && Faces.edge_in_face cfg ~e:(u, v) ~f:(a, b)
         && Faces.is_inside cfg ~u:a ~v:b t
         &&
         if a <> u && b <> u then true (* condition 1 *)
         else not (subtree_part_in_face cfg ~e:(u, v) ~f:(a, b)) (* condition 2 *))

let is_hidden cfg ~e ~t = hiding_edges cfg ~e ~t <> []

(* The hiding edge not contained in any other hiding edge (NOT-CONTAINED,
   Lemma 17, restricted to the hiding set).  Resolved by an explicit
   pairwise containment scan — the hiding set is small in practice — with
   weight as the priority order among the maximal edges. *)
let maximal_hiding_edge cfg ~e ~t =
  match hiding_edges cfg ~e ~t with
  | [] -> None
  | edges ->
    let strictly_contained f f' =
      f <> f'
      && Faces.edge_in_face cfg ~e:f' ~f
      && not (Faces.edge_in_face cfg ~e:f ~f:f')
    in
    let maximal =
      List.filter
        (fun f -> not (List.exists (fun f' -> strictly_contained f f') edges))
        edges
    in
    let candidates = if maximal = [] then edges else maximal in
    let weighted =
      List.map (fun (a, b) -> ((a, b), Weights.weight cfg ~u:a ~v:b)) candidates
    in
    let best =
      List.fold_left
        (fun acc ((a, b), w) ->
          match acc with
          | None -> Some ((a, b), w)
          | Some ((a', b'), w') ->
            if w > w' || (w = w' && (a, b) < (a', b')) then Some ((a, b), w)
            else Some ((a', b'), w'))
        None weighted
    in
    Option.map fst best
