(** Fundamental faces of a planar configuration (Sections 2 and 4).

    For a real fundamental edge e = uv (normalized so that
    [pi_left u < pi_left v]), the fundamental face F_e is the face of T + e
    not containing the virtual root.  The module provides both the paper's
    O(log n) local characterization (Claims 1/3/4/5, Remark 1) and an exact
    O(n) face-traversal reference; the test suite enforces their
    agreement. *)

type edge_case =
  | Unrelated  (** neither endpoint is an ancestor of the other *)
  | Anc_left  (** u ancestor of v, edge E-left oriented (Definition 1) *)
  | Anc_right

val case_name : edge_case -> string

val normalize : Config.t -> int * int -> int * int
(** Order an edge's endpoints by LEFT position. *)

val classify : Config.t -> u:int -> v:int -> edge_case

val npos : Config.t -> int -> int -> int
(** Rotation position of a neighbour, normalized so the parent edge (or the
    virtual root edge) sits at 0. *)

val child_toward : Config.t -> int -> int -> int
(** Child of the first node on the tree path towards its descendant. *)

val on_border : Config.t -> u:int -> v:int -> int -> bool
(** Is the node on the tree path between u and v? *)

val border : Config.t -> u:int -> v:int -> int list
(** The border path C_e, from u to v. *)

val child_inside : Config.t -> u:int -> v:int -> case:edge_case -> int -> int -> bool
(** [child_inside cfg ~u ~v ~case x c]: is the tree child [c] of border node
    [x] inside F_e?  (Claims 1 and 4.) *)

val inside_children : Config.t -> u:int -> v:int -> case:edge_case -> int -> int list
(** Children of a border node hanging inside F_e, in rotation order. *)

val is_inside : Config.t -> u:int -> v:int -> int -> bool
(** O(log n) interior membership (Remark 1 / Claims 3 and 5). *)

val interior : Config.t -> u:int -> v:int -> int list
(** All interior members, via the local characterization. *)

val interior_reference : Config.t -> u:int -> v:int -> int list
(** Exact interior by traversing the two faces of T + e and discarding the
    one holding the virtual root corner. *)

val edge_in_face : Config.t -> e:int * int -> f:int * int -> bool
(** Is the real fundamental edge [f] contained in (the closed region of)
    F_e? *)
