(* Deterministic distributed DFS (Theorem 2, Section 6.2).

   Each phase computes, in parallel over the connected components of the
   unvisited region, a cycle separator (Theorem 1) and joins it to the
   partial DFS tree with the DFS-RULE (Lemma 2).  Because each component
   loses a separator, component sizes drop by a constant factor per phase,
   so there are O(log n) phases, each costing Õ(D) rounds. *)

open Repro_graph
open Repro_embedding
open Repro_congest

type result = {
  parent : int array; (* -1 at the root *)
  depth : int array;
  phases : int;
  max_join_iterations : int;
  phase_log : (int * int * int) list;
      (* per phase: #components, largest component, max join iterations *)
  separator_phases : (string * int) list; (* separator phase histogram *)
}

let run ?rounds ?(spanning = Repro_tree.Spanning.Bfs) emb ~root =
  let g = Embedded.graph emb in
  let n = Graph.n g in
  Graph.check_vertex g root;
  (match rounds with Some r -> Rounds.charge_embedding r | None -> ());
  let st = Join.create g ~root in
  let phases = ref 0 in
  let max_join = ref 0 in
  let phase_log = ref [] in
  let sep_phases = Hashtbl.create 8 in
  let bump k =
    Hashtbl.replace sep_phases k
      (1 + Option.value ~default:0 (Hashtbl.find_opt sep_phases k))
  in
  let all_members = List.init n Fun.id in
  let unvisited_left () = Array.exists (fun p -> p = -2) st.Join.parent in
  while unvisited_left () do
    incr phases;
    if !phases > n + 1 then invalid_arg "Dfs.run: too many phases";
    (match rounds with
    | Some r -> Rounds.charge_aggregate r "components[Phase]"
    | None -> ());
    let comps = Join.unvisited_components st all_members in
    let largest = List.fold_left (fun a c -> max a (List.length c)) 0 comps in
    (* Theorem 1 on the node-disjoint collection of components: compute all
       separators; parts run in parallel, so the batch costs the rounds of
       its heaviest part. *)
    let locals = ref [] in
    let jobs =
      List.map
        (fun members ->
          match members with
          | ([ _ ] | [ _; _ ] | [ _; _; _ ]) ->
            (* Trivial components: every node is its own separator; skip the
               induced-configuration machinery. *)
            bump "trivial";
            (members, members)
          | _ ->
            let part_root =
              match Join.component_anchor st members with
              | Some (v, _) -> v
              | None -> List.hd members
            in
            let cfg = Config.of_part ~spanning ~members ~root:part_root emb in
            let local = Option.map Rounds.like rounds in
            let r = Separator.find ?rounds:local cfg in
            (match local with Some l -> locals := l :: !locals | None -> ());
            bump r.Separator.phase;
            let separator_global =
              List.map (Config.to_global cfg) r.Separator.separator
            in
            (members, separator_global))
        comps
    in
    (match rounds with
    | Some global ->
      let heaviest =
        List.fold_left
          (fun acc l ->
            match acc with
            | None -> Some l
            | Some b -> if Rounds.total l > Rounds.total b then Some l else acc)
          None !locals
      in
      Option.iter (Rounds.absorb global) heaviest
    | None -> ());
    (* JOIN runs in parallel over components as well: charge the deepest
       iteration count once. *)
    let join_locals = ref [] in
    let phase_join =
      List.fold_left
        (fun acc (members, separator) ->
          let local = Option.map Rounds.like rounds in
          let iters = Join.join ?rounds:local st ~members ~separator in
          (match local with Some l -> join_locals := l :: !join_locals | None -> ());
          max acc iters)
        0 jobs
    in
    (match rounds with
    | Some global ->
      let heaviest =
        List.fold_left
          (fun acc l ->
            match acc with
            | None -> Some l
            | Some b -> if Rounds.total l > Rounds.total b then Some l else acc)
          None !join_locals
      in
      Option.iter (Rounds.absorb global) heaviest
    | None -> ());
    max_join := max !max_join phase_join;
    phase_log := (List.length comps, largest, phase_join) :: !phase_log
  done;
  {
    parent = Array.copy st.Join.parent;
    depth = Array.copy st.Join.depth;
    phases = !phases;
    max_join_iterations = !max_join;
    phase_log = List.rev !phase_log;
    separator_phases =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) sep_phases []
      |> List.sort compare;
  }

let verify emb ~root result =
  Algo.is_dfs_tree (Embedded.graph emb) ~root ~parent:result.parent
