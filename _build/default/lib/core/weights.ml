(* Face weights — the paper's deterministic replacement for the randomized
   weight estimation of Ghaffari–Parter.

   [weight] implements Definition 2 exactly for real fundamental edges: an
   O(deg(u) + deg(v) + log n) formula built from the LEFT/RIGHT DFS orders,
   subtree sizes, depths and the locally-computable p-terms.  Lemmas 3 and 4
   state what it counts:

   - u not an ancestor of v: |F~_e| = interior of F_e plus the border path
     from LCA(u,v) to v (w excluded, v included);
   - u an ancestor of v: exactly the interior of F_e.

   The test suite checks the formula against [count_reference], which counts
   those sets from the exact face-traversal interior. *)

open Repro_tree

(* Sum of subtree sizes of the children of [x] hanging inside F_e.  This is
   the paper's p_{F_e}(x): the number of nodes of F_e in the strict subtree
   of x. *)
let p_term cfg ~u ~v ~case x =
  Faces.inside_children cfg ~u ~v ~case x
  |> List.fold_left (fun acc c -> acc + Rooted.size (Config.tree cfg) c) 0

let weight cfg ~u ~v =
  let tree = Config.tree cfg in
  let case = Faces.classify cfg ~u ~v in
  let pu = p_term cfg ~u ~v ~case u in
  let pv = p_term cfg ~u ~v ~case v in
  match case with
  | Faces.Unrelated ->
    (* Definition 2, case 1. *)
    pu + pv + Rooted.pi_left tree v
    - (Rooted.pi_left tree u + Rooted.size tree u)
    + 1
  | Faces.Anc_right ->
    (* Definition 2, case 2: the orientation where the fundamental edge
       leaves u clockwise-after the path child pairs with the LEFT order —
       this follows the proof of Lemma 4 (the labels in Definition 2 itself
       have the two orders swapped; the proof is the consistent version). *)
    let z = Faces.child_toward cfg u v in
    pu + pv
    + (Rooted.pi_left tree v - Rooted.pi_left tree z)
    - (Rooted.depth tree v - Rooted.depth tree z)
  | Faces.Anc_left ->
    let z = Faces.child_toward cfg u v in
    pu + pv
    + (Rooted.pi_right tree v - Rooted.pi_right tree z)
    - (Rooted.depth tree v - Rooted.depth tree z)

(* The set Definition 2 is proven to count (Lemmas 3 and 4), measured from
   the exact interior: ground truth for the formula. *)
let count_reference cfg ~u ~v =
  let tree = Config.tree cfg in
  let interior = Faces.interior_reference cfg ~u ~v in
  match Faces.classify cfg ~u ~v with
  | Faces.Anc_left | Faces.Anc_right -> List.length interior
  | Faces.Unrelated ->
    (* Interior plus the border path from w (exclusive) to v (inclusive). *)
    let w = Rooted.lca tree u v in
    List.length interior + (Rooted.depth tree v - Rooted.depth tree w)

(* Weights of all real fundamental edges (Phase-1 precomputation,
   WEIGHTS-PROBLEM / Lemma 12). *)
let all_weights cfg =
  List.map (fun (u, v) -> ((u, v), weight cfg ~u ~v)) (Config.fundamental_edges cfg)

(* ------------------------------------------------------------------ *)
(* The outside split of Lemma 8.                                       *)
(* ------------------------------------------------------------------ *)

(* Nodes outside F_e split into F_l (visited before the face in the LEFT
   order, or hanging outside below u) and F_r (visited after).  Computed
   from the exact interior; returns (f_left, f_right) as node lists. *)
let outside_split cfg ~u ~v =
  let tree = Config.tree cfg in
  let n = Config.n cfg in
  let in_face = Array.make n false in
  List.iter (fun x -> in_face.(x) <- true) (Faces.interior_reference cfg ~u ~v);
  List.iter (fun x -> in_face.(x) <- true) (Faces.border cfg ~u ~v);
  let fl = ref [] and fr = ref [] in
  for z = 0 to n - 1 do
    if not (in_face.(z)) then
      if Rooted.pi_left tree z > Rooted.pi_left tree v then fr := z :: !fr
      else fl := z :: !fl
  done;
  (!fl, !fr)
