lib/core/check.ml: Array Config Fmt Graph Hashtbl List Repro_embedding Repro_graph Repro_tree Repro_util Rooted
