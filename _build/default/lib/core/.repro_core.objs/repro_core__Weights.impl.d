lib/core/weights.ml: Array Config Faces List Repro_tree Rooted
