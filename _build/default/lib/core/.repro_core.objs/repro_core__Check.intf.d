lib/core/check.mli: Config Format Repro_graph Repro_tree Rooted
