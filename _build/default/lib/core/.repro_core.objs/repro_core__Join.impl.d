lib/core/join.ml: Array Graph Hashtbl List Queue Repro_congest Repro_graph Repro_util Rounds
