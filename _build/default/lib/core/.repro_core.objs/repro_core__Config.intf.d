lib/core/config.mli: Embedded Graph Repro_embedding Repro_graph Repro_tree Rooted Rotation Spanning
