lib/core/faces.mli: Config
