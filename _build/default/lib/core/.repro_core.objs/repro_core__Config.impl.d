lib/core/config.ml: Array Embedded Float Graph List Repro_embedding Repro_graph Repro_tree Rooted Rotation Spanning
