lib/core/dfs.mli: Embedded Repro_congest Repro_embedding Repro_tree Rounds Spanning
