lib/core/hidden.mli: Config
