lib/core/separator.mli: Config Embedded Repro_congest Repro_embedding Rounds
