lib/core/faces.ml: Array Config Graph Hashtbl List Printf Repro_embedding Repro_graph Repro_tree Rooted Rotation
