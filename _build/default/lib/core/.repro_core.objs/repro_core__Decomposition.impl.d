lib/core/decomposition.ml: Algo Array Config Embedded Fun Graph Hashtbl List Queue Repro_embedding Repro_graph Separator
