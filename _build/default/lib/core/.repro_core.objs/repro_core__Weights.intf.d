lib/core/weights.mli: Config Faces
