lib/core/hidden.ml: Config Faces List Option Repro_tree Rooted Weights
