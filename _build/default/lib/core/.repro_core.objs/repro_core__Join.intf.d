lib/core/join.mli: Graph Repro_congest Repro_graph Rounds
