lib/core/dfs.ml: Algo Array Config Embedded Fun Graph Hashtbl Join List Option Repro_congest Repro_embedding Repro_graph Repro_tree Rounds Separator
