lib/core/separator.ml: Array Check Config Faces Hashtbl Hidden List Option Repro_congest Repro_tree Rooted Rounds Weights
