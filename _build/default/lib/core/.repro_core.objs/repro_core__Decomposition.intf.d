lib/core/decomposition.mli: Embedded Graph Repro_congest Repro_embedding Repro_graph Rounds
