(** Hidden nodes and (T, F_e)-compatibility (Definition 4, Lemma 6). *)

val subtree_part_in_face : Config.t -> e:int * int -> f:int * int -> bool
(** Is every node of F_e ∩ T_u (u the first endpoint of [e]) also inside
    the closed region of F_f? *)

val hiding_edges : Config.t -> e:int * int -> t:int -> (int * int) list
(** Real fundamental edges hiding node [t] in F_e. *)

val is_hidden : Config.t -> e:int * int -> t:int -> bool
(** A leaf inside F_e is (T, F_e)-compatible with u iff not hidden. *)

val maximal_hiding_edge : Config.t -> e:int * int -> t:int -> (int * int) option
(** A hiding edge not contained in any other hiding edge (the fallback
    candidate of Lemma 7 / Claim 6). *)
