(** JOIN-PROBLEM (Lemma 2): growing a partial DFS tree by the nodes of a
    marked cycle separator under the DFS-RULE. *)

open Repro_graph
open Repro_congest

type state = {
  g : Graph.t;
  parent : int array; (** -1 at the DFS root, -2 while unvisited *)
  depth : int array; (** -1 while unvisited *)
}

val create : Graph.t -> root:int -> state

val in_tree : state -> int -> bool

val component_anchor : state -> int list -> (int * int) option
(** The unvisited node of the component with the deepest visited neighbour,
    paired with that neighbour (the DFS-RULE attachment point). *)

val unvisited_components : state -> int list -> int list list
(** Connected components of the unvisited part of the member set. *)

val join : ?rounds:Rounds.t -> state -> members:int list -> separator:int list -> int
(** Add every separator node of the component to the partial tree; returns
    the number of halving iterations used (Lemma 2 bounds it by O(log n)
    per surviving path piece). *)
