(** Deterministic face weights (Definition 2; Lemmas 3 and 4).

    Note: Definition 2's case labels pair the orientations with the wrong
    DFS orders; this implementation follows the (consistent) convention of
    the Lemma 4 proof, validated against the exact reference. *)

val p_term :
  Config.t -> u:int -> v:int -> case:Faces.edge_case -> int -> int
(** p_{F_e}(x): number of nodes of F_e in the strict subtree of border node
    [x] — locally computable from the rotation. *)

val weight : Config.t -> u:int -> v:int -> int
(** Definition 2 for the real fundamental edge (u, v) (normalized). *)

val count_reference : Config.t -> u:int -> v:int -> int
(** What Lemmas 3/4 prove [weight] counts, measured from the exact
    face-traversal interior (ground truth for tests and experiment E6). *)

val all_weights : Config.t -> ((int * int) * int) list
(** Weights of every real fundamental edge (Lemma 12). *)

val outside_split : Config.t -> u:int -> v:int -> int list * int list
(** The sets F_l and F_r of Lemma 8: nodes outside F_e, split by LEFT
    position relative to the face. *)
