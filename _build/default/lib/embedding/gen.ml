(* Planar instance generators.

   Every generator returns an [Embedded.t]; when coordinates are provided the
   rotation system is the one induced by the straight-line drawing, so
   geometric ground truth (point-in-polygon) agrees with the combinatorial
   embedding.  The families span the diameter spectrum the experiments need:
   paths/cycles (D = Θ(n)), grids (D = Θ(√n)), stacked triangulations
   (D = Θ(log n)). *)

open Repro_util
open Repro_graph

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  let g = Graph.of_edges ~n:(rows * cols) !edges in
  let coords =
    Array.init (rows * cols) (fun v ->
        (float_of_int (v mod cols), float_of_int (v / cols)))
  in
  Embedded.of_coords ~name:(Printf.sprintf "grid-%dx%d" rows cols) g coords

let grid_diag ?(seed = 1) ~rows ~cols () =
  if rows < 2 || cols < 2 then invalid_arg "Gen.grid_diag";
  let rng = Rng.create seed in
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges;
      if r + 1 < rows && c + 1 < cols then begin
        (* One diagonal per cell, chosen at random: triangulated grid. *)
        let e =
          if Rng.bool rng then (id r c, id (r + 1) (c + 1))
          else (id (r + 1) c, id r (c + 1))
        in
        edges := e :: !edges
      end
    done
  done;
  let g = Graph.of_edges ~n:(rows * cols) !edges in
  let coords =
    Array.init (rows * cols) (fun v ->
        (float_of_int (v mod cols), float_of_int (v / cols)))
  in
  Embedded.of_coords ~name:(Printf.sprintf "tgrid-%dx%d" rows cols) g coords

(* Apollonian-style stacked triangulation: repeatedly pick a bounded
   triangular face uniformly at random and insert a vertex at its centroid.
   Uniform face choice keeps the insertion tree balanced, so the diameter is
   O(log n) with high probability. *)
let stacked_triangulation ?(seed = 1) ~n () =
  if n < 3 then invalid_arg "Gen.stacked_triangulation: n >= 3 required";
  let rng = Rng.create seed in
  let coords = Array.make n (0.0, 0.0) in
  coords.(0) <- (0.0, 0.0);
  coords.(1) <- (1024.0, 0.0);
  coords.(2) <- (512.0, 1024.0);
  let edges = ref [ (0, 1); (1, 2); (0, 2) ] in
  (* Bounded faces as vertex triples; the outer face (0,1,2 seen from
     outside) is never subdivided, keeping vertex 0 on the outer face. *)
  let faces = ref [| (0, 1, 2) |] in
  let nfaces = ref 1 in
  let push_face f =
    if !nfaces = Array.length !faces then begin
      let bigger = Array.make (2 * !nfaces) (0, 0, 0) in
      Array.blit !faces 0 bigger 0 !nfaces;
      faces := bigger
    end;
    !faces.(!nfaces) <- f;
    incr nfaces
  in
  for v = 3 to n - 1 do
    let i = Rng.int rng !nfaces in
    let (a, b, c) = !faces.(i) in
    let (ax, ay) = coords.(a) and (bx, by) = coords.(b) and (cx, cy) = coords.(c) in
    coords.(v) <- ((ax +. bx +. cx) /. 3.0, (ay +. by +. cy) /. 3.0);
    edges := (v, a) :: (v, b) :: (v, c) :: !edges;
    !faces.(i) <- (a, b, v);
    push_face (b, c, v);
    push_face (a, c, v)
  done;
  let g = Graph.of_edges ~n !edges in
  Embedded.of_coords ~name:(Printf.sprintf "stacked-%d" n) g coords

(* Delete a fraction of non-tree edges from an embedded graph, keeping a BFS
   spanning tree so the result stays connected (and planar: edge deletion
   preserves planarity and the induced rotation). *)
let thin ?(seed = 7) ~keep emb =
  if keep < 0.0 || keep > 1.0 then invalid_arg "Gen.thin";
  let rng = Rng.create seed in
  let g = Embedded.graph emb in
  let parent = Algo.bfs_parents g 0 in
  let is_tree_edge u v = parent.(u) = v || parent.(v) = u in
  let edges =
    List.filter
      (fun (u, v) -> is_tree_edge u v || Rng.float rng 1.0 < keep)
      (Graph.edges g)
  in
  let g' = Graph.of_edges ~n:(Graph.n g) edges in
  match Embedded.coords emb with
  | Some coords ->
    Embedded.of_coords
      ~name:(Embedded.name emb ^ "-thin")
      ~outer:(Embedded.outer emb) g' coords
  | None ->
    Embedded.make
      ~name:(Embedded.name emb ^ "-thin")
      ~outer:(Embedded.outer emb) g' (Rotation.of_adjacency g')

let path n =
  if n < 1 then invalid_arg "Gen.path";
  let edges = List.init (max 0 (n - 1)) (fun i -> (i, i + 1)) in
  let g = Graph.of_edges ~n edges in
  let coords = Array.init n (fun i -> (float_of_int i, 0.0)) in
  Embedded.of_coords ~name:(Printf.sprintf "path-%d" n) g coords

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle";
  let edges = List.init n (fun i -> (i, (i + 1) mod n)) in
  let g = Graph.of_edges ~n edges in
  let coords =
    Array.init n (fun i ->
        let a = 2.0 *. Float.pi *. float_of_int i /. float_of_int n in
        (cos a, sin a))
  in
  Embedded.of_coords ~name:(Printf.sprintf "cycle-%d" n) g coords

let star n =
  if n < 2 then invalid_arg "Gen.star";
  let edges = List.init (n - 1) (fun i -> (0, i + 1)) in
  let g = Graph.of_edges ~n edges in
  let coords =
    Array.init n (fun i ->
        if i = 0 then (0.0, 0.0)
        else begin
          let a = 2.0 *. Float.pi *. float_of_int i /. float_of_int n in
          (cos a, sin a)
        end)
  in
  (* The hub is on the outer face of a star as well; use a leaf to make the
     outer-vertex choice unambiguous. *)
  Embedded.of_coords ~name:(Printf.sprintf "star-%d" n) ~outer:1 g coords

let wheel n =
  if n < 4 then invalid_arg "Gen.wheel";
  let rim = n - 1 in
  let edges =
    List.init rim (fun i -> (1 + i, 1 + ((i + 1) mod rim)))
    @ List.init rim (fun i -> (0, 1 + i))
  in
  let g = Graph.of_edges ~n edges in
  let coords =
    Array.init n (fun i ->
        if i = 0 then (0.0, 0.0)
        else begin
          let a = 2.0 *. Float.pi *. float_of_int (i - 1) /. float_of_int rim in
          (cos a, sin a)
        end)
  in
  Embedded.of_coords ~name:(Printf.sprintf "wheel-%d" n) ~outer:1 g coords

let fan n =
  if n < 3 then invalid_arg "Gen.fan";
  (* Apex 0 joined to the path 1 .. n-1: a maximal outerplanar graph. *)
  let edges =
    List.init (n - 2) (fun i -> (1 + i, 2 + i)) @ List.init (n - 1) (fun i -> (0, 1 + i))
  in
  let g = Graph.of_edges ~n edges in
  let coords =
    Array.init n (fun i ->
        if i = 0 then (0.0, 0.0)
        else begin
          let a = Float.pi *. float_of_int i /. float_of_int n in
          (2.0 *. cos a, 2.0 *. (sin a +. 0.2))
        end)
  in
  Embedded.of_coords ~name:(Printf.sprintf "fan-%d" n) ~outer:1 g coords

let random_tree ?(seed = 1) ~n () =
  if n < 1 then invalid_arg "Gen.random_tree";
  let rng = Rng.create seed in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (v, Rng.int rng v) :: !edges
  done;
  let g = Graph.of_edges ~n !edges in
  (* Any rotation system of a tree is planar. *)
  Embedded.make ~name:(Printf.sprintf "rtree-%d" n) g (Rotation.of_adjacency g)

let caterpillar ~spine ~legs =
  if spine < 1 || legs < 0 then invalid_arg "Gen.caterpillar";
  let n = spine * (1 + legs) in
  let edges = ref [] in
  for i = 0 to spine - 2 do
    edges := (i, i + 1) :: !edges
  done;
  for i = 0 to spine - 1 do
    for l = 0 to legs - 1 do
      edges := (i, spine + (i * legs) + l) :: !edges
    done
  done;
  let g = Graph.of_edges ~n !edges in
  Embedded.make
    ~name:(Printf.sprintf "caterpillar-%dx%d" spine legs)
    g (Rotation.of_adjacency g)

(* The standard families the benchmarks sweep over, at a target size. *)
let family_names = [ "grid"; "tgrid"; "stacked"; "thinned"; "cycle"; "fan"; "rtree" ]

let by_family ?(seed = 1) name ~n =
  let side = max 2 (int_of_float (sqrt (float_of_int n))) in
  match name with
  | "grid" -> grid ~rows:side ~cols:side
  | "tgrid" -> grid_diag ~seed ~rows:side ~cols:side ()
  | "stacked" -> stacked_triangulation ~seed ~n:(max 4 n) ()
  | "thinned" -> thin ~seed ~keep:0.5 (stacked_triangulation ~seed ~n:(max 4 n) ())
  | "cycle" -> cycle (max 3 n)
  | "fan" -> fan (max 3 n)
  | "rtree" -> random_tree ~seed ~n ()
  | "path" -> path n
  | "star" -> star (max 2 n)
  | "wheel" -> wheel (max 4 n)
  | _ -> invalid_arg ("Gen.by_family: unknown family " ^ name)
