lib/embedding/svg.ml: Array Buffer Embedded Float Graph Hashtbl List Printf Repro_graph Rotation
