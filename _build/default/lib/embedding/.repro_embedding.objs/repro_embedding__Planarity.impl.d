lib/embedding/planarity.ml: Array Graph Hashtbl List Queue Repro_graph Rotation
