lib/embedding/rotation.mli: Graph Repro_graph
