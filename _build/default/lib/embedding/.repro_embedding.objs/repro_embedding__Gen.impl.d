lib/embedding/gen.ml: Algo Array Embedded Float Graph List Printf Repro_graph Repro_util Rng Rotation
