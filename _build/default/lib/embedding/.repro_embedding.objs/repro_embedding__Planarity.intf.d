lib/embedding/planarity.mli: Graph Repro_graph Rotation
