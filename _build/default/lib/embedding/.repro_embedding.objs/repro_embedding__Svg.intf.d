lib/embedding/svg.mli: Embedded Geometry Graph Repro_graph
