lib/embedding/geometry.ml: Array Graph Repro_graph Rotation
