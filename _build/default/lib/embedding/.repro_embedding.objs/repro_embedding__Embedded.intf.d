lib/embedding/embedded.mli: Format Geometry Graph Repro_graph Rotation
