lib/embedding/geometry.mli: Graph Repro_graph Rotation
