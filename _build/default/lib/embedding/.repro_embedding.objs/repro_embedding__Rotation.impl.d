lib/embedding/rotation.ml: Algo Array Graph Hashtbl List Repro_graph
