lib/embedding/gen.mli: Embedded
