lib/embedding/embedded.ml: Array Fmt Geometry Graph Repro_graph Rotation
