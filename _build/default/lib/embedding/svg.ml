(* SVG rendering of embedded planar graphs.

   Instances drawn by the generators carry straight-line coordinates and are
   rendered as-is; coordinate-free embeddings (e.g. from the DMP embedder)
   get a Tutte-style barycentric layout: the longest face of the rotation
   system is pinned to a circle and every other vertex is relaxed to the
   average of its neighbours, which converges to a planar drawing for
   3-connected graphs and to a readable one otherwise. *)

open Repro_graph

(* Iterative barycentric relaxation with the given boundary cycle fixed. *)
let tutte_layout g ~boundary ~iterations =
  let n = Graph.n g in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  let fixed = Array.make n false in
  let k = List.length boundary in
  List.iteri
    (fun i v ->
      let a = 2.0 *. Float.pi *. float_of_int i /. float_of_int (max 1 k) in
      xs.(v) <- cos a;
      ys.(v) <- sin a;
      fixed.(v) <- true)
    boundary;
  for _ = 1 to iterations do
    for v = 0 to n - 1 do
      if (not fixed.(v)) && Graph.degree g v > 0 then begin
        let sx = ref 0.0 and sy = ref 0.0 in
        Array.iter
          (fun u ->
            sx := !sx +. xs.(u);
            sy := !sy +. ys.(u))
          (Graph.neighbors g v);
        let d = float_of_int (Graph.degree g v) in
        xs.(v) <- !sx /. d;
        ys.(v) <- !sy /. d
      end
    done
  done;
  Array.init n (fun v -> (xs.(v), ys.(v)))

(* Coordinates for an embedded graph: its own drawing when available,
   otherwise a barycentric layout pinned to the longest face. *)
let layout emb =
  match Embedded.coords emb with
  | Some coords -> coords
  | None ->
    let g = Embedded.graph emb in
    let faces = Rotation.faces g (Embedded.rot emb) in
    let boundary =
      match
        List.fold_left
          (fun acc f ->
            match acc with
            | Some best when List.length best >= List.length f -> acc
            | _ -> Some f)
          None faces
      with
      | Some f ->
        (* Dart walk -> vertex cycle (may repeat vertices; dedup keeps the
           first occurrence so pinned positions stay distinct). *)
        let seen = Hashtbl.create 16 in
        List.filter_map
          (fun (a, _) ->
            if Hashtbl.mem seen a then None
            else begin
              Hashtbl.replace seen a ();
              Some a
            end)
          f
      | None -> []
    in
    tutte_layout g ~boundary ~iterations:200

type style = {
  width : float;
  vertex_radius : float;
  edge_color : string;
  vertex_color : string;
  highlight_color : string;
  highlight_edge_color : string;
}

let default_style =
  {
    width = 720.0;
    vertex_radius = 3.0;
    edge_color = "#8892a0";
    vertex_color = "#30343c";
    highlight_color = "#d8343c";
    highlight_edge_color = "#d8343c";
  }

(* Render to an SVG document string.  [highlight] marks a vertex set (e.g. a
   separator); [closing] draws an extra dashed edge (the cycle-closing
   fundamental edge). *)
let render ?(style = default_style) ?(highlight = []) ?closing emb =
  let g = Embedded.graph emb in
  let n = Graph.n g in
  let coords = layout emb in
  let buf = Buffer.create 4096 in
  if n = 0 then begin
    Buffer.add_string buf
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"10\" height=\"10\"/>";
    Buffer.contents buf
  end
  else begin
    (* Fit into a [margin, width - margin] box, preserving aspect ratio. *)
    let xmin = ref infinity and xmax = ref neg_infinity in
    let ymin = ref infinity and ymax = ref neg_infinity in
    Array.iter
      (fun (x, y) ->
        if x < !xmin then xmin := x;
        if x > !xmax then xmax := x;
        if y < !ymin then ymin := y;
        if y > !ymax then ymax := y)
      coords;
    let span = max (!xmax -. !xmin) (!ymax -. !ymin) in
    let span = if span <= 0.0 then 1.0 else span in
    let margin = 24.0 in
    let scale = (style.width -. (2.0 *. margin)) /. span in
    let px (x, y) =
      ( margin +. ((x -. !xmin) *. scale),
        (* SVG's y axis points down; flip so the drawing matches the
           mathematical orientation of the coordinates. *)
        margin +. ((!ymax -. y) *. scale) )
    in
    let height = margin +. ((!ymax -. !ymin) *. scale) +. margin in
    Buffer.add_string buf
      (Printf.sprintf
         "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" \
          height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n"
         style.width height style.width height);
    let marked = Array.make n false in
    List.iter (fun v -> if v >= 0 && v < n then marked.(v) <- true) highlight;
    (* Edges under vertices; separator-internal edges highlighted. *)
    Graph.iter_edges g (fun u v ->
        let (x1, y1) = px coords.(u) and (x2, y2) = px coords.(v) in
        let color, w =
          if marked.(u) && marked.(v) then (style.highlight_edge_color, 2.4)
          else (style.edge_color, 1.0)
        in
        Buffer.add_string buf
          (Printf.sprintf
             "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
              stroke=\"%s\" stroke-width=\"%.1f\"/>\n"
             x1 y1 x2 y2 color w));
    (match closing with
    | Some (a, b) when a >= 0 && a < n && b >= 0 && b < n ->
      let (x1, y1) = px coords.(a) and (x2, y2) = px coords.(b) in
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
            stroke=\"%s\" stroke-width=\"2.0\" stroke-dasharray=\"6 4\"/>\n"
           x1 y1 x2 y2 style.highlight_edge_color)
    | _ -> ());
    for v = 0 to n - 1 do
      let (x, y) = px coords.(v) in
      let color, r =
        if marked.(v) then (style.highlight_color, style.vertex_radius *. 1.5)
        else (style.vertex_color, style.vertex_radius)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\"/>\n" x y r
           color)
    done;
    Buffer.add_string buf "</svg>\n";
    Buffer.contents buf
  end

let write_file ?style ?highlight ?closing emb ~path =
  let doc = render ?style ?highlight ?closing emb in
  let oc = open_out path in
  output_string oc doc;
  close_out oc
