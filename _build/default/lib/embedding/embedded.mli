(** A planar graph together with its embedding and optional coordinates. *)

open Repro_graph

type t

val make :
  ?coords:Geometry.point array ->
  ?outer:int ->
  name:string ->
  Graph.t ->
  Rotation.t ->
  t

val of_coords :
  name:string -> ?outer:int -> Graph.t -> Geometry.point array -> t
(** Derive the rotation system from straight-line coordinates. *)

val graph : t -> Graph.t
val rot : t -> Rotation.t
val coords : t -> Geometry.point array option

val outer : t -> int
(** A vertex incident to the outer (unbounded) face; used as the default
    spanning-tree root so no face contains the root (paper, Section 4). *)

val name : t -> string
val n : t -> int
val m : t -> int

val is_valid : t -> bool
(** Euler-formula validation of the rotation system. *)

val pp : Format.formatter -> t -> unit
