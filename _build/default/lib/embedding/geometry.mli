(** Straight-line embedding geometry (ground truth for interior tests). *)

open Repro_graph

type point = float * float

val orient : point -> point -> point -> float
(** Signed area of the triangle; positive = counterclockwise. *)

val clockwise_order : point array -> int -> int array -> int array
(** Neighbours of a vertex sorted clockwise by angle. *)

val rotation_of_coords : Graph.t -> point array -> Rotation.t
(** Rotation system induced by vertex coordinates. *)

val point_in_polygon : point array -> point -> bool
(** Ray casting; boundary points are unspecified — exclude them first. *)

val segments_cross : point * point -> point * point -> bool
(** Proper crossing of open segments. *)

val straight_line_planar : Graph.t -> point array -> bool
(** O(m²) no-two-edges-cross check (test-only). *)

val centroid : point array -> point
