(** Combinatorial planar embeddings as rotation systems.

    For every vertex [v], the rotation lists the neighbours of [v] in
    clockwise order (the paper's [t_v]).  The order is circular. *)

open Repro_graph

type t

val of_orders : Graph.t -> int array array -> t
(** Build from explicit clockwise neighbour orders; validates that every
    order is a permutation of the adjacency. *)

val of_adjacency : Graph.t -> t
(** Use the graph's adjacency order as the rotation (useful for trees, where
    any rotation system is planar). *)

val order : t -> int -> int array
(** Clockwise neighbour order of a vertex (do not mutate). *)

val degree : t -> int -> int

val position : t -> int -> int -> int
(** [position t v u] is the index of [u] in the rotation of [v]. *)

val next_clockwise : t -> int -> int -> int
(** Neighbour following [u] clockwise around [v]. *)

val prev_clockwise : t -> int -> int -> int

val order_from : t -> int -> first:int -> int array
(** Rotation of [v] as a linear order starting at neighbour [first]. *)

val next_dart : t -> int * int -> int * int
(** Face-traversal successor of a directed edge. *)

val faces : Graph.t -> t -> (int * int) list list
(** All faces as closed dart walks (each dart appears in exactly one face). *)

val count_faces : Graph.t -> t -> int

val is_planar_embedding : Graph.t -> t -> bool
(** Euler-formula check: [V - E + F = 1 + components]. *)
