(* A planar graph packaged with its combinatorial embedding, optional
   straight-line coordinates (used for geometric ground truth in tests), and
   a vertex known to lie on the outer face (the paper's root convention). *)

open Repro_graph

type t = {
  graph : Graph.t;
  rot : Rotation.t;
  coords : Geometry.point array option;
  outer : int;
  name : string;
}

let make ?coords ?(outer = 0) ~name graph rot =
  if Graph.n graph > 0 then Graph.check_vertex graph outer;
  { graph; rot; coords; outer; name }

let of_coords ~name ?(outer = 0) graph coords =
  make ~coords ~outer ~name graph (Geometry.rotation_of_coords graph coords)

let graph t = t.graph
let rot t = t.rot
let coords t = t.coords
let outer t = t.outer
let name t = t.name

let n t = Graph.n t.graph
let m t = Graph.m t.graph

let is_valid t =
  Rotation.is_planar_embedding t.graph t.rot
  &&
  match t.coords with
  | None -> true
  | Some c -> Array.length c = Graph.n t.graph

let pp fmt t =
  Fmt.pf fmt "%s(n=%d, m=%d)" t.name (n t) (m t)
