(** Planarity testing and embedding of arbitrary graphs (no coordinates
    needed): Demoucron–Malgrange–Pertuiset vertex addition per biconnected
    block, glued at cut vertices.  The returned rotation system always
    passes the Euler-formula check. *)

open Repro_graph

type outcome = Planar of Rotation.t | Not_planar

val biconnected_components : Graph.t -> (int * int) list list
(** Edge sets of the biconnected blocks (bridges are single-edge blocks). *)

val embed : Graph.t -> Rotation.t option
(** A planar rotation system, or [None] if the graph is not planar. *)

val is_planar : Graph.t -> bool

val outcome : Graph.t -> outcome
