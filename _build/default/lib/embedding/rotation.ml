(* Combinatorial planar embeddings as rotation systems.

   [order.(v)] lists the neighbours of v in clockwise order around v.  The
   order is circular; [position] gives the index of a neighbour within it.
   Positions are looked up through one hash table over encoded vertex pairs,
   which keeps the per-query cost O(1). *)

open Repro_graph

type t = {
  order : int array array;
  pos : (int, int) Hashtbl.t; (* encode v u -> index of u in order.(v) *)
}

let encode v u = (v * 0x40000000) + u

let of_orders g order =
  if Array.length order <> Graph.n g then
    invalid_arg "Rotation.of_orders: wrong number of vertices";
  let pos = Hashtbl.create (4 * Graph.m g) in
  Array.iteri
    (fun v nbrs ->
      if Array.length nbrs <> Graph.degree g v then
        invalid_arg "Rotation.of_orders: degree mismatch";
      Array.iteri
        (fun i u ->
          if not (Graph.mem_edge g v u) then
            invalid_arg "Rotation.of_orders: rotation lists a non-edge";
          if Hashtbl.mem pos (encode v u) then
            invalid_arg "Rotation.of_orders: duplicate neighbour";
          Hashtbl.add pos (encode v u) i)
        nbrs)
    order;
  { order; pos }

let of_adjacency g =
  of_orders g (Array.init (Graph.n g) (fun v -> Array.copy (Graph.neighbors g v)))

let order t v = t.order.(v)

let degree t v = Array.length t.order.(v)

let position t v u =
  match Hashtbl.find_opt t.pos (encode v u) with
  | Some i -> i
  | None -> invalid_arg "Rotation.position: not a neighbour"

let next_clockwise t v u =
  let d = degree t v in
  t.order.(v).((position t v u + 1) mod d)

let prev_clockwise t v u =
  let d = degree t v in
  t.order.(v).(((position t v u - 1) + d) mod d)

(* Circular order around [v] starting at [first] (exclusive of [first] when
   [strict] — callers usually want the parent edge first). *)
let order_from t v ~first =
  let d = degree t v in
  let i0 = position t v first in
  Array.init d (fun k -> t.order.(v).((i0 + k) mod d))

(* Face traversal.  A dart is a directed edge (u, v).  Following the "next
   dart" rule below partitions all 2m darts into closed walks; for a genus-0
   rotation system those walks are exactly the faces of the embedding.  With
   clockwise vertex rotations this rule walks each face so that its interior
   lies to the left of the traversal. *)
let next_dart t (u, v) = (v, next_clockwise t v u)

let faces g t =
  let darts = Hashtbl.create (4 * Graph.m g) in
  Graph.iter_edges g (fun u v ->
      Hashtbl.replace darts (encode u v) false;
      Hashtbl.replace darts (encode v u) false);
  let result = ref [] in
  let visit (u, v) =
    if not (Hashtbl.find darts (encode u v)) then begin
      let walk = ref [] in
      let rec go (a, b) =
        if not (Hashtbl.find darts (encode a b)) then begin
          Hashtbl.replace darts (encode a b) true;
          walk := (a, b) :: !walk;
          go (next_dart t (a, b))
        end
      in
      go (u, v);
      result := List.rev !walk :: !result
    end
  in
  Graph.iter_edges g (fun u v ->
      visit (u, v);
      visit (v, u));
  !result

let count_faces g t = List.length (faces g t)

(* Euler's formula, per component (each lives on its own sphere): a
   component with at least one edge satisfies V - E + F = 2, while an
   isolated vertex contributes V = 1 and no face walk.  Summing:
   V - E + F = 2 * (#components with edges) + (#isolated vertices). *)
let is_planar_embedding g t =
  let comp, c = Algo.components g in
  let sizes = Array.make c 0 in
  Array.iter (fun ci -> sizes.(ci) <- sizes.(ci) + 1) comp;
  let isolated = Array.fold_left (fun a s -> if s = 1 then a + 1 else a) 0 sizes in
  let with_edges = c - isolated in
  Graph.n g - Graph.m g + count_faces g t = (2 * with_edges) + isolated
