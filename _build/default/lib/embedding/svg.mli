(** SVG rendering of embedded planar graphs.

    Generator instances are drawn with their own straight-line coordinates;
    coordinate-free embeddings get a Tutte-style barycentric layout pinned
    to the longest face of the rotation system. *)

open Repro_graph

type style = {
  width : float;
  vertex_radius : float;
  edge_color : string;
  vertex_color : string;
  highlight_color : string;
  highlight_edge_color : string;
}

val default_style : style

val tutte_layout :
  Graph.t -> boundary:int list -> iterations:int -> Geometry.point array
(** Barycentric relaxation with the boundary cycle pinned to a circle. *)

val layout : Embedded.t -> Geometry.point array
(** The embedding's own coordinates, or a barycentric layout. *)

val render :
  ?style:style -> ?highlight:int list -> ?closing:int * int -> Embedded.t -> string
(** SVG document; [highlight] marks a vertex set (e.g. a separator),
    [closing] draws the cycle-closing edge dashed. *)

val write_file :
  ?style:style ->
  ?highlight:int list ->
  ?closing:int * int ->
  Embedded.t ->
  path:string ->
  unit
