(** Planar instance generators (all with valid rotation systems; most with
    straight-line coordinates used as geometric ground truth).

    Families cover the diameter spectrum: paths and cycles (D = Θ(n)), grids
    (D = Θ(√n)), stacked triangulations (D = Θ(log n) w.h.p.). *)

val grid : rows:int -> cols:int -> Embedded.t
(** Square-lattice grid. *)

val grid_diag : ?seed:int -> rows:int -> cols:int -> unit -> Embedded.t
(** Grid with one random diagonal per cell (a triangulated grid). *)

val stacked_triangulation : ?seed:int -> n:int -> unit -> Embedded.t
(** Apollonian-style stacked triangulation with centroid coordinates. *)

val thin : ?seed:int -> keep:float -> Embedded.t -> Embedded.t
(** Delete non-tree edges with probability [1 - keep], preserving
    connectivity (a BFS tree is always kept). *)

val path : int -> Embedded.t
val cycle : int -> Embedded.t
val star : int -> Embedded.t
val wheel : int -> Embedded.t

val fan : int -> Embedded.t
(** Maximal outerplanar fan: apex joined to a path. *)

val random_tree : ?seed:int -> n:int -> unit -> Embedded.t
(** Uniform random attachment tree (no coordinates). *)

val caterpillar : spine:int -> legs:int -> Embedded.t

val family_names : string list
(** Families used by the benchmark sweeps. *)

val by_family : ?seed:int -> string -> n:int -> Embedded.t
(** Instantiate a named family at (approximately) [n] vertices. *)
