(* Centralized separator baselines in the spirit of Lipton–Tarjan (1979).

   - [level_separator]: the classic first step — a single BFS level whose
     removal leaves both sides with at most 2n/3 vertices.  Always exists;
     may be large (it is not a cycle).
   - [best_fundamental_cycle]: exhaustive search over the fundamental cycles
     of a BFS tree for the one minimizing the largest remaining component —
     a centralized "best possible cycle separator for this tree" yardstick
     for separator-quality experiments (O(m · (n + m)); small inputs only). *)

open Repro_graph
open Repro_tree

let level_separator g ~root =
  let n = Graph.n g in
  let dist = Algo.bfs_dist g root in
  let depth = Array.fold_left max 0 dist in
  let count = Array.make (depth + 1) 0 in
  Array.iter (fun d -> if d >= 0 then count.(d) <- count.(d) + 1) dist;
  (* Prefix sums: pick the first level where the below-part exceeds n/3;
     then both strict sides are at most 2n/3. *)
  let rec pick level seen =
    let seen = seen + count.(level) in
    if 3 * seen >= n || level = depth then level else pick (level + 1) seen
  in
  let cut = pick 0 0 in
  let members = ref [] in
  Array.iteri (fun v d -> if d = cut then members := v :: !members) dist;
  !members

let max_component_after g removed_list =
  let n = Graph.n g in
  let removed = Array.make n false in
  List.iter (fun v -> removed.(v) <- true) removed_list;
  let uf = Repro_util.Union_find.create n in
  Graph.iter_edges g (fun a b ->
      if (not removed.(a)) && not removed.(b) then ignore (Repro_util.Union_find.union uf a b));
  let best = ref 0 in
  for v = 0 to n - 1 do
    if not removed.(v) then best := max !best (Repro_util.Union_find.component_size uf v)
  done;
  !best

let best_fundamental_cycle g ~root =
  let parent = Spanning.bfs g ~root in
  let depth = Algo.bfs_dist g root in
  let path_between u v =
    (* Walk both endpoints up to their meeting point. *)
    let rec go u v left right =
      if u = v then List.rev_append left (u :: right)
      else if depth.(u) >= depth.(v) then go parent.(u) v (u :: left) right
      else go u parent.(v) left (v :: right)
    in
    go u v [] []
  in
  let best = ref None in
  Graph.iter_edges g (fun u v ->
      if parent.(u) <> v && parent.(v) <> u then begin
        let cycle = path_between u v in
        let mc = max_component_after g cycle in
        match !best with
        | Some (_, bmc, bsize)
          when bmc < mc || (bmc = mc && bsize <= List.length cycle) ->
          ()
        | _ -> best := Some (cycle, mc, List.length cycle)
      end);
  match !best with
  | Some (cycle, mc, _) -> Some (cycle, mc)
  | None -> None
