(* Randomized cycle separators in the style of Ghaffari–Parter (DISC 2017).

   Instead of the deterministic weight formula, face weights are *estimated*
   by node sampling: k uniformly random vertices are tested for membership
   inside each fundamental face (each test is an O(log n)-bit comparison of
   DFS-order intervals, exactly what the randomized algorithm broadcasts),
   and the face weight is extrapolated from the hit fraction.  The algorithm
   then trusts an estimate that falls inside a slack-narrowed window — the
   leap of faith whose failure probability experiment E4 measures against
   the deterministic algorithm's zero failures. *)

open Repro_util
open Repro_core
open Repro_congest

type outcome = {
  separator : int list;
  balanced : bool;
  estimate_used : int;
  exact_weight : int;
  fell_back : bool; (* no estimate fell in the window *)
}

(* Membership in the set the weight of Definition 2 counts (Lemmas 3/4):
   the interior, plus — when the endpoints are unrelated — the border tail
   from the LCA (exclusive) down to v. *)
let in_weighted_set cfg ~u ~v z =
  let tree = Config.tree cfg in
  Faces.is_inside cfg ~u ~v z
  || (Faces.classify cfg ~u ~v = Faces.Unrelated
     && z <> Repro_tree.Rooted.lca tree u v
     && Repro_tree.Rooted.is_ancestor tree ~anc:z ~desc:v
     && Faces.on_border cfg ~u ~v z)

let estimate_weight cfg rng ~samples ~u ~v =
  let n = Config.n cfg in
  let hits = ref 0 in
  for _ = 1 to samples do
    let z = Rng.int rng n in
    if in_weighted_set cfg ~u ~v z then incr hits
  done;
  int_of_float (float_of_int !hits /. float_of_int samples *. float_of_int n)

let find ?rounds ~seed ~samples cfg =
  let rng = Rng.create seed in
  let n = Config.n cfg in
  let tree = Config.tree cfg in
  (match rounds with
  | Some r ->
    Rounds.charge_spanning_forest r;
    Rounds.charge_dfs_order r;
    (* Sampling replaces the deterministic weights but costs the same
       aggregation schedule. *)
    Rounds.charge_weights r
  | None -> ());
  let fundamental = Config.fundamental_edges cfg in
  let fallback () =
    (* Where estimation finds nothing, the randomized algorithm restarts
       with more samples; for the comparison we fall back to the
       deterministic search and flag it. *)
    let r = Separator.find ?rounds cfg in
    {
      separator = r.Separator.separator;
      balanced = Check.balanced cfg r.Separator.separator;
      estimate_used = -1;
      exact_weight = -1;
      fell_back = true;
    }
  in
  if fundamental = [] || n <= 3 then fallback ()
  else begin
    let estimates =
      List.map
        (fun (u, v) -> ((u, v), estimate_weight cfg rng ~samples ~u ~v))
        fundamental
    in
    let candidate =
      List.find_opt (fun (_, est) -> 3 * est >= n && 3 * est <= 2 * n) estimates
    in
    match candidate with
    | Some ((u, v), est) ->
      (match rounds with
      | Some r -> Rounds.charge_mark_path r
      | None -> ());
      let path = Repro_tree.Rooted.path tree u v in
      {
        separator = path;
        balanced = Check.balanced cfg path;
        estimate_used = est;
        exact_weight = Weights.weight cfg ~u ~v;
        fell_back = false;
      }
    | None -> fallback ()
  end
