(* Awerbuch's distributed DFS (Information Processing Letters, 1985) — the
   O(n)-round baseline the paper's introduction positions against.

   A single token performs the depth-first traversal.  When the token first
   reaches a node, the node notifies all its neighbours that it has been
   visited and waits two rounds before moving the token on, so the token is
   never forwarded to an already-visited node: each edge carries the token
   at most twice, and the notification overhead is constant per node, which
   gives Θ(n) rounds in total.

   This is a genuine message-level execution in the CONGEST engine; the
   measured round count is what the experiments compare against the Õ(D)
   algorithm. *)

open Repro_graph
open Repro_congest

module Program = struct
  type input = bool (* root? *)

  type msg = Token of int (* sender's depth *) | Visited | Return

  type state = {
    nbrs : int array;
    is_root : bool;
    mutable parent : int; (* -1 root, -2 unvisited *)
    mutable depth : int;
    mutable known_visited : int list;
    mutable holding_since : int; (* round we got the token; -1 otherwise *)
    mutable notified : bool;
    mutable next_child : int; (* cursor into nbrs *)
    mutable done_ : bool;
  }

  type output = int * int (* parent, depth *)

  let msg_bits = function
    | Token d -> 2 + Bandwidth.bits_for_int d
    | Visited | Return -> 2

  let init ~n:_ ~id:_ ~neighbors is_root =
    let st =
      {
        nbrs = neighbors;
        is_root;
        parent = (if is_root then -1 else -2);
        depth = (if is_root then 0 else -1);
        known_visited = [];
        holding_since = (if is_root then 0 else -1);
        notified = false;
        next_child = 0;
        done_ = false;
      }
    in
    (* The root announces itself visited immediately. *)
    let out =
      if is_root then begin
        st.notified <- true;
        Array.to_list neighbors |> List.map (fun v -> (v, Visited))
      end
      else []
    in
    (st, out)

  (* Forward the token to the first neighbour not known to be visited, or
     return it to the parent. *)
  let move_token st =
    st.holding_since <- -1;
    let rec pick i =
      if i >= Array.length st.nbrs then begin
        st.next_child <- i;
        if st.parent >= 0 then [ (st.parent, Return) ]
        else begin
          st.done_ <- true;
          []
        end
      end
      else begin
        let u = st.nbrs.(i) in
        if u <> st.parent && not (List.mem u st.known_visited) then begin
          st.next_child <- i + 1;
          [ (u, Token st.depth) ]
        end
        else pick (i + 1)
      end
    in
    pick st.next_child

  let step ~round ~id:_ st ~inbox =
    let out = ref [] in
    List.iter
      (function
        | u, Visited -> st.known_visited <- u :: st.known_visited
        | u, Token d ->
          if st.parent = -2 then begin
            st.parent <- u;
            st.depth <- d + 1;
            st.holding_since <- round;
            st.notified <- false
          end
          else
            (* The wait-two-rounds discipline makes this unreachable; answer
               with Return defensively so the token is never lost. *)
            out := (u, Return) :: !out
        | _, Return -> st.holding_since <- round (* resume the search at once *))
      inbox;
    if st.holding_since >= 0 then begin
      if not st.notified then begin
        st.notified <- true;
        Array.iter
          (fun v -> if v <> st.parent then out := (v, Visited) :: !out)
          st.nbrs;
        (* Hold the token for the notification round. *)
        st.holding_since <- round
      end
      else if round > st.holding_since then out := move_token st @ !out
    end;
    (st, !out)

  let finished st =
    (* A node is quiescent when it is visited and not holding the token;
       global termination is detected by the engine (no messages left and
       the root done).  The root stays active until the traversal ends. *)
    if st.is_root then st.done_ else st.parent > -2 && st.holding_since < 0

  let output st = (st.parent, st.depth)
end

module E = Engine.Make (Program)

type result = {
  parent : int array;
  depth : int array;
  rounds : int;
  messages : int;
}

let run ?max_rounds g ~root =
  let n = Graph.n g in
  let max_rounds = match max_rounds with Some r -> r | None -> 50 * (n + 10) in
  let input = Array.init n (fun v -> v = root) in
  let out, stats = E.run ~max_rounds g ~input in
  {
    parent = Array.map fst out;
    depth = Array.map snd out;
    rounds = stats.Engine.rounds;
    messages = stats.Engine.messages;
  }
