lib/baseline/lipton_tarjan.ml: Algo Array Graph List Repro_graph Repro_tree Repro_util Spanning
