lib/baseline/lipton_tarjan.mli: Graph Repro_graph
