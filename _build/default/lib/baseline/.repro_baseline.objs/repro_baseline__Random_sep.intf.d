lib/baseline/random_sep.mli: Config Repro_congest Repro_core Repro_util Rounds
