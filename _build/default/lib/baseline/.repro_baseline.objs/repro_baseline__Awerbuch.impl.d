lib/baseline/awerbuch.ml: Array Bandwidth Engine Graph List Repro_congest Repro_graph
