lib/baseline/random_sep.ml: Check Config Faces List Repro_congest Repro_core Repro_tree Repro_util Rng Rounds Separator Weights
