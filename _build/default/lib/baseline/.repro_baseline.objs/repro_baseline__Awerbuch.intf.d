lib/baseline/awerbuch.mli: Graph Repro_graph
