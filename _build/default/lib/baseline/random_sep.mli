(** Randomized (sampling-based) cycle separator in the Ghaffari–Parter
    style: face weights are estimated from random node samples and an
    in-window estimate is trusted without verification. *)

open Repro_core
open Repro_congest

type outcome = {
  separator : int list;
  balanced : bool; (** post-hoc exact check, for the experiments *)
  estimate_used : int; (** -1 when the algorithm fell back *)
  exact_weight : int;
  fell_back : bool; (** no estimate landed in the window *)
}

val estimate_weight :
  Config.t -> Repro_util.Rng.t -> samples:int -> u:int -> v:int -> int

val find : ?rounds:Rounds.t -> seed:int -> samples:int -> Config.t -> outcome
