(** Centralized separator baselines (Lipton–Tarjan style). *)

open Repro_graph

val level_separator : Graph.t -> root:int -> int list
(** A BFS level splitting the graph into sides of at most 2n/3 vertices. *)

val max_component_after : Graph.t -> int list -> int
(** Largest component once the listed vertices are removed. *)

val best_fundamental_cycle : Graph.t -> root:int -> (int list * int) option
(** The BFS-tree fundamental cycle minimizing the largest remaining
    component, with that component's size; [None] if the graph is a tree.
    O(m · (n + m)) — yardstick for small instances. *)
