(** Awerbuch's O(n)-round distributed DFS (IPL 1985) — message-level
    execution in the CONGEST engine; the baseline of experiment E5. *)

open Repro_graph

type result = {
  parent : int array; (** -1 at the root *)
  depth : int array;
  rounds : int; (** measured synchronous rounds, Θ(n) *)
  messages : int;
}

val run : ?max_rounds:int -> Graph.t -> root:int -> result
