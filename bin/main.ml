(* Command-line driver.

     repro gen  --family tgrid --n 400 --seed 1
     repro sep  --family stacked --n 1000 --tree dfs --shrink
     repro dfs  --family tgrid --n 900 --root 17 --compare-awerbuch

   Families: grid tgrid stacked thinned cycle fan rtree path star wheel. *)

open Cmdliner
open Repro_graph
open Repro_embedding
open Repro_tree
open Repro_congest
open Repro_core
open Repro_baseline

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                     *)
(* ------------------------------------------------------------------ *)

let family_arg =
  let doc =
    "Graph family (grid, tgrid, stacked, thinned, cycle, fan, rtree, path, \
     star, wheel; hostile testkit families xchords1/xchords4/xchords16, \
     xrot, xunion build corrupted embeddings the screen layer rejects)."
  in
  Arg.(value & opt string "tgrid" & info [ "family"; "f" ] ~docv:"FAMILY" ~doc)

let n_arg =
  let doc = "Approximate number of vertices." in
  Arg.(value & opt int 400 & info [ "n" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Generator seed." in
  Arg.(value & opt int 1 & info [ "seed"; "s" ] ~docv:"SEED" ~doc)

let tree_arg =
  let doc = "Spanning tree kind: bfs, dfs or random." in
  Arg.(value & opt string "bfs" & info [ "tree"; "t" ] ~docv:"KIND" ~doc)

let spanning_of_string seed = function
  | "bfs" -> Spanning.Bfs
  | "dfs" -> Spanning.Dfs
  | "random" -> Spanning.Random seed
  | other -> invalid_arg ("unknown tree kind: " ^ other)

let jobs_arg =
  let doc =
    "Worker domains for part-parallel batches.  Defaults to \
     Domain.recommended_domain_count (), i.e. one per hardware thread; the \
     flat graph store is shared read-only across domains.  Output is \
     bit-identical for every value; 1 runs fully sequentially."
  in
  Arg.(
    value
    & opt int (Repro_util.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let backend_arg =
  let doc =
    "Separator backend: $(b,congest) (the distributed six-phase algorithm), \
     $(b,lt-level) (centralized BFS level), $(b,hn-cycle) (centralized \
     simple-cycle heuristic), $(b,random-sep) (randomized weight sampler \
     with deterministic fallback), or any client-registered name."
  in
  Arg.(value & opt string "congest" & info [ "backend" ] ~docv:"NAME" ~doc)

let cutoff_arg =
  let doc =
    "Centralized fast path: recursion parts with at most $(docv) vertices are \
     dispatched to the first registered centralized backend (lt-level) \
     instead of $(b,--backend).  0 disables the fast path."
  in
  Arg.(value & opt int 0 & info [ "cutoff" ] ~docv:"N" ~doc)

let resolve_backend name =
  Backends.ensure ();
  match Backend.lookup_opt name with
  | Some b -> b
  | None ->
    Printf.eprintf "unknown backend %s (registered: %s)\n" name
      (String.concat ", " (Backend.names ()));
    exit 2

let cutoff_of n = if n <= 0 then None else Some n

let edges_arg =
  let doc =
    "Load the graph from an edge-list file (one 'u v' pair per line; vertex \
     ids 0-based) instead of generating one; the embedding is computed with \
     the DMP planarity algorithm."
  in
  Arg.(value & opt (some string) None & info [ "edges" ] ~docv:"FILE" ~doc)

(* ------------------------------------------------------------------ *)
(* Tracing (the [--trace*] family, shared by sep/dfs/bdd)               *)
(* ------------------------------------------------------------------ *)

let trace_arg =
  let doc = "Print the span-tree summary of the run (structured tracing)." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let trace_chrome_arg =
  let doc =
    "Write the run's trace as Chrome-trace (Perfetto) JSON to $(docv).  The \
     time axis is virtual (charged + executed rounds), so traces are \
     deterministic and diffable."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-chrome" ] ~docv:"FILE" ~doc)

let trace_metrics_arg =
  let doc = "Write the run's aggregated per-span metrics JSON to $(docv)." in
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-metrics" ] ~docv:"FILE" ~doc)

(* A tracer is allocated only when some trace output was requested, so the
   default path stays the zero-cost [None] pipeline end to end. *)
let tracer_of_flags ~trace ~chrome ~metrics =
  if trace || chrome <> None || metrics <> None then
    Some (Repro_trace.Trace.create ())
  else None

let write_text_file path contents =
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

let emit_trace ~trace ~chrome ~metrics tracer =
  match tracer with
  | None -> ()
  | Some tr ->
    if trace then Format.printf "@.%a@." Repro_trace.Trace.pp tr;
    Option.iter
      (fun path ->
        write_text_file path (Repro_trace.Trace.to_chrome_string tr);
        Printf.printf "chrome trace       : %s\n" path)
      chrome;
    Option.iter
      (fun path ->
        write_text_file path (Repro_trace.Trace.to_metrics_string tr);
        Printf.printf "metrics json       : %s\n" path)
      metrics

let load_edge_list path =
  let ic = open_in path in
  let edges = ref [] and max_v = ref (-1) in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then begin
         match String.split_on_char ' ' line |> List.filter (( <> ) "") with
         | [ a; b ] ->
           let u = int_of_string a and v = int_of_string b in
           edges := (u, v) :: !edges;
           max_v := max !max_v (max u v)
         | _ -> failwith ("bad edge line: " ^ line)
       end
     done
   with End_of_file -> close_in ic);
  Graph.of_edges ~n:(!max_v + 1) !edges

let instance_of ~family ~n ~seed ~edges =
  match edges with
  | None ->
    let emb =
      if Repro_testkit.Instance.is_hostile family then
        (* Hostile testkit families (xchords*/xrot/xunion) build corrupted
           embeddings on purpose — the screen layer is what rejects them. *)
        Repro_testkit.Instance.hostile_embedded
          { family; n; seed; spanning = Spanning.Bfs }
      else Gen.by_family ~seed family ~n
    in
    let g = Embedded.graph emb in
    (emb, g, Algo.diameter g)
  | Some path ->
    let g = load_edge_list path in
    (match Planarity.embed g with
    | None ->
      prerr_endline "input graph is not planar";
      exit 2
    | Some rot ->
      let emb = Embedded.make ~name:(Filename.basename path) g rot in
      (emb, g, Algo.diameter g))

(* Screen rejections exit 3 with the verdict and a replay spec on stderr —
   the hostile-input contract: a typed front-door error, never a deep-phase
   crash. *)
let or_screen_reject f =
  try f ()
  with Screen.Rejected_input { entry; verdict; spec } ->
    Printf.eprintf "screen rejected at %s: %s\n  replay: %s\n" entry
      (Screen.verdict_to_string verdict)
      spec;
    exit 3

let print_instance emb g d =
  Printf.printf "instance : %s\n" (Embedded.name emb);
  Printf.printf "n        : %d\nm        : %d\nD        : %d\n" (Graph.n g)
    (Graph.m g) d

(* ------------------------------------------------------------------ *)
(* gen                                                                  *)
(* ------------------------------------------------------------------ *)

let gen_cmd =
  let run family n seed edges =
    let emb, g, d = instance_of ~family ~n ~seed ~edges in
    print_instance emb g d;
    Printf.printf "planar embedding valid : %b\n" (Embedded.is_valid emb);
    Printf.printf "screen verdict         : %s\n"
      (Screen.verdict_to_string (Screen.check emb));
    Printf.printf "connected              : %b\n" (Algo.is_connected g);
    (match Embedded.coords emb with
    | Some coords ->
      Printf.printf "straight-line drawing  : %b\n"
        (Geometry.straight_line_planar g coords)
    | None -> Printf.printf "straight-line drawing  : (no coordinates)\n");
    Printf.printf "outer-face vertex      : %d\n" (Embedded.outer emb)
  in
  let term = Term.(const run $ family_arg $ n_arg $ seed_arg $ edges_arg) in
  Cmd.v (Cmd.info "gen" ~doc:"Generate or load a planar instance and validate it") term

(* ------------------------------------------------------------------ *)
(* sep                                                                  *)
(* ------------------------------------------------------------------ *)

let shrink_arg =
  let doc = "Also apply the balanced-trim post-pass." in
  Arg.(value & flag & info [ "shrink" ] ~doc)

let verbose_arg =
  let doc = "Print the separator's vertices." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let svg_arg =
  let doc = "Write an SVG drawing with the separator highlighted." in
  Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc)

let sep_cmd =
  let run family n seed edges tree backend shrink verbose svg trace chrome
      metrics =
    let emb, g, d = instance_of ~family ~n ~seed ~edges in
    print_instance emb g d;
    let b = resolve_backend backend in
    let tracer = tracer_of_flags ~trace ~chrome ~metrics in
    let rounds = Rounds.create ?trace:tracer ~n:(Graph.n g) ~d () in
    or_screen_reject @@ fun () ->
    (* Screen before Config.of_embedded: a corrupted rotation must die
       with a verdict, not crash the spanning-tree build. *)
    Screen.require ~rounds ~entry:"sep" emb;
    let cfg = Config.of_embedded ~spanning:(spanning_of_string seed tree) emb in
    let r = b.Backend.find ~rounds cfg in
    let verdict = Check.check_separator cfg r.Separator.separator in
    (* The tree-path shape is part of the contract only for the distributed
       algorithm; centralized backends are judged on balance alone. *)
    let ok =
      match b.Backend.kind with
      | Backend.Distributed -> verdict.Check.valid
      | Backend.Centralized ->
        verdict.Check.size > 0
        && verdict.Check.max_component <= verdict.Check.limit
    in
    Printf.printf "\nbackend            : %s (%s)\n" b.Backend.name
      b.Backend.description;
    Printf.printf "separator phase    : %s (%d candidate(s))\n" r.Separator.phase
      r.Separator.candidates_tried;
    Printf.printf "separator size     : %d\n" verdict.Check.size;
    Printf.printf "max component      : %d (limit %d)\n" verdict.Check.max_component
      verdict.Check.limit;
    Printf.printf "valid              : %b\n" ok;
    Printf.printf "charged rounds     : %.0f (%.0f x D)\n" (Rounds.total rounds)
      (Rounds.total rounds /. float_of_int d);
    if shrink then begin
      let s = b.Backend.trim cfg r.Separator.separator in
      Printf.printf "after shrink       : %d nodes (balanced %b)\n" (List.length s)
        (Check.balanced cfg s)
    end;
    if verbose then
      Printf.printf "nodes: %s\n"
        (String.concat " " (List.map string_of_int r.Separator.separator));
    (match svg with
    | Some path ->
      Svg.write_file ~highlight:r.Separator.separator
        ?closing:r.Separator.endpoints emb ~path;
      Printf.printf "svg written       : %s\n" path
    | None -> ());
    emit_trace ~trace ~chrome ~metrics tracer;
    exit (if ok then 0 else 1)
  in
  let term =
    Term.(
      const run $ family_arg $ n_arg $ seed_arg $ edges_arg $ tree_arg
      $ backend_arg $ shrink_arg $ verbose_arg $ svg_arg $ trace_arg
      $ trace_chrome_arg $ trace_metrics_arg)
  in
  Cmd.v
    (Cmd.info "sep" ~doc:"Compute and verify a deterministic cycle separator")
    term

(* ------------------------------------------------------------------ *)
(* dfs                                                                  *)
(* ------------------------------------------------------------------ *)

let root_arg =
  let doc = "DFS root (default: the embedding's outer vertex)." in
  Arg.(value & opt (some int) None & info [ "root"; "r" ] ~docv:"V" ~doc)

let compare_arg =
  let doc = "Also run Awerbuch's O(n) DFS in the message-level engine." in
  Arg.(value & flag & info [ "compare-awerbuch" ] ~doc)

let dfs_cmd =
  let run family n seed edges root jobs backend cutoff compare_awerbuch trace
      chrome metrics =
    let emb, g, d = instance_of ~family ~n ~seed ~edges in
    print_instance emb g d;
    let b = resolve_backend backend in
    let root = match root with Some r -> r | None -> Embedded.outer emb in
    let tracer = tracer_of_flags ~trace ~chrome ~metrics in
    let rounds = Rounds.create ?trace:tracer ~n:(Graph.n g) ~d () in
    or_screen_reject @@ fun () ->
    let r =
      Repro_util.Pool.with_pool ~jobs (fun pool ->
          Dfs.run ~rounds ~pool ~backend:b
            ?small_part_cutoff:(cutoff_of cutoff) emb ~root)
    in
    let ok = Dfs.verify emb ~root r in
    Printf.printf "\nDFS root           : %d\n" root;
    Printf.printf "phases             : %d\n" r.Dfs.phases;
    Printf.printf "max join iters     : %d\n" r.Dfs.max_join_iterations;
    Printf.printf "tree depth         : %d\n" (Array.fold_left max 0 r.Dfs.depth);
    Printf.printf "valid DFS tree     : %b\n" ok;
    Printf.printf "charged rounds     : %.0f\n" (Rounds.total rounds);
    if compare_awerbuch then begin
      let aw = Awerbuch.run g ~root in
      Printf.printf "awerbuch rounds    : %d (measured; ~4n)\n" aw.Awerbuch.rounds;
      Printf.printf "awerbuch valid     : %b\n"
        (Algo.is_dfs_tree g ~root ~parent:aw.Awerbuch.parent)
    end;
    emit_trace ~trace ~chrome ~metrics tracer;
    exit (if ok then 0 else 1)
  in
  let term =
    Term.(
      const run $ family_arg $ n_arg $ seed_arg $ edges_arg $ root_arg
      $ jobs_arg $ backend_arg $ cutoff_arg $ compare_arg $ trace_arg
      $ trace_chrome_arg $ trace_metrics_arg)
  in
  Cmd.v
    (Cmd.info "dfs" ~doc:"Compute a DFS tree with the deterministic Õ(D) algorithm")
    term

(* ------------------------------------------------------------------ *)
(* bdd                                                                  *)
(* ------------------------------------------------------------------ *)

let target_arg =
  let doc = "Hop-diameter target for the pieces." in
  Arg.(value & opt int 8 & info [ "target" ] ~docv:"T" ~doc)

let piece_arg =
  let doc = "Piece-size target (used when --by-size is set)." in
  Arg.(value & opt int 20 & info [ "piece" ] ~docv:"K" ~doc)

let by_size_arg =
  let doc = "Decompose by piece size (Lipton-Tarjan) instead of diameter." in
  Arg.(value & flag & info [ "by-size" ] ~doc)

let bdd_cmd =
  let run family n seed edges target piece by_size jobs backend cutoff trace
      chrome metrics =
    let emb, g, d = instance_of ~family ~n ~seed ~edges in
    print_instance emb g d;
    let b = resolve_backend backend in
    let cutoff = cutoff_of cutoff in
    let tracer = tracer_of_flags ~trace ~chrome ~metrics in
    let rounds =
      Option.map
        (fun tr -> Rounds.create ~trace:tr ~n:(Graph.n g) ~d ())
        tracer
    in
    or_screen_reject @@ fun () ->
    let t, ok =
      Repro_util.Pool.with_pool ~jobs (fun pool ->
          if by_size then begin
            let t =
              Decomposition.build ?rounds ~pool ~piece_target:piece ~backend:b
                ?small_part_cutoff:cutoff emb
            in
            (t, Decomposition.check emb ~piece_target:piece t)
          end
          else begin
            let t =
              Decomposition.bounded_diameter ?rounds ~pool
                ~diameter_target:target ~backend:b ?small_part_cutoff:cutoff
                emb
            in
            (t, Decomposition.check_bounded_diameter emb ~diameter_target:target t)
          end)
    in
    Printf.printf "\npieces            : %d\n" (List.length t.Decomposition.pieces);
    Printf.printf "recursion levels  : %d\n" t.Decomposition.levels;
    Printf.printf "separator nodes   : %d (%.1f%% of n)\n"
      t.Decomposition.separator_count
      (100.0 *. float_of_int t.Decomposition.separator_count
      /. float_of_int (Graph.n g));
    Printf.printf "valid             : %b\n" ok;
    (match rounds with
    | Some r -> Printf.printf "charged rounds    : %.0f\n" (Rounds.total r)
    | None -> ());
    emit_trace ~trace ~chrome ~metrics tracer;
    exit (if ok then 0 else 1)
  in
  let term =
    Term.(
      const run $ family_arg $ n_arg $ seed_arg $ edges_arg $ target_arg
      $ piece_arg $ by_size_arg $ jobs_arg $ backend_arg $ cutoff_arg
      $ trace_arg $ trace_chrome_arg $ trace_metrics_arg)
  in
  Cmd.v
    (Cmd.info "bdd"
       ~doc:
         "Recursive separator decomposition: bounded-diameter pieces (default) \
          or bounded-size pieces (--by-size)")
    term

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "repro" ~version:"1.0.0"
      ~doc:
        "Deterministic distributed DFS via cycle separators in planar graphs \
         (PODC 2025 reproduction)"
  in
  exit (Cmd.eval (Cmd.group info [ gen_cmd; sep_cmd; dfs_cmd; bdd_cmd ]))
