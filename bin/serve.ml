(* Separator-as-a-service daemon.

     repro-serve --socket /tmp/repro.sock --family grid -n 1600 --seed 1

   Loads (or generates) one graph, screens it once, and serves the
   line-delimited JSON protocol over a Unix-domain socket: dfs /
   separator / decompose / stats / shutdown.  See README "Serving". *)

open Cmdliner
open Repro_graph
open Repro_embedding
open Repro_core
open Repro_baseline
open Repro_serve
module Trace = Repro_trace.Trace

let socket_arg =
  let doc = "Unix-domain socket path to serve on." in
  Arg.(
    value
    & opt string "/tmp/repro-serve.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc)

let family_arg =
  let doc =
    "Graph family (grid, tgrid, stacked, thinned, cycle, fan, rtree, path, \
     star, wheel; hostile testkit families are rejected by the screen at \
     startup with exit 3)."
  in
  Arg.(
    value
    & opt string Workload.canonical_family
    & info [ "family"; "f" ] ~docv:"FAMILY" ~doc)

let n_arg =
  let doc = "Approximate number of vertices." in
  Arg.(value & opt int Workload.canonical_n & info [ "n" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Generator seed." in
  Arg.(
    value & opt int Workload.canonical_seed
    & info [ "seed"; "s" ] ~docv:"SEED" ~doc)

let backend_arg =
  let doc =
    "Separator backend serving the separator/decompose/dfs queries \
     ($(b,congest), $(b,lt-level), $(b,hn-cycle), $(b,random-sep), or any \
     client-registered name)."
  in
  Arg.(value & opt string "congest" & info [ "backend" ] ~docv:"NAME" ~doc)

let cutoff_arg =
  let doc =
    "Centralized fast path: recursion parts with at most $(docv) vertices \
     dispatch to the first registered centralized backend.  0 disables."
  in
  Arg.(value & opt int 0 & info [ "cutoff" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for part-parallel batches; responses are bit-identical \
     for every value."
  in
  Arg.(
    value
    & opt int (Repro_util.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cache_arg =
  let doc = "Result-cache capacity (entries; LRU eviction)." in
  Arg.(
    value
    & opt int Workload.canonical_cache_capacity
    & info [ "cache" ] ~docv:"N" ~doc)

let max_requests_arg =
  let doc =
    "Stop after answering $(docv) requests (safety stop for CI smoke runs)."
  in
  Arg.(
    value & opt (some int) None & info [ "max-requests" ] ~docv:"K" ~doc)

let metrics_arg =
  let doc =
    "Write the daemon's aggregated per-span trace metrics JSON to $(docv) \
     on exit (enables tracing; per-request serve.* spans included)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-metrics" ] ~docv:"FILE" ~doc)

let resolve_backend name =
  Backends.ensure ();
  match Backend.lookup_opt name with
  | Some b -> b
  | None ->
    Printf.eprintf "unknown backend %s (registered: %s)\n" name
      (String.concat ", " (Backend.names ()));
    exit 2

let instance_of ~family ~n ~seed =
  let emb =
    if Repro_testkit.Instance.is_hostile family then
      Repro_testkit.Instance.hostile_embedded
        { family; n; seed; spanning = Repro_tree.Spanning.Bfs }
    else Gen.by_family ~seed family ~n
  in
  (emb, Embedded.graph emb)

let or_screen_reject f =
  try f ()
  with Screen.Rejected_input { entry; verdict; spec } ->
    Printf.eprintf "screen rejected at %s: %s\n  replay: %s\n" entry
      (Screen.verdict_to_string verdict)
      spec;
    exit 3

let write_text_file path contents =
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

let main socket family n seed backend_name cutoff jobs cache metrics
    max_requests =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let backend = resolve_backend backend_name in
  let emb, g = instance_of ~family ~n ~seed in
  let tracer =
    if metrics <> None then Some (Trace.create ~root:"serve" ()) else None
  in
  or_screen_reject @@ fun () ->
  Repro_util.Pool.with_pool ~jobs @@ fun pool ->
  let engine =
    Engine.create ?tracer ~backend
      ?small_part_cutoff:(if cutoff <= 0 then None else Some cutoff)
      ~cache_capacity:cache ~pool emb
  in
  Printf.printf "instance : %s\nn        : %d\nm        : %d\nbackend  : %s\n"
    (Embedded.name emb) (Graph.n g) (Graph.m g) backend.Backend.name;
  let served =
    Server.run ~socket ?max_requests
      ~on_ready:(fun () -> Printf.printf "serving on %s\n%!" socket)
      engine
  in
  Printf.printf "served   : %d requests\nstats    : %s\n" served
    (Repro_trace.Json.to_string (Engine.stats_json engine));
  Option.iter
    (fun path ->
      Option.iter
        (fun tr -> write_text_file path (Trace.to_metrics_string tr))
        tracer;
      Printf.printf "metrics json : %s\n" path)
    metrics

let cmd =
  let doc = "serve DFS/separator/decomposition queries over a socket" in
  let info = Cmd.info "repro-serve" ~doc in
  Cmd.v info
    Term.(
      const main $ socket_arg $ family_arg $ n_arg $ seed_arg $ backend_arg
      $ cutoff_arg $ jobs_arg $ cache_arg $ metrics_arg $ max_requests_arg)

let () = exit (Cmd.eval cmd)
