(* Consolidated debug/stress driver.

     debug conventions [--spec stacked:60:7:rand3]...
     debug separator   [--spec FAMILY:N:SEED:SPANNING]...
     debug dfs         [--spec FAMILY:N:SEED:SPANNING]...
     debug grand       [--iters 4000]
     debug closable    [--family grid --n 50 --seed 434796 --seed 483504]

   Each subcommand is a former ad-hoc debug binary; all of them accept the
   testkit's printable instance specs (see Repro_testkit.Instance), so a
   failure reported by the fuzzer or CI replays here from one line. *)

open Cmdliner
open Repro_graph
open Repro_embedding
open Repro_tree
open Repro_core
module Instance = Repro_testkit.Instance

let spec_arg =
  let doc =
    "Run only this testkit instance spec (repeatable).  Format: \
     FAMILY:N:SEED:SPANNING, e.g. stacked:60:7:rand3.  Without it the \
     subcommand runs its full built-in sweep."
  in
  Arg.(
    value & opt_all string [] & info [ "spec" ] ~docv:"FAMILY:N:SEED:SPANNING" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for part-parallel batches.  Defaults to \
     Domain.recommended_domain_count (), i.e. one per hardware thread; the \
     flat graph store is shared read-only across domains.  Output is \
     bit-identical for every value; 1 runs fully sequentially."
  in
  Arg.(
    value
    & opt int (Repro_util.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* (name, embedding, spanning) triples from explicit spec strings. *)
let instances_of_specs specs =
  List.map
    (fun s ->
      let spec = Instance.of_string s in
      let inst = Instance.build spec in
      (Instance.to_string spec, inst.Instance.emb, spec.Instance.spanning))
    specs

(* ------------------------------------------------------------------ *)
(* conventions: local face characterization vs references              *)
(* ------------------------------------------------------------------ *)

let check_conventions ~name emb spanning =
  let cfg = Config.of_embedded ~spanning emb in
  let tree = Config.tree cfg in
  let g = Config.graph cfg in
  let coords = Embedded.coords emb in
  let mism_interior = ref 0 and mism_weight = ref 0 and mism_geom = ref 0 in
  let checked = ref 0 in
  List.iter
    (fun (u, v) ->
      incr checked;
      let reference = Faces.interior_reference cfg ~u ~v |> List.sort compare in
      let local = Faces.interior cfg ~u ~v |> List.sort compare in
      if reference <> local then begin
        incr mism_interior;
        if !mism_interior <= 3 then begin
          Printf.printf "  INTERIOR mismatch %s e=(%d,%d) case=%s\n" name u v
            (Faces.case_name (Faces.classify cfg ~u ~v));
          Printf.printf "    ref=[%s]\n    loc=[%s]\n"
            (String.concat "," (List.map string_of_int reference))
            (String.concat "," (List.map string_of_int local))
        end
      end;
      (* is_inside agrees with membership in the reference list. *)
      let ref_set = Hashtbl.create 16 in
      List.iter (fun x -> Hashtbl.replace ref_set x ()) reference;
      for z = 0 to Graph.n g - 1 do
        let a = Faces.is_inside cfg ~u ~v z in
        let b = Hashtbl.mem ref_set z in
        if a <> b then begin
          incr mism_interior;
          if !mism_interior <= 6 then
            Printf.printf
              "  IS_INSIDE mismatch %s e=(%d,%d) z=%d local=%b ref=%b case=%s\n"
              name u v z a b
              (Faces.case_name (Faces.classify cfg ~u ~v))
        end
      done;
      (* Weight formula vs its proven meaning. *)
      let w_formula = Weights.weight cfg ~u ~v in
      let w_ref = Weights.count_reference cfg ~u ~v in
      if w_formula <> w_ref then begin
        incr mism_weight;
        if !mism_weight <= 6 then
          Printf.printf "  WEIGHT mismatch %s e=(%d,%d) case=%s formula=%d ref=%d\n"
            name u v
            (Faces.case_name (Faces.classify cfg ~u ~v))
            w_formula w_ref
      end;
      (* Geometry: interior nodes are inside the drawn cycle polygon. *)
      (match coords with
      | None -> ()
      | Some coords ->
        let poly =
          Rooted.path tree u v |> List.map (fun x -> coords.(x)) |> Array.of_list
        in
        for z = 0 to Graph.n g - 1 do
          if not (Faces.on_border cfg ~u ~v z) then begin
            let geo = Geometry.point_in_polygon poly coords.(z) in
            let comb = Hashtbl.mem ref_set z in
            if geo <> comb then begin
              incr mism_geom;
              if !mism_geom <= 3 then
                Printf.printf "  GEOMETRY mismatch %s e=(%d,%d) z=%d geo=%b comb=%b\n"
                  name u v z geo comb
            end
          end
        done))
    (Config.fundamental_edges cfg);
  Printf.printf
    "%s [%s]: %d edges checked, interior mismatches=%d, weight mismatches=%d, \
     geometry mismatches=%d\n"
    name
    (Spanning.kind_name spanning)
    !checked !mism_interior !mism_weight !mism_geom;
  !mism_interior + !mism_weight + !mism_geom

let conventions_cmd =
  let run specs =
    let total = ref 0 in
    (match specs with
    | _ :: _ ->
      List.iter
        (fun (name, emb, spanning) ->
          total := !total + check_conventions ~name emb spanning)
        (instances_of_specs specs)
    | [] ->
      let run name emb =
        List.iter
          (fun sp -> total := !total + check_conventions ~name emb sp)
          [ Spanning.Bfs; Spanning.Dfs; Spanning.Random 11 ]
      in
      run "grid5x5" (Gen.grid ~rows:5 ~cols:5);
      run "tgrid4x4" (Gen.grid_diag ~seed:2 ~rows:4 ~cols:4 ());
      run "stacked30" (Gen.stacked_triangulation ~seed:3 ~n:30 ());
      run "wheel9" (Gen.wheel 9);
      run "fan8" (Gen.fan 8);
      run "cycle12" (Gen.cycle 12);
      for seed = 1 to 8 do
        run
          (Printf.sprintf "thin%d" seed)
          (Gen.thin ~seed ~keep:0.55 (Gen.stacked_triangulation ~seed ~n:40 ()))
      done);
    Printf.printf "TOTAL mismatches: %d\n" !total;
    exit (if !total = 0 then 0 else 1)
  in
  let term = Term.(const run $ spec_arg) in
  Cmd.v
    (Cmd.info "conventions"
       ~doc:
         "Cross-validate the local face characterization (Claims 1/3/4/5, \
          Remark 1) against the exact T+e face-traversal reference and, where \
          coordinates exist, geometric point-in-polygon")
    term

(* ------------------------------------------------------------------ *)
(* separator: all-family stress with phase histogram                    *)
(* ------------------------------------------------------------------ *)

let backend_arg =
  let doc =
    "Separator backend to stress (congest, lt-level, hn-cycle, random-sep, or any \
     client-registered name)."
  in
  Arg.(value & opt string "congest" & info [ "backend" ] ~docv:"NAME" ~doc)

let resolve_backend name =
  Repro_baseline.Backends.ensure ();
  match Backend.lookup_opt name with
  | Some b -> b
  | None ->
    Printf.eprintf "unknown backend %s (registered: %s)\n" name
      (String.concat ", " (Backend.names ()));
    exit 2

let cutoff_arg =
  let doc =
    "Dispatch components with at most $(docv) vertices to the centralized \
     fast-path backend (0 disables)."
  in
  Arg.(value & opt int 0 & info [ "cutoff" ] ~docv:"N" ~doc)

let cutoff_of n = if n <= 0 then None else Some n

let separator_cmd =
  let run specs backend =
    let b = resolve_backend backend in
    let phases = Hashtbl.create 16 in
    let bump k =
      Hashtbl.replace phases k
        (1 + Option.value ~default:0 (Hashtbl.find_opt phases k))
    in
    let failures = ref 0 and total = ref 0 and extra_candidates = ref 0 in
    let check name emb spanning =
      incr total;
      let cfg = Config.of_embedded ~spanning emb in
      match b.Backend.find cfg with
      | exception e ->
        incr failures;
        Printf.printf "EXCEPTION %s [%s]: %s\n" name (Spanning.kind_name spanning)
          (Printexc.to_string e)
      | r ->
        bump r.Separator.phase;
        if r.Separator.candidates_tried > 1 then incr extra_candidates;
        let verdict = Check.check_separator cfg r.Separator.separator in
        (* Centralized backends don't promise the tree-path shape — judge
           them on balance alone. *)
        let ok =
          match b.Backend.kind with
          | Backend.Distributed -> verdict.Check.valid
          | Backend.Centralized ->
            verdict.Check.size > 0
            && verdict.Check.max_component <= verdict.Check.limit
        in
        if not ok then begin
          incr failures;
          Printf.printf "INVALID %s [%s] phase=%s: %s\n" name
            (Spanning.kind_name spanning) r.Separator.phase
            (Fmt.str "%a" Check.pp_verdict verdict)
        end
    in
    (match specs with
    | _ :: _ ->
      List.iter
        (fun (name, emb, spanning) -> check name emb spanning)
        (instances_of_specs specs)
    | [] ->
      let kinds = [ Spanning.Bfs; Spanning.Dfs; Spanning.Random 5 ] in
      let sizes = [ 10; 17; 25; 60; 150; 400; 900; 1600 ] in
      List.iter
        (fun family ->
          List.iter
            (fun n ->
              List.iter
                (fun seed ->
                  let emb = Gen.by_family ~seed family ~n in
                  List.iter (fun k -> check (Embedded.name emb) emb k) kinds)
                [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])
            sizes)
        Gen.family_names;
      (* Extra adversarial shapes. *)
      List.iter
        (fun emb -> List.iter (fun k -> check (Embedded.name emb) emb k) kinds)
        [
          Gen.star 50;
          Gen.path 100;
          Gen.wheel 40;
          Gen.caterpillar ~spine:20 ~legs:4;
          Gen.cycle 99;
        ]);
    Printf.printf "total=%d failures=%d multi-candidate=%d\n" !total !failures
      !extra_candidates;
    Hashtbl.iter (fun k v -> Printf.printf "  phase %-16s : %d\n" k v) phases;
    exit (if !failures = 0 then 0 else 1)
  in
  let term = Term.(const run $ spec_arg $ backend_arg) in
  Cmd.v
    (Cmd.info "separator"
       ~doc:
         "Stress the separator across families, sizes, seeds and spanning \
          kinds; validate every output and report the phase distribution")
    term

(* ------------------------------------------------------------------ *)
(* dfs: DFS construction stress                                         *)
(* ------------------------------------------------------------------ *)

let dfs_cmd =
  let run specs jobs backend cutoff =
    let b = resolve_backend backend in
    let cutoff = cutoff_of cutoff in
    Repro_util.Pool.with_pool ~jobs @@ fun pool ->
    let failures = ref 0 and total = ref 0 in
    let max_phases = ref 0 in
    let check ?spanning name emb =
      incr total;
      let root = Embedded.outer emb in
      match
        Dfs.run ?spanning ~pool ~backend:b ?small_part_cutoff:cutoff emb ~root
      with
      | exception e ->
        incr failures;
        Printf.printf "EXCEPTION %s: %s\n" name (Printexc.to_string e)
      | r ->
        max_phases := max !max_phases r.Dfs.phases;
        if not (Dfs.verify emb ~root r) then begin
          incr failures;
          Printf.printf "INVALID DFS %s (phases=%d)\n" name r.Dfs.phases
        end
    in
    (match specs with
    | _ :: _ ->
      List.iter
        (fun (name, emb, spanning) -> check ~spanning name emb)
        (instances_of_specs specs)
    | [] ->
      List.iter
        (fun family ->
          List.iter
            (fun n ->
              List.iter
                (fun seed ->
                  check (family ^ string_of_int n) (Gen.by_family ~seed family ~n))
                [ 1; 2; 3; 4; 5 ])
            [ 5; 12; 30; 80; 200; 400 ])
        Gen.family_names;
      List.iter
        (fun emb -> check (Embedded.name emb) emb)
        [
          Gen.star 50; Gen.path 100; Gen.wheel 40; Gen.caterpillar ~spine:20 ~legs:4;
        ];
      (* One detailed run. *)
      let emb = Gen.grid_diag ~seed:3 ~rows:20 ~cols:20 () in
      let r =
        Dfs.run ~pool ~backend:b ?small_part_cutoff:cutoff emb ~root:0
      in
      Printf.printf "tgrid20x20: phases=%d max_join=%d valid=%b\n" r.Dfs.phases
        r.Dfs.max_join_iterations
        (Dfs.verify emb ~root:0 r);
      List.iter
        (fun (c, l, j) ->
          Printf.printf "  phase: comps=%d largest=%d join_iters=%d\n" c l j)
        r.Dfs.phase_log;
      List.iter
        (fun (p, c) -> Printf.printf "  sep %s: %d\n" p c)
        r.Dfs.separator_phases);
    Printf.printf "total=%d failures=%d max_phases=%d\n" !total !failures !max_phases;
    exit (if !failures = 0 then 0 else 1)
  in
  let term = Term.(const run $ spec_arg $ jobs_arg $ backend_arg $ cutoff_arg) in
  Cmd.v
    (Cmd.info "dfs" ~doc:"Stress the deterministic DFS construction")
    term

(* ------------------------------------------------------------------ *)
(* grand: randomized long-haul stress with closing-edge certification   *)
(* ------------------------------------------------------------------ *)

let shuffle_labels ~seed g =
  let n = Graph.n g in
  let perm = Array.init n Fun.id in
  Repro_util.Rng.shuffle_in_place (Repro_util.Rng.create seed) perm;
  Graph.of_edges ~n (List.map (fun (u, v) -> (perm.(u), perm.(v))) (Graph.edges g))

let iters_arg =
  let doc = "Number of randomized iterations." in
  Arg.(value & opt int 4000 & info [ "iters" ] ~docv:"N" ~doc)

let grand_cmd =
  let run iters =
    let rng = Repro_util.Rng.create 20260705 in
    let fails = ref 0 and total = ref 0 and certified = ref 0 in
    for i = 1 to iters do
      let which = Repro_util.Rng.int rng 7 in
      let n = 4 + Repro_util.Rng.int rng 300 in
      let seed = Repro_util.Rng.int rng 1000000 in
      let family = List.nth Gen.family_names which in
      let emb0 = Gen.by_family ~seed family ~n in
      let use_dmp = Repro_util.Rng.int rng 4 = 0 in
      let emb =
        if not use_dmp then emb0
        else begin
          let g = shuffle_labels ~seed:(seed + 1) (Embedded.graph emb0) in
          match Planarity.embed g with
          | Some rot -> Embedded.make ~name:"dmp" g rot
          | None -> emb0
        end
      in
      let g = Embedded.graph emb in
      let spanning =
        match Repro_util.Rng.int rng 3 with
        | 0 -> Spanning.Bfs
        | 1 -> Spanning.Dfs
        | _ -> Spanning.Random seed
      in
      incr total;
      (try
         let cfg = Config.of_embedded ~spanning emb in
         let r = Separator.find cfg in
         if not (Check.check_separator cfg r.Separator.separator).Check.valid
         then begin
           incr fails;
           Printf.printf "BAD SEP i=%d %s n=%d seed=%d dmp=%b\n" i family n seed
             use_dmp
         end;
         (match r.Separator.endpoints with
         | Some endpoints when Graph.n g <= 150 ->
           incr certified;
           if not (Check.cycle_closable cfg ~endpoints) then begin
             incr fails;
             Printf.printf "NOT CLOSABLE i=%d %s n=%d seed=%d\n" i family n seed
           end
         | _ -> ());
         if i mod 3 = 0 then begin
           let root = Repro_util.Rng.int rng (Graph.n g) in
           let d = Dfs.run ~spanning emb ~root in
           if not (Dfs.verify emb ~root d) then begin
             incr fails;
             Printf.printf "BAD DFS i=%d %s n=%d seed=%d root=%d dmp=%b\n" i
               family n seed root use_dmp
           end
         end
       with e ->
         incr fails;
         Printf.printf "EXC i=%d %s n=%d seed=%d dmp=%b: %s\n" i family n seed
           use_dmp (Printexc.to_string e));
      if !fails > 10 then exit 1
    done;
    Printf.printf "grand stress: total=%d closing-edges-certified=%d fails=%d\n"
      !total !certified !fails;
    exit (if !fails = 0 then 0 else 1)
  in
  let term = Term.(const run $ iters_arg) in
  Cmd.v
    (Cmd.info "grand"
       ~doc:
         "Randomized separators + DFS across generated and DMP-embedded \
          instances, with closing-edge certification")
    term

(* ------------------------------------------------------------------ *)
(* closable: which phase emits an uncertifiable closing edge?           *)
(* ------------------------------------------------------------------ *)

let closable_family_arg =
  let doc = "Generator family to probe." in
  Arg.(value & opt string "grid" & info [ "family"; "f" ] ~docv:"FAMILY" ~doc)

let closable_n_arg =
  let doc = "Instance size." in
  Arg.(value & opt int 50 & info [ "n" ] ~docv:"N" ~doc)

let closable_seeds_arg =
  let doc = "Generator seed (repeatable)." in
  Arg.(value & opt_all int [ 434796; 483504 ] & info [ "seed"; "s" ] ~docv:"SEED" ~doc)

let closable_cmd =
  let run family n seeds =
    let probed = ref 0 and bad = ref 0 in
    List.iter
      (fun seed ->
        let emb = Gen.by_family ~seed family ~n in
        List.iter
          (fun sp ->
            incr probed;
            let cfg = Config.of_embedded ~spanning:sp emb in
            let r = Separator.find cfg in
            match r.Separator.endpoints with
            | Some endpoints when not (Check.cycle_closable cfg ~endpoints) ->
              incr bad;
              let a, b = endpoints in
              Printf.printf "seed=%d sp=%s phase=%s edge=(%d,%d) real=%b\n" seed
                (Spanning.kind_name sp) r.Separator.phase a b
                (Graph.mem_edge (Config.graph cfg) a b)
            | _ -> ())
          [ Spanning.Bfs; Spanning.Dfs; Spanning.Random seed ])
      seeds;
    Printf.printf "closable: %d separators probed, %d uncertifiable\n" !probed !bad;
    if !bad > 0 then exit 1
  in
  let term = Term.(const run $ closable_family_arg $ closable_n_arg $ closable_seeds_arg) in
  Cmd.v
    (Cmd.info "closable"
       ~doc:"Report separators whose closing edge fails certification")
    term

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "debug" ~version:"1.0.0"
      ~doc:"Debug and stress harnesses for the reproduction (one former ad-hoc binary per subcommand)"
  in
  (* Hostile --spec instances (xchords*/xrot/xunion) die in the screened
     library entries; surface the verdict instead of an exception trace. *)
  match
    Cmd.eval
      (Cmd.group info
         [ conventions_cmd; separator_cmd; dfs_cmd; grand_cmd; closable_cmd ])
  with
  | code -> exit code
  | exception Screen.Rejected_input { entry; verdict; spec } ->
    Printf.eprintf "screen rejected at %s: %s\n  replay: %s\n" entry
      (Screen.verdict_to_string verdict)
      spec;
    exit 3
