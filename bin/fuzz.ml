(* Deterministic fuzz runner over the testkit's oracle registry.

   Usage:
     fuzz [--seed N] [--count N] [--max-size N] [--oracle NAME[,NAME..]]
          [--families F[,F..]] [--backend NAME[,NAME..]] [--max-failures N]
          [--artifact-dir DIR] [--replay SPEC] [--list] [--self-check] [-v]

   Exit codes: 0 all oracles passed, 1 some oracle failed (crash artifacts
   written), 2 usage error.  Every failure prints one replay line; the
   same line is embedded in the JSON artifact CI uploads. *)

open Repro_testkit

let usage () =
  prerr_endline
    "usage: fuzz [--seed N] [--count N] [--max-size N] [--oracle NAMES]\n\
    \            [--families NAMES] [--backend NAMES] [--max-failures N]\n\
    \            [--artifact-dir DIR] [--replay SPEC] [--list] [--self-check]\n\
    \            [-v]\n\n\
     --list       print the registered oracles and generator families\n\
     --backend    separator backends the `backend' oracle checks\n\
    \             (default: congest,lt-level,hn-cycle,random-sep)\n\
     --replay     re-run the oracles on one spec (family:n:seed:spanning)\n\
     --self-check injected-bug drill: prove a planted failure is caught,\n\
    \             shrunk to the minimal size and replayable";
  exit 2

let split_commas s = String.split_on_char ',' s |> List.filter (( <> ) "")

type opts = {
  mutable seed : int;
  mutable count : int;
  mutable max_size : int;
  mutable oracles : string list;
  mutable families : string list;
  mutable backends : string list;
  mutable max_failures : int;
  mutable artifact_dir : string;
  mutable replay : string option;
  mutable self_check : bool;
  mutable verbose : bool;
}

let parse_args () =
  let o =
    {
      seed = 0;
      count = 200;
      max_size = 64;
      oracles = [];
      families = [];
      backends = [];
      max_failures = 1;
      artifact_dir = "_fuzz";
      replay = None;
      self_check = false;
      verbose = false;
    }
  in
  let args = Array.to_list Sys.argv |> List.tl in
  let int_arg name v =
    match int_of_string_opt v with
    | Some i -> i
    | None ->
      Printf.eprintf "fuzz: %s expects an integer, got %s\n" name v;
      exit 2
  in
  let rec go = function
    | [] -> ()
    | "--seed" :: v :: rest ->
      o.seed <- int_arg "--seed" v;
      go rest
    | "--count" :: v :: rest ->
      o.count <- int_arg "--count" v;
      go rest
    | "--max-size" :: v :: rest ->
      o.max_size <- int_arg "--max-size" v;
      go rest
    | "--max-failures" :: v :: rest ->
      o.max_failures <- int_arg "--max-failures" v;
      go rest
    | "--oracle" :: v :: rest ->
      o.oracles <- o.oracles @ split_commas v;
      go rest
    | "--families" :: v :: rest ->
      o.families <- o.families @ split_commas v;
      go rest
    | "--backend" :: v :: rest ->
      o.backends <- o.backends @ split_commas v;
      go rest
    | "--artifact-dir" :: v :: rest ->
      o.artifact_dir <- v;
      go rest
    | "--replay" :: v :: rest ->
      o.replay <- Some v;
      go rest
    | "--list" :: _ ->
      Printf.printf "oracles:\n";
      List.iter
        (fun (oc : Oracle.t) ->
          Printf.printf "  %-12s %s\n" oc.Oracle.name oc.Oracle.guards)
        (Oracle.all ());
      Printf.printf "families: %s\n" (String.concat ", " Instance.families);
      Printf.printf "hostile families (screen oracle only): %s\n"
        (String.concat ", " Instance.hostile_families);
      exit 0
    | "--self-check" :: rest ->
      o.self_check <- true;
      go rest
    | "-v" :: rest | "--verbose" :: rest ->
      o.verbose <- true;
      go rest
    | ("--help" | "-h") :: _ -> usage ()
    | a :: _ ->
      Printf.eprintf "fuzz: unknown argument %s\n" a;
      usage ()
  in
  go args;
  o

let resolve_oracles names =
  match names with [] -> None | ns -> Some (List.map Oracle.find ns)

(* Narrow the `backend' oracle to the requested separator backends (after
   validating them against the registry). *)
let apply_backends = function
  | [] -> ()
  | bs ->
    Repro_baseline.Backends.ensure ();
    let known = Repro_core.Backend.names () in
    List.iter
      (fun b ->
        if not (List.mem b known) then begin
          Printf.eprintf "fuzz: unknown backend %s (known: %s)\n" b
            (String.concat ", " known);
          exit 2
        end)
      bs;
    Oracle.restrict_backends bs

let resolve_families = function
  | [] -> None
  | fs ->
    let known = Instance.families @ Instance.hostile_families in
    List.iter
      (fun f ->
        if not (List.mem f known) then begin
          Printf.eprintf "fuzz: unknown family %s (known: %s)\n" f
            (String.concat ", " known);
          exit 2
        end)
      fs;
    Some fs

(* Hostile families are only defined for the screen oracle (spanning trees
   and configurations don't exist on corrupted input), so a hostile run is
   auto-restricted to it — and an explicit non-screen oracle request over
   hostile families is a usage error, not a silent skip. *)
let restrict_for_hostile ~requested_oracles ~families oracles =
  match families with
  | Some fs when List.exists Instance.is_hostile fs ->
    let non_screen = List.filter (( <> ) "screen") requested_oracles in
    if non_screen <> [] then begin
      Printf.eprintf
        "fuzz: oracle %s is not defined on hostile families (only `screen' \
         is)\n"
        (String.concat "," non_screen);
      exit 2
    end;
    (match List.filter (fun f -> not (Instance.is_hostile f)) fs with
    | [] -> ()
    | clean ->
      Printf.eprintf
        "fuzz: cannot mix hostile and clean families in one run (%s)\n"
        (String.concat "," clean);
      exit 2);
    List.filter (fun (o : Oracle.t) -> o.Oracle.name = "screen") oracles
  | _ -> oracles

let write_artifacts dir ~seed failures =
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
   with Sys_error _ -> ());
  List.iteri
    (fun i f ->
      let path = Filename.concat dir (Printf.sprintf "crash-%d.json" i) in
      let oc = open_out path in
      output_string oc (Runner.artifact_json ~seed f);
      output_char oc '\n';
      close_out oc;
      Printf.printf "artifact: %s\n" path)
    failures

let print_failure (f : Runner.failure) =
  Printf.printf "FAILED %s (case %d, shrunk from %s in %d steps)\n"
    (Instance.to_string f.Runner.spec)
    f.Runner.case
    (Instance.to_string f.Runner.original)
    f.Runner.shrink_steps;
  List.iter
    (fun r -> Format.printf "  %a@." Runner.pp_report r)
    f.Runner.reports;
  Printf.printf "  replay: %s\n" (Runner.repro_line f)

let replay opts spec_string =
  let spec =
    try Instance.of_string spec_string
    with Failure msg ->
      prerr_endline ("fuzz: " ^ msg);
      exit 2
  in
  let oracles =
    match resolve_oracles opts.oracles with
    | Some os -> os
    | None -> Oracle.all ()
  in
  let oracles =
    restrict_for_hostile ~requested_oracles:opts.oracles
      ~families:(Some [ spec.Instance.family ])
      oracles
  in
  let reports = Runner.run_spec ~oracles spec in
  List.iter (fun r -> Format.printf "%a@." Runner.pp_report r) reports;
  if List.for_all (fun r -> r.Oracle.ok) reports then begin
    Printf.printf "replay %s: ok\n" spec_string;
    exit 0
  end
  else begin
    Printf.printf "replay %s: FAILED\n" spec_string;
    exit 1
  end

(* The injected-bug drill (the acceptance criterion made executable): a
   deliberately broken oracle must be caught by the fuzz loop, shrunk to
   the smallest instance the generator can express above the planted
   threshold, and its repro line must replay to the same failure. *)
let self_check opts =
  let threshold = 24 in
  let oracles = [ Oracle.sabotage ~threshold ] in
  let outcome =
    Runner.fuzz ~oracles ~max_size:(max opts.max_size 48) ~max_failures:1
      ~seed:opts.seed ~count:opts.count ()
  in
  match outcome.Runner.failures with
  | [] ->
    Printf.printf "self-check: planted bug NOT caught in %d cases\n"
      outcome.Runner.cases;
    exit 1
  | f :: _ ->
    print_failure f;
    let shrunk_n = f.Runner.spec.Instance.n in
    let minimal = shrunk_n < threshold + 16 in
    let replayed =
      Runner.failing ~oracles f.Runner.spec
      |> List.exists (fun r -> r.Oracle.oracle = "sabotage")
    in
    Printf.printf "self-check: caught=yes shrunk-to-n=%d minimal=%s replays=%s\n"
      shrunk_n
      (if minimal then "yes" else "NO")
      (if replayed then "yes" else "NO");
    if minimal && replayed then begin
      Printf.printf "self-check: ok\n";
      exit 0
    end
    else exit 1

let () =
  let opts = parse_args () in
  apply_backends opts.backends;
  if opts.self_check then self_check opts;
  match opts.replay with
  | Some spec -> replay opts spec
  | None ->
    let oracles =
      match resolve_oracles opts.oracles with
      | Some os -> os
      | None -> Oracle.all ()
    in
    let families = resolve_families opts.families in
    let oracles =
      restrict_for_hostile ~requested_oracles:opts.oracles ~families oracles
    in
    let log line = if opts.verbose then print_endline line in
    let outcome =
      Runner.fuzz ~oracles ?families ~max_size:opts.max_size
        ~max_failures:opts.max_failures ~log ~seed:opts.seed
        ~count:opts.count ()
    in
    Printf.printf "fuzz: %d cases, %d checks, %d failures (seed %d, oracles: %s)\n"
      outcome.Runner.cases outcome.Runner.checks
      (List.length outcome.Runner.failures)
      opts.seed
      (String.concat "," (List.map (fun (o : Oracle.t) -> o.Oracle.name) oracles));
    if outcome.Runner.failures = [] then exit 0
    else begin
      List.iter print_failure outcome.Runner.failures;
      write_artifacts opts.artifact_dir ~seed:opts.seed outcome.Runner.failures;
      exit 1
    end
