(* Tour of the message-level CONGEST substrate: the primitives the paper
   consumes as black boxes, executed for real with bandwidth accounting.

   Run with:  dune exec examples/congest_primitives.exe *)

open Repro_graph
open Repro_embedding
open Repro_congest

let show name (stats : Engine.stats) =
  Printf.printf "  %-22s rounds=%-5d messages=%-7d max-bits/edge=%d\n" name
    stats.Engine.rounds stats.Engine.messages stats.Engine.max_edge_bits

let () =
  let emb = Gen.grid_diag ~seed:3 ~rows:16 ~cols:16 () in
  let g = Embedded.graph emb in
  let n = Graph.n g in
  Printf.printf "network: %s  n=%d m=%d  bandwidth=%d bits/edge/round\n"
    (Embedded.name emb) n (Graph.m g) (Bandwidth.default ~n);

  (* 1. BFS tree by flooding — the backbone of every other primitive. *)
  let (parent, dist), stats = Prim.bfs_tree g ~root:0 in
  show "bfs-tree" stats;
  let depth = Array.fold_left max 0 dist in
  Printf.printf "      tree depth %d (eccentricity of the root)\n" depth;

  (* 2. Broadcast: the root's value reaches everyone over tree edges. *)
  let values, stats = Prim.broadcast g ~parent ~root:0 ~value:4242 in
  assert (Array.for_all (fun v -> v = 4242) values);
  show "broadcast" stats;

  (* 3. Subtree aggregation (DESCENDANT-SUM-PROBLEM): every node learns the
     size of its own subtree. *)
  let sizes, stats = Prim.subtree_agg g ~parent ~op:Prim.Sum ~values:(Array.make n 1) in
  assert (sizes.(0) = n);
  show "subtree-sum" stats;

  (* 4. Part-wise aggregation, the paper's workhorse (Proposition 4): one
     pipelined upcast/downcast over the BFS tree, O(depth + #parts) rounds.
     Parts here are the 16 grid columns; each learns its minimum value. *)
  let parts = Array.init n (fun v -> v mod 16) in
  let values = Array.init n (fun v -> (v * 7919) mod 1000) in
  let answers, stats = Prim.partwise g ~parent ~op:Prim.Min ~parts ~values in
  show "partwise-min (k=16)" stats;
  Printf.printf "      %d parts, rounds/(depth+k) = %.2f\n" 16
    (float_of_int stats.Engine.rounds /. float_of_int (depth + 16));
  (* Verify against a centralized reduction. *)
  let expected = Array.make 16 max_int in
  Array.iteri (fun v p -> expected.(p) <- min expected.(p) values.(v)) parts;
  Array.iteri (fun v a -> assert (a = expected.(parts.(v)))) answers;

  (* 5. The paper's Section-5.2 subroutines, executed end to end from raw
     local data (parent pointers, depths, rotations): Phase 1 by fragment
     merging (Lemma 11), face weights (Lemma 12) and the Phase-3 separator
     when some face is balanced (Lemma 5). *)
  let emb_tri = Gen.stacked_triangulation ~seed:5 ~n:120 () in
  let gt = Embedded.graph emb_tri in
  let root = Embedded.outer emb_tri in
  let parent = Repro_tree.Spanning.bfs gt ~root in
  let bfs_depth =
    let d = Algo.bfs_dist gt root in
    Array.map (fun x -> x) d
  in
  let rot_orders =
    Array.init (Graph.n gt) (Rotation.order (Embedded.rot emb_tri))
  in
  (match
     Composed.separator_phase3 gt ~rot_orders ~parent ~depth:bfs_depth ~root
   with
  | Some ((u, v), marked), stats ->
    let size = Array.fold_left (fun a m -> if m then a + 1 else a) 0 marked in
    Printf.printf
      "\nexecuted separator (Phases 1-3, Lemmas 11/12/5) on %s:\n"
      (Embedded.name emb_tri);
    Printf.printf
      "  fundamental edge (%d,%d); |S| = %d; measured rounds = %d, messages = %d\n"
      u v size stats.Composed.rounds stats.Composed.messages
  | None, _ -> print_endline "\n(no balanced face — charged phases 4/5 apply)");

  (* 6. The collective layer the composed subroutines are built on: one ctx
     per communication tree, and k scalar collectives batched into a single
     pipelined O(depth + k)-round engine run. *)
  let ctx = Collective.create gt ~parent ~root in
  let k = 8 in
  let slots = Array.init k (fun i -> ((i * 37) mod Graph.n gt, 100 + i)) in
  let learned = Collective.learn_batch ctx slots in
  Array.iteri (fun i (_, x) -> assert (learned.(i) = x)) slots;
  let t = Collective.tally ctx in
  Printf.printf
    "\ncollective layer: %d scalar learns in %d engine run (%d rounds);\n" k
    t.Collective.engine_runs t.Collective.rounds;
  Printf.printf "  serial cost would be 2k = %d runs of ~depth rounds each\n"
    (2 * k);

  (* 7. The charged model: what the deterministic-shortcut black box of the
     paper costs for the same operation. *)
  let d = Algo.diameter g in
  let rounds = Rounds.create ~n ~d () in
  Rounds.charge_aggregate rounds "partwise-min";
  Printf.printf
    "\ncharged cost of one part-wise aggregation at D=%d: %.0f rounds\n" d
    (Rounds.total rounds);
  Printf.printf
    "(the executed pipelined version above used %d — the shortcut bound is\n"
    stats.Engine.rounds;
  Printf.printf " a worst-case guarantee over adversarial partitions)\n"
