open Repro_graph
open Repro_embedding
open Repro_core

let qtest = QCheck_alcotest.to_alcotest

let test_build_grid () =
  let emb = Gen.grid_diag ~seed:5 ~rows:12 ~cols:12 () in
  let d = Decomposition.build ~piece_target:15 emb in
  Alcotest.(check bool) "structurally valid" true
    (Decomposition.check emb ~piece_target:15 d);
  Alcotest.(check bool) "has several pieces" true
    (List.length d.Decomposition.pieces > 3)

let test_build_tree_input () =
  let emb = Gen.random_tree ~seed:9 ~n:80 () in
  let d = Decomposition.build ~piece_target:10 emb in
  Alcotest.(check bool) "valid on trees" true
    (Decomposition.check emb ~piece_target:10 d)

let test_small_graph_single_piece () =
  let emb = Gen.cycle 8 in
  let d = Decomposition.build ~piece_target:20 emb in
  Alcotest.(check int) "one piece" 1 (List.length d.Decomposition.pieces);
  Alcotest.(check int) "no separators" 0 d.Decomposition.separator_count

let test_levels_logarithmic () =
  let emb = Gen.stacked_triangulation ~seed:3 ~n:500 () in
  let d = Decomposition.build ~piece_target:10 emb in
  Alcotest.(check bool) "valid" true (Decomposition.check emb ~piece_target:10 d);
  (* Sizes shrink by >= 1/3 per level: depth <= log_{3/2} n + slack. *)
  let bound = int_of_float (log 500.0 /. log 1.5) + 4 in
  Alcotest.(check bool)
    (Printf.sprintf "levels %d <= %d" d.Decomposition.levels bound)
    true
    (d.Decomposition.levels <= bound)

let test_exact_mis_small () =
  (* C5: maximum independent set has exactly 2 vertices. *)
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let mis = Decomposition.exact_mis g (Array.make 5 true) in
  Alcotest.(check int) "C5 MIS" 2 (List.length mis);
  Alcotest.(check bool) "independent" true (Decomposition.is_independent g mis);
  (* K4: exactly 1. *)
  let k4 = Graph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  Alcotest.(check int) "K4 MIS" 1
    (List.length (Decomposition.exact_mis k4 (Array.make 4 true)))

let test_independent_set_application () =
  let emb = Gen.grid ~rows:10 ~cols:10 in
  let g = Embedded.graph emb in
  let d = Decomposition.build ~piece_target:30 emb in
  let mis = Decomposition.independent_set emb d in
  Alcotest.(check bool) "independent in G" true (Decomposition.is_independent g mis);
  (* The grid has an independent set of n/2 = 50; with piece target 30 the
     separator loss leaves comfortably more than n/4 of it. *)
  Alcotest.(check bool)
    (Printf.sprintf "size %d >= n/4" (List.length mis))
    true
    (List.length mis >= 25)

let test_bounded_diameter_grid () =
  let emb = Gen.grid_diag ~seed:4 ~rows:12 ~cols:12 () in
  let t = Decomposition.bounded_diameter ~diameter_target:6 emb in
  Alcotest.(check bool) "valid BDD" true
    (Decomposition.check_bounded_diameter emb ~diameter_target:6 t);
  Alcotest.(check bool) "several pieces" true
    (List.length t.Decomposition.pieces > 2)

let test_bounded_diameter_path () =
  (* A path of 40 nodes with target 5: pieces of <= 6 nodes. *)
  let emb = Gen.path 40 in
  let t = Decomposition.bounded_diameter ~diameter_target:5 emb in
  Alcotest.(check bool) "valid" true
    (Decomposition.check_bounded_diameter emb ~diameter_target:5 t);
  List.iter
    (fun p -> Alcotest.(check bool) "piece small" true (List.length p <= 6))
    t.Decomposition.pieces

let test_bounded_diameter_already_small () =
  let emb = Gen.wheel 20 in
  (* Wheel has diameter 2. *)
  let t = Decomposition.bounded_diameter ~diameter_target:4 emb in
  Alcotest.(check int) "one piece" 1 (List.length t.Decomposition.pieces);
  Alcotest.(check int) "no separator" 0 t.Decomposition.separator_count

let prop_bounded_diameter_valid =
  QCheck.Test.make ~name:"BDD valid across instances" ~count:15
    QCheck.(triple (int_range 20 150) (int_range 3 10) (int_bound 10000))
    (fun (n, target, seed) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let t = Decomposition.bounded_diameter ~diameter_target:target emb in
      Decomposition.check_bounded_diameter emb ~diameter_target:target t)

let prop_decomposition_valid =
  QCheck.Test.make ~name:"decomposition valid across families" ~count:30
    QCheck.(triple (int_range 0 6) (int_range 20 200) (int_bound 10000))
    (fun (which, n, seed) ->
      let family = List.nth Gen.family_names which in
      let emb = Gen.by_family ~seed family ~n in
      let target = 8 + (seed mod 20) in
      let d = Decomposition.build ~piece_target:target emb in
      Decomposition.check emb ~piece_target:target d)

let prop_mis_always_independent =
  QCheck.Test.make ~name:"divide-and-conquer MIS independent" ~count:15
    QCheck.(pair (int_range 20 120) (int_bound 10000))
    (fun (n, seed) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let g = Embedded.graph emb in
      let d = Decomposition.build ~piece_target:14 emb in
      let mis = Decomposition.independent_set emb d in
      Decomposition.is_independent g mis && mis <> [])

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "grid" `Quick test_build_grid;
        Alcotest.test_case "tree input" `Quick test_build_tree_input;
        Alcotest.test_case "single piece" `Quick test_small_graph_single_piece;
        Alcotest.test_case "levels logarithmic" `Quick test_levels_logarithmic;
        Alcotest.test_case "exact MIS" `Quick test_exact_mis_small;
        Alcotest.test_case "MIS application" `Quick test_independent_set_application;
        Alcotest.test_case "BDD grid" `Quick test_bounded_diameter_grid;
        Alcotest.test_case "BDD path" `Quick test_bounded_diameter_path;
        Alcotest.test_case "BDD already small" `Quick
          test_bounded_diameter_already_small;
        qtest prop_bounded_diameter_valid;
        qtest prop_decomposition_valid;
        qtest prop_mis_always_independent;
    ]
