open Repro_util

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let test_rng_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in range" true (x >= -5 && x <= 5)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = Array.init 20 (fun _ -> Rng.int a 1000000) in
  let ys = Array.init 20 (fun _ -> Rng.int b 1000000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

(* ------------------------------------------------------------------ *)
(* Union_find                                                          *)
(* ------------------------------------------------------------------ *)

let test_uf_basic () =
  let uf = Union_find.create 10 in
  Alcotest.(check int) "initial components" 10 (Union_find.components uf);
  Alcotest.(check bool) "union new" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union dup" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  Alcotest.(check int) "size" 2 (Union_find.component_size uf 0);
  Alcotest.(check int) "components" 9 (Union_find.components uf)

let test_uf_chain () =
  let n = 1000 in
  let uf = Union_find.create n in
  for i = 0 to n - 2 do
    ignore (Union_find.union uf i (i + 1))
  done;
  Alcotest.(check int) "one component" 1 (Union_find.components uf);
  Alcotest.(check int) "full size" n (Union_find.component_size uf 500);
  Alcotest.(check bool) "ends joined" true (Union_find.same uf 0 (n - 1))

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)
(* ------------------------------------------------------------------ *)

let test_pqueue_sorts () =
  let q = Pqueue.create () in
  let rng = Rng.create 5 in
  let xs = Array.init 200 (fun _ -> Rng.int rng 1000) in
  Array.iter (fun x -> Pqueue.push q x x) xs;
  let out = ref [] in
  let rec drain () =
    match Pqueue.pop_min q with
    | None -> ()
    | Some (k, _) ->
      out := k :: !out;
      drain ()
  in
  drain ();
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  Alcotest.(check (list int)) "heap sort" (Array.to_list sorted) (List.rev !out)

let test_pqueue_empty () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop_min q = None)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_mean_median () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean a);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Stats.median a);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile a 0.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile a 100.0)

let test_stats_slope () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  let y = [| 3.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "slope" 2.0 (Stats.linear_slope ~x ~y)

let test_stats_loglog () =
  (* y = x^2 has log-log slope 2. *)
  let x = [| 2.0; 4.0; 8.0; 16.0 |] in
  let y = Array.map (fun v -> v *. v) x in
  Alcotest.(check (float 1e-9)) "exponent" 2.0 (Stats.loglog_slope ~x ~y)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_renders () =
  let t = Table.create ~title:"demo" [ "a"; "bb" ] in
  Table.add_row t [ "1"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 7 = "== demo")

let test_table_arity () =
  let t = Table.create ~title:"demo" [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong arity")
    (fun () -> Table.add_row t [ "1" ])

(* Property: percentile is monotone in p. *)
let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 30) (float_bound_exclusive 1000.0))
              (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (xs, (p1, p2)) ->
      let a = Array.of_list xs in
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.percentile a lo <= Stats.percentile a hi +. 1e-9)

let prop_union_find_transitive =
  QCheck.Test.make ~name:"union-find transitivity" ~count:200
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      (* find is idempotent and consistent with same *)
      List.for_all
        (fun (a, b) ->
          Union_find.same uf a b
          = (Union_find.find uf a = Union_find.find uf b))
        pairs)

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
        Alcotest.test_case "rng range" `Quick test_rng_range;
        Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "rng split" `Quick test_rng_split_independent;
        Alcotest.test_case "union-find basic" `Quick test_uf_basic;
        Alcotest.test_case "union-find chain" `Quick test_uf_chain;
        Alcotest.test_case "pqueue sorts" `Quick test_pqueue_sorts;
        Alcotest.test_case "pqueue empty" `Quick test_pqueue_empty;
        Alcotest.test_case "stats mean/median" `Quick test_stats_mean_median;
        Alcotest.test_case "stats slope" `Quick test_stats_slope;
        Alcotest.test_case "stats loglog" `Quick test_stats_loglog;
        Alcotest.test_case "table renders" `Quick test_table_renders;
        Alcotest.test_case "table arity" `Quick test_table_arity;
        qtest prop_percentile_monotone;
        qtest prop_union_find_transitive;
    ]
