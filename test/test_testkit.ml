(* The testkit tested: spec round-trips, registry discipline, suite
   derivation, determinism of the randomness sources (satellite d), the
   injected-bug drill (the fuzzer must catch, shrink and replay a
   deliberately broken oracle), the grid round-scaling regression
   (satellite b: charged separator/DFS rounds track the diameter, not n),
   and the heavyweight end-to-end oracles (Theorem 1, Theorem 2, pool
   parallelism) as fuzz properties. *)

open Repro_graph
open Repro_embedding
open Repro_tree
open Repro_core
open Repro_congest
open Repro_testkit

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Specs: the repro currency must round-trip exactly.                  *)
(* ------------------------------------------------------------------ *)

let test_spec_roundtrip () =
  List.iter
    (fun family ->
      List.iter
        (fun spanning ->
          let spec =
            Instance.
              {
                family;
                n = max (Instance.min_size family) 9;
                seed = 12345;
                spanning;
              }
          in
          let s = Instance.to_string spec in
          Alcotest.(check bool)
            (Printf.sprintf "%s parses back" s)
            true
            (Instance.of_string s = spec))
        [ Spanning.Bfs; Spanning.Dfs; Spanning.Random 3 ])
    Instance.families;
  Alcotest.check_raises "malformed spec rejected"
    (Failure "Instance.of_string: malformed spec nonsense") (fun () ->
      ignore (Instance.of_string "nonsense"))

let test_instance_deterministic () =
  let spec =
    Instance.{ family = "stacked"; n = 40; seed = 7; spanning = Spanning.Random 2 }
  in
  let a = Instance.build spec and b = Instance.build spec in
  Alcotest.(check (list (pair int int)))
    "same edges"
    (Graph.edges (Embedded.graph a.Instance.emb))
    (Graph.edges (Embedded.graph b.Instance.emb));
  let n = Embedded.n a.Instance.emb in
  for v = 0 to n - 1 do
    Alcotest.(check int) "same tree"
      (Rooted.parent (Config.tree a.Instance.config) v)
      (Rooted.parent (Config.tree b.Instance.config) v)
  done

(* ------------------------------------------------------------------ *)
(* Registry and suite-registration discipline (satellite c).           *)
(* ------------------------------------------------------------------ *)

let test_registry_names () =
  Alcotest.(check (list string))
    "built-ins in registration order"
    [
      "graph"; "engine"; "orders"; "collective"; "faces"; "pipeline";
      "separator"; "join"; "dfs"; "forest"; "pool"; "backend"; "screen";
    ]
    (Oracle.names ());
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (o.Oracle.name ^ " names its lemma/theorem")
        true
        (String.length o.Oracle.guards > 0))
    (Oracle.all ())

let test_registry_duplicate_rejected () =
  Alcotest.check_raises "re-registering engine" (Oracle.Duplicate_oracle "engine")
    (fun () ->
      Oracle.register
        { Oracle.name = "engine"; guards = ""; run = (fun _ -> assert false) })

let test_registry_unknown_oracle () =
  match Oracle.find "no-such-oracle" with
  | _ -> Alcotest.fail "unknown oracle accepted"
  | exception Failure msg ->
    Alcotest.(check bool) "error lists known names" true (contains msg "engine")

let test_suite_derivation () =
  Alcotest.(check string) "dune exe prefix stripped" "collective"
    (Suite.derive "Dune__exe__Test_collective");
  Alcotest.(check string) "no test_ prefix" "engine-equiv"
    (Suite.derive "Engine_equiv");
  Alcotest.(check string) "this module" "testkit" (Suite.derive "Test_testkit");
  match Suite.make __MODULE__ [] with
  | [ (name, []) ] -> Alcotest.(check string) "make uses derived name" "testkit" name
  | _ -> Alcotest.fail "make did not produce one suite"

let test_suite_duplicate_rejected () =
  let s = Suite.make "Test_alpha" [] in
  Alcotest.(check int) "combine flattens" 2
    (List.length (Suite.combine [ s; Suite.make "Test_beta" [] ]));
  Alcotest.check_raises "two modules deriving one name"
    (Suite.Duplicate_suite "alpha") (fun () ->
      ignore (Suite.combine [ s; Suite.make "Alpha" [] ]))

(* ------------------------------------------------------------------ *)
(* Satellite d: seed stability of every randomness source.             *)
(* ------------------------------------------------------------------ *)

let test_rng_seed_stability () =
  let stream rng = Array.init 200 (fun _ -> Repro_util.Rng.int rng 1_000_000) in
  let a = Repro_util.Rng.create 42 and b = Repro_util.Rng.create 42 in
  Alcotest.(check (array int)) "same seed, same stream" (stream a) (stream b);
  (* copy: both continuations replay identically from the fork point *)
  let c = Repro_util.Rng.copy a in
  Alcotest.(check (array int)) "copy continues the stream" (stream a) (stream c);
  (* split: a pure function of the parent state at the split point *)
  let p1 = Repro_util.Rng.create 7 and p2 = Repro_util.Rng.create 7 in
  ignore (stream p1);
  ignore (stream p2);
  Alcotest.(check (array int)) "split is deterministic"
    (stream (Repro_util.Rng.split p1))
    (stream (Repro_util.Rng.split p2))

let test_pool_map_matches_sequential () =
  let input = Array.init 300 (fun i -> i) in
  let f x = (x * x) + (x mod 7) in
  let seq = Array.map f input in
  Repro_util.Pool.with_pool ~seq_grain:0 ~jobs:4 (fun pool ->
      Alcotest.(check bool) "batch goes parallel" true
        (Repro_util.Pool.runs_parallel ~cost:1_000_000 pool (Array.length input));
      Alcotest.(check (array int)) "parallel map = Array.map" seq
        (Repro_util.Pool.map ~cost:1_000_000 pool f input))

let test_pool_partition_bit_identical () =
  (* Theorem 1 parallelism on a fixed instance: the per-part separator
     batch must not depend on the domain count, down to the charged
     totals.  (The "pool" oracle checks the same on fuzzed instances.) *)
  let emb = Gen.grid ~rows:8 ~cols:8 in
  let halves =
    [
      List.filter (fun v -> v mod 8 < 4) (List.init 64 Fun.id);
      List.filter (fun v -> v mod 8 >= 4) (List.init 64 Fun.id);
    ]
  in
  let run pool =
    let ledger = Rounds.create ~n:64 ~d:14 () in
    let results = Separator.find_partition ~rounds:ledger ?pool emb ~parts:halves in
    ( List.map
        (fun (_, r) ->
          (r.Separator.separator, r.Separator.endpoints, r.Separator.phase))
        results,
      Rounds.total ledger )
  in
  let serial_results, serial_total = run None in
  Repro_util.Pool.with_pool ~seq_grain:0 ~jobs:3 (fun pool ->
      let par_results, par_total = run (Some pool) in
      List.iteri
        (fun i ((s1, e1, p1), (s2, e2, p2)) ->
          Alcotest.(check (list int))
            (Printf.sprintf "part %d separator" i)
            s1 s2;
          Alcotest.(check (option (pair int int)))
            (Printf.sprintf "part %d endpoints" i)
            e1 e2;
          Alcotest.(check string) (Printf.sprintf "part %d phase" i) p1 p2)
        (List.combine serial_results par_results);
      Alcotest.(check (float 0.0)) "charged totals identical" serial_total
        par_total)

(* ------------------------------------------------------------------ *)
(* Satellite b: charged rounds track the diameter, not n.              *)
(* ------------------------------------------------------------------ *)

let log2ceil n =
  int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.0))

(* PA units = charged total / pa_cost, i.e. the diameter-normalized cost:
   for an Õ(D)-round pipeline this is polylog(n), independent of n. *)
let grid_cost rows =
  let emb = Gen.grid ~rows ~cols:rows in
  let g = Embedded.graph emb in
  let root = Embedded.outer emb in
  let parent = Spanning.bfs g ~root in
  let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
  let cfg = Config.of_parts ~graph:g ~rot:(Embedded.rot emb) ~tree () in
  let n = Graph.n g in
  let d = Algo.diameter g in
  let sep = Rounds.create ~n ~d () in
  ignore (Separator.find ~rounds:sep cfg);
  let dfs = Rounds.create ~n ~d () in
  ignore (Dfs.run ~rounds:dfs emb ~root);
  let units ledger = Rounds.total ledger /. Rounds.pa_cost ledger in
  (log2ceil n, units sep, Rounds.invocations sep, units dfs,
   Rounds.invocations dfs)

let test_grid_round_scaling () =
  (* Observed on the seed implementation (scratch calibration):
       rows  5: sep 40.0/lg²=1.6   dfs 242/lg³=1.9
       rows  8: sep 165/lg²=4.6    dfs 664/lg³=3.1
       rows 20: sep 351/lg²=4.3    dfs 2579/lg³=3.5
     An O(n)-round regression in either pipeline multiplies the larger
     grids' normalized cost by Θ(n / (D·polylog)) and blows through both
     the absolute pins and the growth pin below. *)
  let measured = List.map (fun r -> (r, grid_cost r)) [ 5; 8; 14; 20 ] in
  List.iter
    (fun (rows, (lg, sep_u, sep_inv, dfs_u, dfs_inv)) ->
      let l2 = float_of_int (lg * lg) and l3 = float_of_int (lg * lg * lg) in
      Alcotest.(check bool)
        (Printf.sprintf "rows=%d separator %.0f PA units <= 6 lg^2" rows sep_u)
        true (sep_u <= 6.0 *. l2);
      Alcotest.(check bool)
        (Printf.sprintf "rows=%d separator invocations %d <= 24" rows sep_inv)
        true (sep_inv <= 24);
      Alcotest.(check bool)
        (Printf.sprintf "rows=%d dfs %.0f PA units <= 5 lg^3" rows dfs_u)
        true (dfs_u <= 5.0 *. l3);
      Alcotest.(check bool)
        (Printf.sprintf "rows=%d dfs invocations %d <= 2 lg^2 + 16" rows dfs_inv)
        true (dfs_inv <= (2 * lg * lg) + 16))
    measured;
  (* Growth across a 6.25x jump in n (rows 8 -> 20): normalized cost may
     pick up at most a small polylog factor. *)
  let _, (_, sep8, _, dfs8, _) = List.nth measured 1 in
  let _, (_, sep20, _, dfs20, _) = List.nth measured 3 in
  Alcotest.(check bool)
    (Printf.sprintf "separator PA units grow %.2fx <= 2.5x over 6.25x n"
       (sep20 /. sep8))
    true
    (sep20 <= 2.5 *. sep8);
  Alcotest.(check bool)
    (Printf.sprintf "dfs PA units grow %.2fx <= 5x over 6.25x n" (dfs20 /. dfs8))
    true
    (dfs20 <= 5.0 *. dfs8)

(* ------------------------------------------------------------------ *)
(* The Lemma 11 brute-force oracle on fixed embeddings.                *)
(* ------------------------------------------------------------------ *)

let test_facewalk_matches_rooted () =
  (* Deterministic pin of what the "orders" oracle fuzzes: the face-walk
     orders equal Rooted's recursive precomputation, across spanning
     kinds.  Both sides share no code. *)
  List.iter
    (fun (emb, spanning) ->
      let g = Embedded.graph emb in
      let root = Embedded.outer emb in
      let parent = Spanning.make spanning g ~root in
      let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
      let pl, pr = Facewalk.orders ~rot:(Embedded.rot emb) ~parent ~root () in
      for v = 0 to Graph.n g - 1 do
        Alcotest.(check int)
          (Printf.sprintf "%s pi_left(%d)" (Embedded.name emb) v)
          (Rooted.pi_left tree v) pl.(v);
        Alcotest.(check int)
          (Printf.sprintf "%s pi_right(%d)" (Embedded.name emb) v)
          (Rooted.pi_right tree v) pr.(v)
      done)
    [
      (Gen.path 12, Spanning.Bfs);
      (Gen.grid ~rows:5 ~cols:6, Spanning.Dfs);
      (Gen.wheel 9, Spanning.Random 4);
      (Gen.stacked_triangulation ~seed:11 ~n:40 (), Spanning.Random 2);
    ]

let test_check_all_aggregates_registry () =
  let spec =
    Instance.{ family = "stacked"; n = 28; seed = 9; spanning = Spanning.Bfs }
  in
  let report = Testkit.check_spec spec in
  Alcotest.(check bool) "all oracles pass" true report.Testkit.ok;
  Alcotest.(check int) "one report per registered oracle"
    (List.length (Oracle.all ()))
    (List.length report.Testkit.results);
  Alcotest.(check bool) "checks counted" true (report.Testkit.checks > 50)

(* ------------------------------------------------------------------ *)
(* The injected-bug drill: catch, shrink, replay.                      *)
(* ------------------------------------------------------------------ *)

let test_sabotage_caught_shrunk_replayed () =
  let threshold = 24 in
  let sab = Oracle.sabotage ~threshold in
  let outcome = Runner.fuzz ~oracles:[ sab ] ~max_size:64 ~seed:5 ~count:60 () in
  match outcome.Runner.failures with
  | [] -> Alcotest.fail "injected bug not caught"
  | f :: _ ->
    Alcotest.(check bool) "stops at first failure" true
      (outcome.Runner.cases < 60);
    Alcotest.(check bool) "shrunk never grows" true
      (f.Runner.spec.Instance.n <= f.Runner.original.Instance.n);
    Alcotest.(check bool)
      (Printf.sprintf "shrunk to n = %d, near threshold %d"
         f.Runner.spec.Instance.n threshold)
      true
      (f.Runner.spec.Instance.n < threshold + 16);
    (* the minimal counterexample replays from its spec line alone *)
    let replayed = Runner.failing ~oracles:[ sab ] f.Runner.spec in
    Alcotest.(check bool) "replay still fails" true (replayed <> []);
    let line = Runner.repro_line f in
    Alcotest.(check bool) "repro line replays the shrunk spec" true
      (contains line "--replay"
      && contains line (Instance.to_string f.Runner.spec));
    let json = Runner.artifact_json ~seed:5 f in
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "artifact records %s" needle)
          true (contains json needle))
      [
        Instance.to_string f.Runner.spec;
        Instance.to_string f.Runner.original;
        "\"replay\"";
        "sabotage";
      ]

let test_shrink_is_minimal_on_sabotage () =
  (* Greedy descent must reach the family floor when the bug fires on
     every size above it. *)
  let sab = Oracle.sabotage ~threshold:1 in
  let spec =
    Instance.{ family = "stacked"; n = 48; seed = 3; spanning = Spanning.Dfs }
  in
  let shrunk, steps = Runner.shrink ~oracles:[ sab ] spec in
  Alcotest.(check int) "floor reached" (Instance.min_size "stacked")
    shrunk.Instance.n;
  Alcotest.(check bool) "spanning simplified" true
    (shrunk.Instance.spanning = Spanning.Bfs);
  Alcotest.(check bool) "in a few steps" true (steps > 0 && steps <= 60)

(* ------------------------------------------------------------------ *)
(* End-to-end oracles as fuzz properties.                              *)
(* ------------------------------------------------------------------ *)

let suites =
  Suite.make __MODULE__
    [
      Alcotest.test_case "spec round-trip" `Quick test_spec_roundtrip;
      Alcotest.test_case "instance build deterministic" `Quick
        test_instance_deterministic;
      Alcotest.test_case "registry names + guards" `Quick test_registry_names;
      Alcotest.test_case "duplicate oracle rejected" `Quick
        test_registry_duplicate_rejected;
      Alcotest.test_case "unknown oracle lists names" `Quick
        test_registry_unknown_oracle;
      Alcotest.test_case "suite names derived" `Quick test_suite_derivation;
      Alcotest.test_case "duplicate suite rejected" `Quick
        test_suite_duplicate_rejected;
      Alcotest.test_case "rng seed stability" `Quick test_rng_seed_stability;
      Alcotest.test_case "pool map = sequential map" `Quick
        test_pool_map_matches_sequential;
      Alcotest.test_case "pool partition bit-identical" `Quick
        test_pool_partition_bit_identical;
      Alcotest.test_case "grid round scaling (charged ledger)" `Quick
        test_grid_round_scaling;
      Alcotest.test_case "face walk = Rooted orders (Lemma 11)" `Quick
        test_facewalk_matches_rooted;
      Alcotest.test_case "check_all covers the registry" `Quick
        test_check_all_aggregates_registry;
      Alcotest.test_case "injected bug: caught, shrunk, replayed" `Quick
        test_sabotage_caught_shrunk_replayed;
      Alcotest.test_case "shrink reaches the family floor" `Quick
        test_shrink_is_minimal_on_sabotage;
      Suite.property ~count:25 ~max_size:64 ~seed:404 ~oracles:[ "graph" ]
        "flat CSR store = reference adjacency-list build";
      Suite.property ~count:25 ~max_size:56 ~seed:401 ~oracles:[ "separator" ]
        "Theorem 1: valid balanced separators, Õ(D) charged rounds";
      Suite.property ~count:25 ~max_size:56 ~seed:402 ~oracles:[ "dfs" ]
        "Theorem 2: DFS tree verified, Õ(D) charged rounds";
      Suite.property ~count:20 ~max_size:48 ~seed:403 ~oracles:[ "pool" ]
        "pool jobs=1 = jobs=N on partition batches";
    ]
