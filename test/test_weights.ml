open Repro_graph
open Repro_embedding
open Repro_tree
open Repro_core

let qtest = QCheck_alcotest.to_alcotest

(* The core experiment-E6 property: Definition 2 equals its proven meaning
   (Lemmas 3/4), i.e. the exact count from the reference interior. *)
let weights_exact emb spanning =
  let cfg = Config.of_embedded ~spanning emb in
  List.for_all
    (fun (u, v) -> Weights.weight cfg ~u ~v = Weights.count_reference cfg ~u ~v)
    (Config.fundamental_edges cfg)

let test_weights_grid () =
  List.iter
    (fun sp ->
      Alcotest.(check bool)
        (Spanning.kind_name sp) true
        (weights_exact (Gen.grid ~rows:6 ~cols:6) sp))
    [ Spanning.Bfs; Spanning.Dfs; Spanning.Random 7 ]

let test_weights_wheel_fan () =
  List.iter
    (fun emb ->
      List.iter
        (fun sp ->
          Alcotest.(check bool)
            (Embedded.name emb ^ "/" ^ Spanning.kind_name sp)
            true (weights_exact emb sp))
        [ Spanning.Bfs; Spanning.Dfs; Spanning.Random 3 ])
    [ Gen.wheel 12; Gen.fan 11; Gen.cycle 9 ]

let prop_weights_exact_everywhere =
  QCheck.Test.make ~name:"Definition 2 = Lemma 3/4 count (E6)" ~count:80
    QCheck.(triple (int_range 0 3) (int_range 8 80) (int_bound 100000))
    (fun (which, n, seed) ->
      let emb =
        match which with
        | 0 -> Gen.grid_diag ~seed ~rows:(max 2 (n / 6)) ~cols:6 ()
        | 1 -> Gen.stacked_triangulation ~seed ~n ()
        | 2 -> Gen.thin ~seed ~keep:0.6 (Gen.stacked_triangulation ~seed ~n ())
        | _ -> Gen.grid ~rows:(max 2 (n / 7)) ~cols:7
      in
      let spanning =
        match seed mod 3 with
        | 0 -> Spanning.Bfs
        | 1 -> Spanning.Dfs
        | _ -> Spanning.Random seed
      in
      weights_exact emb spanning)

(* ω bounds the interior size from above (what Lemma 5 uses). *)
let prop_weight_bounds_interior =
  QCheck.Test.make ~name:"interior <= weight <= interior + border" ~count:40
    QCheck.(pair (int_range 8 50) (int_bound 10000))
    (fun (n, seed) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let cfg = Config.of_embedded ~spanning:(Spanning.Random seed) emb in
      List.for_all
        (fun (u, v) ->
          let w = Weights.weight cfg ~u ~v in
          let interior = List.length (Faces.interior_reference cfg ~u ~v) in
          let border = List.length (Faces.border cfg ~u ~v) in
          interior <= w && w <= interior + border)
        (Config.fundamental_edges cfg))

(* Lemma 5 soundness: weight in range implies the border path is balanced. *)
let prop_lemma5_soundness =
  QCheck.Test.make ~name:"weight in [n/3,2n/3] => border path balanced" ~count:60
    QCheck.(pair (int_range 8 120) (int_bound 100000))
    (fun (n, seed) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let spanning =
        match seed mod 3 with
        | 0 -> Spanning.Bfs
        | 1 -> Spanning.Dfs
        | _ -> Spanning.Random seed
      in
      let cfg = Config.of_embedded ~spanning emb in
      let tree = Config.tree cfg in
      let nn = Config.n cfg in
      List.for_all
        (fun ((u, v), w) ->
          if 3 * w >= nn && 3 * w <= 2 * nn then
            Check.balanced cfg (Rooted.path tree u v)
          else true)
        (Weights.all_weights cfg))

let test_outside_split_partition () =
  let cfg =
    Config.of_embedded ~spanning:Spanning.Bfs (Gen.grid_diag ~seed:3 ~rows:5 ~cols:5 ())
  in
  let g = Config.graph cfg in
  List.iter
    (fun (u, v) ->
      let fl, fr = Weights.outside_split cfg ~u ~v in
      let interior = Faces.interior_reference cfg ~u ~v in
      let border = Faces.border cfg ~u ~v in
      Alcotest.(check int) "F_l + F_r + face = n" (Graph.n g)
        (List.length fl + List.length fr + List.length interior + List.length border);
      (* Disjointness *)
      let seen = Hashtbl.create 32 in
      List.iter
        (fun z ->
          Alcotest.(check bool) "disjoint" false (Hashtbl.mem seen z);
          Hashtbl.replace seen z ())
        (fl @ fr @ interior @ border))
    (Config.fundamental_edges cfg)

let test_p_term_matches_subtree_count () =
  let cfg =
    Config.of_embedded ~spanning:Spanning.Dfs (Gen.stacked_triangulation ~seed:9 ~n:40 ())
  in
  let tree = Config.tree cfg in
  List.iter
    (fun (u, v) ->
      let case = Faces.classify cfg ~u ~v in
      let interior = Faces.interior_reference cfg ~u ~v in
      let count_in_subtree x =
        List.length
          (List.filter (fun z -> Rooted.is_ancestor tree ~anc:x ~desc:z && z <> x) interior)
      in
      (* p_{F_e}(v) counts the strict-subtree members of the face at v. *)
      Alcotest.(check int)
        (Printf.sprintf "p(v) e=(%d,%d)" u v)
        (count_in_subtree v)
        (Weights.p_term cfg ~u ~v ~case v))
    (Config.fundamental_edges cfg)

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "exact on grids" `Quick test_weights_grid;
        Alcotest.test_case "exact on wheel/fan/cycle" `Quick test_weights_wheel_fan;
        Alcotest.test_case "outside split partitions" `Quick
          test_outside_split_partition;
        Alcotest.test_case "p-term = subtree count" `Quick
          test_p_term_matches_subtree_count;
        qtest prop_weights_exact_everywhere;
        qtest prop_weight_bounds_interior;
        qtest prop_lemma5_soundness;
    ]
