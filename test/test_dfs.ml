open Repro_graph
open Repro_embedding
open Repro_congest
open Repro_core

let qtest = QCheck_alcotest.to_alcotest

let test_dfs_families () =
  List.iter
    (fun emb ->
      let root = Embedded.outer emb in
      let r = Dfs.run emb ~root in
      Alcotest.(check bool) (Embedded.name emb ^ " is DFS tree") true
        (Dfs.verify emb ~root r))
    [
      Gen.grid ~rows:8 ~cols:8;
      Gen.grid_diag ~seed:1 ~rows:7 ~cols:7 ();
      Gen.stacked_triangulation ~seed:3 ~n:120 ();
      Gen.wheel 25;
      Gen.fan 30;
      Gen.cycle 40;
      Gen.star 35;
      Gen.path 60;
      Gen.random_tree ~seed:5 ~n:70 ();
    ]

let test_dfs_root_and_depths () =
  let emb = Gen.grid_diag ~seed:2 ~rows:6 ~cols:6 () in
  let g = Embedded.graph emb in
  let r = Dfs.run emb ~root:0 in
  Alcotest.(check int) "root parent" (-1) r.Dfs.parent.(0);
  Alcotest.(check int) "root depth" 0 r.Dfs.depth.(0);
  for v = 1 to Graph.n g - 1 do
    Alcotest.(check bool) "parent is a graph edge" true
      (Graph.mem_edge g v r.Dfs.parent.(v));
    Alcotest.(check int) "depth consistent" (r.Dfs.depth.(v) - 1)
      r.Dfs.depth.(r.Dfs.parent.(v))
  done

let test_dfs_phases_logarithmic () =
  (* O(log n) phases: sizes drop by >= 1/3 each phase, so phases <=
     log_{3/2} n plus the trailing cleanup. *)
  let emb = Gen.grid_diag ~seed:7 ~rows:16 ~cols:16 () in
  let r = Dfs.run emb ~root:0 in
  Alcotest.(check bool) "valid" true (Dfs.verify emb ~root:0 r);
  let n = 256 in
  let bound = int_of_float (3.0 *. log (float_of_int n)) + 4 in
  Alcotest.(check bool)
    (Printf.sprintf "phases %d <= %d" r.Dfs.phases bound)
    true (r.Dfs.phases <= bound)

let test_dfs_largest_component_shrinks () =
  let emb = Gen.stacked_triangulation ~seed:11 ~n:300 () in
  let r = Dfs.run emb ~root:0 in
  let rec check_decay = function
    | (_, l1, _) :: ((_, l2, _) :: _ as rest) ->
      Alcotest.(check bool)
        (Printf.sprintf "largest decays %d -> %d" l1 l2)
        true
        (float_of_int l2 <= (0.75 *. float_of_int l1) +. 2.0);
      check_decay rest
    | _ -> ()
  in
  check_decay r.Dfs.phase_log

let test_dfs_nonouter_root () =
  (* Roots in the middle of the graph are fine. *)
  let emb = Gen.grid_diag ~seed:4 ~rows:7 ~cols:7 () in
  List.iter
    (fun root ->
      let r = Dfs.run emb ~root in
      Alcotest.(check bool)
        (Printf.sprintf "root=%d" root)
        true (Dfs.verify emb ~root r))
    [ 24; 10; 48 ]

let test_dfs_rounds_charged () =
  let emb = Gen.grid_diag ~seed:5 ~rows:8 ~cols:8 () in
  let g = Embedded.graph emb in
  let rounds = Rounds.create ~n:(Graph.n g) ~d:(Algo.diameter g) () in
  let r = Dfs.run ~rounds emb ~root:0 in
  Alcotest.(check bool) "valid" true (Dfs.verify emb ~root:0 r);
  Alcotest.(check bool) "rounds positive" true (Rounds.total rounds > 0.0);
  Alcotest.(check bool) "embedding charged" true
    (List.exists (fun (l, _, _) -> l = "embedding[Prop1]") (Rounds.breakdown rounds));
  Alcotest.(check bool) "batched join elections charged" true
    (List.exists (fun (l, _, _) -> l = "join-elections") (Rounds.breakdown rounds));
  Alcotest.(check bool) "amortized verify charged" true
    (List.exists (fun (l, _, _) -> l = "verify-balance") (Rounds.breakdown rounds));
  (* The batched choreography retired the per-candidate mark-path walks. *)
  Alcotest.(check int) "no mark-path walks" 0
    (Rounds.label_invocations rounds "mark-path[Lem13]")

let test_join_single_path () =
  (* Joining a separator that is a straight path through the component. *)
  let emb = Gen.path 9 in
  let g = Embedded.graph emb in
  let st = Join.create g ~root:0 in
  let members = Array.init 8 (fun i -> i + 1) in
  let separator = [ 4; 5; 6 ] in
  let iters = Join.join st ~members ~separator in
  Alcotest.(check bool) "few iterations" true (iters <= 2);
  List.iter
    (fun v ->
      Alcotest.(check bool) (Printf.sprintf "%d joined" v) true (Join.in_tree st v))
    separator;
  (* Parent chain respects the path structure. *)
  Alcotest.(check int) "node 1 parent" 0 st.Join.parent.(1)

let test_join_anchor_deepest () =
  (* The anchor must be the node with the deepest visited neighbour. *)
  let g = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ] in
  let st = Join.create g ~root:0 in
  (* Visit 0 -> 1 -> 2 manually. *)
  st.Join.parent.(1) <- 0;
  st.Join.depth.(1) <- 1;
  st.Join.parent.(2) <- 1;
  st.Join.depth.(2) <- 2;
  match Join.component_anchor st [| 3; 4; 5 |] with
  | Some (anchor, via) ->
    Alcotest.(check int) "anchor" 3 anchor;
    Alcotest.(check int) "via deepest" 2 via
  | None -> Alcotest.fail "no anchor"

let prop_dfs_always_valid =
  QCheck.Test.make ~name:"DFS valid on all families/sizes/roots" ~count:80
    QCheck.(
      triple (int_range 0 6) (pair (int_range 4 200) (int_bound 100000))
        (int_bound 1000))
    (fun (which, (n, seed), root_seed) ->
      let family = List.nth Gen.family_names which in
      let emb = Gen.by_family ~seed family ~n in
      let g = Embedded.graph emb in
      let root = root_seed mod Graph.n g in
      let r = Dfs.run emb ~root in
      Dfs.verify emb ~root r)

let prop_dfs_matches_reachability =
  QCheck.Test.make ~name:"DFS covers all vertices exactly once" ~count:40
    QCheck.(pair (int_range 4 120) (int_bound 100000))
    (fun (n, seed) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let g = Embedded.graph emb in
      let r = Dfs.run emb ~root:0 in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        if v <> 0 && r.Dfs.parent.(v) < 0 then ok := false;
        if r.Dfs.depth.(v) < 0 then ok := false
      done;
      !ok)

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "families" `Quick test_dfs_families;
        Alcotest.test_case "root and depths" `Quick test_dfs_root_and_depths;
        Alcotest.test_case "phases logarithmic" `Quick test_dfs_phases_logarithmic;
        Alcotest.test_case "components shrink" `Quick test_dfs_largest_component_shrinks;
        Alcotest.test_case "non-outer roots" `Quick test_dfs_nonouter_root;
        Alcotest.test_case "rounds charged" `Quick test_dfs_rounds_charged;
        Alcotest.test_case "join single path" `Quick test_join_single_path;
        Alcotest.test_case "join anchor deepest" `Quick test_join_anchor_deepest;
        qtest prop_dfs_always_valid;
        qtest prop_dfs_matches_reachability;
    ]
