(* The tracing subsystem: span-tree well-formedness, disabled-mode no-op,
   jobs=N determinism and the Chrome-trace/metrics JSON exporters. *)

open Repro_embedding
open Repro_congest
open Repro_core
module Trace = Repro_trace.Trace
module Json = Repro_trace.Json

let traced_dfs ?(jobs = 1) ?seed ~n () =
  let seed = Option.value ~default:1 seed in
  let emb = Gen.by_family ~seed "tgrid" ~n in
  let g = Embedded.graph emb in
  let tracer = Trace.create () in
  let rounds =
    Rounds.create ~trace:tracer ~n:(Repro_graph.Graph.n g)
      ~d:(Repro_graph.Algo.diameter g) ()
  in
  let r =
    Repro_util.Pool.with_pool ~seq_grain:0 ~jobs (fun pool ->
        Dfs.run ~rounds ~pool emb ~root:(Embedded.outer emb))
  in
  (tracer, rounds, r)

(* --- well-formedness ------------------------------------------------- *)

let rec check_span (s : Trace.span) =
  Alcotest.(check bool)
    (Printf.sprintf "span %s: self counters non-negative" s.Trace.name)
    true
    (s.Trace.self.Trace.charged >= 0.0
    && s.Trace.self.Trace.exec_rounds >= 0
    && s.Trace.self.Trace.messages >= 0
    && s.Trace.self.Trace.engine_runs >= 0
    && s.Trace.self.Trace.charges >= 0
    && s.Trace.self.Trace.pa_units >= 0
    && s.Trace.self.Trace.tasks >= 0);
  (* totals = self + sum(children totals): children never exceed the
     parent on any counter. *)
  let tot = Trace.totals s in
  let kids_charged =
    List.fold_left
      (fun acc c -> acc +. (Trace.totals c).Trace.charged)
      0.0 s.Trace.children
  in
  Alcotest.(check bool)
    (Printf.sprintf "span %s: children charged <= total" s.Trace.name)
    true
    (kids_charged <= tot.Trace.charged +. 1e-6);
  let kids_messages =
    List.fold_left
      (fun acc c -> acc + (Trace.totals c).Trace.messages)
      0 s.Trace.children
  in
  Alcotest.(check bool)
    (Printf.sprintf "span %s: children messages <= total" s.Trace.name)
    true
    (kids_messages <= tot.Trace.messages);
  List.iter check_span s.Trace.children

let test_well_formed () =
  let tracer, rounds, r = traced_dfs ~n:200 () in
  Alcotest.(check bool) "dfs valid" true (r.Dfs.phases > 0);
  (* Balanced: every enter was left. *)
  Alcotest.(check int) "stack depth back to root" 1 (Trace.depth tracer);
  check_span (Trace.root tracer);
  (* Attribution completeness: every charged round landed in some span. *)
  let tot = Trace.totals (Trace.root tracer) in
  let total = Rounds.total rounds in
  Alcotest.(check bool)
    (Printf.sprintf "charged attribution complete (%.1f vs %.1f)"
       tot.Trace.charged total)
    true
    (Float.abs (tot.Trace.charged -. total) <= 1e-6 *. Float.max 1.0 total)

let test_unbalanced_leave_rejected () =
  let t = Trace.create () in
  Alcotest.check_raises "cannot close the root"
    (Invalid_argument "Trace.leave: root span cannot be closed") (fun () ->
      Trace.leave t);
  Trace.enter t "child";
  Trace.leave t;
  Alcotest.(check int) "balanced again" 1 (Trace.depth t)

(* --- disabled mode is a no-op ---------------------------------------- *)

let test_disabled_mode_identical () =
  let emb = Gen.by_family ~seed:3 "stacked" ~n:120 in
  let g = Embedded.graph emb in
  let n = Repro_graph.Graph.n g and d = Repro_graph.Algo.diameter g in
  let run trace =
    let rounds = Rounds.create ?trace ~n ~d () in
    let r = Dfs.run ~rounds emb ~root:(Embedded.outer emb) in
    (r, rounds)
  in
  let r_off, rounds_off = run None in
  let r_on, rounds_on = run (Some (Trace.create ())) in
  Alcotest.(check (array int)) "parent identical" r_off.Dfs.parent r_on.Dfs.parent;
  Alcotest.(check (array int)) "depth identical" r_off.Dfs.depth r_on.Dfs.depth;
  Alcotest.(check int) "phases identical" r_off.Dfs.phases r_on.Dfs.phases;
  Alcotest.(check (float 0.0))
    "charged total identical" (Rounds.total rounds_off) (Rounds.total rounds_on);
  Alcotest.(check int) "invocations identical" (Rounds.invocations rounds_off)
    (Rounds.invocations rounds_on)

(* --- jobs determinism ------------------------------------------------ *)

let test_jobs_deterministic () =
  let t1, _, r1 = traced_dfs ~jobs:1 ~n:250 () in
  let t4, _, r4 = traced_dfs ~jobs:4 ~n:250 () in
  Alcotest.(check (array int)) "outputs identical" r1.Dfs.parent r4.Dfs.parent;
  Alcotest.(check string) "metrics bit-identical" (Trace.to_metrics_string t1)
    (Trace.to_metrics_string t4);
  Alcotest.(check string) "chrome trace bit-identical"
    (Trace.to_chrome_string t1) (Trace.to_chrome_string t4)

(* --- exporters ------------------------------------------------------- *)

let span_names chrome =
  match Json.member "traceEvents" chrome with
  | Some (Json.List events) ->
    List.filter_map
      (fun e ->
        match Json.member "name" e with
        | Some (Json.String s) -> Some s
        | _ -> None)
      events
  | _ -> []

let test_chrome_schema_and_roundtrip () =
  let tracer, _, _ = traced_dfs ~n:200 () in
  let chrome = Trace.to_chrome tracer in
  (* Round trip through our own printer/parser is lossless. *)
  Alcotest.(check bool) "chrome JSON round-trips" true
    (Json.equal (Json.of_string (Json.to_string chrome)) chrome);
  let metrics = Trace.to_metrics tracer in
  Alcotest.(check bool) "metrics JSON round-trips" true
    (Json.equal (Json.of_string (Json.to_string metrics)) metrics);
  (* Schema: complete events with the virtual time axis declared. *)
  (match Json.member "traceEvents" chrome with
  | Some (Json.List events) ->
    Alcotest.(check bool) "has events" true (events <> []);
    List.iter
      (fun e ->
        Alcotest.(check bool) "ph is X" true
          (Json.member "ph" e = Some (Json.String "X"));
        Alcotest.(check bool) "has ts/dur" true
          (match (Json.member "ts" e, Json.member "dur" e) with
          | Some (Json.Float _), Some (Json.Float _) -> true
          | _ -> false))
      events
  | _ -> Alcotest.fail "no traceEvents list");
  (* The spans cover the run, the DFS recursion levels and the separator
     phases the instance exercised. *)
  let names = span_names chrome in
  let mem n = List.mem n names in
  Alcotest.(check bool) "root span present" true (mem "run");
  Alcotest.(check bool) "recursion level spans present" true (mem "dfs.phase1");
  Alcotest.(check bool) "separator precompute span present" true
    (mem "sep.phase1-precompute");
  Alcotest.(check bool) "verification span present" true (mem "sep.verify")

let test_json_codec_int_float_distinct () =
  let doc =
    Json.Obj
      [
        ("i", Json.Int 3);
        ("f", Json.Float 3.0);
        ("pi", Json.Float 3.141592653589793);
        ("s", Json.String "a\"b\\c\n");
        ("l", Json.List [ Json.Null; Json.Bool true; Json.Int (-7) ]);
      ]
  in
  let doc' = Json.of_string (Json.to_string doc) in
  Alcotest.(check bool) "round trip preserves Int/Float distinction" true
    (Json.equal doc doc');
  Alcotest.(check bool) "Int 3 <> Float 3.0" false
    (Json.equal (Json.Int 3) (Json.Float 3.0))

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
      Alcotest.test_case "span tree well-formed, attribution complete" `Quick
        test_well_formed;
      Alcotest.test_case "root span cannot be closed" `Quick
        test_unbalanced_leave_rejected;
      Alcotest.test_case "tracing off is bit-identical" `Quick
        test_disabled_mode_identical;
      Alcotest.test_case "jobs=1 and jobs=4 traces bit-identical" `Quick
        test_jobs_deterministic;
      Alcotest.test_case "chrome/metrics schema and JSON round-trip" `Quick
        test_chrome_schema_and_roundtrip;
      Alcotest.test_case "json codec keeps Int and Float distinct" `Quick
        test_json_codec_int_float_distinct;
    ]
