open Repro_graph
open Repro_embedding

let qtest = QCheck_alcotest.to_alcotest

let shuffle_labels ~seed g =
  let n = Graph.n g in
  let perm = Array.init n Fun.id in
  Repro_util.Rng.shuffle_in_place (Repro_util.Rng.create seed) perm;
  Graph.of_edges ~n (List.map (fun (u, v) -> (perm.(u), perm.(v))) (Graph.edges g))

let k5 =
  Graph.of_edges ~n:5
    [ (0, 1); (0, 2); (0, 3); (0, 4); (1, 2); (1, 3); (1, 4); (2, 3); (2, 4); (3, 4) ]

let k33 =
  Graph.of_edges ~n:6
    (List.concat_map (fun i -> List.map (fun j -> (i, 3 + j)) [ 0; 1; 2 ]) [ 0; 1; 2 ])

let petersen =
  Graph.of_edges ~n:10
    ([ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ]
    @ List.init 5 (fun i -> (i, i + 5))
    @ [ (5, 7); (7, 9); (9, 6); (6, 8); (8, 5) ])

let test_biconnected_blocks () =
  (* Two triangles joined at a cut vertex: two blocks. *)
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 2) ] in
  let blocks = Planarity.biconnected_components g in
  Alcotest.(check int) "two blocks" 2 (List.length blocks);
  List.iter
    (fun b -> Alcotest.(check int) "triangle block" 3 (List.length b))
    blocks;
  (* A path: every edge its own (bridge) block. *)
  let p = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check int) "bridges" 3 (List.length (Planarity.biconnected_components p))

let test_embeds_all_families_shuffled () =
  List.iter
    (fun fam ->
      let emb = Gen.by_family ~seed:3 fam ~n:90 in
      let g = shuffle_labels ~seed:41 (Embedded.graph emb) in
      match Planarity.embed g with
      | Some rot ->
        Alcotest.(check bool) (fam ^ " euler") true
          (Rotation.is_planar_embedding g rot)
      | None -> Alcotest.failf "%s rejected" fam)
    Gen.family_names

let test_rejects_kuratowski () =
  Alcotest.(check bool) "K5" false (Planarity.is_planar k5);
  Alcotest.(check bool) "K3,3" false (Planarity.is_planar k33);
  Alcotest.(check bool) "Petersen" false (Planarity.is_planar petersen);
  (* Subdivision of K5 (subdivide edge 3-4). *)
  let k5sub =
    Graph.of_edges ~n:6
      [ (0, 1); (0, 2); (0, 3); (0, 4); (1, 2); (1, 3); (1, 4); (2, 3); (2, 4);
        (3, 5); (5, 4) ]
  in
  Alcotest.(check bool) "K5 subdivision" false (Planarity.is_planar k5sub)

let test_accepts_near_kuratowski () =
  let k5_minus =
    Graph.of_edges ~n:5
      [ (0, 1); (0, 2); (0, 3); (0, 4); (1, 2); (1, 3); (1, 4); (2, 3); (2, 4) ]
  in
  Alcotest.(check bool) "K5 - e" true (Planarity.is_planar k5_minus);
  let k33_minus =
    Graph.of_edges ~n:6
      [ (0, 3); (0, 4); (0, 5); (1, 3); (1, 4); (1, 5); (2, 3); (2, 4) ]
  in
  Alcotest.(check bool) "K3,3 - e" true (Planarity.is_planar k33_minus)

let test_hidden_kuratowski_in_planar_host () =
  (* A planar grid with a K5 hanging off one corner through a bridge. *)
  let grid = Embedded.graph (Gen.grid ~rows:5 ~cols:5) in
  let glued =
    Graph.of_edges ~n:31
      (Graph.edges grid
      @ [ (24, 25) ]
      @ [ (25, 26); (25, 27); (25, 28); (25, 29); (26, 27); (26, 28); (26, 29);
          (27, 28); (27, 29); (28, 29) ])
  in
  Alcotest.(check bool) "glued K5 rejected" false (Planarity.is_planar glued)

let test_disconnected_and_isolated () =
  let g =
    Graph.of_edges ~n:8 [ (0, 1); (1, 2); (2, 0); (4, 5); (5, 6); (6, 7); (7, 4); (4, 6) ]
  in
  match Planarity.embed g with
  | Some rot ->
    Alcotest.(check bool) "euler" true (Rotation.is_planar_embedding g rot)
  | None -> Alcotest.fail "disconnected planar rejected"

let test_empty_and_tiny () =
  Alcotest.(check bool) "empty" true (Planarity.is_planar (Graph.of_edges ~n:0 []));
  Alcotest.(check bool) "single" true (Planarity.is_planar (Graph.of_edges ~n:1 []));
  Alcotest.(check bool) "edge" true (Planarity.is_planar (Graph.of_edges ~n:2 [ (0, 1) ]))

let test_edge_bound_shortcut () =
  (* m > 3n - 6 is rejected without running DMP. *)
  let rng = Repro_util.Rng.create 3 in
  let edges = ref [] in
  for _ = 1 to 200 do
    let u = Repro_util.Rng.int rng 15 and v = Repro_util.Rng.int rng 15 in
    if u <> v then edges := (u, v) :: !edges
  done;
  let g = Graph.of_edges ~n:15 !edges in
  if Graph.m g > 39 then
    Alcotest.(check bool) "dense rejected" false (Planarity.is_planar g)

let prop_generated_planar_always_embedded =
  QCheck.Test.make ~name:"DMP embeds every generated planar graph" ~count:50
    QCheck.(triple (int_range 0 6) (int_range 6 120) (int_bound 10000))
    (fun (which, n, seed) ->
      let fam = List.nth Gen.family_names which in
      let emb = Gen.by_family ~seed fam ~n in
      let g = shuffle_labels ~seed:(seed + 1) (Embedded.graph emb) in
      match Planarity.embed g with
      | Some rot -> Rotation.is_planar_embedding g rot
      | None -> false)

let prop_separator_works_on_dmp_embeddings =
  (* The algorithmic pipeline runs on embeddings produced without any
     coordinates: generate, shuffle labels, re-embed with DMP, separate. *)
  QCheck.Test.make ~name:"separator valid on DMP-embedded graphs" ~count:25
    QCheck.(pair (int_range 10 120) (int_bound 10000))
    (fun (n, seed) ->
      let emb0 = Gen.stacked_triangulation ~seed ~n () in
      let g = shuffle_labels ~seed:(seed + 7) (Embedded.graph emb0) in
      match Planarity.embed g with
      | None -> false
      | Some rot ->
        let emb = Embedded.make ~name:"dmp" g rot in
        let cfg = Repro_core.Config.of_embedded emb in
        let r = Repro_core.Separator.find cfg in
        (Repro_core.Check.check_separator cfg r.Repro_core.Separator.separator)
          .Repro_core.Check.valid)

let prop_dfs_works_on_dmp_embeddings =
  QCheck.Test.make ~name:"DFS valid on DMP-embedded graphs" ~count:15
    QCheck.(pair (int_range 10 100) (int_bound 10000))
    (fun (n, seed) ->
      let emb0 =
        Gen.thin ~seed ~keep:0.7 (Gen.stacked_triangulation ~seed ~n ())
      in
      let g = shuffle_labels ~seed:(seed + 3) (Embedded.graph emb0) in
      match Planarity.embed g with
      | None -> false
      | Some rot ->
        let emb = Embedded.make ~name:"dmp" g rot in
        let r = Repro_core.Dfs.run emb ~root:0 in
        Repro_core.Dfs.verify emb ~root:0 r)

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "biconnected blocks" `Quick test_biconnected_blocks;
        Alcotest.test_case "embeds families (shuffled)" `Quick
          test_embeds_all_families_shuffled;
        Alcotest.test_case "rejects Kuratowski" `Quick test_rejects_kuratowski;
        Alcotest.test_case "accepts near-Kuratowski" `Quick
          test_accepts_near_kuratowski;
        Alcotest.test_case "K5 behind a bridge" `Quick
          test_hidden_kuratowski_in_planar_host;
        Alcotest.test_case "disconnected + isolated" `Quick
          test_disconnected_and_isolated;
        Alcotest.test_case "tiny graphs" `Quick test_empty_and_tiny;
        Alcotest.test_case "edge-bound shortcut" `Quick test_edge_bound_shortcut;
        qtest prop_generated_planar_always_embedded;
        qtest prop_separator_works_on_dmp_embeddings;
        qtest prop_dfs_works_on_dmp_embeddings;
    ]
