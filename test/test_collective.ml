(* The collective layer: batched tree collectives and the refactored
   composed subroutines.

   Three claims are checked here:

   1. The batched programs compute the right thing: a k-slot
      [learn_batch]/[agg_batch]/[partwise_batch] equals k scalar runs of
      the corresponding [Prim] primitive (and a centralized reduction).
   2. The refactored [Composed] subroutines are bit-identical to
      [Composed.Reference] — the serial pre-refactor choreography kept as
      the oracle — on seeded graph families, while the [engine_runs]
      observability counter shows the >= 3x batching win for
      mark-path / detect-face / hidden.
   3. Round accounting scales with the communication-tree depth (the
      paper's Õ(D) headline), not with n: shallow families keep executed
      rounds flat as n grows, deep families pay O(depth + k). *)

open Repro_graph
open Repro_embedding
open Repro_tree
open Repro_congest

(* ------------------------------------------------------------------ *)
(* 1. Batched collectives vs scalar primitives.                        *)
(* ------------------------------------------------------------------ *)

let graphs () =
  [
    ("cycle48", Embedded.graph (Gen.cycle 48));
    ("grid6x7", Embedded.graph (Gen.grid ~rows:6 ~cols:7));
    ("star25", Embedded.graph (Gen.star 25));
    ("tri90", Embedded.graph (Gen.stacked_triangulation ~seed:5 ~n:90 ()));
  ]

let spanning g root = fst (fst (Prim.bfs_tree g ~root))

let test_learn_batch_matches_scalar () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let parent = spanning g 0 in
      let ctx = Collective.create g ~parent ~root:0 in
      let rng = Repro_util.Rng.create 21 in
      List.iter
        (fun k ->
          let slots =
            Array.init k (fun _ ->
                (Repro_util.Rng.int rng n, Repro_util.Rng.int rng 10_000))
          in
          let got = Collective.learn_batch ctx slots in
          Array.iteri
            (fun i (_, value) ->
              Alcotest.(check int)
                (Printf.sprintf "%s learn_batch k=%d slot %d" name k i)
                value got.(i))
            slots)
        [ 1; 2; 5; 16 ];
      (* One engine run per batch, k logical collectives. *)
      let t = Collective.tally ctx in
      Alcotest.(check int) (name ^ " engine runs") 4 t.Collective.engine_runs;
      Alcotest.(check int) (name ^ " collectives") 24 t.Collective.collectives)
    (graphs ())

let test_agg_batch_matches_centralized () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let parent = spanning g 0 in
      let ctx = Collective.create g ~parent ~root:0 in
      let rng = Repro_util.Rng.create 22 in
      List.iter
        (fun op ->
          let k = 7 in
          let values =
            Array.init k (fun _ ->
                Array.init n (fun _ -> Repro_util.Rng.int rng 1000))
          in
          let got = Collective.agg_batch ctx ~op values in
          Array.iteri
            (fun j vals ->
              let expected =
                Array.fold_left (Prim.apply op) vals.(0)
                  (Array.sub vals 1 (n - 1))
              in
              Alcotest.(check int)
                (Printf.sprintf "%s agg_batch slot %d" name j)
                expected got.(j))
            values)
        [ Prim.Sum; Prim.Min; Prim.Max ])
    (graphs ())

let test_partwise_batch_matches_scalar () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let parent = spanning g 0 in
      let ctx = Collective.create g ~parent ~root:0 in
      let rng = Repro_util.Rng.create 23 in
      let parts = Array.init n (fun _ -> Repro_util.Rng.int rng 5) in
      parts.(0) <- 0;
      List.iter
        (fun op ->
          let k = 3 in
          let values =
            Array.init k (fun _ ->
                Array.init n (fun _ -> Repro_util.Rng.int rng 1000))
          in
          let got =
            Collective.partwise_batch ctx ~bcast_parent:parent ~op ~parts values
          in
          Array.iteri
            (fun j vals ->
              let expected, _ =
                Prim.partwise g ~parent ~op ~parts ~values:vals
              in
              Alcotest.(check (array int))
                (Printf.sprintf "%s partwise_batch slot %d" name j)
                expected got.(j))
            values)
        [ Prim.Sum; Prim.Min; Prim.Max ])
    (graphs ())

let test_scalar_primitives_via_ctx () =
  let g = Embedded.graph (Gen.grid ~rows:5 ~cols:5) in
  let n = Graph.n g in
  let parent = spanning g 0 in
  let ctx = Collective.create g ~parent ~root:0 in
  let values = Array.init n (fun v -> v + 1) in
  let sub = Collective.subtree_agg ctx ~op:Prim.Sum ~values in
  let expected_sub, _ = Prim.subtree_agg g ~parent ~op:Prim.Sum ~values in
  Alcotest.(check (array int)) "subtree via ctx" expected_sub sub;
  let anc = Collective.ancestor_agg ctx ~op:Prim.Max ~values in
  let expected_anc, _ = Prim.ancestor_agg g ~parent ~op:Prim.Max ~values in
  Alcotest.(check (array int)) "ancestor via ctx" expected_anc anc;
  let total = Collective.convergecast ctx ~op:Prim.Sum ~values in
  Alcotest.(check int) "convergecast" (n * (n + 1) / 2) total;
  let bc = Collective.broadcast ctx ~value:4242 in
  Alcotest.(check bool) "broadcast" true (Array.for_all (( = ) 4242) bc);
  Alcotest.(check int) "learn" 77 (Collective.learn ctx ~source:(n - 1) ~value:77);
  (* The tally counted every run with full engine stats. *)
  let t = Collective.tally ctx in
  Alcotest.(check int) "engine runs" 5 t.Collective.engine_runs;
  Alcotest.(check bool) "total bits recorded" true (t.Collective.total_bits > 0)

(* O(depth + k): a batched learn on a shallow tree must not pay k times
   the depth. *)
let test_batch_rounds_pipelined () =
  let g = Embedded.graph (Gen.star 129) in
  let parent = spanning g 0 in
  let ctx = Collective.create g ~parent ~root:0 in
  let k = 64 in
  let slots = Array.init k (fun i -> (1 + (i mod 128), i)) in
  let _ = Collective.learn_batch ctx slots in
  let batched = (Collective.tally ctx).Collective.rounds in
  Collective.reset ctx;
  Array.iter
    (fun (source, value) -> ignore (Collective.learn ctx ~source ~value))
    slots;
  let serial = (Collective.tally ctx).Collective.rounds in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined %d rounds << serial %d" batched serial)
    true
    (batched <= 2 * (2 + k) + 4 && serial >= 3 * k)

(* ------------------------------------------------------------------ *)
(* 2. Differential: batched [Composed] vs the serial oracle            *)
(*    [Composed.Reference].  Same subroutine cores, different          *)
(*    communication schedules — outputs must be bit-identical, while   *)
(*    [engine_runs] exposes the batching win.                          *)
(* ------------------------------------------------------------------ *)

let knowledge_of tree =
  let n = Rooted.n tree in
  Composed.
    {
      parent = Array.init n (Rooted.parent tree);
      depth = Array.init n (Rooted.depth tree);
      pi_left = Array.init n (Rooted.pi_left tree);
      size = Array.init n (Rooted.size tree);
      root = Rooted.root tree;
    }

let local_view_of emb tree =
  let n = Rooted.n tree in
  Composed.
    {
      lparent = Array.init n (Rooted.parent tree);
      ldepth = Array.init n (Rooted.depth tree);
      lsize = Array.init n (Rooted.size tree);
      lrot = Array.init n (Rotation.order (Embedded.rot emb));
      lchildren = Array.init n (Rooted.children tree);
      lpi_l = Array.init n (Rooted.pi_left tree);
      lpi_r = Array.init n (Rooted.pi_right tree);
    }

let setup ?(spanning = Spanning.Bfs) emb =
  let g = Embedded.graph emb in
  let root = Embedded.outer emb in
  let parent = Spanning.make spanning g ~root in
  let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
  (g, root, parent, tree)

let families () =
  [
    ("tri60/bfs", Gen.stacked_triangulation ~seed:4 ~n:60 (), Spanning.Bfs);
    ("tri60/rand", Gen.stacked_triangulation ~seed:4 ~n:60 (), Spanning.Random 7);
    ("tri90/dfs", Gen.stacked_triangulation ~seed:9 ~n:90 (), Spanning.Dfs);
    ("grid6x6", Gen.grid ~rows:6 ~cols:6, Spanning.Bfs);
    ("wheel14", Gen.wheel 14, Spanning.Dfs);
  ]

let check_ratio name ~(oracle : Composed.stats) ~(batched : Composed.stats) r =
  Alcotest.(check bool)
    (Printf.sprintf "%s: oracle %d runs >= %dx batched %d runs" name
       oracle.Composed.engine_runs r batched.Composed.engine_runs)
    true
    (oracle.Composed.engine_runs >= r * batched.Composed.engine_runs)

let test_tree_routines_equal_reference () =
  List.iter
    (fun (name, emb, spanning) ->
      let g, _, _, tree = setup ~spanning emb in
      let tk = knowledge_of tree in
      let lv = local_view_of emb tree in
      let n = Graph.n g in
      let rng = Repro_util.Rng.create 51 in
      for _ = 1 to 5 do
        let u = Repro_util.Rng.int rng n and v = Repro_util.Rng.int rng n in
        let w, _ = Composed.lca g tk ~u ~v in
        let w', _ = Composed.Reference.lca g tk ~u ~v in
        Alcotest.(check int) (name ^ ": lca") w' w;
        let marked, st = Composed.mark_path g tk ~u ~v in
        let marked', st' = Composed.Reference.mark_path g tk ~u ~v in
        Alcotest.(check (array bool)) (name ^ ": mark_path") marked' marked;
        check_ratio (name ^ ": mark_path") ~oracle:st' ~batched:st 3
      done;
      let nr = Repro_util.Rng.int rng n in
      let rr, _ = Composed.reroot g lv ~new_root:nr in
      let rr', _ = Composed.Reference.reroot g lv ~new_root:nr in
      Alcotest.(check (pair (array int) (array int))) (name ^ ": reroot") rr' rr;
      let ws, _ = Composed.weights g lv in
      let ws', _ = Composed.Reference.weights g lv in
      Alcotest.(check bool) (name ^ ": weights") true (ws = ws'))
    (families ())

let test_face_routines_equal_reference () =
  List.iter
    (fun (name, emb, spanning) ->
      let g, _, _, tree = setup ~spanning emb in
      let lv = local_view_of emb tree in
      let cfg =
        Repro_core.Config.of_parts ~graph:g ~rot:(Embedded.rot emb) ~tree ()
      in
      let edges =
        List.filteri (fun i _ -> i < 4) (Repro_core.Config.fundamental_edges cfg)
      in
      List.iter
        (fun (u, v) ->
          let fm, st = Composed.detect_face g lv ~u ~v in
          let fm', st' = Composed.Reference.detect_face g lv ~u ~v in
          Alcotest.(check (array bool)) (name ^ ": face border")
            fm'.Composed.border fm.Composed.border;
          Alcotest.(check (array bool)) (name ^ ": face inside")
            fm'.Composed.inside fm.Composed.inside;
          check_ratio (name ^ ": detect_face") ~oracle:st' ~batched:st 3;
          (* Hidden on the first interior leaf, when the face has one. *)
          let interior = Repro_core.Faces.interior_reference cfg ~u ~v in
          match List.filter (Rooted.is_leaf tree) interior with
          | [] -> ()
          | t :: _ ->
              let h, sth = Composed.hidden g lv ~u ~v ~t in
              let h', sth' = Composed.Reference.hidden g lv ~u ~v ~t in
              Alcotest.(check bool) (name ^ ": hidden") true (h = h');
              check_ratio (name ^ ": hidden") ~oracle:sth' ~batched:sth 3)
        edges)
    (families ())

let test_pipeline_equals_reference () =
  List.iter
    (fun (name, emb, spanning) ->
      let g, root, parent, tree = setup ~spanning emb in
      let n = Graph.n g in
      let rot_orders = Array.init n (Rotation.order (Embedded.rot emb)) in
      let depth = Array.init n (Rooted.depth tree) in
      let children = Array.init n (Rooted.children tree) in
      let orders, phases, _ = Composed.dfs_orders g ~children ~parent ~depth ~root in
      let orders', phases', _ =
        Composed.Reference.dfs_orders g ~children ~parent ~depth ~root
      in
      Alcotest.(check (array int)) (name ^ ": pi_left")
        orders'.Composed.pi_left orders.Composed.pi_left;
      Alcotest.(check (array int)) (name ^ ": pi_right")
        orders'.Composed.pi_right orders.Composed.pi_right;
      Alcotest.(check int) (name ^ ": phases") phases' phases;
      let lv, _ = Composed.phase1 g ~rot_orders ~parent ~depth ~root in
      let lv', _ = Composed.Reference.phase1 g ~rot_orders ~parent ~depth ~root in
      Alcotest.(check bool) (name ^ ": phase1") true
        (lv.Composed.lsize = lv'.Composed.lsize
        && lv.Composed.lpi_l = lv'.Composed.lpi_l
        && lv.Composed.lpi_r = lv'.Composed.lpi_r);
      let sep, st = Composed.separator_phase3 g ~rot_orders ~parent ~depth ~root in
      let sep', st' =
        Composed.Reference.separator_phase3 g ~rot_orders ~parent ~depth ~root
      in
      Alcotest.(check bool) (name ^ ": separator_phase3") true (sep = sep');
      Alcotest.(check bool)
        (Printf.sprintf "%s: batched %d rounds < oracle %d rounds" name
           st.Composed.rounds st'.Composed.rounds)
        true
        (st.Composed.rounds < st'.Composed.rounds);
      let sf, sfp, _ = Composed.spanning_forest g () in
      let sf', sfp', _ = Composed.Reference.spanning_forest g () in
      Alcotest.(check bool) (name ^ ": spanning_forest") true
        (sf = sf' && sfp = sfp'))
    (families ())

(* ------------------------------------------------------------------ *)
(* 3. Round accounting scales with communication-tree depth, not n.    *)
(* ------------------------------------------------------------------ *)

let tree_depth tk = Array.fold_left max 0 tk.Composed.depth

let test_reroot_rounds_scale_with_depth () =
  (* Shallow stars of growing n: executed rounds must stay flat.  A deep
     cycle with far fewer nodes must dominate both. *)
  let run emb =
    let g, _, _, tree = setup emb in
    let lv = local_view_of emb tree in
    let tk = knowledge_of tree in
    let n = Graph.n g in
    let _, st = Composed.reroot g lv ~new_root:(n - 1) in
    (st.Composed.rounds, tree_depth tk)
  in
  let r64, d64 = run (Gen.star 64) in
  let r256, d256 = run (Gen.star 256) in
  let rcyc, dcyc = run (Gen.cycle 64) in
  Alcotest.(check int) "star depth flat" d64 d256;
  Alcotest.(check int)
    (Printf.sprintf "star rounds flat (%d vs %d)" r64 r256)
    r64 r256;
  Alcotest.(check bool)
    (Printf.sprintf "deep cycle (D=%d, %d rounds) dominates star256 (D=%d, %d rounds)"
       dcyc rcyc d256 r256)
    true
    (rcyc >= 2 * r256);
  List.iter
    (fun (r, d) ->
      Alcotest.(check bool)
        (Printf.sprintf "rounds %d within O(depth=%d)" r d)
        true
        (r <= (8 * d) + 24))
    [ (r64, d64); (r256, d256); (rcyc, dcyc) ]

let test_hidden_rounds_scale_with_depth () =
  (* The same triangulation under a shallow (BFS) and a deep (DFS) spanning
     tree: executed rounds track the tree depth, staying within the Õ(D)
     envelope in both cases. *)
  let run spanning =
    let emb = Gen.stacked_triangulation ~seed:4 ~n:60 () in
    let g, _, _, tree = setup ~spanning emb in
    let lv = local_view_of emb tree in
    let cfg =
      Repro_core.Config.of_parts ~graph:g ~rot:(Embedded.rot emb) ~tree ()
    in
    let instance =
      List.find_map
        (fun (u, v) ->
          Repro_core.Faces.interior_reference cfg ~u ~v
          |> List.filter (Rooted.is_leaf tree)
          |> function
          | [] -> None
          | t :: _ -> Some (u, v, t))
        (Repro_core.Config.fundamental_edges cfg)
    in
    match instance with
    | None -> Alcotest.fail "no hidden instance in family"
    | Some (u, v, t) ->
        let _, st = Composed.hidden g lv ~u ~v ~t in
        (st.Composed.rounds, tree_depth (knowledge_of tree))
  in
  let r_shallow, d_shallow = run Spanning.Bfs in
  let r_deep, d_deep = run Spanning.Dfs in
  Alcotest.(check bool)
    (Printf.sprintf "dfs tree deeper (%d) than bfs (%d)" d_deep d_shallow)
    true
    (d_deep >= 2 * d_shallow);
  List.iter
    (fun (r, d) ->
      Alcotest.(check bool)
        (Printf.sprintf "rounds %d within O(depth=%d + k)" r d)
        true
        (r <= (10 * d) + 160))
    [ (r_shallow, d_shallow); (r_deep, d_deep) ]

let suites =
  [
    ( "collective",
      [
        Alcotest.test_case "learn_batch = k scalar learns" `Quick
          test_learn_batch_matches_scalar;
        Alcotest.test_case "agg_batch = centralized reduce" `Quick
          test_agg_batch_matches_centralized;
        Alcotest.test_case "partwise_batch = k scalar partwise" `Quick
          test_partwise_batch_matches_scalar;
        Alcotest.test_case "scalar primitives via ctx" `Quick
          test_scalar_primitives_via_ctx;
        Alcotest.test_case "batched rounds are O(depth + k)" `Quick
          test_batch_rounds_pipelined;
        Alcotest.test_case "lca/mark_path/reroot/weights = oracle" `Quick
          test_tree_routines_equal_reference;
        Alcotest.test_case "detect_face/hidden = oracle, >=3x fewer runs"
          `Quick test_face_routines_equal_reference;
        Alcotest.test_case "orders/phase1/separator/forest = oracle" `Quick
          test_pipeline_equals_reference;
        Alcotest.test_case "reroot rounds scale with depth" `Quick
          test_reroot_rounds_scale_with_depth;
        Alcotest.test_case "hidden rounds scale with depth" `Quick
          test_hidden_rounds_scale_with_depth;
      ] );
  ]
