(* The collective layer: batched tree collectives and the refactored
   composed subroutines.

   Three claims are checked here:

   1. The batched programs compute the right thing: a k-slot
      [learn_batch]/[agg_batch]/[partwise_batch] equals k scalar runs of
      the corresponding [Prim] primitive (and a centralized reduction).
   2. The refactored [Composed] subroutines are bit-identical to
      [Composed.Reference] AND to the centralized algorithms, with the
      >= 3x batching win intact — this used to be a hand-rolled family
      sweep and is now the testkit's "collective" and "faces" oracles
      (lib/testkit/oracle.ml), declared below as fuzz properties.
   3. Round accounting scales with the communication-tree depth (the
      paper's Õ(D) headline), not with n: shallow families keep executed
      rounds flat as n grows, deep families pay O(depth + k). *)

open Repro_graph
open Repro_embedding
open Repro_tree
open Repro_congest
open Repro_testkit

(* ------------------------------------------------------------------ *)
(* 1. Batched collectives vs scalar primitives.                        *)
(* ------------------------------------------------------------------ *)

let graphs () =
  [
    ("cycle48", Embedded.graph (Gen.cycle 48));
    ("grid6x7", Embedded.graph (Gen.grid ~rows:6 ~cols:7));
    ("star25", Embedded.graph (Gen.star 25));
    ("tri90", Embedded.graph (Gen.stacked_triangulation ~seed:5 ~n:90 ()));
  ]

let spanning g root = fst (fst (Prim.bfs_tree g ~root))

let test_learn_batch_matches_scalar () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let parent = spanning g 0 in
      let ctx = Collective.create g ~parent ~root:0 in
      let rng = Repro_util.Rng.create 21 in
      List.iter
        (fun k ->
          let slots =
            Array.init k (fun _ ->
                (Repro_util.Rng.int rng n, Repro_util.Rng.int rng 10_000))
          in
          let got = Collective.learn_batch ctx slots in
          Array.iteri
            (fun i (_, value) ->
              Alcotest.(check int)
                (Printf.sprintf "%s learn_batch k=%d slot %d" name k i)
                value got.(i))
            slots)
        [ 1; 2; 5; 16 ];
      (* One engine run per batch, k logical collectives. *)
      let t = Collective.tally ctx in
      Alcotest.(check int) (name ^ " engine runs") 4 t.Collective.engine_runs;
      Alcotest.(check int) (name ^ " collectives") 24 t.Collective.collectives)
    (graphs ())

let test_agg_batch_matches_centralized () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let parent = spanning g 0 in
      let ctx = Collective.create g ~parent ~root:0 in
      let rng = Repro_util.Rng.create 22 in
      List.iter
        (fun op ->
          let k = 7 in
          let values =
            Array.init k (fun _ ->
                Array.init n (fun _ -> Repro_util.Rng.int rng 1000))
          in
          let got = Collective.agg_batch ctx ~op values in
          Array.iteri
            (fun j vals ->
              let expected =
                Array.fold_left (Prim.apply op) vals.(0)
                  (Array.sub vals 1 (n - 1))
              in
              Alcotest.(check int)
                (Printf.sprintf "%s agg_batch slot %d" name j)
                expected got.(j))
            values)
        [ Prim.Sum; Prim.Min; Prim.Max ])
    (graphs ())

let test_partwise_batch_matches_scalar () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let parent = spanning g 0 in
      let ctx = Collective.create g ~parent ~root:0 in
      let rng = Repro_util.Rng.create 23 in
      let parts = Array.init n (fun _ -> Repro_util.Rng.int rng 5) in
      parts.(0) <- 0;
      List.iter
        (fun op ->
          let k = 3 in
          let values =
            Array.init k (fun _ ->
                Array.init n (fun _ -> Repro_util.Rng.int rng 1000))
          in
          let got =
            Collective.partwise_batch ctx ~bcast_parent:parent ~op ~parts values
          in
          Array.iteri
            (fun j vals ->
              let expected, _ =
                Prim.partwise g ~parent ~op ~parts ~values:vals
              in
              Alcotest.(check (array int))
                (Printf.sprintf "%s partwise_batch slot %d" name j)
                expected got.(j))
            values)
        [ Prim.Sum; Prim.Min; Prim.Max ])
    (graphs ())

let test_scalar_primitives_via_ctx () =
  let g = Embedded.graph (Gen.grid ~rows:5 ~cols:5) in
  let n = Graph.n g in
  let parent = spanning g 0 in
  let ctx = Collective.create g ~parent ~root:0 in
  let values = Array.init n (fun v -> v + 1) in
  let sub = Collective.subtree_agg ctx ~op:Prim.Sum ~values in
  let expected_sub, _ = Prim.subtree_agg g ~parent ~op:Prim.Sum ~values in
  Alcotest.(check (array int)) "subtree via ctx" expected_sub sub;
  let anc = Collective.ancestor_agg ctx ~op:Prim.Max ~values in
  let expected_anc, _ = Prim.ancestor_agg g ~parent ~op:Prim.Max ~values in
  Alcotest.(check (array int)) "ancestor via ctx" expected_anc anc;
  let total = Collective.convergecast ctx ~op:Prim.Sum ~values in
  Alcotest.(check int) "convergecast" (n * (n + 1) / 2) total;
  let bc = Collective.broadcast ctx ~value:4242 in
  Alcotest.(check bool) "broadcast" true (Array.for_all (( = ) 4242) bc);
  Alcotest.(check int) "learn" 77 (Collective.learn ctx ~source:(n - 1) ~value:77);
  (* The tally counted every run with full engine stats. *)
  let t = Collective.tally ctx in
  Alcotest.(check int) "engine runs" 5 t.Collective.engine_runs;
  Alcotest.(check bool) "total bits recorded" true (t.Collective.total_bits > 0)

(* O(depth + k): a batched learn on a shallow tree must not pay k times
   the depth. *)
let test_batch_rounds_pipelined () =
  let g = Embedded.graph (Gen.star 129) in
  let parent = spanning g 0 in
  let ctx = Collective.create g ~parent ~root:0 in
  let k = 64 in
  let slots = Array.init k (fun i -> (1 + (i mod 128), i)) in
  let _ = Collective.learn_batch ctx slots in
  let batched = (Collective.tally ctx).Collective.rounds in
  Collective.reset ctx;
  Array.iter
    (fun (source, value) -> ignore (Collective.learn ctx ~source ~value))
    slots;
  let serial = (Collective.tally ctx).Collective.rounds in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined %d rounds << serial %d" batched serial)
    true
    (batched <= 2 * (2 + k) + 4 && serial >= 3 * k)

(* ------------------------------------------------------------------ *)
(* 2. Differential (batched = serial oracle = centralized): the         *)
(*    "collective" and "faces" oracles over fuzzed instances.           *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* 3. Round accounting scales with communication-tree depth, not n.    *)
(* ------------------------------------------------------------------ *)

let knowledge_of tree =
  let n = Rooted.n tree in
  Composed.
    {
      parent = Array.init n (Rooted.parent tree);
      depth = Array.init n (Rooted.depth tree);
      pi_left = Array.init n (Rooted.pi_left tree);
      size = Array.init n (Rooted.size tree);
      root = Rooted.root tree;
    }

let local_view_of emb tree =
  let n = Rooted.n tree in
  Composed.
    {
      lparent = Array.init n (Rooted.parent tree);
      ldepth = Array.init n (Rooted.depth tree);
      lsize = Array.init n (Rooted.size tree);
      lrot = Array.init n (Rotation.order (Embedded.rot emb));
      lchildren = Array.init n (Rooted.children tree);
      lpi_l = Array.init n (Rooted.pi_left tree);
      lpi_r = Array.init n (Rooted.pi_right tree);
    }

let setup ?(spanning = Spanning.Bfs) emb =
  let g = Embedded.graph emb in
  let root = Embedded.outer emb in
  let parent = Spanning.make spanning g ~root in
  let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
  (g, root, parent, tree)

let tree_depth tk = Array.fold_left max 0 tk.Composed.depth

let test_reroot_rounds_scale_with_depth () =
  (* Shallow stars of growing n: executed rounds must stay flat.  A deep
     cycle with far fewer nodes must dominate both. *)
  let run emb =
    let g, _, _, tree = setup emb in
    let lv = local_view_of emb tree in
    let tk = knowledge_of tree in
    let n = Graph.n g in
    let _, st = Composed.reroot g lv ~new_root:(n - 1) in
    (st.Composed.rounds, tree_depth tk)
  in
  let r64, d64 = run (Gen.star 64) in
  let r256, d256 = run (Gen.star 256) in
  let rcyc, dcyc = run (Gen.cycle 64) in
  Alcotest.(check int) "star depth flat" d64 d256;
  Alcotest.(check int)
    (Printf.sprintf "star rounds flat (%d vs %d)" r64 r256)
    r64 r256;
  Alcotest.(check bool)
    (Printf.sprintf "deep cycle (D=%d, %d rounds) dominates star256 (D=%d, %d rounds)"
       dcyc rcyc d256 r256)
    true
    (rcyc >= 2 * r256);
  List.iter
    (fun (r, d) ->
      Alcotest.(check bool)
        (Printf.sprintf "rounds %d within O(depth=%d)" r d)
        true
        (r <= (8 * d) + 24))
    [ (r64, d64); (r256, d256); (rcyc, dcyc) ]

let test_hidden_rounds_scale_with_depth () =
  (* The same triangulation under a shallow (BFS) and a deep (DFS) spanning
     tree: executed rounds track the tree depth, staying within the Õ(D)
     envelope in both cases. *)
  let run spanning =
    let emb = Gen.stacked_triangulation ~seed:4 ~n:60 () in
    let g, _, _, tree = setup ~spanning emb in
    let lv = local_view_of emb tree in
    let cfg =
      Repro_core.Config.of_parts ~graph:g ~rot:(Embedded.rot emb) ~tree ()
    in
    let instance =
      List.find_map
        (fun (u, v) ->
          Repro_core.Faces.interior_reference cfg ~u ~v
          |> List.filter (Rooted.is_leaf tree)
          |> function
          | [] -> None
          | t :: _ -> Some (u, v, t))
        (Repro_core.Config.fundamental_edges cfg)
    in
    match instance with
    | None -> Alcotest.fail "no hidden instance in family"
    | Some (u, v, t) ->
        let _, st = Composed.hidden g lv ~u ~v ~t in
        (st.Composed.rounds, tree_depth (knowledge_of tree))
  in
  let r_shallow, d_shallow = run Spanning.Bfs in
  let r_deep, d_deep = run Spanning.Dfs in
  Alcotest.(check bool)
    (Printf.sprintf "dfs tree deeper (%d) than bfs (%d)" d_deep d_shallow)
    true
    (d_deep >= 2 * d_shallow);
  List.iter
    (fun (r, d) ->
      Alcotest.(check bool)
        (Printf.sprintf "rounds %d within O(depth=%d + k)" r d)
        true
        (r <= (10 * d) + 160))
    [ (r_shallow, d_shallow); (r_deep, d_deep) ]

let suites =
  Suite.make __MODULE__
    [
      Alcotest.test_case "learn_batch = k scalar learns" `Quick
        test_learn_batch_matches_scalar;
      Alcotest.test_case "agg_batch = centralized reduce" `Quick
        test_agg_batch_matches_centralized;
      Alcotest.test_case "partwise_batch = k scalar partwise" `Quick
        test_partwise_batch_matches_scalar;
      Alcotest.test_case "scalar primitives via ctx" `Quick
        test_scalar_primitives_via_ctx;
      Alcotest.test_case "batched rounds are O(depth + k)" `Quick
        test_batch_rounds_pipelined;
      Suite.property ~count:30 ~max_size:64 ~seed:202
        ~oracles:[ "collective" ]
        "lca/mark-path/reroot/weights = oracle = centralized, >=3x fewer runs";
      Suite.property ~count:30 ~max_size:56 ~seed:203 ~oracles:[ "faces" ]
        "detect-face/hidden = oracle = centralized";
      Alcotest.test_case "reroot rounds scale with depth" `Quick
        test_reroot_rounds_scale_with_depth;
      Alcotest.test_case "hidden rounds scale with depth" `Quick
        test_hidden_rounds_scale_with_depth;
    ]
