open Repro_graph
open Repro_embedding
open Repro_core
open Repro_baseline

let qtest = QCheck_alcotest.to_alcotest

let test_awerbuch_valid () =
  List.iter
    (fun emb ->
      let g = Embedded.graph emb in
      let root = Embedded.outer emb in
      let r = Awerbuch.run g ~root in
      Alcotest.(check bool) (Embedded.name emb) true
        (Algo.is_dfs_tree g ~root ~parent:r.Awerbuch.parent))
    [
      Gen.grid ~rows:6 ~cols:6;
      Gen.grid_diag ~seed:1 ~rows:6 ~cols:6 ();
      Gen.stacked_triangulation ~seed:2 ~n:80 ();
      Gen.star 25;
      Gen.path 40;
      Gen.cycle 30;
    ]

let test_awerbuch_linear_rounds () =
  (* Rounds are Θ(n): between n and ~5n on every family. *)
  List.iter
    (fun emb ->
      let g = Embedded.graph emb in
      let n = Graph.n g in
      let r = Awerbuch.run g ~root:(Embedded.outer emb) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d rounds for n=%d" (Embedded.name emb)
           r.Awerbuch.rounds n)
        true
        (r.Awerbuch.rounds >= n && r.Awerbuch.rounds <= 6 * n))
    [ Gen.grid ~rows:8 ~cols:8; Gen.path 100; Gen.stacked_triangulation ~seed:4 ~n:150 () ]

let test_awerbuch_single_node () =
  let g = Graph.of_edges ~n:1 [] in
  let r = Awerbuch.run g ~root:0 in
  Alcotest.(check int) "parent" (-1) r.Awerbuch.parent.(0)

let test_level_separator_balanced () =
  List.iter
    (fun emb ->
      let g = Embedded.graph emb in
      let sep = Lipton_tarjan.level_separator g ~root:0 in
      let n = Graph.n g in
      Alcotest.(check bool) (Embedded.name emb) true
        (Lipton_tarjan.max_component_after g sep <= (2 * n / 3) + 1))
    [
      Gen.grid ~rows:9 ~cols:9;
      Gen.stacked_triangulation ~seed:6 ~n:100 ();
      Gen.path 30;
    ]

let test_best_fundamental_cycle () =
  let g = Embedded.graph (Gen.grid_diag ~seed:3 ~rows:6 ~cols:6 ()) in
  (match Lipton_tarjan.best_fundamental_cycle g ~root:0 with
  | Some (cycle, mc) ->
    Alcotest.(check int) "max comp recomputed" mc
      (Lipton_tarjan.max_component_after g cycle)
  | None -> Alcotest.fail "triangulated grid is not a tree");
  let tree = Embedded.graph (Gen.path 10) in
  Alcotest.(check bool) "tree has no fundamental cycle" true
    (Lipton_tarjan.best_fundamental_cycle tree ~root:0 = None)

let test_random_sep_estimator_converges () =
  let emb = Gen.grid ~rows:8 ~cols:8 in
  let cfg = Config.of_embedded emb in
  let rng = Repro_util.Rng.create 5 in
  List.iter
    (fun (u, v) ->
      let est = Random_sep.estimate_weight cfg rng ~samples:4000 ~u ~v in
      let w = Weights.weight cfg ~u ~v in
      Alcotest.(check bool)
        (Printf.sprintf "est %d close to %d" est w)
        true
        (abs (est - w) <= 3))
    (Config.fundamental_edges cfg)

let test_random_sep_high_samples_reliable () =
  let emb = Gen.stacked_triangulation ~seed:8 ~n:60 () in
  let cfg = Config.of_embedded emb in
  let fails = ref 0 in
  for seed = 1 to 20 do
    let o = Random_sep.find ~seed ~samples:4000 cfg in
    if not o.Random_sep.balanced then incr fails
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d failures at 4000 samples" !fails)
    true (!fails <= 1)

let test_random_sep_low_samples_fails_sometimes () =
  (* The ablation of E4: starved of samples the randomized algorithm must
     fail on some seed — the deterministic algorithm never does. *)
  let emb = Gen.stacked_triangulation ~seed:9 ~n:200 () in
  let cfg = Config.of_embedded emb in
  let fails = ref 0 in
  for seed = 1 to 30 do
    let o = Random_sep.find ~seed ~samples:2 cfg in
    if not o.Random_sep.balanced then incr fails
  done;
  Alcotest.(check bool) "some failures" true (!fails > 0);
  (* Deterministic on the same instance: always balanced. *)
  let r = Separator.find cfg in
  Alcotest.(check bool) "deterministic balanced" true
    (Check.balanced cfg r.Repro_core.Separator.separator)

let prop_awerbuch_matches_dfs_property =
  QCheck.Test.make ~name:"Awerbuch DFS valid on random planar" ~count:30
    QCheck.(pair (int_range 4 100) (int_bound 10000))
    (fun (n, seed) ->
      let emb = Gen.thin ~seed ~keep:0.5 (Gen.stacked_triangulation ~seed ~n ()) in
      let g = Embedded.graph emb in
      let r = Awerbuch.run g ~root:0 in
      Algo.is_dfs_tree g ~root:0 ~parent:r.Awerbuch.parent)

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "awerbuch valid" `Quick test_awerbuch_valid;
        Alcotest.test_case "awerbuch linear rounds" `Quick test_awerbuch_linear_rounds;
        Alcotest.test_case "awerbuch single node" `Quick test_awerbuch_single_node;
        Alcotest.test_case "level separator balanced" `Quick
          test_level_separator_balanced;
        Alcotest.test_case "best fundamental cycle" `Quick test_best_fundamental_cycle;
        Alcotest.test_case "random estimator converges" `Quick
          test_random_sep_estimator_converges;
        Alcotest.test_case "random reliable at high samples" `Quick
          test_random_sep_high_samples_reliable;
        Alcotest.test_case "random fails at low samples" `Quick
          test_random_sep_low_samples_fails_sometimes;
        qtest prop_awerbuch_matches_dfs_property;
    ]
