open Repro_embedding
open Repro_tree
open Repro_congest
open Repro_core

let qtest = QCheck_alcotest.to_alcotest

let find_on ?rounds emb spanning =
  let cfg = Config.of_embedded ~spanning emb in
  (cfg, Separator.find ?rounds cfg)

let assert_valid name (cfg, r) =
  let verdict = Check.check_separator cfg r.Separator.separator in
  Alcotest.(check bool)
    (Printf.sprintf "%s valid (%s): %s" name r.Separator.phase
       (Fmt.str "%a" Check.pp_verdict verdict))
    true verdict.Check.valid

let test_grid_families () =
  List.iter
    (fun emb ->
      List.iter
        (fun sp -> assert_valid (Embedded.name emb) (find_on emb sp))
        [ Spanning.Bfs; Spanning.Dfs; Spanning.Random 5 ])
    [
      Gen.grid ~rows:7 ~cols:7;
      Gen.grid_diag ~seed:3 ~rows:6 ~cols:6 ();
      Gen.stacked_triangulation ~seed:2 ~n:90 ();
      Gen.wheel 30;
      Gen.fan 25;
      Gen.cycle 33;
    ]

let test_tree_inputs () =
  (* Trees exercise Phase 2, including the star (centroid deviation). *)
  List.iter
    (fun emb -> assert_valid (Embedded.name emb) (find_on emb Spanning.Bfs))
    [
      Gen.star 40;
      Gen.path 50;
      Gen.random_tree ~seed:8 ~n:60 ();
      Gen.caterpillar ~spine:10 ~legs:5;
    ]

let test_star_phase_is_tree () =
  let _, r = find_on (Gen.star 40) Spanning.Bfs in
  Alcotest.(check string) "phase" "2-tree" r.Separator.phase

let test_trivial_small () =
  List.iter
    (fun n ->
      let emb = Gen.path n in
      let cfg, r = find_on emb Spanning.Bfs in
      Alcotest.(check bool) "valid" true
        (Check.check_separator cfg r.Separator.separator).Check.valid)
    [ 1; 2; 3 ]

let test_separator_is_tree_path () =
  let cfg, r = find_on (Gen.grid_diag ~seed:9 ~rows:8 ~cols:8 ()) Spanning.Dfs in
  Alcotest.(check bool) "tree path" true
    (Check.is_tree_path (Config.tree cfg) r.Separator.separator)

let test_rounds_charged () =
  let emb = Gen.grid_diag ~seed:4 ~rows:8 ~cols:8 () in
  let g = Embedded.graph emb in
  let d = Repro_graph.Algo.diameter g in
  let rounds = Rounds.create ~n:(Repro_graph.Graph.n g) ~d () in
  let _ = find_on ~rounds emb Spanning.Bfs in
  Alcotest.(check bool) "positive rounds" true (Rounds.total rounds > 0.0);
  Alcotest.(check bool) "has dfs-order charge" true
    (List.exists (fun (l, _, _) -> l = "dfs-order[Lem11]") (Rounds.breakdown rounds))

let test_partition_version () =
  (* Theorem 1's partition interface: grid split into vertical strips. *)
  let emb = Gen.grid ~rows:6 ~cols:12 in
  let parts =
    List.init 4 (fun b ->
        List.concat_map
          (fun r -> List.init 3 (fun c -> (r * 12) + (3 * b) + c))
          (List.init 6 Fun.id))
  in
  let rounds = Rounds.create ~n:72 ~d:16 () in
  let results = Separator.find_partition ~rounds emb ~parts in
  Alcotest.(check int) "4 parts" 4 (List.length results);
  List.iter
    (fun (cfg, r) ->
      Alcotest.(check bool) "part separator valid" true
        (Check.check_separator cfg r.Separator.separator).Check.valid)
    results;
  Alcotest.(check bool) "charged once (max), not 4x" true
    (Rounds.total rounds > 0.0)

let test_singleton_parts () =
  let emb = Gen.grid ~rows:2 ~cols:3 in
  let parts = List.init 6 (fun v -> [ v ]) in
  let results = Separator.find_partition emb ~parts in
  List.iter
    (fun (_, r) ->
      Alcotest.(check int) "singleton separator" 1 (List.length r.Separator.separator))
    results

let test_shrink_balanced_and_smaller () =
  List.iter
    (fun emb ->
      let cfg = Config.of_embedded emb in
      let r = Separator.find cfg in
      let s = Separator.shrink cfg r.Separator.separator in
      Alcotest.(check bool) (Embedded.name emb ^ " still balanced") true
        (Check.balanced cfg s);
      Alcotest.(check bool) "not larger" true
        (List.length s <= List.length r.Separator.separator);
      Alcotest.(check bool) "non-empty" true (s <> []))
    [
      Gen.cycle 90;
      Gen.grid ~rows:9 ~cols:9;
      Gen.grid_diag ~seed:3 ~rows:8 ~cols:8 ();
      Gen.path 50;
      Gen.star 30;
    ]

let test_shrink_cycle_recovers_third () =
  (* On a cycle the untrimmed separator is the whole path; trimming must
     recover roughly n/3. *)
  let emb = Gen.cycle 99 in
  let cfg = Config.of_embedded emb in
  let r = Separator.find cfg in
  let s = Separator.shrink cfg r.Separator.separator in
  Alcotest.(check bool)
    (Printf.sprintf "trimmed to %d ~ n/3" (List.length s))
    true
    (List.length s <= 35)

let test_shrink_singleton_stable () =
  let emb = Gen.star 20 in
  let cfg = Config.of_embedded emb in
  (* The hub alone is balanced. *)
  let s = Separator.shrink cfg [ 0 ] in
  Alcotest.(check (list int)) "unchanged" [ 0 ] s

let prop_certified_closing_edges =
  (* Whenever a closing edge is reported, the full cycle-separator
     definition holds: the edge is real or planarly insertable. *)
  QCheck.Test.make ~name:"reported closing edges are certifiable" ~count:60
    QCheck.(
      triple (int_range 0 6) (pair (int_range 6 200) (int_bound 100000))
        (int_range 0 2))
    (fun (which, (n, seed), spi) ->
      let family = List.nth Gen.family_names which in
      let emb = Gen.by_family ~seed family ~n in
      let spanning =
        match spi with 0 -> Spanning.Bfs | 1 -> Spanning.Dfs | _ -> Spanning.Random seed
      in
      let cfg = Config.of_embedded ~spanning emb in
      let r = Separator.find cfg in
      match r.Separator.endpoints with
      | None -> true
      | Some endpoints -> Check.cycle_closable cfg ~endpoints)

let prop_shrink_preserves_balance =
  QCheck.Test.make ~name:"shrink keeps balance, never grows" ~count:50
    QCheck.(pair (int_range 6 150) (int_bound 10000))
    (fun (n, seed) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let cfg = Config.of_embedded ~spanning:(Spanning.Random seed) emb in
      let r = Separator.find cfg in
      let s = Separator.shrink cfg r.Separator.separator in
      Check.balanced cfg s
      && List.length s <= List.length r.Separator.separator
      && s <> [])

let prop_separator_always_valid =
  QCheck.Test.make ~name:"separator valid on all families/trees/sizes" ~count:120
    QCheck.(
      triple (int_range 0 6) (pair (int_range 4 250) (int_bound 100000))
        (int_range 0 2))
    (fun (which, (n, seed), spi) ->
      let family = List.nth Gen.family_names which in
      let emb = Gen.by_family ~seed family ~n in
      let spanning =
        match spi with 0 -> Spanning.Bfs | 1 -> Spanning.Dfs | _ -> Spanning.Random seed
      in
      let cfg = Config.of_embedded ~spanning emb in
      let r = Separator.find cfg in
      (Check.check_separator cfg r.Separator.separator).Check.valid)

let prop_phase3_weight_in_range_never_fails =
  (* When phase 3 fires, the very first candidate works (Lemma 5): at most
     one candidate tried. *)
  QCheck.Test.make ~name:"phase-3 separators need one candidate" ~count:60
    QCheck.(pair (int_range 10 150) (int_bound 100000))
    (fun (n, seed) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let cfg = Config.of_embedded ~spanning:(Spanning.Random seed) emb in
      let r = Separator.find cfg in
      if r.Separator.phase = "3-face" then r.Separator.candidates_tried = 1 else true)

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "planar families" `Quick test_grid_families;
        Alcotest.test_case "tree inputs" `Quick test_tree_inputs;
        Alcotest.test_case "star uses tree phase" `Quick test_star_phase_is_tree;
        Alcotest.test_case "trivial sizes" `Quick test_trivial_small;
        Alcotest.test_case "output is a tree path" `Quick test_separator_is_tree_path;
        Alcotest.test_case "rounds charged" `Quick test_rounds_charged;
        Alcotest.test_case "partition interface" `Quick test_partition_version;
        Alcotest.test_case "singleton parts" `Quick test_singleton_parts;
        Alcotest.test_case "shrink balanced/smaller" `Quick
          test_shrink_balanced_and_smaller;
        Alcotest.test_case "shrink cycle to n/3" `Quick
          test_shrink_cycle_recovers_third;
        Alcotest.test_case "shrink singleton" `Quick test_shrink_singleton_stable;
        qtest prop_certified_closing_edges;
        qtest prop_shrink_preserves_balance;
        qtest prop_separator_always_valid;
        qtest prop_phase3_weight_in_range_never_fails;
    ]
