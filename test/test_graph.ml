open Repro_util
open Repro_graph

let qtest = QCheck_alcotest.to_alcotest

(* Small named graphs used across the suite. *)
let triangle = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ]
let path5 = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ]

let k4 =
  Graph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]

(* Random connected graph generator for property tests. *)
let random_connected ~seed ~n ~extra =
  let rng = Rng.create seed in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (v, Rng.int rng v) :: !edges
  done;
  for _ = 1 to extra do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then edges := (u, v) :: !edges
  done;
  Graph.of_edges ~n !edges

let test_build_dedup () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 0); (1, 2) ] in
  Alcotest.(check int) "m dedups" 2 (Graph.m g);
  Alcotest.(check int) "deg 1" 2 (Graph.degree g 1)

let test_build_rejects_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self loop")
    (fun () -> ignore (Graph.of_edges ~n:2 [ (1, 1) ]))

let test_build_rejects_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.of_edges: vertex out of range") (fun () ->
      ignore (Graph.of_edges ~n:2 [ (0, 2) ]))

let test_mem_edge () =
  Alcotest.(check bool) "in" true (Graph.mem_edge triangle 0 2);
  Alcotest.(check bool) "sym" true (Graph.mem_edge triangle 2 0);
  Alcotest.(check bool) "out" false (Graph.mem_edge path5 0 2);
  Alcotest.(check bool) "self" false (Graph.mem_edge triangle 1 1)

let test_edges_list () =
  let es = Graph.edges triangle |> List.sort compare in
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (0, 2); (1, 2) ] es

let test_induced () =
  let keep = [| true; false; true; true |] in
  let sub, old2new, new2old = Graph.induced k4 keep in
  Alcotest.(check int) "n" 3 (Graph.n sub);
  Alcotest.(check int) "m" 3 (Graph.m sub);
  Alcotest.(check int) "map drop" (-1) old2new.(1);
  Alcotest.(check int) "roundtrip" 2 old2new.(new2old.(2))

let test_induced_members_scratch () =
  let g = random_connected ~seed:42 ~n:40 ~extra:30 in
  let scratch = Graph.Scratch.create () in
  let check members =
    let keep = Array.make 40 false in
    Array.iter (fun v -> keep.(v) <- true) members;
    let sub_k, old2new_k, new2old_k = Graph.induced g keep in
    let sub_m, old2new_m, new2old_m = Graph.induced_members ~scratch g members in
    Alcotest.(check (array int)) "new->old = keep build" new2old_k new2old_m;
    for v = 0 to 39 do
      Alcotest.(check int) "old->new = keep build" old2new_k.(v) old2new_m.(v)
    done;
    Alcotest.(check int) "sub m" (Graph.m sub_k) (Graph.m sub_m);
    for v = 0 to Graph.n sub_k - 1 do
      Alcotest.(check (array int)) "sub row"
        (Graph.neighbors sub_k v) (Graph.neighbors sub_m v)
    done
  in
  (* Two calls on overlapping member sets through ONE scratch: the second
     must see a clean map (the un-mark pass between calls). *)
  check [| 3; 1; 7; 12; 30; 21; 9 |];
  check [| 5; 7; 2; 21; 33; 14 |]

(* The pre-CSR edge index encoded a pair as u * 2^30 + v, so vertex ids
   past 2^30 silently collided: encode 1 5 = encode 0 (2^30 + 5).  The CSR
   core must either accept such graphs without collision or reject them
   with [Invalid_argument] (small hosts run out of memory allocating the
   row array — also a graceful outcome). *)
let test_large_n_no_collision () =
  let n = (1 lsl 30) + 8 in
  match Graph.of_edges ~n [ (1, 5) ] with
  | g ->
    Alcotest.(check bool) "edge present" true (Graph.mem_edge g 1 5);
    Alcotest.(check bool) "no 2^30 collision" false
      (Graph.mem_edge g 0 ((1 lsl 30) + 5));
    Alcotest.(check int) "m" 1 (Graph.m g)
  | exception (Invalid_argument _ | Out_of_memory) -> ()

let test_bfs_dist () =
  let d = Algo.bfs_dist path5 0 in
  Alcotest.(check (array int)) "dists" [| 0; 1; 2; 3; 4 |] d

let test_bfs_parents_tree () =
  let p = Algo.bfs_parents path5 2 in
  Alcotest.(check int) "root" (-1) p.(2);
  Alcotest.(check int) "left" 2 p.(1);
  Alcotest.(check int) "right" 2 p.(3)

let test_components () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (2, 3) ] in
  let _, k = Algo.components g in
  Alcotest.(check int) "three comps" 3 k;
  Alcotest.(check bool) "not connected" false (Algo.is_connected g);
  Alcotest.(check bool) "path connected" true (Algo.is_connected path5)

let test_diameter () =
  Alcotest.(check int) "path" 4 (Algo.diameter_exact path5);
  Alcotest.(check int) "triangle" 1 (Algo.diameter_exact triangle);
  Alcotest.(check int) "two-sweep path" 4 (Algo.diameter_two_sweep path5)

let test_dfs_parents () =
  let p = Algo.dfs_parents k4 0 in
  Alcotest.(check int) "root" (-1) p.(0);
  Alcotest.(check bool) "dfs tree" true (Algo.is_dfs_tree k4 ~root:0 ~parent:p)

let test_is_dfs_tree_rejects_bfs_on_cycle () =
  (* On C4, the BFS tree from 0 has a non-tree edge between two branches:
     not a DFS tree. *)
  let c4 = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let bfs = Algo.bfs_parents c4 0 in
  let dfs = Algo.dfs_parents c4 0 in
  Alcotest.(check bool) "bfs rejected" false (Algo.is_dfs_tree c4 ~root:0 ~parent:bfs);
  Alcotest.(check bool) "dfs accepted" true (Algo.is_dfs_tree c4 ~root:0 ~parent:dfs)

let test_is_dfs_tree_rejects_garbage () =
  let bad = [| -1; 0; 0; 5 |] in
  Alcotest.(check bool) "garbage parent" false
    (Algo.is_dfs_tree k4 ~root:0 ~parent:bad)

let prop_dfs_tree_valid =
  QCheck.Test.make ~name:"centralized DFS always yields a DFS tree" ~count:100
    QCheck.(pair (int_range 2 60) (int_bound 1000))
    (fun (n, seed) ->
      let g = random_connected ~seed ~n ~extra:(n / 2) in
      let p = Algo.dfs_parents g 0 in
      Algo.is_dfs_tree g ~root:0 ~parent:p)

let prop_bfs_dist_triangle_ineq =
  QCheck.Test.make ~name:"bfs distances are 1-Lipschitz along edges" ~count:100
    QCheck.(pair (int_range 2 60) (int_bound 1000))
    (fun (n, seed) ->
      let g = random_connected ~seed ~n ~extra:n in
      let d = Algo.bfs_dist g 0 in
      let ok = ref true in
      Graph.iter_edges g (fun u v -> if abs (d.(u) - d.(v)) > 1 then ok := false);
      !ok)

let prop_component_sizes_sum =
  QCheck.Test.make ~name:"component sizes sum to n" ~count:100
    QCheck.(pair (int_range 1 50) (int_bound 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let edges = ref [] in
      for _ = 1 to n do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v then edges := (u, v) :: !edges
      done;
      let g = Graph.of_edges ~n !edges in
      Array.fold_left ( + ) 0 (Algo.component_sizes g) = n)

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "dedup" `Quick test_build_dedup;
        Alcotest.test_case "reject loop" `Quick test_build_rejects_loop;
        Alcotest.test_case "reject range" `Quick test_build_rejects_range;
        Alcotest.test_case "mem_edge" `Quick test_mem_edge;
        Alcotest.test_case "edges list" `Quick test_edges_list;
        Alcotest.test_case "induced" `Quick test_induced;
        Alcotest.test_case "induced_members scratch reuse" `Quick
          test_induced_members_scratch;
        Alcotest.test_case "n > 2^30 rejected or collision-free" `Slow
          test_large_n_no_collision;
        Alcotest.test_case "bfs dist" `Quick test_bfs_dist;
        Alcotest.test_case "bfs parents" `Quick test_bfs_parents_tree;
        Alcotest.test_case "components" `Quick test_components;
        Alcotest.test_case "diameter" `Quick test_diameter;
        Alcotest.test_case "dfs parents" `Quick test_dfs_parents;
        Alcotest.test_case "is_dfs_tree rejects bfs" `Quick
          test_is_dfs_tree_rejects_bfs_on_cycle;
        Alcotest.test_case "is_dfs_tree rejects garbage" `Quick
          test_is_dfs_tree_rejects_garbage;
        qtest prop_dfs_tree_valid;
        qtest prop_bfs_dist_triangle_ineq;
        qtest prop_component_sizes_sum;
    ]
