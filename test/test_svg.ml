open Repro_graph
open Repro_embedding

let qtest = QCheck_alcotest.to_alcotest

let count_sub s sub =
  let n = String.length s and k = String.length sub in
  let c = ref 0 in
  for i = 0 to n - k do
    if String.sub s i k = sub then incr c
  done;
  !c

let test_render_grid () =
  let emb = Gen.grid ~rows:4 ~cols:4 in
  let doc = Svg.render emb in
  Alcotest.(check bool) "is svg" true (count_sub doc "<svg" = 1);
  Alcotest.(check int) "one circle per vertex" 16 (count_sub doc "<circle");
  Alcotest.(check int) "one line per edge" (Graph.m (Embedded.graph emb))
    (count_sub doc "<line")

let test_highlight_and_closing () =
  let emb = Gen.grid_diag ~seed:2 ~rows:5 ~cols:5 () in
  let doc = Svg.render ~highlight:[ 0; 1; 2 ] ~closing:(0, 24) emb in
  Alcotest.(check bool) "highlight color present" true
    (count_sub doc Svg.default_style.highlight_color > 0);
  Alcotest.(check bool) "dashed closing edge" true
    (count_sub doc "stroke-dasharray" = 1)

let test_tutte_layout_for_coordinate_free () =
  (* A DMP embedding has no coordinates; the barycentric layout must place
     all vertices at finite, non-coincident positions. *)
  let emb0 = Gen.stacked_triangulation ~seed:5 ~n:40 () in
  let g = Embedded.graph emb0 in
  let rot = Option.get (Planarity.embed g) in
  let emb = Embedded.make ~name:"dmp" g rot in
  let coords = Svg.layout emb in
  Array.iter
    (fun (x, y) ->
      Alcotest.(check bool) "finite" true (Float.is_finite x && Float.is_finite y))
    coords;
  let doc = Svg.render emb in
  Alcotest.(check int) "all vertices drawn" 40 (count_sub doc "<circle")

let test_empty_graph () =
  let emb =
    Embedded.make ~name:"empty" (Graph.of_edges ~n:0 [])
      (Rotation.of_adjacency (Graph.of_edges ~n:0 []))
  in
  Alcotest.(check bool) "renders" true (count_sub (Svg.render emb) "<svg" = 1)

let test_write_file () =
  let path = Filename.temp_file "repro_svg" ".svg" in
  Svg.write_file (Gen.cycle 8) ~path;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-empty file" true (len > 100)

let prop_render_counts =
  QCheck.Test.make ~name:"svg has one mark per vertex and edge" ~count:20
    QCheck.(pair (int_range 4 60) (int_bound 10000))
    (fun (n, seed) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let doc = Svg.render emb in
      count_sub doc "<circle" = Graph.n (Embedded.graph emb)
      && count_sub doc "<line" = Graph.m (Embedded.graph emb))

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "grid render" `Quick test_render_grid;
        Alcotest.test_case "highlight + closing" `Quick test_highlight_and_closing;
        Alcotest.test_case "tutte layout" `Quick test_tutte_layout_for_coordinate_free;
        Alcotest.test_case "empty graph" `Quick test_empty_graph;
        Alcotest.test_case "write file" `Quick test_write_file;
        qtest prop_render_counts;
    ]
