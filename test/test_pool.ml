(* The domain pool: ordering, bypass, failure handling, reuse. *)

open Repro_util

exception Boom of int

let test_map_preserves_order () =
  Pool.with_pool ~jobs:4 (fun p ->
      let input = Array.init 1000 Fun.id in
      let out = Pool.map p (fun x -> x * x) input in
      Alcotest.(check int) "length" 1000 (Array.length out);
      Array.iteri
        (fun i y -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) y)
        out)

let test_jobs_one_bypasses () =
  Pool.with_pool ~jobs:1 (fun p ->
      Alcotest.(check int) "jobs" 1 (Pool.jobs p);
      (* Tasks run on the calling domain, in order, with no interleaving. *)
      let trace = ref [] in
      let out =
        Pool.map p
          (fun x ->
            trace := x :: !trace;
            x + 1)
          (Array.init 50 Fun.id)
      in
      Alcotest.(check (list int)) "sequential order" (List.init 50 Fun.id)
        (List.rev !trace);
      Alcotest.(check int) "result" 50 out.(49))

let test_empty_and_singleton () =
  Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check int) "empty" 0 (Array.length (Pool.map p Fun.id [||]));
      let one = Pool.map p (fun x -> x * 10) [| 7 |] in
      Alcotest.(check int) "singleton" 70 one.(0))

let test_exception_propagates_and_pool_survives () =
  Pool.with_pool ~jobs:4 (fun p ->
      (match Pool.map p (fun x -> if x = 13 then raise (Boom x) else x)
               (Array.init 64 Fun.id)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 13 -> ()
      | exception e -> raise e);
      (* The pool must stay usable after a failed batch. *)
      let out = Pool.map p (fun x -> x + 1) (Array.init 64 Fun.id) in
      Alcotest.(check int) "reused after failure" 64 out.(63))

let test_reentrant_map_falls_back () =
  Pool.with_pool ~jobs:4 (fun p ->
      let out =
        Pool.map p
          (fun x ->
            (* A task mapping on the same pool must not deadlock. *)
            Array.fold_left ( + ) 0 (Pool.map p (fun y -> x * y) [| 1; 2; 3 |]))
          (Array.init 8 Fun.id)
      in
      Array.iteri
        (fun i y -> Alcotest.(check int) (Printf.sprintf "nested %d" i) (6 * i) y)
        out)

let test_map_after_shutdown_sequential () =
  let p = Pool.create ~jobs:4 () in
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  let out = Pool.map p (fun x -> x * 2) (Array.init 10 Fun.id) in
  Alcotest.(check int) "after shutdown" 18 out.(9)

let test_default_jobs_sane () =
  let j = Pool.default_jobs () in
  Alcotest.(check bool) "1 <= default <= 8" true (j >= 1 && j <= 8)

let test_seq_grain_fallback () =
  Pool.with_pool ~seq_grain:100 ~jobs:4 (fun p ->
      Alcotest.(check int) "seq_grain" 100 (Pool.seq_grain p);
      (* Below the grain: provably sequential (runs on the calling domain,
         in order). *)
      Alcotest.(check bool) "below grain" false
        (Pool.runs_parallel ~cost:99 p 50);
      let trace = ref [] in
      let out =
        Pool.map ~cost:99 p
          (fun x ->
            trace := x :: !trace;
            x + 1)
          (Array.init 50 Fun.id)
      in
      Alcotest.(check (list int)) "sequential order" (List.init 50 Fun.id)
        (List.rev !trace);
      Alcotest.(check int) "result" 50 out.(49);
      (* At or above the grain: the pool engages. *)
      Alcotest.(check bool) "at grain" true (Pool.runs_parallel ~cost:100 p 50);
      let seq = Pool.map ~cost:99 p (fun x -> x * 3) (Array.init 200 Fun.id) in
      let par = Pool.map ~cost:100 p (fun x -> x * 3) (Array.init 200 Fun.id) in
      Alcotest.(check bool) "identical results" true (seq = par);
      (* No cost estimate: the historical behaviour, always parallel. *)
      Alcotest.(check bool) "no cost" true (Pool.runs_parallel p 50))

let test_chunked_claims_cover_uneven_batches () =
  (* Batch sizes around the chunking arithmetic's edges: every index must be
     claimed exactly once whatever the chunk split. *)
  Pool.with_pool ~jobs:3 (fun p ->
      List.iter
        (fun len ->
          let hits = Array.make (max 1 len) 0 in
          let out =
            Pool.map p
              (fun i ->
                hits.(i) <- hits.(i) + 1;
                i)
              (Array.init len Fun.id)
          in
          Alcotest.(check int) (Printf.sprintf "len %d" len) len
            (Array.length out);
          for i = 0 to len - 1 do
            Alcotest.(check int) (Printf.sprintf "len %d slot %d" len i) i
              out.(i);
            Alcotest.(check int)
              (Printf.sprintf "len %d hit %d" len i)
              1 hits.(i)
          done)
        [ 2; 3; 11; 12; 13; 24; 25; 1000 ])

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
        Alcotest.test_case "jobs=1 bypasses domains" `Quick test_jobs_one_bypasses;
        Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
        Alcotest.test_case "exception propagates, pool survives" `Quick
          test_exception_propagates_and_pool_survives;
        Alcotest.test_case "re-entrant map falls back" `Quick
          test_reentrant_map_falls_back;
        Alcotest.test_case "map after shutdown" `Quick
          test_map_after_shutdown_sequential;
        Alcotest.test_case "default jobs sane" `Quick test_default_jobs_sane;
        Alcotest.test_case "seq_grain fallback" `Quick test_seq_grain_fallback;
        Alcotest.test_case "chunked claims cover uneven batches" `Quick
          test_chunked_claims_cover_uneven_batches;
    ]
