(* The separator-backend registry (tentpole of the pluggable-backend PR):
   registration semantics, per-backend conformance on deterministic
   families, default-path bit-identity, and cutoff-dispatch determinism
   across pool sizes. *)

open Repro_graph
open Repro_embedding
open Repro_tree
open Repro_core
open Repro_baseline

let suite_families =
  [
    Gen.grid ~rows:9 ~cols:9;
    Gen.grid_diag ~seed:3 ~rows:8 ~cols:8 ();
    Gen.stacked_triangulation ~seed:5 ~n:120 ();
    Gen.cycle 40;
    Gen.path 30;
  ]

let test_registry_roundtrip () =
  Backends.ensure ();
  let bs = Backend.all () in
  Alcotest.(check bool) "congest registered first" true
    (match bs with b :: _ -> b.Backend.name = "congest" | [] -> false);
  Alcotest.(check string) "default is congest" "congest"
    (Backend.default ()).Backend.name;
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%s registered" name)
        true
        (List.mem name (Backend.names ())))
    [ "congest"; "lt-level"; "hn-cycle"; "random-sep" ];
  List.iter
    (fun b ->
      Alcotest.(check string)
        (Printf.sprintf "lookup %s round-trips" b.Backend.name)
        b.Backend.name
        (Backend.lookup b.Backend.name).Backend.name;
      Alcotest.(check bool)
        (Printf.sprintf "lookup_opt %s" b.Backend.name)
        true
        (Backend.lookup_opt b.Backend.name <> None))
    bs;
  Alcotest.(check string) "centralized default is lt-level" "lt-level"
    (match Backend.centralized_default () with
    | Some b -> b.Backend.name
    | None -> "<none>");
  Alcotest.(check bool) "unknown lookup raises Failure" true
    (match Backend.lookup "no-such-backend" with
    | _ -> false
    | exception Failure _ -> true)

let test_duplicate_rejected () =
  Backends.ensure ();
  Alcotest.(check bool) "re-registering congest raises" true
    (match Backend.register (Backend.default ()) with
    | () -> false
    | exception Backend.Duplicate_backend "congest" -> true
    | exception _ -> false)

let test_dummy_registration () =
  (* Registering a new backend is open to clients: an alias of congest
     under a fresh name must round-trip without disturbing the default or
     the oracle's shipped-backend filter. *)
  Backends.ensure ();
  (match Backend.lookup_opt "test-dummy" with
  | Some _ -> () (* already registered by a previous in-process run *)
  | None ->
    let congest = Backend.default () in
    Backend.register
      { congest with Backend.name = "test-dummy"; description = "test alias" });
  Alcotest.(check bool) "dummy listed" true
    (List.mem "test-dummy" (Backend.names ()));
  Alcotest.(check string) "default still congest" "congest"
    (Backend.default ()).Backend.name;
  Alcotest.(check string) "centralized default still lt-level" "lt-level"
    (match Backend.centralized_default () with
    | Some b -> b.Backend.name
    | None -> "<none>")

let test_centralized_backends_balanced () =
  Backends.ensure ();
  List.iter
    (fun emb ->
      let cfg = Config.of_embedded emb in
      let g = Embedded.graph emb in
      let n = Graph.n g in
      let limit = Check.balance_limit n in
      List.iter
        (fun bname ->
          let b = Backend.lookup bname in
          let r = b.Backend.find cfg in
          let sep = r.Repro_core.Separator.separator in
          Alcotest.(check bool)
            (Printf.sprintf "%s balanced on %s" bname (Embedded.name emb))
            true
            (sep <> [] && Lipton_tarjan.max_component_after g sep <= limit);
          let trimmed = b.Backend.trim cfg sep in
          Alcotest.(check bool)
            (Printf.sprintf "%s trim keeps balance on %s" bname
               (Embedded.name emb))
            true
            (List.length trimmed <= List.length sep
            && Lipton_tarjan.max_component_after g trimmed <= limit))
        [ "lt-level"; "hn-cycle" ])
    suite_families

let test_hn_cycle_closing_edge () =
  Backends.ensure ();
  let b = Backend.lookup "hn-cycle" in
  Alcotest.(check bool) "hn-cycle is cycle-certified" true
    (b.Backend.certificate = Backend.Cycle_certified);
  let fired = ref 0 in
  List.iter
    (fun emb ->
      let cfg = Config.of_embedded emb in
      let g = Embedded.graph emb in
      let r = b.Backend.find cfg in
      match r.Repro_core.Separator.endpoints with
      | None -> ()
      | Some (a, bb) ->
        incr fired;
        Alcotest.(check bool)
          (Printf.sprintf "closing edge (%d,%d) exists on %s" a bb
             (Embedded.name emb))
          true (Graph.mem_edge g a bb))
    suite_families;
  (* At least one family must exercise a real cycle certificate, or the
     whole stage is dead code. *)
  Alcotest.(check bool) "some family produced a cycle certificate" true
    (!fired > 0)

(* Naive reference for the optimized fundamental-cycle sweep: same BFS
   tree, same edge order, same tie-break, but every candidate pays the
   full max_component_after sweep. *)
let naive_best_fundamental_cycle g ~root =
  let parent = Spanning.bfs g ~root in
  let depth = Algo.bfs_dist g root in
  let path_between u v =
    let rec go u v left right =
      if u = v then List.rev_append left (u :: right)
      else if depth.(u) >= depth.(v) then go parent.(u) v (u :: left) right
      else go u parent.(v) left (v :: right)
    in
    go u v [] []
  in
  let best = ref None in
  Graph.iter_edges g (fun u v ->
      if parent.(u) <> v && parent.(v) <> u then begin
        let cycle = path_between u v in
        let mc = Lipton_tarjan.max_component_after g cycle in
        let len = List.length cycle in
        match !best with
        | Some (_, bmc, bsize) when bmc < mc || (bmc = mc && bsize <= len) ->
          ()
        | _ -> best := Some (cycle, mc, len)
      end);
  Option.map (fun (cycle, mc, _) -> (cycle, mc)) !best

let test_best_fundamental_cycle_matches_naive () =
  List.iter
    (fun emb ->
      let g = Embedded.graph emb in
      let opt = Lipton_tarjan.best_fundamental_cycle g ~root:0 in
      let naive = naive_best_fundamental_cycle g ~root:0 in
      Alcotest.(check bool)
        (Printf.sprintf "optimized = naive on %s" (Embedded.name emb))
        true (opt = naive))
    [
      Gen.grid ~rows:7 ~cols:7;
      Gen.grid_diag ~seed:2 ~rows:6 ~cols:6 ();
      Gen.stacked_triangulation ~seed:9 ~n:90 ();
      Gen.cycle 25;
      Gen.path 15;
    ]

let test_stop_at_respects_goal () =
  let g = Embedded.graph (Gen.grid_diag ~seed:4 ~rows:7 ~cols:7 ()) in
  let n = Graph.n g in
  let limit = Check.balance_limit n in
  match Lipton_tarjan.best_fundamental_cycle ~stop_at:limit g ~root:0 with
  | Some (cycle, mc) ->
    Alcotest.(check bool) "early-stopped cycle meets the goal" true
      (mc <= limit);
    Alcotest.(check int) "mc honest" mc
      (Lipton_tarjan.max_component_after g cycle)
  | None -> Alcotest.fail "triangulated grid has fundamental cycles"

let test_default_bit_identity () =
  Backends.ensure ();
  let emb = Gen.stacked_triangulation ~seed:13 ~n:150 () in
  let cfg = Config.of_embedded emb in
  let direct = Separator.find cfg in
  let via_registry = (Backend.default ()).Backend.find cfg in
  Alcotest.(check bool) "Separator.find = default backend find" true
    (direct = via_registry);
  let d0 = Decomposition.build emb in
  let d1 = Decomposition.build ~backend:(Backend.lookup "congest") emb in
  Alcotest.(check bool) "Decomposition.build default = explicit congest" true
    (d0.Decomposition.pieces = d1.Decomposition.pieces
    && d0.Decomposition.separator = d1.Decomposition.separator
    && d0.Decomposition.levels = d1.Decomposition.levels
    && d0.Decomposition.separator_count = d1.Decomposition.separator_count)

let test_cutoff_dispatch_deterministic () =
  Backends.ensure ();
  let emb = Gen.grid ~rows:20 ~cols:20 in
  let g = Embedded.graph emb in
  let n = Graph.n g in
  let d = Algo.diameter g in
  let run pool =
    let ledger = Repro_congest.Rounds.create ~n ~d:(max 1 d) () in
    let t =
      Decomposition.build ~rounds:ledger ?pool ~small_part_cutoff:30 emb
    in
    (t, Repro_congest.Rounds.total ledger)
  in
  let t1, r1 = run None in
  let tn, rn =
    Repro_util.Pool.with_pool ~seq_grain:0 ~jobs:4 (fun pool ->
        run (Some pool))
  in
  Alcotest.(check bool) "decomposition bit-identical across pool sizes" true
    (t1.Decomposition.pieces = tn.Decomposition.pieces
    && t1.Decomposition.separator = tn.Decomposition.separator
    && t1.Decomposition.levels = tn.Decomposition.levels
    && t1.Decomposition.separator_count = tn.Decomposition.separator_count);
  Alcotest.(check bool)
    (Printf.sprintf "charged rounds identical (%.1f vs %.1f)" r1 rn)
    true (r1 = rn);
  Alcotest.(check bool) "fast path produced a valid decomposition" true
    (Decomposition.check emb ~piece_target:20 t1)

let test_dfs_with_cutoff () =
  Backends.ensure ();
  let emb = Gen.grid_diag ~seed:7 ~rows:12 ~cols:12 () in
  let g = Embedded.graph emb in
  let root = Embedded.outer emb in
  let r = Dfs.run ~small_part_cutoff:25 emb ~root in
  Alcotest.(check bool) "DFS with fast path verifies" true
    (Dfs.verify emb ~root r);
  Alcotest.(check bool) "centralized phase fired on small components" true
    (List.mem_assoc "lt-level" r.Dfs.separator_phases);
  (* Cutoff covering every component: all non-trivial separators come from
     the centralized backend, and the tree is still a DFS tree. *)
  let r_all = Dfs.run ~small_part_cutoff:(Graph.n g) emb ~root in
  Alcotest.(check bool) "DFS fully centralized verifies" true
    (Dfs.verify emb ~root r_all);
  Alcotest.(check bool) "only trivial/lt-level phases fire" true
    (List.for_all
       (fun (phase, _) -> phase = "trivial" || phase = "lt-level")
       r_all.Dfs.separator_phases)

let test_backend_oracle_large_grid () =
  (* One instance big enough that the oracle's size-vs-sqrt(n) tripwire is
     not vacuous (fuzz sizes never are). *)
  Backends.ensure ();
  let inst =
    Repro_testkit.Instance.build
      {
        Repro_testkit.Instance.family = "stacked";
        n = 2500;
        seed = 11;
        spanning = Spanning.Bfs;
      }
  in
  let report = Repro_testkit.Oracle.run_protected
      (Repro_testkit.Oracle.find "backend") inst
  in
  Alcotest.(check bool) report.Repro_testkit.Oracle.detail true
    report.Repro_testkit.Oracle.ok

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
      Alcotest.test_case "registry round-trip" `Quick test_registry_roundtrip;
      Alcotest.test_case "duplicate name rejected" `Quick
        test_duplicate_rejected;
      Alcotest.test_case "client registration" `Quick test_dummy_registration;
      Alcotest.test_case "centralized backends balanced" `Quick
        test_centralized_backends_balanced;
      Alcotest.test_case "hn-cycle closing edge" `Quick
        test_hn_cycle_closing_edge;
      Alcotest.test_case "fundamental-cycle sweep = naive" `Quick
        test_best_fundamental_cycle_matches_naive;
      Alcotest.test_case "stop_at respects goal" `Quick
        test_stop_at_respects_goal;
      Alcotest.test_case "default path bit-identical" `Quick
        test_default_bit_identity;
      Alcotest.test_case "cutoff dispatch deterministic" `Quick
        test_cutoff_dispatch_deterministic;
      Alcotest.test_case "dfs with fast path" `Quick test_dfs_with_cutoff;
      Alcotest.test_case "backend oracle at n=2500" `Slow
        test_backend_oracle_large_grid;
      Repro_testkit.Suite.property ~count:25 ~max_size:56 ~seed:405
        ~oracles:[ "backend" ] "backend registry conformance (fuzz)";
    ]
