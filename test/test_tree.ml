open Repro_graph
open Repro_embedding
open Repro_tree

let qtest = QCheck_alcotest.to_alcotest

let build_on emb kind =
  let g = Embedded.graph emb in
  let root = Embedded.outer emb in
  let parent = Spanning.make kind g ~root in
  Rooted.build ~rot:(Embedded.rot emb) ~root parent

let grid44 = Gen.grid ~rows:4 ~cols:4

let test_bfs_tree_depths () =
  let t = build_on grid44 Spanning.Bfs in
  let g = Embedded.graph grid44 in
  let dist = Algo.bfs_dist g (Rooted.root t) in
  for v = 0 to Graph.n g - 1 do
    Alcotest.(check int) "bfs depth = dist" dist.(v) (Rooted.depth t v)
  done

let test_sizes_sum () =
  let t = build_on grid44 Spanning.Dfs in
  Alcotest.(check int) "root size = n" 16 (Rooted.size t (Rooted.root t));
  (* Sum over each node of 1 + children sizes is consistent. *)
  for v = 0 to 15 do
    let s =
      Array.fold_left (fun acc c -> acc + Rooted.size t c) 1 (Rooted.children t v)
    in
    Alcotest.(check int) "size consistency" (Rooted.size t v) s
  done

let orders_are_permutation t =
  let n = Rooted.n t in
  let seen_l = Array.make n false and seen_r = Array.make n false in
  for v = 0 to n - 1 do
    seen_l.(Rooted.pi_left t v) <- true;
    seen_r.(Rooted.pi_right t v) <- true
  done;
  Array.for_all Fun.id seen_l && Array.for_all Fun.id seen_r

let test_orders_permutation () =
  List.iter
    (fun kind ->
      let t = build_on grid44 kind in
      Alcotest.(check bool) "permutation" true (orders_are_permutation t))
    [ Spanning.Bfs; Spanning.Dfs; Spanning.Random 3 ]

(* On the paper's Figure 2 shape: root with ordered children; check that the
   left order takes the counterclockwise-most child first. *)
let test_left_right_orders_tiny () =
  (* Star with hub 0 at origin and three leaves; clockwise rotation around
     the hub is by decreasing angle. *)
  let g = Graph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  let coords = [| (0.0, 0.0); (-1.0, 1.0); (0.0, 1.5); (1.0, 1.0) |] in
  let rot = Geometry.rotation_of_coords g coords in
  let parent = [| -1; 0; 0; 0 |] in
  (* Clockwise from the leftmost leaf: 1 (135°), 2 (90°), 3 (45°). *)
  let t = Rooted.build ~root_first:1 ~rot ~root:0 parent in
  Alcotest.(check int) "root left pos" 0 (Rooted.pi_left t 0);
  (* RIGHT order explores clockwise: 1, 2, 3. *)
  Alcotest.(check int) "right: leaf1" 1 (Rooted.pi_right t 1);
  Alcotest.(check int) "right: leaf2" 2 (Rooted.pi_right t 2);
  Alcotest.(check int) "right: leaf3" 3 (Rooted.pi_right t 3);
  (* LEFT order explores counterclockwise: 3, 2, 1. *)
  Alcotest.(check int) "left: leaf3" 1 (Rooted.pi_left t 3);
  Alcotest.(check int) "left: leaf2" 2 (Rooted.pi_left t 2);
  Alcotest.(check int) "left: leaf1" 3 (Rooted.pi_left t 1)

let test_subtree_intervals () =
  let t = build_on (Gen.stacked_triangulation ~seed:4 ~n:40 ()) Spanning.Dfs in
  let n = Rooted.n t in
  for v = 0 to n - 1 do
    for u = 0 to n - 1 do
      let in_interval =
        Rooted.pi_left t u >= Rooted.pi_left t v
        && Rooted.pi_left t u < Rooted.pi_left t v + Rooted.size t v
      in
      Alcotest.(check bool) "interval = subtree" in_interval
        (Rooted.is_ancestor t ~anc:v ~desc:u)
    done
  done

let test_lca_small () =
  (* Path 0-1-2-3-4 rooted at 2. *)
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let rot = Rotation.of_adjacency g in
  let parent = [| 1; 2; -1; 2; 3 |] in
  let t = Rooted.build ~rot ~root:2 parent in
  Alcotest.(check int) "lca(0,4)" 2 (Rooted.lca t 0 4);
  Alcotest.(check int) "lca(3,4)" 3 (Rooted.lca t 3 4);
  Alcotest.(check int) "lca(0,1)" 1 (Rooted.lca t 0 1);
  Alcotest.(check int) "lca(x,x)" 4 (Rooted.lca t 4 4)

let naive_lca t a b =
  let rec ancestors v = if v < 0 then [] else v :: ancestors (Rooted.parent t v) in
  let aa = ancestors a in
  let rec first_common = function
    | [] -> assert false
    | v :: rest -> if List.mem v aa then v else first_common rest
  in
  first_common (ancestors b)

let test_path_endpoints () =
  let t = build_on grid44 Spanning.Dfs in
  let p = Rooted.path t 3 12 in
  Alcotest.(check int) "starts at u" 3 (List.hd p);
  Alcotest.(check int) "ends at v" 12 (List.nth p (List.length p - 1));
  Alcotest.(check int) "length" (Rooted.path_length t 3 12 + 1) (List.length p);
  (* Consecutive path nodes are tree edges. *)
  let rec consecutive = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "tree edge" true
        (Rooted.parent t a = b || Rooted.parent t b = a);
      consecutive rest
    | _ -> ()
  in
  consecutive p

let test_last_leaves () =
  let t = build_on grid44 Spanning.Dfs in
  let root = Rooted.root t in
  let ll = Rooted.last_leaf_left t root in
  let lr = Rooted.last_leaf_right t root in
  Alcotest.(check bool) "left last is leaf" true (Rooted.is_leaf t ll);
  Alcotest.(check bool) "right last is leaf" true (Rooted.is_leaf t lr);
  Alcotest.(check int) "left last position" (Rooted.n t - 1) (Rooted.pi_left t ll);
  Alcotest.(check int) "right last position" (Rooted.n t - 1) (Rooted.pi_right t lr)

let test_centroid_star () =
  let emb = Gen.star 20 in
  let g = Embedded.graph emb in
  let parent = Spanning.bfs g ~root:1 in
  let t = Rooted.build ~rot:(Embedded.rot emb) ~root:1 parent in
  Alcotest.(check int) "star centroid is hub" 0 (Rooted.centroid t)

let test_centroid_path () =
  let emb = Gen.path 9 in
  let g = Embedded.graph emb in
  let parent = Spanning.bfs g ~root:0 in
  let t = Rooted.build ~rot:(Embedded.rot emb) ~root:0 parent in
  Alcotest.(check int) "middle of path" 4 (Rooted.centroid t)

let test_reroot_preserves_edges () =
  let emb = Gen.stacked_triangulation ~seed:8 ~n:30 () in
  let t = build_on emb Spanning.Dfs in
  let t' = Rooted.reroot ~rot:(Embedded.rot emb) t 17 in
  Alcotest.(check int) "new root" 17 (Rooted.root t');
  Alcotest.(check int) "root depth 0" 0 (Rooted.depth t' 17);
  let norm es = List.map (fun (a, b) -> (min a b, max a b)) es |> List.sort compare in
  Alcotest.(check (list (pair int int))) "same edges"
    (norm (Rooted.edges t)) (norm (Rooted.edges t'));
  (* Depth in the re-rooted tree equals tree distance to the new root. *)
  for v = 0 to Rooted.n t - 1 do
    Alcotest.(check int) "depth = path length" (Rooted.path_length t v 17)
      (Rooted.depth t' v)
  done

let prop_lca_matches_naive =
  QCheck.Test.make ~name:"binary-lifting LCA = naive LCA" ~count:60
    QCheck.(triple (int_range 4 60) (int_bound 1000) (int_bound 10000))
    (fun (n, seed, qseed) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let t = build_on emb (Spanning.Random seed) in
      let rng = Repro_util.Rng.create qseed in
      let ok = ref true in
      for _ = 1 to 20 do
        let a = Repro_util.Rng.int rng n and b = Repro_util.Rng.int rng n in
        if Rooted.lca t a b <> naive_lca t a b then ok := false
      done;
      !ok)

let prop_kth_ancestor =
  QCheck.Test.make ~name:"kth_ancestor walks the parent chain" ~count:60
    QCheck.(pair (int_range 4 60) (int_bound 1000))
    (fun (n, seed) ->
      let emb = Gen.random_tree ~seed ~n () in
      let t = build_on emb Spanning.Bfs in
      let ok = ref true in
      for v = 0 to n - 1 do
        let d = Rooted.depth t v in
        if Rooted.kth_ancestor t v d <> Rooted.root t then ok := false;
        if d >= 1 && Rooted.kth_ancestor t v 1 <> Rooted.parent t v then ok := false
      done;
      !ok)

let prop_orders_subtree_contiguous =
  QCheck.Test.make ~name:"right order also has contiguous subtrees" ~count:40
    QCheck.(pair (int_range 4 50) (int_bound 1000))
    (fun (n, seed) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let t = build_on emb Spanning.Dfs in
      let ok = ref true in
      for v = 0 to n - 1 do
        for u = 0 to n - 1 do
          let anc = Rooted.is_ancestor t ~anc:v ~desc:u in
          let in_r =
            Rooted.pi_right t u >= Rooted.pi_right t v
            && Rooted.pi_right t u < Rooted.pi_right t v + Rooted.size t v
          in
          if anc <> in_r then ok := false
        done
      done;
      !ok)

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "bfs depths" `Quick test_bfs_tree_depths;
        Alcotest.test_case "sizes sum" `Quick test_sizes_sum;
        Alcotest.test_case "orders permutation" `Quick test_orders_permutation;
        Alcotest.test_case "left/right orders tiny" `Quick
          test_left_right_orders_tiny;
        Alcotest.test_case "subtree intervals" `Quick test_subtree_intervals;
        Alcotest.test_case "lca small" `Quick test_lca_small;
        Alcotest.test_case "path endpoints" `Quick test_path_endpoints;
        Alcotest.test_case "last leaves" `Quick test_last_leaves;
        Alcotest.test_case "centroid star" `Quick test_centroid_star;
        Alcotest.test_case "centroid path" `Quick test_centroid_path;
        Alcotest.test_case "reroot" `Quick test_reroot_preserves_edges;
        qtest prop_lca_matches_naive;
        qtest prop_kth_ancestor;
        qtest prop_orders_subtree_contiguous;
    ]
