open Repro_graph
open Repro_embedding
open Repro_tree
open Repro_core

let qtest = QCheck_alcotest.to_alcotest

let cfg_of ?(spanning = Spanning.Bfs) emb = Config.of_embedded ~spanning emb

(* Small square face in the 3x3 grid, BFS tree from corner 0. *)
let grid3 = Gen.grid ~rows:3 ~cols:3

let test_fundamental_edges_are_nontree () =
  let cfg = cfg_of grid3 in
  let tree = Config.tree cfg in
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "non-tree" false
        (Rooted.parent tree u = v || Rooted.parent tree v = u);
      Alcotest.(check bool) "normalized" true
        (Rooted.pi_left tree u < Rooted.pi_left tree v))
    (Config.fundamental_edges cfg);
  (* m - (n-1) fundamental edges *)
  Alcotest.(check int) "count" (12 - 8) (List.length (Config.fundamental_edges cfg))

let test_border_is_tree_path () =
  let cfg = cfg_of (Gen.grid_diag ~seed:1 ~rows:4 ~cols:4 ()) in
  let tree = Config.tree cfg in
  List.iter
    (fun (u, v) ->
      let b = Faces.border cfg ~u ~v in
      Alcotest.(check (list int)) "border = tree path" (Rooted.path tree u v) b;
      List.iter
        (fun x ->
          Alcotest.(check bool) "on_border agrees" true (Faces.on_border cfg ~u ~v x))
        b)
    (Config.fundamental_edges cfg)

let test_classify_cases () =
  let cfg = cfg_of ~spanning:Spanning.Dfs grid3 in
  let tree = Config.tree cfg in
  List.iter
    (fun (u, v) ->
      match Faces.classify cfg ~u ~v with
      | Faces.Unrelated ->
        Alcotest.(check bool) "not ancestor" false
          (Rooted.is_ancestor tree ~anc:u ~desc:v)
      | Faces.Anc_left | Faces.Anc_right ->
        Alcotest.(check bool) "ancestor" true (Rooted.is_ancestor tree ~anc:u ~desc:v))
    (Config.fundamental_edges cfg)

let test_interior_closed_under_subtrees () =
  let cfg = cfg_of ~spanning:(Spanning.Random 3) (Gen.stacked_triangulation ~seed:4 ~n:50 ()) in
  let tree = Config.tree cfg in
  List.iter
    (fun (u, v) ->
      let interior = Faces.interior_reference cfg ~u ~v in
      let inside = Hashtbl.create 16 in
      List.iter (fun z -> Hashtbl.replace inside z ()) interior;
      List.iter
        (fun z ->
          Array.iter
            (fun c ->
              Alcotest.(check bool) "child of interior node is interior" true
                (Hashtbl.mem inside c))
            (Rooted.children tree z))
        interior)
    (Config.fundamental_edges cfg)

let test_interior_disjoint_from_border () =
  let cfg = cfg_of (Gen.grid_diag ~seed:5 ~rows:5 ~cols:5 ()) in
  List.iter
    (fun (u, v) ->
      List.iter
        (fun z ->
          Alcotest.(check bool) "interior not on border" false
            (Faces.on_border cfg ~u ~v z))
        (Faces.interior_reference cfg ~u ~v))
    (Config.fundamental_edges cfg)

(* The central consistency property: local characterization = exact
   reference, across families and spanning trees. *)
let prop_local_interior_matches_reference =
  QCheck.Test.make ~name:"local interior = face-traversal reference" ~count:60
    QCheck.(triple (int_range 0 4) (int_range 8 60) (int_bound 10000))
    (fun (which, n, seed) ->
      let emb =
        match which with
        | 0 -> Gen.grid_diag ~seed ~rows:(max 2 (n / 8)) ~cols:8 ()
        | 1 -> Gen.stacked_triangulation ~seed ~n ()
        | 2 -> Gen.thin ~seed ~keep:0.5 (Gen.stacked_triangulation ~seed ~n ())
        | 3 -> Gen.wheel (max 4 n)
        | _ -> Gen.fan (max 3 n)
      in
      let spanning =
        match seed mod 3 with
        | 0 -> Spanning.Bfs
        | 1 -> Spanning.Dfs
        | _ -> Spanning.Random seed
      in
      let cfg = Config.of_embedded ~spanning emb in
      List.for_all
        (fun (u, v) ->
          let a = List.sort compare (Faces.interior cfg ~u ~v) in
          let b = List.sort compare (Faces.interior_reference cfg ~u ~v) in
          a = b)
        (Config.fundamental_edges cfg))

let prop_is_inside_matches_reference =
  QCheck.Test.make ~name:"is_inside = reference membership" ~count:40
    QCheck.(pair (int_range 8 40) (int_bound 10000))
    (fun (n, seed) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let spanning = if seed mod 2 = 0 then Spanning.Dfs else Spanning.Random seed in
      let cfg = Config.of_embedded ~spanning emb in
      let g = Config.graph cfg in
      List.for_all
        (fun (u, v) ->
          let inside = Hashtbl.create 16 in
          List.iter
            (fun z -> Hashtbl.replace inside z ())
            (Faces.interior_reference cfg ~u ~v);
          let ok = ref true in
          for z = 0 to Graph.n g - 1 do
            if Faces.is_inside cfg ~u ~v z <> Hashtbl.mem inside z then ok := false
          done;
          !ok)
        (Config.fundamental_edges cfg))

(* Geometric ground truth: interior nodes lie inside the drawn polygon. *)
let prop_interior_matches_geometry =
  QCheck.Test.make ~name:"interior = point-in-polygon (straight-line)" ~count:30
    QCheck.(pair (pair (int_range 3 7) (int_range 3 7)) (int_bound 10000))
    (fun ((r, c), seed) ->
      let emb = Gen.grid_diag ~seed ~rows:r ~cols:c () in
      let coords = Option.get (Embedded.coords emb) in
      let spanning = if seed mod 2 = 0 then Spanning.Bfs else Spanning.Dfs in
      let cfg = Config.of_embedded ~spanning emb in
      let tree = Config.tree cfg in
      let g = Config.graph cfg in
      List.for_all
        (fun (u, v) ->
          let poly =
            Rooted.path tree u v |> List.map (fun x -> coords.(x)) |> Array.of_list
          in
          let ok = ref true in
          for z = 0 to Graph.n g - 1 do
            if not (Faces.on_border cfg ~u ~v z) then begin
              if
                Geometry.point_in_polygon poly coords.(z)
                <> Faces.is_inside cfg ~u ~v z
              then ok := false
            end
          done;
          !ok)
        (Config.fundamental_edges cfg))

let test_edge_in_face_self () =
  let cfg = cfg_of (Gen.grid_diag ~seed:2 ~rows:4 ~cols:4 ()) in
  List.iter
    (fun e ->
      let (u, v) = e in
      Alcotest.(check bool) "edge not in own face" false
        (Faces.edge_in_face cfg ~e ~f:(u, v)))
    (Config.fundamental_edges cfg)

let test_edge_in_face_region_containment () =
  (* If f is contained in F_e, then F_f's closed region lies within F_e's:
     interior(F_f) ⊆ interior(F_e) ∪ border(F_e), and the weights differ by
     at most the border length (the paper's monotonicity, made precise). *)
  let cfg = cfg_of ~spanning:Spanning.Dfs (Gen.stacked_triangulation ~seed:6 ~n:40 ()) in
  let edges = Config.fundamental_edges cfg in
  List.iter
    (fun e ->
      List.iter
        (fun f ->
          if e <> f && Faces.edge_in_face cfg ~e ~f then begin
            let (ue, ve) = e and (uf, vf) = f in
            let member z =
              Faces.is_inside cfg ~u:ue ~v:ve z || Faces.on_border cfg ~u:ue ~v:ve z
            in
            List.iter
              (fun z ->
                Alcotest.(check bool)
                  (Printf.sprintf "interior (%d,%d) within (%d,%d)" uf vf ue ve)
                  true (member z))
              (Faces.interior_reference cfg ~u:uf ~v:vf);
            let we = Weights.weight cfg ~u:ue ~v:ve in
            let wf = Weights.weight cfg ~u:uf ~v:vf in
            let border_e = List.length (Faces.border cfg ~u:ue ~v:ve) in
            Alcotest.(check bool)
              (Printf.sprintf "w contained (%d,%d)<=(%d,%d)+border" uf vf ue ve)
              true
              (wf <= we + border_e)
          end)
        edges)
    edges

let test_induced_part_rotation_planar () =
  (* Config.of_part inherits the embedding by restriction; the induced
     rotation must still satisfy Euler's formula. *)
  let emb = Gen.grid_diag ~seed:6 ~rows:6 ~cols:6 () in
  let members = Array.init 24 Fun.id in
  let cfg = Config.of_part ~members ~root:0 emb in
  Alcotest.(check bool) "induced rotation planar" true
    (Repro_embedding.Rotation.is_planar_embedding (Config.graph cfg) (Config.rot cfg));
  (* Local ids map back into the member set. *)
  for v = 0 to Config.n cfg - 1 do
    Alcotest.(check bool) "to_global in members" true
      (Array.mem (Config.to_global cfg v) members)
  done

let test_of_part_requires_connected () =
  let emb = Gen.grid ~rows:3 ~cols:3 in
  (* Two opposite corners only: disconnected member set. *)
  (* The spanning-tree construction cannot cover a disconnected part; the
     failure surfaces as an Invalid_argument from tree assembly. *)
  match Config.of_part ~members:[| 0; 8 |] ~root:0 emb with
  | _ -> Alcotest.fail "disconnected part accepted"
  | exception Invalid_argument _ -> ()

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "fundamental edges" `Quick test_fundamental_edges_are_nontree;
        Alcotest.test_case "border is tree path" `Quick test_border_is_tree_path;
        Alcotest.test_case "classify cases" `Quick test_classify_cases;
        Alcotest.test_case "interior closed under subtrees" `Quick
          test_interior_closed_under_subtrees;
        Alcotest.test_case "interior/border disjoint" `Quick
          test_interior_disjoint_from_border;
        Alcotest.test_case "edge not in own face" `Quick test_edge_in_face_self;
        Alcotest.test_case "induced part rotation planar" `Quick
          test_induced_part_rotation_planar;
        Alcotest.test_case "of_part rejects disconnected" `Quick
          test_of_part_requires_connected;
        Alcotest.test_case "containment implies region order" `Quick
          test_edge_in_face_region_containment;
        qtest prop_local_interior_matches_reference;
        qtest prop_is_inside_matches_reference;
        qtest prop_interior_matches_geometry;
    ]
