(* The composed subroutines (lca, mark-path, Lemma-11 orders, weights,
   Phase 1, faces, Borůvka, re-root) against their centralized
   counterparts.

   The hand-rolled family sweeps and QCheck properties that used to live
   here are now the testkit's "orders", "pipeline" and "forest" oracles
   (lib/testkit/oracle.ml) — each compares the batched executed routine
   against both the serial Composed.Reference choreography and the
   centralized algorithm on fuzzed instances, with pinned round budgets.
   This suite declares those properties and keeps only the deterministic
   edge cases the size-ramped fuzzer rarely reaches: degenerate inputs
   (u = v mark-path, n = 1 orders), a fixed Lemma 9 partition, and a
   distribution check (phase 3 actually fires on triangulations). *)

open Repro_graph
open Repro_embedding
open Repro_tree
open Repro_congest
open Repro_testkit

(* Package a Rooted tree into the distributed knowledge the composed
   subroutines assume every node holds after Phase 1. *)
let knowledge_of tree =
  let n = Rooted.n tree in
  Composed.
    {
      parent = Array.init n (Rooted.parent tree);
      depth = Array.init n (Rooted.depth tree);
      pi_left = Array.init n (Rooted.pi_left tree);
      size = Array.init n (Rooted.size tree);
      root = Rooted.root tree;
    }

let setup ?(spanning = Spanning.Bfs) emb =
  let g = Embedded.graph emb in
  let root = Embedded.outer emb in
  let parent = Spanning.make spanning g ~root in
  let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
  (g, tree, knowledge_of tree)

let test_mark_path_endpoints_equal () =
  let emb = Gen.path 9 in
  let g, _, tk = setup emb in
  let marked, _ = Composed.mark_path g tk ~u:4 ~v:4 in
  Alcotest.(check bool) "self marked" true marked.(4);
  let count = Array.fold_left (fun a m -> if m then a + 1 else a) 0 marked in
  Alcotest.(check int) "only self" 1 count

let test_dfs_orders_single_node () =
  let g = Graph.of_edges ~n:1 [] in
  let orders, phases, _ =
    Composed.dfs_orders g ~children:[| [||] |] ~parent:[| -1 |] ~depth:[| 0 |]
      ~root:0
  in
  Alcotest.(check int) "pi_l" 0 orders.Composed.pi_left.(0);
  Alcotest.(check int) "phases" 0 phases

let test_separator_phase3_executed () =
  (* Not an equivalence check (the "pipeline" oracle does that): this pins
     the *distribution* — on stacked triangulations the in-range-face fast
     path of phase 3 must actually fire most of the time, so the oracle is
     exercising the interesting branch and not just the None fallback. *)
  let valid = ref 0 and skipped = ref 0 in
  List.iter
    (fun seed ->
      let emb = Gen.stacked_triangulation ~seed ~n:80 () in
      let g = Embedded.graph emb in
      let root = Embedded.outer emb in
      let parent = Spanning.bfs g ~root in
      let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
      let n = Graph.n g in
      let rot_orders = Array.init n (Rotation.order (Embedded.rot emb)) in
      let depth = Array.init n (Rooted.depth tree) in
      match Composed.separator_phase3 g ~rot_orders ~parent ~depth ~root with
      | None, _ -> incr skipped
      | Some (_, marked), stats ->
        let sep = ref [] in
        Array.iteri (fun x m -> if m then sep := x :: !sep) marked;
        let cfg =
          Repro_core.Config.of_parts ~graph:g ~rot:(Embedded.rot emb) ~tree ()
        in
        let verdict = Repro_core.Check.check_separator cfg !sep in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d valid executed separator" seed)
          true verdict.Repro_core.Check.valid;
        Alcotest.(check bool) "bandwidth respected" true
          (stats.Composed.max_edge_bits <= Bandwidth.default ~n);
        incr valid)
    [ 1; 2; 3; 4; 5 ];
  (* Triangulations essentially always have an in-range face. *)
  Alcotest.(check bool)
    (Printf.sprintf "phase-3 fired %d times" !valid)
    true (!valid >= 3)

let test_boruvka_lemma9_parts () =
  (* Lemma 9: per-part spanning trees in parallel (0/1 weights), on a fixed
     two-part split the fuzzer's random partitions won't reproduce. *)
  let emb = Gen.grid ~rows:6 ~cols:6 in
  let g = Embedded.graph emb in
  let parts = Array.init 36 (fun v -> if v mod 6 < 3 then 0 else 1) in
  let (parent, _, _), _, _ = Composed.spanning_forest g ~parts () in
  let roots = ref 0 in
  for v = 0 to 35 do
    if parent.(v) = -1 then incr roots
    else
      Alcotest.(check int) "parent stays in part" parts.(v) parts.(parent.(v))
  done;
  Alcotest.(check int) "one tree per part" 2 !roots

let suites =
  Suite.make __MODULE__
    [
      Suite.property ~count:35 ~max_size:72 ~seed:301 ~oracles:[ "orders" ]
        "Lemma-11 orders = face walk = centralized";
      Suite.property ~count:30 ~max_size:64 ~seed:302 ~oracles:[ "pipeline" ]
        "phase1/phase3/forest = serial oracle = centralized";
      Suite.property ~count:25 ~max_size:56 ~seed:303 ~oracles:[ "forest" ]
        "per-part Borůvka forest on random connected partitions";
      Alcotest.test_case "mark-path self" `Quick test_mark_path_endpoints_equal;
      Alcotest.test_case "dfs-orders single node" `Quick
        test_dfs_orders_single_node;
      Alcotest.test_case "separator phase-3 executed" `Quick
        test_separator_phase3_executed;
      Alcotest.test_case "boruvka Lemma 9 parts" `Quick
        test_boruvka_lemma9_parts;
    ]
