open Repro_graph
open Repro_embedding
open Repro_tree
open Repro_congest

let qtest = QCheck_alcotest.to_alcotest

(* Package a Rooted tree into the distributed knowledge the composed
   subroutines assume every node holds after Phase 1. *)
let knowledge_of tree =
  let n = Rooted.n tree in
  Composed.
    {
      parent = Array.init n (Rooted.parent tree);
      depth = Array.init n (Rooted.depth tree);
      pi_left = Array.init n (Rooted.pi_left tree);
      size = Array.init n (Rooted.size tree);
      root = Rooted.root tree;
    }

let setup ?(spanning = Spanning.Bfs) emb =
  let g = Embedded.graph emb in
  let root = Embedded.outer emb in
  let parent = Spanning.make spanning g ~root in
  let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
  (g, tree, knowledge_of tree)

let test_lca_matches_centralized () =
  let emb = Gen.grid_diag ~seed:2 ~rows:6 ~cols:6 () in
  let g, tree, tk = setup ~spanning:Spanning.Dfs emb in
  let rng = Repro_util.Rng.create 3 in
  for _ = 1 to 20 do
    let u = Repro_util.Rng.int rng (Graph.n g) in
    let v = Repro_util.Rng.int rng (Graph.n g) in
    let w, stats = Composed.lca g tk ~u ~v in
    Alcotest.(check int) (Printf.sprintf "lca(%d,%d)" u v) (Rooted.lca tree u v) w;
    Alcotest.(check bool) "positive rounds" true (stats.Composed.rounds > 0)
  done

let test_mark_path_matches_centralized () =
  let emb = Gen.stacked_triangulation ~seed:4 ~n:60 () in
  let g, tree, tk = setup ~spanning:(Spanning.Random 7) emb in
  let rng = Repro_util.Rng.create 5 in
  for _ = 1 to 15 do
    let u = Repro_util.Rng.int rng (Graph.n g) in
    let v = Repro_util.Rng.int rng (Graph.n g) in
    let marked, _ = Composed.mark_path g tk ~u ~v in
    let expected = Rooted.path tree u v in
    List.iter
      (fun x -> Alcotest.(check bool) "on path marked" true marked.(x))
      expected;
    let count = Array.fold_left (fun a m -> if m then a + 1 else a) 0 marked in
    Alcotest.(check int) "exactly the path" (List.length expected) count
  done

let test_mark_path_rounds_bounded () =
  (* A constant number of broadcasts/aggregations, each O(depth): on a BFS
     tree the total executed rounds are O(D). *)
  let emb = Gen.grid ~rows:12 ~cols:12 in
  let g, _, tk = setup emb in
  let _, stats = Composed.mark_path g tk ~u:5 ~v:140 in
  let depth = Array.fold_left max 0 tk.Composed.depth in
  Alcotest.(check bool)
    (Printf.sprintf "rounds %d vs depth %d" stats.Composed.rounds depth)
    true
    (stats.Composed.rounds <= 16 * (depth + 3))

let test_mark_path_endpoints_equal () =
  let emb = Gen.path 9 in
  let g, _, tk = setup emb in
  let marked, _ = Composed.mark_path g tk ~u:4 ~v:4 in
  Alcotest.(check bool) "self marked" true marked.(4);
  let count = Array.fold_left (fun a m -> if m then a + 1 else a) 0 marked in
  Alcotest.(check int) "only self" 1 count

let test_dfs_orders_executed () =
  List.iter
    (fun (emb, sp) ->
      let g = Embedded.graph emb in
      let root = Embedded.outer emb in
      let parent = Spanning.make sp g ~root in
      let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
      let n = Graph.n g in
      let children = Array.init n (Rooted.children tree) in
      let depth = Array.init n (Rooted.depth tree) in
      let orders, phases, stats =
        Composed.dfs_orders g ~children ~parent ~depth ~root
      in
      for v = 0 to n - 1 do
        Alcotest.(check int)
          (Printf.sprintf "%s pi_l(%d)" (Embedded.name emb) v)
          (Rooted.pi_left tree v) orders.Composed.pi_left.(v);
        Alcotest.(check int)
          (Printf.sprintf "%s pi_r(%d)" (Embedded.name emb) v)
          (Rooted.pi_right tree v) orders.Composed.pi_right.(v)
      done;
      (* Merging phases are logarithmic in the tree depth. *)
      let tree_depth = Array.fold_left max 0 depth in
      let bound =
        int_of_float (ceil (log (float_of_int (max 2 tree_depth)) /. log 2.0)) + 2
      in
      Alcotest.(check bool)
        (Printf.sprintf "phases %d <= %d" phases bound)
        true (phases <= bound);
      Alcotest.(check bool) "rounds measured" true (stats.Composed.rounds > 0))
    [
      (Gen.path 30, Spanning.Bfs);
      (Gen.grid ~rows:6 ~cols:6, Spanning.Dfs);
      (Gen.stacked_triangulation ~seed:4 ~n:60 (), Spanning.Random 3);
      (Gen.star 15, Spanning.Bfs);
    ]

let test_dfs_orders_single_node () =
  let g = Graph.of_edges ~n:1 [] in
  let orders, phases, _ =
    Composed.dfs_orders g ~children:[| [||] |] ~parent:[| -1 |] ~depth:[| 0 |]
      ~root:0
  in
  Alcotest.(check int) "pi_l" 0 orders.Composed.pi_left.(0);
  Alcotest.(check int) "phases" 0 phases

let local_view_of emb tree =
  let n = Rooted.n tree in
  Composed.
    {
      lparent = Array.init n (Rooted.parent tree);
      ldepth = Array.init n (Rooted.depth tree);
      lsize = Array.init n (Rooted.size tree);
      lrot = Array.init n (Rotation.order (Embedded.rot emb));
      lchildren = Array.init n (Rooted.children tree);
      lpi_l = Array.init n (Rooted.pi_left tree);
      lpi_r = Array.init n (Rooted.pi_right tree);
    }

let test_weights_executed () =
  List.iter
    (fun (emb, sp) ->
      let g = Embedded.graph emb in
      let root = Embedded.outer emb in
      let parent = Spanning.make sp g ~root in
      let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
      let cfg =
        Repro_core.Config.of_parts ~graph:g ~rot:(Embedded.rot emb) ~tree ()
      in
      let computed, stats = Composed.weights g (local_view_of emb tree) in
      Alcotest.(check int)
        (Embedded.name emb ^ " all edges covered")
        (List.length (Repro_core.Config.fundamental_edges cfg))
        (List.length computed);
      List.iter
        (fun ((u, v), w) ->
          Alcotest.(check int)
            (Printf.sprintf "%s w(%d,%d)" (Embedded.name emb) u v)
            (Repro_core.Weights.weight cfg ~u ~v)
            w)
        computed;
      (* Constant executed rounds once Phase 1 data is local (Lemma 12). *)
      Alcotest.(check bool)
        (Printf.sprintf "rounds %d constant" stats.Composed.rounds)
        true
        (stats.Composed.rounds <= 8))
    [
      (Gen.grid ~rows:6 ~cols:6, Spanning.Dfs);
      (Gen.grid_diag ~seed:2 ~rows:6 ~cols:6 (), Spanning.Random 3);
      (Gen.stacked_triangulation ~seed:4 ~n:60 (), Spanning.Bfs);
      (Gen.wheel 14, Spanning.Dfs);
    ]

let test_phase1_matches_centralized () =
  let emb = Gen.stacked_triangulation ~seed:9 ~n:50 () in
  let g = Embedded.graph emb in
  let root = Embedded.outer emb in
  let parent = Spanning.dfs g ~root in
  let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
  let n = Graph.n g in
  let rot_orders = Array.init n (Rotation.order (Embedded.rot emb)) in
  let depth = Array.init n (Rooted.depth tree) in
  let lv, _ = Composed.phase1 g ~rot_orders ~parent ~depth ~root in
  for v = 0 to n - 1 do
    Alcotest.(check int) "size" (Rooted.size tree v) lv.Composed.lsize.(v);
    Alcotest.(check int) "pi_l" (Rooted.pi_left tree v) lv.Composed.lpi_l.(v);
    Alcotest.(check int) "pi_r" (Rooted.pi_right tree v) lv.Composed.lpi_r.(v);
    Alcotest.(check (array int)) "children" (Rooted.children tree v)
      lv.Composed.lchildren.(v)
  done

let test_separator_phase3_executed () =
  let valid = ref 0 and skipped = ref 0 in
  List.iter
    (fun seed ->
      let emb = Gen.stacked_triangulation ~seed ~n:80 () in
      let g = Embedded.graph emb in
      let root = Embedded.outer emb in
      let parent = Spanning.bfs g ~root in
      let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
      let n = Graph.n g in
      let rot_orders = Array.init n (Rotation.order (Embedded.rot emb)) in
      let depth = Array.init n (Rooted.depth tree) in
      match Composed.separator_phase3 g ~rot_orders ~parent ~depth ~root with
      | None, _ -> incr skipped
      | Some (_, marked), stats ->
        let sep = ref [] in
        Array.iteri (fun x m -> if m then sep := x :: !sep) marked;
        let cfg =
          Repro_core.Config.of_parts ~graph:g ~rot:(Embedded.rot emb) ~tree ()
        in
        let verdict = Repro_core.Check.check_separator cfg !sep in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d valid executed separator" seed)
          true verdict.Repro_core.Check.valid;
        Alcotest.(check bool) "bandwidth respected" true
          (stats.Composed.max_edge_bits <= Bandwidth.default ~n);
        incr valid)
    [ 1; 2; 3; 4; 5 ];
  (* Triangulations essentially always have an in-range face. *)
  Alcotest.(check bool)
    (Printf.sprintf "phase-3 fired %d times" !valid)
    true (!valid >= 3)

let test_detect_face_executed () =
  List.iter
    (fun (emb, sp) ->
      let g = Embedded.graph emb in
      let root = Embedded.outer emb in
      let parent = Spanning.make sp g ~root in
      let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
      let cfg =
        Repro_core.Config.of_parts ~graph:g ~rot:(Embedded.rot emb) ~tree ()
      in
      let lv = local_view_of emb tree in
      List.iter
        (fun (u, v) ->
          let fm, stats = Composed.detect_face g lv ~u ~v in
          let expected_inside =
            Repro_core.Faces.interior_reference cfg ~u ~v |> List.sort compare
          in
          let got_inside = ref [] in
          Array.iteri
            (fun z m -> if m then got_inside := z :: !got_inside)
            fm.Composed.inside;
          Alcotest.(check (list int))
            (Printf.sprintf "%s interior of (%d,%d)" (Embedded.name emb) u v)
            expected_inside
            (List.sort compare !got_inside);
          let expected_border =
            Repro_core.Faces.border cfg ~u ~v |> List.sort compare
          in
          let got_border = ref [] in
          Array.iteri
            (fun z m -> if m then got_border := z :: !got_border)
            fm.Composed.border;
          Alcotest.(check (list int)) "border" expected_border
            (List.sort compare !got_border);
          Alcotest.(check bool) "rounds measured" true (stats.Composed.rounds > 0))
        (Repro_core.Config.fundamental_edges cfg))
    [
      (Gen.grid ~rows:5 ~cols:5, Spanning.Dfs);
      (Gen.stacked_triangulation ~seed:4 ~n:40 (), Spanning.Random 3);
      (Gen.wheel 12, Spanning.Dfs);
    ]

let test_hidden_executed () =
  (* Differential: executed Lemma 16 = centralized Definition 4. *)
  let checked = ref 0 and with_hiding = ref 0 in
  List.iter
    (fun seed ->
      let emb = Gen.stacked_triangulation ~seed ~n:60 () in
      let g = Embedded.graph emb in
      let root = Embedded.outer emb in
      let parent = Spanning.make (Spanning.Random seed) g ~root in
      let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
      let cfg =
        Repro_core.Config.of_parts ~graph:g ~rot:(Embedded.rot emb) ~tree ()
      in
      let lv = local_view_of emb tree in
      List.iter
        (fun ((u, v) as e) ->
          let interior = Repro_core.Faces.interior_reference cfg ~u ~v in
          let leaves = List.filter (Rooted.is_leaf tree) interior in
          List.iter
            (fun t ->
              incr checked;
              let expected =
                Repro_core.Hidden.hiding_edges cfg ~e ~t |> List.sort compare
              in
              if expected <> [] then incr with_hiding;
              let result, stats = Composed.hidden g lv ~u ~v ~t in
              let got =
                Array.to_list result |> List.concat |> List.sort_uniq compare
              in
              Alcotest.(check (list (pair int int)))
                (Printf.sprintf "seed=%d e=(%d,%d) t=%d" seed u v t)
                expected got;
              Alcotest.(check bool) "rounds measured" true (stats.Composed.rounds > 0))
            (List.filteri (fun i _ -> i < 3) leaves))
        (List.filteri (fun i _ -> i < 8) (Repro_core.Config.fundamental_edges cfg)))
    [ 1; 2; 3 ];
  Alcotest.(check bool)
    (Printf.sprintf "exercised hiding cases (%d/%d)" !with_hiding !checked)
    true (!with_hiding > 0)

let test_boruvka_spanning_forest () =
  let emb = Gen.grid_diag ~seed:3 ~rows:7 ~cols:7 () in
  let g = Embedded.graph emb in
  let (parent, depth, frag), phases, stats = Composed.spanning_forest g () in
  let n = Graph.n g in
  let roots = ref 0 in
  for v = 0 to n - 1 do
    if parent.(v) = -1 then incr roots
    else begin
      Alcotest.(check bool) "tree edge" true (Graph.mem_edge g v parent.(v));
      Alcotest.(check int) "depth chain" (depth.(parent.(v)) + 1) depth.(v)
    end;
    Alcotest.(check int) "single fragment" frag.(0) frag.(v)
  done;
  Alcotest.(check int) "one root" 1 !roots;
  Alcotest.(check bool) "few phases" true (phases <= 8);
  Alcotest.(check bool) "rounds measured" true (stats.Composed.rounds > 0)

let test_boruvka_lemma9_parts () =
  (* Lemma 9: per-part spanning trees in parallel (0/1 weights). *)
  let emb = Gen.grid ~rows:6 ~cols:6 in
  let g = Embedded.graph emb in
  let parts = Array.init 36 (fun v -> if v mod 6 < 3 then 0 else 1) in
  let (parent, _, _), _, _ = Composed.spanning_forest g ~parts () in
  let roots = ref 0 in
  for v = 0 to 35 do
    if parent.(v) = -1 then incr roots
    else
      Alcotest.(check int) "parent stays in part" parts.(v) parts.(parent.(v))
  done;
  Alcotest.(check int) "one tree per part" 2 !roots

let test_reroot_executed () =
  List.iter
    (fun (emb, sp) ->
      let g = Embedded.graph emb in
      let root = Embedded.outer emb in
      let parent = Spanning.make sp g ~root in
      let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
      let lv = local_view_of emb tree in
      let n = Graph.n g in
      List.iter
        (fun new_root ->
          let (p', d'), _ = Composed.reroot g lv ~new_root in
          let tree' = Rooted.reroot ~rot:(Embedded.rot emb) tree new_root in
          for v = 0 to n - 1 do
            Alcotest.(check int)
              (Printf.sprintf "%s parent(%d) root=%d" (Embedded.name emb) v new_root)
              (Rooted.parent tree' v) p'.(v);
            Alcotest.(check int) "depth" (Rooted.depth tree' v) d'.(v)
          done)
        [ 0; n / 2; n - 1 ])
    [
      (Gen.grid ~rows:5 ~cols:5, Spanning.Dfs);
      (Gen.stacked_triangulation ~seed:4 ~n:50 (), Spanning.Random 3);
      (Gen.path 11, Spanning.Bfs);
    ]

let prop_detect_face_executed =
  QCheck.Test.make ~name:"executed detect-face = reference" ~count:15
    QCheck.(triple (int_range 5 50) (int_bound 10000) (int_range 0 2))
    (fun (n, seed, spi) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let g = Embedded.graph emb in
      let root = Embedded.outer emb in
      let sp =
        match spi with 0 -> Spanning.Bfs | 1 -> Spanning.Dfs | _ -> Spanning.Random seed
      in
      let parent = Spanning.make sp g ~root in
      let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
      let cfg =
        Repro_core.Config.of_parts ~graph:g ~rot:(Embedded.rot emb) ~tree ()
      in
      let lv = local_view_of emb tree in
      List.for_all
        (fun (u, v) ->
          let fm, _ = Composed.detect_face g lv ~u ~v in
          let expected = Hashtbl.create 16 in
          List.iter
            (fun z -> Hashtbl.replace expected z ())
            (Repro_core.Faces.interior_reference cfg ~u ~v);
          let ok = ref true in
          Array.iteri
            (fun z m -> if m <> Hashtbl.mem expected z then ok := false)
            fm.Composed.inside;
          !ok)
        (Repro_core.Config.fundamental_edges cfg))

let prop_dfs_orders_executed =
  QCheck.Test.make ~name:"executed Lemma-11 orders = centralized" ~count:25
    QCheck.(triple (int_range 4 70) (int_bound 10000) (int_range 0 2))
    (fun (n, seed, spi) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let g = Embedded.graph emb in
      let root = Embedded.outer emb in
      let sp =
        match spi with 0 -> Spanning.Bfs | 1 -> Spanning.Dfs | _ -> Spanning.Random seed
      in
      let parent = Spanning.make sp g ~root in
      let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
      let nn = Graph.n g in
      let children = Array.init nn (Rooted.children tree) in
      let depth = Array.init nn (Rooted.depth tree) in
      let orders, _, _ = Composed.dfs_orders g ~children ~parent ~depth ~root in
      let ok = ref true in
      for v = 0 to nn - 1 do
        if orders.Composed.pi_left.(v) <> Rooted.pi_left tree v then ok := false;
        if orders.Composed.pi_right.(v) <> Rooted.pi_right tree v then ok := false
      done;
      !ok)

let prop_lca_composed =
  QCheck.Test.make ~name:"composed LCA = centralized LCA" ~count:30
    QCheck.(triple (int_range 5 60) (int_bound 10000) (int_bound 10000))
    (fun (n, seed, qseed) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let g, tree, tk = setup ~spanning:Spanning.Dfs emb in
      let rng = Repro_util.Rng.create qseed in
      let ok = ref true in
      for _ = 1 to 5 do
        let u = Repro_util.Rng.int rng (Graph.n g) in
        let v = Repro_util.Rng.int rng (Graph.n g) in
        let w, _ = Composed.lca g tk ~u ~v in
        if w <> Rooted.lca tree u v then ok := false
      done;
      !ok)

let suites =
  [
    ( "composed",
      [
        Alcotest.test_case "lca matches" `Quick test_lca_matches_centralized;
        Alcotest.test_case "mark-path matches" `Quick test_mark_path_matches_centralized;
        Alcotest.test_case "mark-path rounds" `Quick test_mark_path_rounds_bounded;
        Alcotest.test_case "mark-path self" `Quick test_mark_path_endpoints_equal;
        Alcotest.test_case "dfs-orders executed" `Quick test_dfs_orders_executed;
        Alcotest.test_case "dfs-orders single node" `Quick
          test_dfs_orders_single_node;
        Alcotest.test_case "weights executed" `Quick test_weights_executed;
        Alcotest.test_case "phase1 executed" `Quick test_phase1_matches_centralized;
        Alcotest.test_case "separator phase-3 executed" `Quick
          test_separator_phase3_executed;
        Alcotest.test_case "detect-face executed" `Quick test_detect_face_executed;
        Alcotest.test_case "hidden executed" `Quick test_hidden_executed;
        Alcotest.test_case "boruvka forest" `Quick test_boruvka_spanning_forest;
        Alcotest.test_case "boruvka Lemma 9 parts" `Quick test_boruvka_lemma9_parts;
        Alcotest.test_case "re-root executed" `Quick test_reroot_executed;
        qtest prop_detect_face_executed;
        qtest prop_dfs_orders_executed;
        qtest prop_lca_composed;
      ] );
  ]
