open Repro_graph
open Repro_embedding
open Repro_congest

let qtest = QCheck_alcotest.to_alcotest

let test_bfs_tree_grid () =
  let emb = Gen.grid ~rows:5 ~cols:6 in
  let g = Embedded.graph emb in
  let (parent, dist), stats = Prim.bfs_tree g ~root:0 in
  let expected = Algo.bfs_dist g 0 in
  Alcotest.(check (array int)) "distances" expected dist;
  Alcotest.(check int) "root parent" (-1) parent.(0);
  for v = 1 to Graph.n g - 1 do
    Alcotest.(check bool) "parent edge" true (Graph.mem_edge g v parent.(v));
    Alcotest.(check int) "parent one closer" (dist.(v) - 1) dist.(parent.(v))
  done;
  (* Flooding finishes within eccentricity + O(1) rounds. *)
  let ecc = Algo.eccentricity g 0 in
  Alcotest.(check bool) "rounds near ecc" true (stats.Engine.rounds <= ecc + 2)

let test_bfs_single_node () =
  let g = Graph.of_edges ~n:1 [] in
  let (parent, dist), stats = Prim.bfs_tree g ~root:0 in
  Alcotest.(check int) "parent" (-1) parent.(0);
  Alcotest.(check int) "dist" 0 dist.(0);
  Alcotest.(check int) "zero rounds" 0 stats.Engine.rounds

let test_subtree_sums () =
  let emb = Gen.grid ~rows:4 ~cols:4 in
  let g = Embedded.graph emb in
  let (parent, _), _ = Prim.bfs_tree g ~root:0 in
  let values = Array.make 16 1 in
  let sums, _ = Prim.subtree_agg g ~parent ~op:Prim.Sum ~values in
  Alcotest.(check int) "root sum = n" 16 sums.(0);
  (* Compare against centralized subtree sizes. *)
  let t = Repro_tree.Rooted.build ~rot:(Embedded.rot emb) ~root:0 parent in
  for v = 0 to 15 do
    Alcotest.(check int) "subtree size" (Repro_tree.Rooted.size t v) sums.(v)
  done

let test_subtree_max () =
  let emb = Gen.path 6 in
  let g = Embedded.graph emb in
  let parent = [| -1; 0; 1; 2; 3; 4 |] in
  let values = [| 3; 9; 2; 7; 1; 5 |] in
  let maxs, _ = Prim.subtree_agg g ~parent ~op:Prim.Max ~values in
  Alcotest.(check int) "root max" 9 maxs.(0);
  Alcotest.(check int) "mid max" 7 maxs.(2);
  Alcotest.(check int) "leaf max" 5 maxs.(5)

let test_ancestor_sum () =
  (* Path rooted at one end: node k's ancestor-sum is the prefix sum. *)
  let emb = Gen.path 7 in
  let g = Embedded.graph emb in
  let parent = [| -1; 0; 1; 2; 3; 4; 5 |] in
  let values = [| 1; 2; 3; 4; 5; 6; 7 |] in
  let sums, _ = Prim.ancestor_agg g ~parent ~op:Prim.Sum ~values in
  Alcotest.(check (array int)) "prefix sums" [| 1; 3; 6; 10; 15; 21; 28 |] sums

let test_ancestor_min_matches_naive () =
  let emb = Gen.stacked_triangulation ~seed:6 ~n:50 () in
  let g = Embedded.graph emb in
  let (parent, _), _ = Prim.bfs_tree g ~root:0 in
  let rng = Repro_util.Rng.create 8 in
  let values = Array.init 50 (fun _ -> Repro_util.Rng.int rng 1000) in
  let mins, _ = Prim.ancestor_agg g ~parent ~op:Prim.Min ~values in
  for v = 0 to 49 do
    let rec naive x = if x < 0 then max_int else min values.(x) (naive parent.(x)) in
    Alcotest.(check int) "ancestor min" (naive v) mins.(v)
  done

let test_broadcast () =
  let emb = Gen.grid ~rows:3 ~cols:5 in
  let g = Embedded.graph emb in
  let (parent, _), _ = Prim.bfs_tree g ~root:7 in
  let values, stats = Prim.broadcast g ~parent ~root:7 ~value:12345 in
  Array.iter (fun v -> Alcotest.(check int) "value received" 12345 v) values;
  Alcotest.(check bool) "rounds bounded by depth+2" true
    (stats.Engine.rounds <= Algo.eccentricity g 7 + 3)

let test_partwise_sum () =
  let emb = Gen.grid ~rows:4 ~cols:6 in
  let g = Embedded.graph emb in
  let n = Graph.n g in
  let (parent, _), _ = Prim.bfs_tree g ~root:0 in
  (* Parts = columns of the grid (connected vertical strips). *)
  let parts = Array.init n (fun v -> v mod 6) in
  let values = Array.init n (fun v -> v) in
  let answers, stats = Prim.partwise g ~parent ~op:Prim.Sum ~parts ~values in
  let expected = Array.make 6 0 in
  for v = 0 to n - 1 do
    expected.(parts.(v)) <- expected.(parts.(v)) + v
  done;
  for v = 0 to n - 1 do
    Alcotest.(check int) "part sum" expected.(parts.(v)) answers.(v)
  done;
  (* O(depth + k): generous constant-factor check. *)
  let bound = 4 * (Algo.eccentricity g 0 + 6 + 4) in
  Alcotest.(check bool) "pipelined rounds" true (stats.Engine.rounds <= bound)

let test_partwise_min_singletons () =
  (* Every node its own part: answers are the nodes' own values. *)
  let emb = Gen.cycle 12 in
  let g = Embedded.graph emb in
  let (parent, _), _ = Prim.bfs_tree g ~root:0 in
  let parts = Array.init 12 Fun.id in
  let values = Array.init 12 (fun v -> 100 - v) in
  let answers, _ = Prim.partwise g ~parent ~op:Prim.Min ~parts ~values in
  Alcotest.(check (array int)) "own values" values answers

let test_partwise_one_part () =
  let emb = Gen.stacked_triangulation ~seed:3 ~n:40 () in
  let g = Embedded.graph emb in
  let (parent, _), _ = Prim.bfs_tree g ~root:0 in
  let parts = Array.make 40 0 in
  let values = Array.init 40 Fun.id in
  let answers, _ = Prim.partwise g ~parent ~op:Prim.Max ~parts ~values in
  Array.iter (fun a -> Alcotest.(check int) "global max" 39 a) answers

let test_bandwidth_enforced () =
  (* A message bigger than the bandwidth must be rejected. *)
  let g = Graph.of_edges ~n:2 [ (0, 1) ] in
  let module Big = struct
    type input = unit
    type state = bool
    type msg = unit
    type output = unit

    let msg_bits () = 10_000
    let init ~n:_ ~id ~neighbors:_ () =
      if id = 0 then (true, [ (1, ()) ]) else (true, [])
    let step ~round:_ ~id:_ st ~inbox:_ = (st, [])
    let finished st = st
    let output _ = ()
  end in
  let module E = Engine.Make (Big) in
  Alcotest.check_raises "bandwidth"
    (Engine.Bandwidth_exceeded { src = 0; dst = 1; bits = 10_000; limit = 32 })
    (fun () -> ignore (E.run ~bandwidth:32 g ~input:[| (); () |]))

let test_nonedge_rejected () =
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  let module Bad = struct
    type input = unit
    type state = bool
    type msg = unit
    type output = unit

    let msg_bits () = 1
    let init ~n:_ ~id ~neighbors:_ () =
      if id = 0 then (true, [ (2, ()) ]) else (true, [])
    let step ~round:_ ~id:_ st ~inbox:_ = (st, [])
    let finished st = st
    let output _ = ()
  end in
  let module E = Engine.Make (Bad) in
  Alcotest.check_raises "non-edge"
    (Invalid_argument "Engine: message along a non-edge") (fun () ->
      ignore (E.run g ~input:[| (); (); () |]))

let test_nontermination_detected () =
  (* A chatterbox protocol that never finishes must hit the round cap. *)
  let g = Graph.of_edges ~n:2 [ (0, 1) ] in
  let module Forever = struct
    type input = unit
    type state = unit
    type msg = unit
    type output = unit

    let msg_bits () = 1
    let init ~n:_ ~id:_ ~neighbors:_ () = ((), [])
    let step ~round:_ ~id st ~inbox:_ = (st, [ ((id + 1) mod 2, ()) ])
    let finished _ = false
    let output _ = ()
  end in
  let module E = Engine.Make (Forever) in
  Alcotest.check_raises "cap" (Engine.Did_not_terminate { max_rounds = 50 })
    (fun () -> ignore (E.run ~max_rounds:50 g ~input:[| (); () |]))

let test_duplicate_message_rejected () =
  (* Two messages on the same edge in one round violate the model. *)
  let g = Graph.of_edges ~n:2 [ (0, 1) ] in
  let module Dup = struct
    type input = unit
    type state = bool
    type msg = unit
    type output = unit

    let msg_bits () = 1
    let init ~n:_ ~id ~neighbors:_ () =
      if id = 0 then (true, [ (1, ()); (1, ()) ]) else (true, [])
    let step ~round:_ ~id:_ st ~inbox:_ = (st, [])
    let finished st = st
    let output _ = ()
  end in
  let module E = Engine.Make (Dup) in
  Alcotest.check_raises "duplicate" (Engine.Duplicate_message { src = 0; dst = 1 })
    (fun () -> ignore (E.run g ~input:[| (); () |]))

let test_rounds_accountant () =
  let r = Rounds.create ~n:1024 ~d:10 () in
  Alcotest.(check (float 1e-9)) "pa cost" (10.0 *. 100.0) (Rounds.pa_cost r);
  Rounds.charge_pa r ~label:"x";
  Rounds.charge_pa r ~label:"x" ~units:2;
  Alcotest.(check (float 1e-9)) "total" (3.0 *. 1000.0) (Rounds.total r);
  match Rounds.breakdown r with
  | [ ("x", rounds, calls) ] ->
    Alcotest.(check (float 1e-9)) "breakdown rounds" 3000.0 rounds;
    Alcotest.(check int) "breakdown calls" 2 calls
  | _ -> Alcotest.fail "unexpected breakdown"

let test_rounds_subroutine_charges () =
  let r = Rounds.create ~n:256 ~d:5 () in
  Rounds.charge_dfs_order r;
  (* log2 256 = 8 phases, each one PA = 5 * 64 rounds. *)
  Alcotest.(check (float 1e-9)) "dfs-order" (8.0 *. 320.0) (Rounds.total r)

let prop_partwise_matches_reference =
  QCheck.Test.make ~name:"partwise aggregation matches reference" ~count:30
    QCheck.(triple (int_range 2 60) (int_range 1 10) (int_bound 1000))
    (fun (n, nparts, seed) ->
      let emb = Gen.stacked_triangulation ~seed ~n:(max 4 n) () in
      let g = Embedded.graph emb in
      let n = Graph.n g in
      let rng = Repro_util.Rng.create seed in
      let (parent, _), _ = Prim.bfs_tree g ~root:0 in
      let parts = Array.init n (fun _ -> Repro_util.Rng.int rng nparts) in
      let values = Array.init n (fun _ -> Repro_util.Rng.int rng 1000) in
      let answers, _ = Prim.partwise g ~parent ~op:Prim.Min ~parts ~values in
      let expected = Hashtbl.create 8 in
      Array.iteri
        (fun v p ->
          let cur = Hashtbl.find_opt expected p in
          Hashtbl.replace expected p
            (match cur with None -> values.(v) | Some x -> min x values.(v)))
        parts;
      Array.for_all Fun.id
        (Array.mapi (fun v a -> a = Hashtbl.find expected parts.(v)) answers))

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "bfs tree grid" `Quick test_bfs_tree_grid;
        Alcotest.test_case "bfs single node" `Quick test_bfs_single_node;
        Alcotest.test_case "subtree sums" `Quick test_subtree_sums;
        Alcotest.test_case "subtree max" `Quick test_subtree_max;
        Alcotest.test_case "ancestor sum" `Quick test_ancestor_sum;
        Alcotest.test_case "ancestor min" `Quick test_ancestor_min_matches_naive;
        Alcotest.test_case "broadcast" `Quick test_broadcast;
        Alcotest.test_case "partwise sum" `Quick test_partwise_sum;
        Alcotest.test_case "partwise singletons" `Quick test_partwise_min_singletons;
        Alcotest.test_case "partwise one part" `Quick test_partwise_one_part;
        Alcotest.test_case "bandwidth enforced" `Quick test_bandwidth_enforced;
        Alcotest.test_case "non-edge rejected" `Quick test_nonedge_rejected;
        Alcotest.test_case "non-termination detected" `Quick
          test_nontermination_detected;
        Alcotest.test_case "duplicate message rejected" `Quick
          test_duplicate_message_rejected;
        Alcotest.test_case "rounds accountant" `Quick test_rounds_accountant;
        Alcotest.test_case "subroutine charges" `Quick test_rounds_subroutine_charges;
        qtest prop_partwise_matches_reference;
    ]
