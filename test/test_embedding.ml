open Repro_graph
open Repro_embedding

let qtest = QCheck_alcotest.to_alcotest

let all_families_small =
  [
    Gen.grid ~rows:4 ~cols:5;
    Gen.grid_diag ~seed:3 ~rows:4 ~cols:4 ();
    Gen.stacked_triangulation ~seed:5 ~n:30 ();
    Gen.thin ~seed:5 ~keep:0.5 (Gen.stacked_triangulation ~seed:5 ~n:40 ());
    Gen.path 7;
    Gen.cycle 8;
    Gen.star 9;
    Gen.wheel 10;
    Gen.fan 11;
    Gen.random_tree ~seed:2 ~n:25 ();
    Gen.caterpillar ~spine:5 ~legs:3;
  ]

let test_generators_valid () =
  List.iter
    (fun emb ->
      let name = Embedded.name emb in
      Alcotest.(check bool) (name ^ " connected") true
        (Algo.is_connected (Embedded.graph emb));
      Alcotest.(check bool) (name ^ " planar embedding") true
        (Embedded.is_valid emb))
    all_families_small

let test_generators_straight_line () =
  List.iter
    (fun emb ->
      match Embedded.coords emb with
      | None -> ()
      | Some coords ->
        Alcotest.(check bool)
          (Embedded.name emb ^ " no crossings")
          true
          (Geometry.straight_line_planar (Embedded.graph emb) coords))
    all_families_small

let test_grid_shape () =
  let emb = Gen.grid ~rows:3 ~cols:4 in
  let g = Embedded.graph emb in
  Alcotest.(check int) "n" 12 (Graph.n g);
  (* 3*(4-1) horizontal + 4*(3-1) vertical *)
  Alcotest.(check int) "m" 17 (Graph.m g)

let test_grid_diag_shape () =
  let emb = Gen.grid_diag ~seed:1 ~rows:3 ~cols:3 () in
  let g = Embedded.graph emb in
  Alcotest.(check int) "n" 9 (Graph.n g);
  Alcotest.(check int) "m = grid + cells" (12 + 4) (Graph.m g)

let test_stacked_is_triangulation () =
  let emb = Gen.stacked_triangulation ~seed:9 ~n:50 () in
  let g = Embedded.graph emb in
  (* Stacked triangulations have exactly 3 + 3*(n-3) edges. *)
  Alcotest.(check int) "m" (3 + (3 * 47)) (Graph.m g);
  Alcotest.(check bool) "valid" true (Embedded.is_valid emb)

let test_rotation_positions () =
  let emb = Gen.grid ~rows:2 ~cols:2 in
  let rot = Embedded.rot emb in
  (* Vertex 0 at (0,0) has neighbours 1 (east) and 2 (north). *)
  let order = Rotation.order rot 0 in
  Alcotest.(check int) "degree" 2 (Array.length order);
  Alcotest.(check int) "next cw wraps" (Rotation.next_clockwise rot 0 order.(1))
    order.(0)

let test_rotation_order_from () =
  let emb = Gen.wheel 8 in
  let rot = Embedded.rot emb in
  let hub_order = Rotation.order rot 0 in
  let first = hub_order.(3) in
  let reordered = Rotation.order_from rot 0 ~first in
  Alcotest.(check int) "starts at first" first reordered.(0);
  let sorted a =
    let c = Array.copy a in
    Array.sort compare c;
    c
  in
  Alcotest.(check (array int)) "same multiset" (sorted hub_order) (sorted reordered)

let test_faces_of_triangle () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let coords = [| (0.0, 0.0); (1.0, 0.0); (0.5, 1.0) |] in
  let rot = Geometry.rotation_of_coords g coords in
  let faces = Rotation.faces g rot in
  Alcotest.(check int) "two faces" 2 (List.length faces);
  List.iter
    (fun f -> Alcotest.(check int) "triangle faces have 3 darts" 3 (List.length f))
    faces

let test_euler_rejects_bad_rotation () =
  (* K4 embedded planar vs. a twisted rotation that is non-planar. *)
  let g = Graph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  let coords = [| (0.0, 0.0); (4.0, 0.0); (2.0, 3.0); (2.0, 1.0) |] in
  let rot_ok = Geometry.rotation_of_coords g coords in
  Alcotest.(check bool) "planar rotation ok" true (Rotation.is_planar_embedding g rot_ok);
  let twisted =
    Rotation.of_orders g
      [| [| 1; 2; 3 |]; [| 0; 2; 3 |]; [| 0; 1; 3 |]; [| 0; 1; 2 |] |]
  in
  Alcotest.(check bool) "twisted rejected" false
    (Rotation.is_planar_embedding g twisted)

let test_point_in_polygon () =
  let square = [| (0.0, 0.0); (2.0, 0.0); (2.0, 2.0); (0.0, 2.0) |] in
  Alcotest.(check bool) "inside" true (Geometry.point_in_polygon square (1.0, 1.0));
  Alcotest.(check bool) "outside" false (Geometry.point_in_polygon square (3.0, 1.0));
  Alcotest.(check bool) "outside below" false
    (Geometry.point_in_polygon square (1.0, -0.5))

let test_segments_cross () =
  Alcotest.(check bool) "cross" true
    (Geometry.segments_cross
       ((0.0, 0.0), (2.0, 2.0))
       ((0.0, 2.0), (2.0, 0.0)));
  Alcotest.(check bool) "parallel" false
    (Geometry.segments_cross
       ((0.0, 0.0), (1.0, 0.0))
       ((0.0, 1.0), (1.0, 1.0)));
  Alcotest.(check bool) "shared endpoint" false
    (Geometry.segments_cross
       ((0.0, 0.0), (1.0, 1.0))
       ((1.0, 1.0), (2.0, 0.0)))

let test_thin_keeps_connected () =
  let emb = Gen.stacked_triangulation ~seed:11 ~n:80 () in
  let thinned = Gen.thin ~seed:13 ~keep:0.1 emb in
  Alcotest.(check bool) "connected" true (Algo.is_connected (Embedded.graph thinned));
  Alcotest.(check bool) "planar" true (Embedded.is_valid thinned);
  Alcotest.(check bool) "fewer edges" true
    (Graph.m (Embedded.graph thinned) < Graph.m (Embedded.graph emb))

let prop_stacked_valid =
  QCheck.Test.make ~name:"stacked triangulations are valid embeddings" ~count:30
    QCheck.(pair (int_range 4 120) (int_bound 1000))
    (fun (n, seed) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      Embedded.is_valid emb && Algo.is_connected (Embedded.graph emb))

let prop_grid_diag_valid =
  QCheck.Test.make ~name:"triangulated grids are valid embeddings" ~count:30
    QCheck.(pair (pair (int_range 2 12) (int_range 2 12)) (int_bound 1000))
    (fun ((r, c), seed) ->
      let emb = Gen.grid_diag ~seed ~rows:r ~cols:c () in
      Embedded.is_valid emb)

let prop_faces_partition_darts =
  QCheck.Test.make ~name:"faces partition the darts" ~count:30
    QCheck.(pair (int_range 4 60) (int_bound 1000))
    (fun (n, seed) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let g = Embedded.graph emb in
      let faces = Rotation.faces g (Embedded.rot emb) in
      List.fold_left (fun acc f -> acc + List.length f) 0 faces = 2 * Graph.m g)

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "generators valid" `Quick test_generators_valid;
        Alcotest.test_case "generators straight-line" `Quick
          test_generators_straight_line;
        Alcotest.test_case "grid shape" `Quick test_grid_shape;
        Alcotest.test_case "grid_diag shape" `Quick test_grid_diag_shape;
        Alcotest.test_case "stacked shape" `Quick test_stacked_is_triangulation;
        Alcotest.test_case "rotation positions" `Quick test_rotation_positions;
        Alcotest.test_case "rotation order_from" `Quick test_rotation_order_from;
        Alcotest.test_case "faces of triangle" `Quick test_faces_of_triangle;
        Alcotest.test_case "euler rejects twist" `Quick
          test_euler_rejects_bad_rotation;
        Alcotest.test_case "point in polygon" `Quick test_point_in_polygon;
        Alcotest.test_case "segments cross" `Quick test_segments_cross;
        Alcotest.test_case "thin keeps connected" `Quick test_thin_keeps_connected;
        qtest prop_stacked_valid;
        qtest prop_grid_diag_valid;
        qtest prop_faces_partition_darts;
    ]
