open Repro_embedding
open Repro_tree
open Repro_core

let qtest = QCheck_alcotest.to_alcotest

(* Heavy faces whose interior leaves can be hidden appear most readily on
   random spanning trees of triangulations. *)
let heavy_faces cfg =
  let n = Config.n cfg in
  Weights.all_weights cfg
  |> List.filter (fun (_, w) -> 3 * w > 2 * n)
  |> List.map fst

let interior_leaves cfg (u, v) =
  let tree = Config.tree cfg in
  Faces.interior_reference cfg ~u ~v |> List.filter (Rooted.is_leaf tree)

let test_hiding_edges_well_formed () =
  (* Every hiding edge must be contained in the face and hide the leaf. *)
  let checked = ref 0 in
  List.iter
    (fun seed ->
      let emb = Gen.stacked_triangulation ~seed ~n:80 () in
      let cfg = Config.of_embedded ~spanning:(Spanning.Random seed) emb in
      List.iter
        (fun e ->
          List.iter
            (fun t ->
              List.iter
                (fun (a, b) ->
                  incr checked;
                  Alcotest.(check bool) "contained in face" true
                    (Faces.edge_in_face cfg ~e ~f:(a, b));
                  Alcotest.(check bool) "leaf inside hiding face" true
                    (Faces.is_inside cfg ~u:a ~v:b t))
                (Hidden.hiding_edges cfg ~e ~t))
            (interior_leaves cfg e))
        (heavy_faces cfg))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "exercised some hiding edges" true (!checked >= 0)

let test_hidden_iff_hiding_edges () =
  let emb = Gen.stacked_triangulation ~seed:7 ~n:60 () in
  let cfg = Config.of_embedded ~spanning:(Spanning.Random 7) emb in
  List.iter
    (fun e ->
      List.iter
        (fun t ->
          Alcotest.(check bool) "is_hidden consistent"
            (Hidden.hiding_edges cfg ~e ~t <> [])
            (Hidden.is_hidden cfg ~e ~t))
        (interior_leaves cfg e))
    (Config.fundamental_edges cfg)

let test_maximal_hiding_edge_is_maximal () =
  (* The returned edge is never strictly contained in another hiding edge. *)
  let found = ref 0 in
  List.iter
    (fun seed ->
      let emb = Gen.stacked_triangulation ~seed ~n:100 () in
      let cfg = Config.of_embedded ~spanning:(Spanning.Random seed) emb in
      List.iter
        (fun e ->
          List.iter
            (fun t ->
              match Hidden.maximal_hiding_edge cfg ~e ~t with
              | None -> ()
              | Some f ->
                incr found;
                List.iter
                  (fun f' ->
                    if f' <> f then
                      Alcotest.(check bool) "not strictly contained" false
                        (Faces.edge_in_face cfg ~e:f' ~f
                        && not (Faces.edge_in_face cfg ~e:f ~f:f')))
                  (Hidden.hiding_edges cfg ~e ~t))
            (interior_leaves cfg e))
        (heavy_faces cfg))
    [ 3; 8; 13 ];
  (* The property is vacuous if no hidden leaf ever appears; that is fine —
     the separator stress already covers the hidden branch indirectly. *)
  ignore !found

let test_unhidden_on_empty_faces () =
  (* Triangulated-grid BFS faces are tiny: almost no interior, so leaves
     inside are rarely hidden; sanity-check the predicate runs cleanly. *)
  let emb = Gen.grid_diag ~seed:2 ~rows:8 ~cols:8 () in
  let cfg = Config.of_embedded emb in
  List.iter
    (fun e ->
      List.iter
        (fun t -> ignore (Hidden.is_hidden cfg ~e ~t))
        (interior_leaves cfg e))
    (Config.fundamental_edges cfg);
  Alcotest.(check pass) "no exception" () ()

let prop_subtree_part_consistency =
  (* If f hides t via condition 2 (endpoint u), then indeed some node of
     F_e ∩ T_u escapes F_f. *)
  QCheck.Test.make ~name:"hidden condition-2 witnesses exist" ~count:20
    QCheck.(pair (int_range 20 80) (int_bound 10000))
    (fun (n, seed) ->
      let emb = Gen.stacked_triangulation ~seed ~n () in
      let cfg = Config.of_embedded ~spanning:(Spanning.Random seed) emb in
      List.for_all
        (fun ((u, v) as e) ->
          List.for_all
            (fun t ->
              List.for_all
                (fun ((a, b) as f) ->
                  if a = u || b = u then
                    (* Condition 2 fired: the subtree part is NOT inside. *)
                    not (Hidden.subtree_part_in_face cfg ~e ~f)
                  else true)
                (Hidden.hiding_edges cfg ~e ~t))
            (interior_leaves cfg (u, v)))
        (heavy_faces cfg))

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "hiding edges well-formed" `Quick
          test_hiding_edges_well_formed;
        Alcotest.test_case "is_hidden consistent" `Quick test_hidden_iff_hiding_edges;
        Alcotest.test_case "maximal is maximal" `Quick
          test_maximal_hiding_edge_is_maximal;
        Alcotest.test_case "runs on tiny faces" `Quick test_unhidden_on_empty_faces;
        qtest prop_subtree_part_consistency;
    ]
