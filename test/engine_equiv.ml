(* Differential suite: the event-driven scheduler (Engine.Make) against the
   dense reference scheduler (Engine.Reference.Make).

   The hand-rolled graph zoo that used to live here is now the testkit's
   "engine" oracle (lib/testkit/oracle.ml): every program through both
   schedulers on fuzzed instances, bit-identical outputs AND statistics,
   plus a round budget.  This suite is the thin property declaration over
   that oracle, keeping only the deterministic tiny-graph edge cases
   (n = 1, n = 2) the size-ramped fuzzer reaches rarely. *)

open Repro_graph
open Repro_congest
open Repro_testkit

module Bfs_diff = Oracle.Diff (Prim.Bfs_program)
module Subtree_diff = Oracle.Diff (Prim.Subtree_program)
module Broadcast_diff = Oracle.Diff (Prim.Broadcast_program)

let check name (_, err) =
  match err with
  | None -> ()
  | Some msg -> Alcotest.fail (name ^ ": " ^ msg)

let test_single_node_and_tiny () =
  let g1 = Graph.of_edges ~n:1 [] in
  check "n=1 bfs" (Bfs_diff.check g1 ~input:[| true |]);
  check "n=1 subtree"
    (Subtree_diff.check g1
       ~input:[| { Prim.Subtree_program.parent = -1; value = 5; op = Prim.Sum } |]);
  let g2 = Graph.of_edges ~n:2 [ (0, 1) ] in
  check "n=2 bfs" (Bfs_diff.check g2 ~input:[| true; false |]);
  check "n=2 broadcast"
    (Broadcast_diff.check g2
       ~input:
         [|
           { Prim.Broadcast_program.parent = -1; value = Some 9 };
           { Prim.Broadcast_program.parent = 0; value = None };
         |])

let suites =
  Suite.make __MODULE__
    [
      Suite.property ~count:40 ~max_size:72 ~seed:101 ~oracles:[ "engine" ]
        "event-driven = reference on fuzzed instances";
      Alcotest.test_case "tiny graphs: event-driven = reference" `Quick
        test_single_node_and_tiny;
    ]
