(* Differential suite: the event-driven scheduler (Engine.Make) against the
   dense reference scheduler (Engine.Reference.Make).

   Same program, same graph, same input — the two engines must produce
   bit-identical outputs AND bit-identical statistics (rounds, messages,
   max_edge_bits, total_bits).  This is the executable form of the
   equivalence argument in engine.ml: the worklist collects exactly the
   nodes the dense scheduler would step, in the same order, so the whole
   message schedule coincides. *)

open Repro_graph
open Repro_embedding
open Repro_congest

module Diff (P : Engine.PROGRAM) = struct
  module Fast = Engine.Make (P)
  module Ref = Engine.Reference.Make (P)

  let check ?max_rounds ?bandwidth name g ~(input : P.input array) =
    let out_ref, st_ref = Ref.run ?max_rounds ?bandwidth g ~input in
    let out_fast, st_fast = Fast.run ?max_rounds ?bandwidth g ~input in
    Alcotest.(check bool) (name ^ ": outputs") true (out_ref = out_fast);
    Alcotest.(check int) (name ^ ": rounds") st_ref.Engine.rounds
      st_fast.Engine.rounds;
    Alcotest.(check int)
      (name ^ ": messages")
      st_ref.Engine.messages st_fast.Engine.messages;
    Alcotest.(check int)
      (name ^ ": max_edge_bits")
      st_ref.Engine.max_edge_bits st_fast.Engine.max_edge_bits;
    Alcotest.(check int)
      (name ^ ": total_bits")
      st_ref.Engine.total_bits st_fast.Engine.total_bits
end

module Bfs_diff = Diff (Prim.Bfs_program)
module Subtree_diff = Diff (Prim.Subtree_program)
module Ancestor_diff = Diff (Prim.Ancestor_program)
module Broadcast_diff = Diff (Prim.Broadcast_program)
module Exchange_diff = Diff (Prim.Exchange_program)
module Partwise_diff = Diff (Prim.Partwise_program)
module Collect_diff = Diff (Collective.Collect_program)
module Partwise_batch_diff = Diff (Collective.Partwise_batch_program)

(* The seeded graph zoo: shapes with very different frontier profiles —
   a deep cycle (sparse frontier, the event-driven engine's best case), a
   grid (broad waves), a star (one hot node) and a random triangulation. *)
let graphs () =
  [
    ("cycle64", Embedded.graph (Gen.cycle 64));
    ("path40", Embedded.graph (Gen.path 40));
    ("grid7x9", Embedded.graph (Gen.grid ~rows:7 ~cols:9));
    ("star33", Embedded.graph (Gen.star 33));
    ("tri150", Embedded.graph (Gen.stacked_triangulation ~seed:11 ~n:150 ()));
  ]

let spanning g root = fst (fst (Prim.bfs_tree g ~root))

let random_values rng n bound =
  Array.init n (fun _ -> Repro_util.Rng.int rng bound)

let test_bfs () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      (* Single root, and a seeded multi-root forest (the fragment seed
         structure of the Borůvka phases). *)
      let single = Array.init n (fun v -> v = 0) in
      Bfs_diff.check (name ^ " bfs root0") g ~input:single;
      let rng = Repro_util.Rng.create 42 in
      let multi = Array.init n (fun _ -> Repro_util.Rng.int rng 10 = 0) in
      multi.(0) <- true;
      Bfs_diff.check (name ^ " bfs forest") g ~input:multi)
    (graphs ())

let test_subtree_and_ancestor () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let parent = spanning g 0 in
      let rng = Repro_util.Rng.create 7 in
      let values = random_values rng n 1000 in
      List.iter
        (fun op ->
          let sub =
            Array.init n (fun v ->
                { Prim.Subtree_program.parent = parent.(v);
                  value = values.(v);
                  op;
                })
          in
          Subtree_diff.check (name ^ " subtree") g ~input:sub;
          let anc =
            Array.init n (fun v ->
                { Prim.Ancestor_program.parent = parent.(v);
                  value = values.(v);
                  op;
                })
          in
          Ancestor_diff.check (name ^ " ancestor") g ~input:anc)
        [ Prim.Sum; Prim.Min; Prim.Max ])
    (graphs ())

let test_broadcast () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let root = (n / 2) mod n in
      let parent = spanning g root in
      let input =
        Array.init n (fun v ->
            { Prim.Broadcast_program.parent = parent.(v);
              value = (if v = root then Some 4242 else None);
            })
      in
      Broadcast_diff.check (name ^ " broadcast") g ~input)
    (graphs ())

let test_exchange () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let rng = Repro_util.Rng.create 13 in
      let input =
        Array.init n (fun v ->
            Array.to_list
              (Array.of_seq
                 (Seq.filter_map
                    (fun u ->
                      if Repro_util.Rng.int rng 2 = 0 then
                        Some (u, Repro_util.Rng.int rng 100)
                      else None)
                    (Array.to_seq (Graph.neighbors g v)))))
      in
      Exchange_diff.check (name ^ " exchange") g ~input)
    (graphs ())

let test_partwise_fragments () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let parent = spanning g 0 in
      let rng = Repro_util.Rng.create 99 in
      let values = random_values rng n 1000 in
      (* Fragment-style parts: grow a seeded forest and use each fragment's
         root as the part id, as the merging phases of Lemma 9 do. *)
      let roots = Array.init n (fun v -> v = 0 || Repro_util.Rng.int rng 8 = 0) in
      let (fparent, _), _ = Prim.bfs_forest g ~roots in
      let part = Array.make n (-1) in
      let rec part_of v =
        if part.(v) >= 0 then part.(v)
        else begin
          let p = if fparent.(v) = -1 then v else part_of fparent.(v) in
          part.(v) <- p;
          p
        end
      in
      for v = 0 to n - 1 do
        ignore (part_of v)
      done;
      List.iter
        (fun op ->
          let input =
            Array.init n (fun v ->
                { Prim.Partwise_program.parent = parent.(v);
                  part = part.(v);
                  value = values.(v);
                  op;
                })
          in
          Partwise_diff.check (name ^ " partwise") g ~input)
        [ Prim.Sum; Prim.Min; Prim.Max ])
    (graphs ())

let test_collect_batch () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let parent = spanning g 0 in
      let rng = Repro_util.Rng.create 31 in
      List.iter
        (fun k ->
          let ops =
            Array.init k (fun j ->
                [| Prim.Sum; Prim.Min; Prim.Max |].(j mod 3))
          in
          let input =
            Array.init n (fun v ->
                { Collective.Collect_program.parent = parent.(v);
                  slots = random_values rng k 1000;
                  ops;
                })
          in
          Collect_diff.check
            (Printf.sprintf "%s collect k=%d" name k)
            g ~input)
        [ 1; 3; 16 ])
    (graphs ())

let test_partwise_batch () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let parent = spanning g 0 in
      let rng = Repro_util.Rng.create 32 in
      let part = Array.init n (fun _ -> Repro_util.Rng.int rng 6) in
      part.(0) <- 0;
      List.iter
        (fun k ->
          let ops = Array.init k (fun j -> [| Prim.Max; Prim.Min |].(j mod 2)) in
          let input =
            Array.init n (fun v ->
                { Collective.Partwise_batch_program.parent = parent.(v);
                  part = part.(v);
                  values = random_values rng k 1000;
                  ops;
                })
          in
          Partwise_batch_diff.check
            (Printf.sprintf "%s partwise-batch k=%d" name k)
            g ~input)
        [ 1; 4 ])
    (graphs ())

let test_single_node_and_tiny () =
  let g1 = Graph.of_edges ~n:1 [] in
  Bfs_diff.check "n=1 bfs" g1 ~input:[| true |];
  Subtree_diff.check "n=1 subtree" g1
    ~input:[| { Prim.Subtree_program.parent = -1; value = 5; op = Prim.Sum } |];
  let g2 = Graph.of_edges ~n:2 [ (0, 1) ] in
  Bfs_diff.check "n=2 bfs" g2 ~input:[| true; false |];
  Broadcast_diff.check "n=2 broadcast" g2
    ~input:
      [|
        { Prim.Broadcast_program.parent = -1; value = Some 9 };
        { Prim.Broadcast_program.parent = 0; value = None };
      |]

let suites =
  [
    ( "engine-equiv",
      [
        Alcotest.test_case "bfs: event-driven = reference" `Quick test_bfs;
        Alcotest.test_case "subtree/ancestor agg: event-driven = reference"
          `Quick test_subtree_and_ancestor;
        Alcotest.test_case "broadcast: event-driven = reference" `Quick
          test_broadcast;
        Alcotest.test_case "exchange: event-driven = reference" `Quick
          test_exchange;
        Alcotest.test_case "partwise fragments: event-driven = reference"
          `Quick test_partwise_fragments;
        Alcotest.test_case "batched collect: event-driven = reference" `Quick
          test_collect_batch;
        Alcotest.test_case "batched partwise: event-driven = reference" `Quick
          test_partwise_batch;
        Alcotest.test_case "tiny graphs: event-driven = reference" `Quick
          test_single_node_and_tiny;
      ] );
  ]
