(* Aggregated alcotest entry point: one section per library.

   Suite names are derived from the module names (Repro_testkit.Suite) and
   duplicates are a hard error, so adding a module here is the only
   registration step. *)

let () =
  Alcotest.run "repro"
    (Repro_testkit.Suite.combine
       [
         Test_util.suites;
         Test_graph.suites;
         Test_embedding.suites;
         Test_planarity.suites;
         Test_svg.suites;
         Test_tree.suites;
         Test_congest.suites;
         Test_faces.suites;
         Test_weights.suites;
         Test_hidden.suites;
         Test_separator.suites;
         Test_dfs.suites;
         Test_join.suites;
         Test_decomposition.suites;
         Test_composed.suites;
         Test_baseline.suites;
         Test_backend.suites;
         Engine_equiv.suites;
         Test_collective.suites;
         Test_pool.suites;
         Test_parallel.suites;
         Test_testkit.suites;
         Test_trace.suites;
         Test_screen.suites;
         Test_serve.suites;
       ])
