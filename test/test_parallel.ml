(* Sequential equivalence of the part-parallel batch runner: for every
   family, running with no pool, a jobs=1 pool and a jobs=4 pool must
   produce bit-identical trees, decompositions and charged round totals. *)

open Repro_util
open Repro_graph
open Repro_embedding
open Repro_congest
open Repro_core

let with_modes f =
  (* no pool / sequential pool / parallel pool.  [seq_grain:0] forces the
     parallel path even on these small test graphs, whose batch costs would
     otherwise fall below the default grain and run sequentially — the whole
     point here is to exercise pool scheduling against the sequential
     reference. *)
  let none = f None in
  let seq = Pool.with_pool ~jobs:1 (fun p -> f (Some p)) in
  let par = Pool.with_pool ~seq_grain:0 ~jobs:4 (fun p -> f (Some p)) in
  (none, seq, par)

let check_all name eq (none, seq, par) =
  Alcotest.(check bool) (name ^ ": jobs=1 = no pool") true (eq none seq);
  Alcotest.(check bool) (name ^ ": jobs=4 = no pool") true (eq none par)

let test_dfs_deterministic () =
  List.iter
    (fun family ->
      let emb = Gen.by_family ~seed:7 family ~n:150 in
      let g = Embedded.graph emb in
      let d = Algo.diameter g in
      let run pool =
        let rounds = Rounds.create ~n:(Graph.n g) ~d () in
        let r = Dfs.run ~rounds ?pool emb ~root:(Embedded.outer emb) in
        (r, Rounds.total rounds, List.sort compare (Rounds.breakdown rounds))
      in
      check_all (family ^ " dfs")
        (fun (r1, t1, b1) (r2, t2, b2) ->
          r1.Dfs.parent = r2.Dfs.parent
          && r1.Dfs.depth = r2.Dfs.depth
          && r1.Dfs.phases = r2.Dfs.phases
          && r1.Dfs.max_join_iterations = r2.Dfs.max_join_iterations
          && r1.Dfs.phase_log = r2.Dfs.phase_log
          && r1.Dfs.separator_phases = r2.Dfs.separator_phases
          && t1 = t2 && b1 = b2)
        (with_modes run))
    Gen.family_names

let test_decomposition_deterministic () =
  List.iter
    (fun family ->
      let emb = Gen.by_family ~seed:3 family ~n:150 in
      let g = Embedded.graph emb in
      let d = Algo.diameter g in
      let run pool =
        let rounds = Rounds.create ~n:(Graph.n g) ~d () in
        let t = Decomposition.build ~rounds ?pool ~piece_target:12 emb in
        (t, Rounds.total rounds)
      in
      check_all (family ^ " decomposition")
        (fun (t1, r1) (t2, r2) ->
          t1.Decomposition.pieces = t2.Decomposition.pieces
          && t1.Decomposition.separator = t2.Decomposition.separator
          && t1.Decomposition.levels = t2.Decomposition.levels
          && t1.Decomposition.separator_count = t2.Decomposition.separator_count
          && r1 = r2)
        (with_modes run))
    Gen.family_names

let test_find_partition_deterministic () =
  let emb = Gen.stacked_triangulation ~seed:9 ~n:200 () in
  let parts =
    let t = Decomposition.build ~piece_target:40 emb in
    List.filter (fun p -> List.length p > 3) t.Decomposition.pieces
  in
  Alcotest.(check bool) "enough parts" true (List.length parts >= 2);
  let run pool =
    List.map
      (fun (_, r) -> (r.Separator.separator, r.Separator.phase))
      (Separator.find_partition ?pool emb ~parts)
  in
  check_all "find_partition" ( = ) (with_modes run)

let test_bounded_diameter_deterministic () =
  let emb = Gen.grid_diag ~seed:2 ~rows:12 ~cols:12 () in
  let run pool =
    let t = Decomposition.bounded_diameter ?pool ~diameter_target:6 emb in
    (t.Decomposition.pieces, t.Decomposition.separator, t.Decomposition.levels)
  in
  check_all "bounded_diameter" ( = ) (with_modes run)

let suites =
  Repro_testkit.Suite.make __MODULE__
    [
        Alcotest.test_case "dfs sequential-equivalent" `Quick test_dfs_deterministic;
        Alcotest.test_case "decomposition sequential-equivalent" `Quick
          test_decomposition_deterministic;
        Alcotest.test_case "find_partition sequential-equivalent" `Quick
          test_find_partition_deterministic;
        Alcotest.test_case "bounded_diameter sequential-equivalent" `Quick
          test_bounded_diameter_deterministic;
    ]
