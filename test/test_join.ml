(* The batched JOIN choreography vs its serial reference.

   Three claims:

   1. Bit-identity: on every generator family, the slot-batched join
      (lib/core/join.ml) produces exactly the partial tree and iteration
      count of [Join.Reference] — the pre-batching per-component anchor
      aggregation + re-root + mark-path choreography kept verbatim as the
      differential oracle.
   2. The charged schedule is >= 2x cheaper from lg >= 4 on (per
      iteration: 2*lg + 3 PA units against lg^2 + lg + 2).
   3. Executed for real in the message engine, the slot batching keeps a
      >= 2x engine-run advantage over the serial per-slot binding
      (mirroring test_collective.ml's batching-win assertions). *)

open Repro_graph
open Repro_embedding
open Repro_congest
open Repro_core
open Repro_testkit

let log2ceil n = int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.0))

(* One joinable scenario per family: the full vertex set as members, the
   tree root as DFS root, and a real separator of the configuration. *)
let scenario emb =
  let cfg = Config.of_embedded emb in
  let g = Config.graph cfg in
  let root = Repro_tree.Rooted.root (Config.tree cfg) in
  let separator = (Separator.find cfg).Separator.separator in
  (g, root, Array.init (Graph.n g) Fun.id, separator)

let families () =
  [
    ("grid7x7", Gen.grid ~rows:7 ~cols:7);
    ("grid-diag6", Gen.grid_diag ~seed:3 ~rows:6 ~cols:6 ());
    ("tri90", Gen.stacked_triangulation ~seed:2 ~n:90 ());
    ("wheel30", Gen.wheel 30);
    ("fan25", Gen.fan 25);
    ("cycle33", Gen.cycle 33);
    ("star40", Gen.star 40);
    ("path50", Gen.path 50);
    ("rtree60", Gen.random_tree ~seed:8 ~n:60 ());
    ("caterpillar", Gen.caterpillar ~spine:10 ~legs:5);
  ]

let test_batched_equals_reference () =
  List.iter
    (fun (name, emb) ->
      let g, root, members, separator = scenario emb in
      let n = Graph.n g in
      let d = max 1 (Algo.diameter g) in
      let run reference =
        let ledger = Rounds.create ~n ~d () in
        let st = Join.create g ~root in
        let iters =
          if reference then
            Join.Reference.join ~rounds:ledger st ~members ~separator
          else Join.join ~rounds:ledger st ~members ~separator
        in
        (st, iters, Rounds.total ledger)
      in
      let stb, ib, cb = run false in
      let str_, ir, cr = run true in
      Alcotest.(check bool)
        (name ^ ": parent arrays identical")
        true
        (stb.Join.parent = str_.Join.parent);
      Alcotest.(check bool)
        (name ^ ": depth arrays identical")
        true
        (stb.Join.depth = str_.Join.depth);
      Alcotest.(check int) (name ^ ": iteration count") ir ib;
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %d joined" name v)
            true (Join.in_tree stb v))
        separator;
      if log2ceil n >= 4 then
        Alcotest.(check bool)
          (Printf.sprintf "%s: charged halved (%.0f vs %.0f)" name cb cr)
          true
          (2.0 *. cb <= cr))
    (families ())

let test_exec_engine_run_ratio () =
  List.iter
    (fun (name, emb) ->
      let g, root, members, separator = scenario emb in
      let run serial =
        let st = Join.create g ~root in
        let e = Join.exec_create ~serial st ~root in
        let iters = Join.join ~exec:e st ~members ~separator in
        (st, iters, e.Join.stats)
      in
      let stb, ib, sb = run false in
      let sts, is_, ss = run true in
      Alcotest.(check bool)
        (name ^ ": serial binding = batched binding")
        true
        (stb.Join.parent = sts.Join.parent
        && stb.Join.depth = sts.Join.depth
        && ib = is_);
      (* 4 engine runs per iteration batched, 8 serial: the exchange, the
         two-slot anchor/marked MAX, the target MAX, and the two-slot SUM
         bookkeeping, each paying per slot under the serial binding. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: serial %d runs >= 2x batched %d" name
           ss.Composed.engine_runs sb.Composed.engine_runs)
        true
        (ss.Composed.engine_runs >= 2 * sb.Composed.engine_runs))
    [
      ("grid6x6", Gen.grid ~rows:6 ~cols:6);
      ("tri70", Gen.stacked_triangulation ~seed:7 ~n:70 ());
      ("wheel24", Gen.wheel 24);
    ]

let test_batched_never_marks_paths () =
  let g, root, members, separator = scenario (Gen.grid ~rows:8 ~cols:8) in
  let ledger = Rounds.create ~n:(Graph.n g) ~d:(max 1 (Algo.diameter g)) () in
  let st = Join.create g ~root in
  ignore (Join.join ~rounds:ledger st ~members ~separator);
  Alcotest.(check int) "no mark-path walks" 0
    (Rounds.label_invocations ledger "mark-path[Lem13]");
  Alcotest.(check bool) "elections charged" true
    (Rounds.label_invocations ledger "join-elections" > 0)

let suites =
  Suite.make __MODULE__
    [
      Alcotest.test_case "batched join = reference on all families" `Quick
        test_batched_equals_reference;
      Alcotest.test_case "executed elections: >=2x fewer engine runs" `Quick
        test_exec_engine_run_ratio;
      Alcotest.test_case "batched join retires mark-path" `Quick
        test_batched_never_marks_paths;
      Suite.property ~count:25 ~max_size:56 ~seed:204 ~oracles:[ "join" ]
        "batched = reference = executed, >=2x cheaper (fuzz)";
    ]
