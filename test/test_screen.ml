(* The hostile-input screen: verdict round-trips on every hostile family,
   reason coverage for each rejection variant, witness minimality under
   the greedy shrinker, jobs=1 vs jobs=N bit-identity of screening
   ledgers/traces, typed rejections at every screened library entry, and
   the CLI exit-code contract (sep/dfs/bdd exit 3 with the replay spec). *)

open Repro_graph
open Repro_embedding
open Repro_congest
open Repro_core
open Repro_testkit
module Trace = Repro_trace.Trace

let build family ~n ~seed =
  Instance.build { Instance.family; n; seed; spanning = Repro_tree.Spanning.Bfs }

(* --- verdicts -------------------------------------------------------- *)

let test_clean_families_accepted () =
  List.iter
    (fun family ->
      let inst = build family ~n:40 ~seed:7 in
      Alcotest.(check bool)
        (family ^ " accepted")
        true
        (Screen.accepted (Screen.check inst.Instance.emb)))
    Instance.families

let test_hostile_families_rejected () =
  List.iter
    (fun family ->
      let inst = build family ~n:64 ~seed:2 in
      let emb = inst.Instance.emb in
      let v = Screen.check emb in
      Alcotest.(check bool) (family ^ " not accepted") false (Screen.accepted v);
      Alcotest.(check bool)
        (family ^ " verdict deterministic")
        true
        (Screen.check emb = v);
      Alcotest.(check bool)
        (family ^ " verdict prints")
        true
        (String.length (Screen.verdict_to_string v) > 0);
      (match v with
      | Screen.Flagged w ->
        Alcotest.(check bool)
          (family ^ " witness certifies")
          true (Screen.witness_certifies emb w)
      | _ -> ());
      (* The embedding's name is the replay spec: parsing it back yields
         the same hostile instance, bit-identically. *)
      let spec = inst.Instance.spec in
      Alcotest.(check bool)
        (family ^ " spec round-trips")
        true
        (Instance.of_string (Instance.to_string spec) = spec);
      let e2 = Instance.hostile_embedded spec in
      Alcotest.(check bool)
        (family ^ " hostile build deterministic")
        true
        (Graph.edges (Embedded.graph e2) = Graph.edges (Embedded.graph emb)))
    Instance.hostile_families

(* One test per rejection reason, on inputs engineered to hit it. *)
let test_reason_coverage () =
  (* Disconnected: two grids, no connecting edge. *)
  (match Screen.check (Instance.disconnected_union ~seed:1 ~n:32) with
  | Screen.Rejected (Screen.Disconnected { components; witness }) ->
    Alcotest.(check bool) "2+ components" true (components >= 2);
    Alcotest.(check bool) "witness in second grid" true (witness >= 0)
  | v -> Alcotest.failf "xunion: %s" (Screen.verdict_to_string v));
  (* Euler bound: K6 has m = 15 > 3n - 6 = 12 (rotation = plain adjacency
     order, a valid permutation, so only the edge count trips). *)
  let k6_edges = ref [] in
  for u = 0 to 5 do
    for v = u + 1 to 5 do
      k6_edges := (u, v) :: !k6_edges
    done
  done;
  let k6 = Graph.of_edges ~n:6 !k6_edges in
  let emb_k6 = Embedded.make ~name:"k6" k6 (Rotation.of_adjacency k6) in
  (match Screen.check emb_k6 with
  | Screen.Rejected (Screen.Euler_bound { n; m }) ->
    Alcotest.(check int) "n" 6 n;
    Alcotest.(check int) "m" 15 m
  | v -> Alcotest.failf "k6: %s" (Screen.verdict_to_string v));
  (* Rotation inconsistency: a rotation built for a different graph. *)
  let tri = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let path = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let emb_bad = Embedded.make ~name:"bad-rot" tri (Rotation.of_adjacency path) in
  (match Screen.check emb_bad with
  | Screen.Rejected (Screen.Rotation_inconsistent { vertex }) ->
    Alcotest.(check bool) "vertex in range" true (vertex >= 0 && vertex < 3)
  | v -> Alcotest.failf "bad-rot: %s" (Screen.verdict_to_string v));
  (* Flagged: a planted chord is elected as a single-edge witness. *)
  match Screen.check (Instance.planar_plus_chords ~seed:3 ~n:49 ~k:1) with
  | Screen.Flagged w ->
    Alcotest.(check bool)
      "chord witness certifies" true
      (Screen.witness_certifies (Instance.planar_plus_chords ~seed:3 ~n:49 ~k:1) w)
  | v -> Alcotest.failf "xchords1: %s" (Screen.verdict_to_string v)

(* --- witness minimality under the greedy shrinker -------------------- *)

let hostile_prop =
  {
    Oracle.name = "screen-hostile";
    guards = "test-only: fails whenever the screen accepts nothing";
    run =
      (fun inst ->
        let v = Screen.check inst.Instance.emb in
        {
          Oracle.oracle = "screen-hostile";
          ok = Screen.accepted v;
          detail = Screen.verdict_to_string v;
          rounds = 0;
          budget = max_int;
          checks = 1;
        });
  }

let test_witness_minimal_under_shrink () =
  let spec =
    { Instance.family = "xchords4"; n = 64; seed = 9;
      spanning = Repro_tree.Spanning.Random 3 }
  in
  let shrunk, steps = Runner.shrink ~oracles:[ hostile_prop ] spec in
  Alcotest.(check bool) "shrink made progress" true (steps > 0);
  Alcotest.(check string) "family preserved" "xchords4" shrunk.Instance.family;
  (* Every hostile build fails the property, so the greedy descent must
     reach the family's size floor and the simplest spanning kind. *)
  Alcotest.(check int) "shrunk to the size floor"
    (Instance.min_size "xchords4") shrunk.Instance.n;
  Alcotest.(check bool) "spanning simplified" true
    (shrunk.Instance.spanning = Repro_tree.Spanning.Bfs);
  (* The minimal counterexample still carries a certified witness. *)
  let inst = Instance.build shrunk in
  (match Screen.check inst.Instance.emb with
  | Screen.Flagged w ->
    Alcotest.(check bool) "minimal witness certifies" true
      (Screen.witness_certifies inst.Instance.emb w)
  | Screen.Rejected _ -> ()
  | Screen.Accepted -> Alcotest.fail "shrunk spec no longer hostile")

(* --- screened entries raise typed rejections -------------------------- *)

let test_entries_reject_before_phases () =
  let inst = build "xchords1" ~n:32 ~seed:5 in
  let emb = inst.Instance.emb in
  let expect_entry name f =
    match f () with
    | _ -> Alcotest.failf "%s: hostile input accepted" name
    | exception Screen.Rejected_input { entry; verdict; spec } ->
      Alcotest.(check string) (name ^ " entry") name entry;
      Alcotest.(check bool) (name ^ " verdict hostile") false
        (Screen.accepted verdict);
      Alcotest.(check string) (name ^ " replay spec") "xchords1:32:5" spec
  in
  expect_entry "Dfs.run" (fun () -> Dfs.run emb ~root:0);
  expect_entry "Decomposition.build" (fun () -> Decomposition.build emb);
  expect_entry "Decomposition.bounded_diameter" (fun () ->
      Decomposition.bounded_diameter ~diameter_target:8 emb);
  expect_entry "Separator.find_partition" (fun () ->
      Separator.find_partition emb
        ~parts:[ List.init (Embedded.n emb) Fun.id ])

(* --- jobs=1 vs jobs=N bit-identity of screening ledgers/traces -------- *)

let screened_dfs ~jobs =
  let emb = Gen.by_family ~seed:1 "grid" ~n:220 in
  let g = Embedded.graph emb in
  let tracer = Trace.create () in
  let rounds =
    Rounds.create ~trace:tracer ~n:(Graph.n g) ~d:(Algo.diameter g) ()
  in
  let r =
    Repro_util.Pool.with_pool ~seq_grain:0 ~jobs (fun pool ->
        Dfs.run ~rounds ~pool emb ~root:(Embedded.outer emb))
  in
  (tracer, rounds, r)

let test_jobs_bit_identity () =
  let t1, l1, r1 = screened_dfs ~jobs:1 in
  let t4, l4, r4 = screened_dfs ~jobs:4 in
  Alcotest.(check (array int)) "outputs identical" r1.Dfs.parent r4.Dfs.parent;
  Alcotest.(check bool) "charged totals identical" true
    (Rounds.total l1 = Rounds.total l4);
  Alcotest.(check int) "screen-structure charges identical"
    (Rounds.label_invocations l1 "screen-structure")
    (Rounds.label_invocations l4 "screen-structure");
  Alcotest.(check bool) "screening charged" true
    (Rounds.label_invocations l1 "screen-structure" >= 1);
  let m1 = Trace.to_metrics_string t1 and m4 = Trace.to_metrics_string t4 in
  Alcotest.(check string) "metrics (incl. screen spans) bit-identical" m1 m4;
  (* The screen spans are present and attributed. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "screen.structure span present" true
    (contains m1 "screen.structure");
  Alcotest.(check bool) "screen.planarity span present" true
    (contains m1 "screen.planarity")

(* --- CLI exit codes ---------------------------------------------------- *)

(* Tests run from _build/default/test, next to the built CLI; the dune
   test stanza depends on it.  Exit 3 is the screen-rejection code. *)
let repro_exe = Filename.concat ".." (Filename.concat "bin" "main.exe")

let cli cmdline =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" repro_exe cmdline)

let test_cli_exit_codes () =
  if not (Sys.file_exists repro_exe) then
    Alcotest.skip ()
  else begin
    Alcotest.(check int) "sep rejects hostile input with exit 3" 3
      (cli "sep --family xrot -n 64 --seed 2");
    Alcotest.(check int) "dfs rejects hostile input with exit 3" 3
      (cli "dfs --family xunion -n 64 --seed 2 --jobs 1");
    Alcotest.(check int) "bdd rejects hostile input with exit 3" 3
      (cli "bdd --family xchords1 -n 64 --seed 2 --by-size --jobs 1");
    Alcotest.(check int) "sep accepts clean input" 0
      (cli "sep --family grid -n 64 --seed 2")
  end

let suites =
  Suite.make __MODULE__
    [
      Alcotest.test_case "clean families accepted" `Quick
        test_clean_families_accepted;
      Alcotest.test_case "hostile families rejected with replayable verdicts"
        `Quick test_hostile_families_rejected;
      Alcotest.test_case "each rejection reason reachable" `Quick
        test_reason_coverage;
      Alcotest.test_case "witness minimality under the greedy shrinker" `Quick
        test_witness_minimal_under_shrink;
      Alcotest.test_case "screened entries raise typed rejections" `Quick
        test_entries_reject_before_phases;
      Alcotest.test_case "jobs=1 and jobs=4 screening ledgers/traces identical"
        `Quick test_jobs_bit_identity;
      Alcotest.test_case "CLI exit codes (sep/dfs/bdd reject with 3)" `Quick
        test_cli_exit_codes;
    ]
