(* Serving layer: the LRU cache's determinism, the stats document's
   round-trip through the metrics JSON, and the protocol's headline
   contract — a concurrent 2-client replay over the socket returns
   byte-identical responses to the serial in-process replay, because a
   response is a pure function of (request, loaded graph). *)

open Repro_embedding
open Repro_serve
module Json = Repro_trace.Json
module Suite = Repro_testkit.Suite

(* --- Cache ------------------------------------------------------------ *)

let test_cache_lru_deterministic () =
  let run () =
    let c = Cache.create ~capacity:3 () in
    let add k = ignore (Cache.find_or_add c k (fun () -> k)) in
    add "a";
    add "b";
    add "c";
    (* touch a: b becomes the LRU victim *)
    add "a";
    add "d";
    (Cache.keys_lru_first c, Cache.hits c, Cache.misses c, Cache.evictions c)
  in
  let keys, hits, misses, evictions = run () in
  Alcotest.(check (list string))
    "eviction removed the LRU key (b), order is recency"
    [ "c"; "a"; "d" ] keys;
  Alcotest.(check int) "one hit (the re-touch of a)" 1 hits;
  Alcotest.(check int) "four misses" 4 misses;
  Alcotest.(check int) "one eviction" 1 evictions;
  (* Bit-for-bit replay: recency is a logical tick, not a clock. *)
  Alcotest.(check bool) "second replay identical" true (run () = (keys, hits, misses, evictions))

let test_cache_miss_on_raise_not_inserted () =
  let c = Cache.create ~capacity:2 () in
  (match Cache.find_or_add c "boom" (fun () -> failwith "no") with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure _ -> ());
  Alcotest.(check bool) "failed compute not cached" false (Cache.mem c "boom");
  Alcotest.(check int) "miss still counted" 1 (Cache.misses c)

(* --- Engine (in-process) ---------------------------------------------- *)

let small_engine ?tracer ?(n = 100) pool =
  let emb = Gen.by_family ~seed:1 "grid" ~n in
  Engine.create ?tracer ~pool emb

let req_line r = Json.to_string (Workload.to_json r)

let test_counters_roundtrip_metrics_json () =
  Repro_util.Pool.with_pool ~jobs:1 @@ fun pool ->
  let engine = small_engine pool in
  (* Known access pattern: dfs:12 x3 (1 miss, 2 hits), decomp:24 x2
     (1 miss, 1 hit). *)
  List.iter
    (fun r -> ignore (Engine.handle engine (Workload.to_json r)))
    [
      Workload.Dfs { root = 12 };
      Workload.Dfs { root = 12 };
      Workload.Decompose { piece = 24 };
      Workload.Dfs { root = 12 };
      Workload.Decompose { piece = 24 };
    ];
  (* Round-trip the document through its serialized form, as the daemon
     ships it and loadgen re-parses it. *)
  let stats = Json.of_string (Json.to_string (Engine.stats_json engine)) in
  let int_at path =
    let rec go j = function
      | [] -> ( match j with Some (Json.Int i) -> i | _ -> -1)
      | k :: rest -> go (Option.bind j (Json.member k)) rest
    in
    go (Some stats) path
  in
  Alcotest.(check int) "hits round-trip" 3 (int_at [ "cache"; "hits" ]);
  Alcotest.(check int) "misses round-trip" 2 (int_at [ "cache"; "misses" ]);
  Alcotest.(check int) "evictions round-trip" 0
    (int_at [ "cache"; "evictions" ]);
  Alcotest.(check int) "dfs counter" 3 (int_at [ "requests"; "dfs" ]);
  Alcotest.(check int) "decompose counter" 2
    (int_at [ "requests"; "decompose" ]);
  Alcotest.(check int) "no errors" 0 (int_at [ "requests"; "errors" ])

let test_serial_replay_deterministic () =
  let mix = Workload.mix ~seed:7 ~n:100 ~count:24 in
  let replay jobs =
    Repro_util.Pool.with_pool ~jobs @@ fun pool ->
    let engine = small_engine pool in
    let responses = List.map (fun r -> Engine.handle_line engine (req_line r)) mix in
    (responses, Json.to_string (Engine.stats_json engine))
  in
  let r1 = replay 1 and r2 = replay 2 in
  Alcotest.(check bool) "responses and stats bit-identical across jobs" true
    (r1 = r2)

let test_error_responses () =
  Repro_util.Pool.with_pool ~jobs:1 @@ fun pool ->
  let engine = small_engine pool in
  let is_error line =
    match Json.member "ok" (Json.of_string (Engine.handle_line engine line)) with
    | Some (Json.Bool false) -> true
    | _ -> false
  in
  Alcotest.(check bool) "root out of range" true
    (is_error {|{"op":"dfs","root":100000}|});
  Alcotest.(check bool) "unknown op rejected" true
    (is_error {|{"op":"frobnicate"}|});
  Alcotest.(check bool) "disconnected part rejected" true
    (is_error {|{"op":"separator","part":[0,99]}|});
  Alcotest.(check bool) "parse error answered, not raised" true
    (is_error "{nonsense");
  let stats = Engine.stats_json engine in
  match Option.bind (Json.member "requests" stats) (Json.member "errors") with
  | Some (Json.Int e) -> Alcotest.(check int) "errors counted" 4 e
  | _ -> Alcotest.fail "stats missing errors counter"

let test_request_scoped_metrics () =
  let tracer = Repro_trace.Trace.create ~root:"serve" () in
  Repro_util.Pool.with_pool ~jobs:1 @@ fun pool ->
  let engine = small_engine ~tracer pool in
  let resp =
    Engine.handle engine
      (Json.Obj
         [
           ("op", Json.String "dfs");
           ("root", Json.Int 12);
           ("trace", Json.Bool true);
         ])
  in
  match Json.member "metrics" resp with
  | Some m -> (
    match Json.member "name" m with
    | Some (Json.String name) ->
      Alcotest.(check string) "metrics rooted at the request span"
        "serve.dfs" name
    | _ -> Alcotest.fail "metrics doc has no name")
  | None -> Alcotest.fail "traced request carries no metrics member"

(* --- Socket: concurrent vs serial ------------------------------------- *)

let serve_exe = Filename.concat ".." (Filename.concat "bin" "serve.exe")

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let read_lines fd count =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let lines = ref [] in
  while List.length !lines < count do
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i ->
      lines := String.sub s 0 i :: !lines;
      Buffer.clear buf;
      Buffer.add_substring buf s (i + 1) (String.length s - i - 1)
    | None -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> failwith "daemon closed the connection early"
      | k -> Buffer.add_subbytes buf chunk 0 k)
  done;
  List.rev !lines

let test_concurrent_replay_matches_serial () =
  if not (Sys.file_exists serve_exe) then Alcotest.skip ()
  else begin
    let mix_a = Workload.mix ~seed:3 ~n:100 ~count:10 in
    let mix_b = Workload.mix ~seed:4 ~n:100 ~count:10 in
    (* Serial replay, in-process: one engine, A's stream then B's. *)
    let serial =
      Repro_util.Pool.with_pool ~jobs:1 @@ fun pool ->
      let engine = small_engine pool in
      List.map (fun r -> Engine.handle_line engine (req_line r)) (mix_a @ mix_b)
    in
    let expect_a = List.filteri (fun i _ -> i < 10) serial in
    let expect_b = List.filteri (fun i _ -> i >= 10) serial in
    (* The daemon, same instance spec. *)
    let socket =
      Printf.sprintf "/tmp/repro-serve-test-%d.sock" (Unix.getpid ())
    in
    let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid =
      Unix.create_process serve_exe
        [|
          serve_exe; "--socket"; socket; "--family"; "grid"; "-n"; "100";
          "--seed"; "1"; "--jobs"; "1";
        |]
        Unix.stdin null null
    in
    Unix.close null;
    let deadline = Unix.gettimeofday () +. 30.0 in
    while
      (not (Sys.file_exists socket)) && Unix.gettimeofday () < deadline
    do
      ignore (Unix.select [] [] [] 0.05)
    done;
    Alcotest.(check bool) "daemon socket appeared" true
      (Sys.file_exists socket);
    let connect () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      fd
    in
    let a = connect () and b = connect () in
    (* Pipeline both clients' full streams at once: the daemon's select
       loop interleaves them at line granularity. *)
    List.iter (fun r -> write_all a (req_line r ^ "\n")) mix_a;
    List.iter (fun r -> write_all b (req_line r ^ "\n")) mix_b;
    let got_a = read_lines a 10 and got_b = read_lines b 10 in
    write_all a "{\"op\":\"shutdown\"}\n";
    ignore (read_lines a 1);
    Unix.close a;
    Unix.close b;
    let _, status = Unix.waitpid [] pid in
    Alcotest.(check bool) "daemon exited cleanly" true
      (status = Unix.WEXITED 0);
    Alcotest.(check (list string))
      "client A responses byte-identical to serial replay" expect_a got_a;
    Alcotest.(check (list string))
      "client B responses byte-identical to serial replay" expect_b got_b
  end

let suites =
  Suite.make __MODULE__
    [
      Alcotest.test_case "cache: LRU eviction order deterministic" `Quick
        test_cache_lru_deterministic;
      Alcotest.test_case "cache: raising compute not inserted" `Quick
        test_cache_miss_on_raise_not_inserted;
      Alcotest.test_case "engine: counters round-trip metrics JSON" `Quick
        test_counters_roundtrip_metrics_json;
      Alcotest.test_case "engine: serial replay bit-identical across jobs"
        `Quick test_serial_replay_deterministic;
      Alcotest.test_case "engine: malformed requests answered as errors"
        `Quick test_error_responses;
      Alcotest.test_case "engine: request-scoped trace metrics" `Quick
        test_request_scoped_metrics;
      Alcotest.test_case "socket: concurrent 2-client replay = serial replay"
        `Quick test_concurrent_replay_matches_serial;
    ]
