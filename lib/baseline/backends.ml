(* Centralized backends for the separator registry.

   Both backends run on the host against the full (sub)graph, so their
   native cost is wall-clock; the charged ledger gets the CONGEST cost of
   using them as a fast path: collecting the part's topology to one node
   over a pipelined BFS tree costs O(part size) rounds, charged under
   "backend-collect[<name>]" so the testkit can pin it and the trace
   layer shows the fast path as its own span. *)

open Repro_tree
open Repro_congest
open Repro_core

let span rounds name f =
  Repro_trace.Trace.within (Option.bind rounds Rounds.tracer) name f

(* O(part) rounds to ship the part to one node (and broadcast the answer
   back, same order). *)
let charge_collect rounds ~name n =
  match rounds with
  | Some r ->
    Rounds.charge_exact r ~label:(Printf.sprintf "backend-collect[%s]" name) n
  | None -> ()

let trivial_result root =
  Separator.
    {
      separator = [ root ];
      endpoints = None;
      phase = "trivial";
      candidates_tried = 0;
      weights_computed = 0;
    }

(* ------------------------------------------------------------------ *)
(* lt-level: one balanced BFS level.                                   *)
(* ------------------------------------------------------------------ *)

let lt_level_find ?rounds cfg =
  let g = Config.graph cfg in
  let n = Config.n cfg in
  let root = Rooted.root (Config.tree cfg) in
  span rounds "backend.lt-level" @@ fun () ->
  charge_collect rounds ~name:"lt-level" n;
  if n <= 3 then trivial_result root
  else
    Separator.
      {
        separator = Lipton_tarjan.level_separator g ~root;
        endpoints = None;
        phase = "lt-level";
        candidates_tried = 1;
        weights_computed = 0;
      }

let lt_level =
  Backend.
    {
      name = "lt-level";
      description = "centralized Lipton-Tarjan BFS-level separator";
      kind = Centralized;
      certificate = Balance_only;
      cost_model = "O(n + m) centralized wall; ledger charged O(part) collect";
      find = lt_level_find;
      trim = Separator.shrink;
    }

(* ------------------------------------------------------------------ *)
(* hn-cycle: simple cycle separators on the embedding layers.          *)
(* ------------------------------------------------------------------ *)

(* Candidate cap for each of the bounded searches, and the size above
   which the fundamental-cycle sweep (near-linear typical, quadratic
   worst case) is skipped in favour of the level fallback. *)
let max_weight_candidates = 24
let max_cycle_sweep_n = 4096

let hn_cycle_find ?rounds cfg =
  let g = Config.graph cfg in
  let n = Config.n cfg in
  let tree = Config.tree cfg in
  let root = Rooted.root tree in
  span rounds "backend.hn-cycle" @@ fun () ->
  charge_collect rounds ~name:"hn-cycle" n;
  if n <= 3 then trivial_result root
  else begin
    let limit = Check.balance_limit n in
    let tried = ref 0 in
    let balanced sep = Lipton_tarjan.max_component_after g sep <= limit in
    (* Stage 1: fundamental-face weights (Definition 2 on the config's own
       embedding) rank the real fundamental edges by how close their face
       weight is to n/2; each candidate cycle is the tree path between the
       edge's endpoints closed by the edge itself. *)
    let weights =
      List.map
        (fun (u, v) -> ((u, v), Weights.weight cfg ~u ~v))
        (Config.fundamental_edges cfg)
    in
    let ordered =
      List.stable_sort
        (fun (_, w1) (_, w2) ->
          compare (abs ((2 * w1) - n)) (abs ((2 * w2) - n)))
        weights
      |> List.filteri (fun i _ -> i < max_weight_candidates)
    in
    let from_weights =
      List.fold_left
        (fun acc ((u, v), _) ->
          match acc with
          | Some _ -> acc
          | None ->
            incr tried;
            let path = Rooted.path tree u v in
            if balanced path then
              Some
                Separator.
                  {
                    separator = path;
                    endpoints = Some (u, v);
                    phase = "hn-weight";
                    candidates_tried = !tried;
                    weights_computed = List.length weights;
                  }
            else None)
        None ordered
    in
    match from_weights with
    | Some r -> r
    | None -> (
      (* Stage 2: bounded sweep over the fundamental cycles of a fresh BFS
         tree, stopping at the first balanced cycle.  The list returned by
         the sweep runs endpoint to endpoint, so its ends are the closing
         non-tree edge. *)
      let from_cycle =
        if n > max_cycle_sweep_n then None
        else
          match Lipton_tarjan.best_fundamental_cycle ~stop_at:limit g ~root with
          | Some (cycle, mc) when mc <= limit ->
            incr tried;
            let closing =
              match cycle with
              | first :: _ :: _ ->
                let rec last = function
                  | [ x ] -> x
                  | _ :: rest -> last rest
                  | [] -> assert false
                in
                Some (first, last cycle)
              | _ -> None
            in
            Some
              Separator.
                {
                  separator = cycle;
                  endpoints = closing;
                  phase = "hn-bfs-cycle";
                  candidates_tried = !tried;
                  weights_computed = List.length weights;
                }
          | _ -> None
      in
      match from_cycle with
      | Some r -> r
      | None ->
        (* Stage 3: the BFS level always balances. *)
        incr tried;
        Separator.
          {
            separator = Lipton_tarjan.level_separator g ~root;
            endpoints = None;
            phase = "hn-fallback-level";
            candidates_tried = !tried;
            weights_computed = List.length weights;
          })
  end

let hn_cycle =
  Backend.
    {
      name = "hn-cycle";
      description =
        "centralized simple cycle separator (Har-Peled-Nayyeri-inspired, \
         weight-guided with balance fallback)";
      kind = Centralized;
      certificate = Cycle_certified;
      cost_model =
        "O(m + k*(n + m)) centralized wall; ledger charged O(part) collect";
      find = hn_cycle_find;
      trim = Separator.shrink;
    }

(* ------------------------------------------------------------------ *)
(* random-sep: the Ghaffari–Parter sampling estimator, made safe.      *)
(* ------------------------------------------------------------------ *)

(* The raw sampler (lib/baseline/random_sep.ml, experiment E4) trusts an
   in-window weight estimate without verification, so its output is
   occasionally unbalanced — the failure probability E4 measures.  A
   registry backend must keep the balance contract, so the wrapper
   re-checks the candidate exactly and re-runs the deterministic
   six-phase search when the estimate lied.  The seed is fixed: a
   registered backend must be a deterministic function of its
   configuration (the [backend] oracle double-runs every find). *)
let random_sep_seed = 0x5eed
let random_sep_samples = 48

let random_sep_find ?rounds cfg =
  let n = Config.n cfg in
  let root = Rooted.root (Config.tree cfg) in
  span rounds "backend.random-sep" @@ fun () ->
  if n <= 3 then trivial_result root
  else begin
    let o =
      Random_sep.find ?rounds ~seed:random_sep_seed
        ~samples:random_sep_samples cfg
    in
    if o.Random_sep.balanced then
      Separator.
        {
          separator = o.Random_sep.separator;
          endpoints = None;
          phase =
            (if o.Random_sep.fell_back then "random-fallback"
             else "random-estimate");
          candidates_tried = 1;
          weights_computed = (if o.Random_sep.fell_back then 0 else 1);
        }
    else
      (* The fallback may find a certified cycle, but this backend only
         promises Balance_only — drop the endpoints so the certificate
         matches the registry's declared contract. *)
      let r = Separator.find ?rounds cfg in
      {
        r with
        Separator.phase = "random-verified:" ^ r.Separator.phase;
        endpoints = None;
      }
  end

let random_sep =
  Backend.
    {
      name = "random-sep";
      description =
        "randomized Ghaffari-Parter weight sampler (balance re-checked; \
         deterministic fallback when the estimate misleads)";
      kind = Distributed;
      certificate = Balance_only;
      cost_model =
        "O~(D) charged rounds (sampling replaces the weight aggregation)";
      find = random_sep_find;
      trim = Separator.shrink;
    }

let registered =
  lazy
    (Backend.register lt_level;
     Backend.register hn_cycle;
     Backend.register random_sep)

let ensure () = Lazy.force registered
let () = ensure ()
