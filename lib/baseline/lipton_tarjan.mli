(** Centralized separator baselines (Lipton–Tarjan style). *)

open Repro_graph

val level_separator : Graph.t -> root:int -> int list
(** A BFS level splitting the graph into sides of at most 2n/3 vertices. *)

val max_component_after : Graph.t -> int list -> int
(** Largest component once the listed vertices are removed. *)

val best_fundamental_cycle :
  ?stop_at:int -> Graph.t -> root:int -> (int list * int) option
(** The BFS-tree fundamental cycle minimizing the largest remaining
    component, with that component's size; [None] if the graph is a tree.
    The cycle list runs from one endpoint of the closing non-tree edge to
    the other.  Candidates share stamped scratch arrays and each component
    sweep is abandoned as soon as the candidate provably cannot beat the
    incumbent, so the O(m · (n + m)) worst case is rarely reached.
    [stop_at] stops the scan once the incumbent's max component is at most
    the given size (any balanced cycle will do for backend use). *)
