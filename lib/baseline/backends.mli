(** Centralized separator backends, registered into {!Repro_core.Backend}.

    - ["lt-level"]: the Lipton–Tarjan BFS-level separator — always
      balanced, never cycle-shaped, O(n + m) on the host.
    - ["random-sep"]: the randomized Ghaffari–Parter weight sampler
      ({!Random_sep}, experiment E4) behind the registry's balance
      contract: the sampled candidate is re-checked exactly and the
      deterministic six-phase search covers any unbalanced estimate, so
      the backend stays [Distributed] in cost but never ships E4's
      failure probability.  Fixed internal seed — a registered backend is
      a deterministic function of its configuration.
    - ["hn-cycle"]: a simple cycle separator in the spirit of
      Har-Peled–Nayyeri (arXiv 1709.08122), built on the existing
      Rotation/Faces/Weights layers: fundamental-face weights pick a
      balanced tree-path-plus-closing-edge cycle when one exists, a
      bounded fundamental-cycle search over a BFS tree covers the rest,
      and the BFS-level separator guarantees balance as a last resort.
      The full HN triangulation machinery is not reproduced; the backend
      is an honest centralized cycle-separator heuristic with a balance
      guarantee, not a size guarantee.

    Registration happens at module load, but OCaml links a library module
    only when something references it — call {!ensure} from executables
    before resolving backend names. *)

val lt_level : Repro_core.Backend.t
val hn_cycle : Repro_core.Backend.t
val random_sep : Repro_core.Backend.t

val ensure : unit -> unit
(** Force this module (and therefore both registrations); idempotent. *)
