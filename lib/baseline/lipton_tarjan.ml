(* Centralized separator baselines in the spirit of Lipton–Tarjan (1979).

   - [level_separator]: the classic first step — a single BFS level whose
     removal leaves both sides with at most 2n/3 vertices.  Always exists;
     may be large (it is not a cycle).
   - [best_fundamental_cycle]: search over the fundamental cycles of a BFS
     tree for the one minimizing the largest remaining component — a
     centralized "best possible cycle separator for this tree" yardstick
     for separator-quality experiments.  The candidate loop shares one set
     of stamped scratch arrays and abandons a candidate's component sweep
     as soon as some component provably exceeds the incumbent, so typical
     instances evaluate most candidates in far less than the naive
     O(n + m) sweep each (worst case unchanged). *)

open Repro_graph
open Repro_tree

let level_separator g ~root =
  let n = Graph.n g in
  let dist = Algo.bfs_dist g root in
  let depth = Array.fold_left max 0 dist in
  let count = Array.make (depth + 1) 0 in
  Array.iter (fun d -> if d >= 0 then count.(d) <- count.(d) + 1) dist;
  (* Prefix sums: pick the first level where the below-part exceeds n/3;
     then both strict sides are at most 2n/3. *)
  let rec pick level seen =
    let seen = seen + count.(level) in
    if 3 * seen >= n || level = depth then level else pick (level + 1) seen
  in
  let cut = pick 0 0 in
  let members = ref [] in
  Array.iteri (fun v d -> if d = cut then members := v :: !members) dist;
  !members

let max_component_after g removed_list =
  let n = Graph.n g in
  let removed = Array.make n false in
  List.iter (fun v -> removed.(v) <- true) removed_list;
  let uf = Repro_util.Union_find.create n in
  Graph.iter_edges g (fun a b ->
      if (not removed.(a)) && not removed.(b) then ignore (Repro_util.Union_find.union uf a b));
  let best = ref 0 in
  for v = 0 to n - 1 do
    if not removed.(v) then best := max !best (Repro_util.Union_find.component_size uf v)
  done;
  !best

(* Stop scanning the candidate stream once the incumbent's max component is
   this small (used by the hn-cycle backend: any balanced cycle will do). *)
exception Good_enough

let best_fundamental_cycle ?stop_at g ~root =
  let n = Graph.n g in
  let parent = Spanning.bfs g ~root in
  let depth = Algo.bfs_dist g root in
  let path_between u v =
    (* Walk both endpoints up to their meeting point; the list runs from
       [u] to [v], so its ends are exactly the closing non-tree edge. *)
    let rec go u v left right =
      if u = v then List.rev_append left (u :: right)
      else if depth.(u) >= depth.(v) then go parent.(u) v (u :: left) right
      else go u parent.(v) left (v :: right)
    in
    go u v [] []
  in
  (* Vertex count of the fundamental cycle, with no list materialization. *)
  let cycle_length u v =
    let rec go u v acc =
      if u = v then acc + 1
      else if depth.(u) >= depth.(v) then go parent.(u) v (acc + 1)
      else go u parent.(v) (acc + 1)
    in
    go u v 0
  in
  (* Scratch shared by every candidate: stamp arrays need no clearing
     between candidates, and one queue serves every component sweep. *)
  let stamp = ref 0 in
  let on_cycle = Array.make n 0 in
  let visited = Array.make n 0 in
  let queue = Array.make n 0 in
  let mark_cycle s u v =
    let rec go u v =
      if u = v then on_cycle.(u) <- s
      else if depth.(u) >= depth.(v) then begin
        on_cycle.(u) <- s;
        go parent.(u) v
      end
      else begin
        on_cycle.(v) <- s;
        go u parent.(v)
      end
    in
    go u v
  in
  (* Largest remaining component, abandoning the sweep as soon as any
     component exceeds [cap] (the candidate then cannot beat the
     incumbent). *)
  let max_comp_bounded s cap =
    let mc = ref 0 in
    let aborted = ref false in
    let v = ref 0 in
    while (not !aborted) && !v < n do
      let x = !v in
      if on_cycle.(x) <> s && visited.(x) <> s then begin
        visited.(x) <- s;
        queue.(0) <- x;
        let head = ref 0 and tail = ref 1 in
        let size = ref 0 in
        while (not !aborted) && !head < !tail do
          let u = queue.(!head) in
          incr head;
          incr size;
          if !size > cap then aborted := true
          else
            Graph.iter_neighbors g u (fun w ->
                if on_cycle.(w) <> s && visited.(w) <> s then begin
                  visited.(w) <- s;
                  queue.(!tail) <- w;
                  incr tail
                end)
        done;
        if !size > !mc then mc := !size
      end;
      incr v
    done;
    if !aborted then None else Some !mc
  in
  (* Incumbent as (u, v, mc, length); the winning cycle is materialized
     once, at the end. *)
  let best = ref None in
  (try
     Graph.iter_edges g (fun u v ->
         if parent.(u) <> v && parent.(v) <> u then begin
           let len = cycle_length u v in
           (* Abort threshold: strictly beating the incumbent needs a
              smaller max component — or an equal one with a strictly
              shorter cycle, which this candidate's length may already
              rule out. *)
           let cap =
             match !best with
             | None -> max_int
             | Some (_, _, bmc, bsize) -> if len < bsize then bmc else bmc - 1
           in
           if cap >= 0 then begin
             incr stamp;
             let s = !stamp in
             mark_cycle s u v;
             match max_comp_bounded s cap with
             | None -> () (* some component exceeded cap: incumbent stands *)
             | Some mc ->
               (match !best with
               | Some (_, _, bmc, bsize) when bmc < mc || (bmc = mc && bsize <= len)
                 ->
                 ()
               | _ -> best := Some (u, v, mc, len));
               (match (!best, stop_at) with
               | Some (_, _, bmc, _), Some goal when bmc <= goal ->
                 raise Good_enough
               | _ -> ())
           end
         end)
   with Good_enough -> ());
  match !best with
  | Some (u, v, mc, _) -> Some (path_between u v, mc)
  | None -> None
