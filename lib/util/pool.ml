(* Fixed-size domain pool.

   Workers block on a condition variable between batches; a batch bumps a
   generation counter and workers drain a shared index cursor until every
   element is claimed.  The submitting domain participates in the drain and
   then waits for the last completion, so a [map] call costs no spawns —
   domains are spawned once, at [create].

   Claims are chunked: each lock acquisition takes 1/(4*jobs) of the
   remaining range, so early claims are big (few lock round-trips) and late
   claims shrink towards single elements (load balance on uneven tasks).

   All shared fields are read and written under [mutex]; task bodies run
   outside the lock.  Results land in a per-batch array at the task's own
   index, so output order is input order regardless of scheduling. *)

type t = {
  jobs : int;
  seq_grain : int; (* batches estimated below this run sequentially *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable run_item : int -> unit; (* current batch: execute element i *)
  mutable length : int; (* batch size *)
  mutable next : int; (* next unclaimed index *)
  mutable completed : int; (* finished (or skipped) elements *)
  mutable generation : int; (* bumped once per batch *)
  mutable busy : bool; (* a batch is in flight *)
  mutable failure : exn option; (* first task exception of the batch *)
  mutable quit : bool;
  mutable domains : unit Domain.t array;
}

let no_work (_ : int) = ()

(* One worker per hardware thread.  Tasks read the graph/rotation store
   through shared flat int arrays (nothing is copied per domain and the GC
   never scans them), so extra workers no longer carry a per-domain data
   cost and there is no reason to cap below the machine. *)
let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Batches whose estimated cost (total nodes, see [runs_parallel]) falls
   below this run on the submitting domain.  With the flat CSR store a
   part's build cost is O(part) rather than O(global n), which moves the
   parallel break-even point well below the pre-CSR 16k tuning. *)
let default_seq_grain = 8_192

(* Claim-and-run loop shared by workers and the submitting domain.  After a
   task fails, the rest of the batch is drained without running (claims are
   still counted so the waiter can finish). *)
let drain t =
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.mutex;
    if t.next >= t.length then begin
      continue_ := false;
      Mutex.unlock t.mutex
    end
    else begin
      let remaining = t.length - t.next in
      let lo = t.next in
      let hi = lo + max 1 (remaining / (4 * t.jobs)) in
      t.next <- hi;
      let run = t.run_item in
      let skip = t.failure <> None in
      Mutex.unlock t.mutex;
      let error = ref None in
      if not skip then begin
        let i = ref lo in
        while !error = None && !i < hi do
          (match run !i with () -> () | exception e -> error := Some e);
          incr i
        done
      end;
      Mutex.lock t.mutex;
      (match !error with
      | Some e when t.failure = None -> t.failure <- Some e
      | _ -> ());
      t.completed <- t.completed + (hi - lo);
      if t.completed = t.length then Condition.broadcast t.work_done;
      Mutex.unlock t.mutex
    end
  done

let rec worker t my_generation =
  Mutex.lock t.mutex;
  while (not t.quit) && t.generation = my_generation do
    Condition.wait t.work_ready t.mutex
  done;
  if t.quit then Mutex.unlock t.mutex
  else begin
    let generation = t.generation in
    Mutex.unlock t.mutex;
    drain t;
    worker t generation
  end

(* Worker domains are spawned lazily, on the first [map] that actually goes
   parallel: a pool whose every batch falls below [seq_grain] never leaves
   single-domain execution, so it also never pays the multi-domain GC tax —
   merely *having* an idle second domain switches the runtime to parallel
   minor collections. *)
let create ?(seq_grain = default_seq_grain) ~jobs () =
  let jobs = max 1 jobs in
  {
    jobs;
    seq_grain = max 0 seq_grain;
    mutex = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    run_item = no_work;
    length = 0;
    next = 0;
    completed = 0;
    generation = 0;
    busy = false;
    failure = None;
    quit = false;
    domains = [||];
  }

let jobs t = t.jobs
let seq_grain t = t.seq_grain

(* Single source of truth for the parallel/sequential decision, exposed so
   callers (the benchmark's E11 table in particular) can report *provably*
   whether a batch ran on the pool or fell back. *)
let runs_parallel ?cost t len =
  t.jobs > 1
  && (not t.quit)
  && len > 1
  && match cost with None -> true | Some c -> c >= t.seq_grain

(* Must be called under [t.mutex].  Freshly spawned workers block on the
   mutex we hold and then wait for a generation bump. *)
let ensure_domains t =
  if Array.length t.domains = 0 && t.jobs > 1 && not t.quit then begin
    let g = t.generation in
    t.domains <-
      Array.init (t.jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t g))
  end

let map_inner ?cost t f arr =
  let len = Array.length arr in
  if not (runs_parallel ?cost t len) then Array.map f arr
  else begin
    Mutex.lock t.mutex;
    if t.busy || t.quit then begin
      (* Re-entrant map from inside a task (or a shut-down pool): run
         sequentially. *)
      Mutex.unlock t.mutex;
      Array.map f arr
    end
    else begin
      ensure_domains t;
      let results = Array.make len None in
      t.run_item <- (fun i -> results.(i) <- Some (f arr.(i)));
      t.length <- len;
      t.next <- 0;
      t.completed <- 0;
      t.failure <- None;
      t.busy <- true;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      drain t;
      Mutex.lock t.mutex;
      while t.completed < t.length do
        Condition.wait t.work_done t.mutex
      done;
      let failure = t.failure in
      t.run_item <- no_work;
      t.length <- 0;
      t.failure <- None;
      t.busy <- false;
      Mutex.unlock t.mutex;
      match failure with
      | Some e -> raise e
      | None ->
        Array.map (function Some v -> v | None -> assert false) results
    end
  end

(* The per-batch span wraps the host-side batch execution on the calling
   domain only; tasks never touch the caller's tracer (their charged work
   is metered into private per-part ledgers that the caller splices back
   deterministically after the batch). *)
let map ?trace ?(label = "pool.batch") ?cost t f arr =
  match trace with
  | Some tr ->
    Repro_trace.Trace.with_span tr label (fun () ->
        Repro_trace.Trace.note_tasks tr (Array.length arr);
        map_inner ?cost t f arr)
  | None -> map_inner ?cost t f arr

let shutdown t =
  Mutex.lock t.mutex;
  t.quit <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

let with_pool ?seq_grain ~jobs f =
  let t = create ?seq_grain ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
