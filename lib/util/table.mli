(** Plain-text tables for experiment output. *)

type align = Left | Right

type t

val create : title:string -> string list -> t
(** [create ~title headers] starts an empty table. Columns default to
    right-aligned. *)

val set_align : t -> int -> align -> unit
val add_row : t -> string list -> unit

val title : t -> string
val headers : t -> string list
val rows : t -> string list list
(** Accessors for machine-readable export (rows in insertion order). *)

val render : t -> string
val print : t -> unit

val fmt_float : ?digits:int -> float -> string
val fmt_int : int -> string
