(** Fixed-size domain pool for part-parallel batches.

    The paper's Theorem 1 computes separators "in parallel over all parts"
    of a partition; the host-side simulator mirrors that parallelism with a
    small pool of OCaml 5 domains.  [map] distributes the elements of an
    array over the pool's domains and returns the results in input order,
    so callers stay deterministic as long as their tasks are.

    A pool created with [jobs = 1] spawns no domains at all: [map] then is
    exactly [Array.map], bit-identical to the sequential code path. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [max 1 jobs] workers ([jobs - 1] domains plus the
    calling domain, which participates in every [map]). *)

val jobs : t -> int
(** The worker count the pool was created with (>= 1). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], capped at 8. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f arr] applies [f] to every element, scheduling elements over
    the pool's domains, and returns the results in input order.  If any
    task raises, the first exception (in completion order) is re-raised
    after the batch drains and the remaining unstarted tasks are skipped;
    the pool stays usable.  Re-entrant calls (a task calling [map] on the
    same pool) fall back to sequential execution rather than deadlock. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent; [map] after [shutdown] runs
    sequentially. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run the function, and always [shutdown]. *)
