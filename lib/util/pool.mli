(** Fixed-size domain pool for part-parallel batches.

    The paper's Theorem 1 computes separators "in parallel over all parts"
    of a partition; the host-side simulator mirrors that parallelism with a
    small pool of OCaml 5 domains.  [map] distributes the elements of an
    array over the pool's domains and returns the results in input order,
    so callers stay deterministic as long as their tasks are.

    Small batches are not worth waking the pool for: when the caller passes
    a [cost] estimate below the pool's [seq_grain], [map] is exactly
    [Array.map].  The decision is exposed as [runs_parallel] so callers can
    report provably which path a batch took.

    A pool created with [jobs = 1] spawns no domains at all: [map] then is
    exactly [Array.map], bit-identical to the sequential code path. *)

type t

val create : ?seq_grain:int -> jobs:int -> unit -> t
(** A pool of [max 1 jobs] workers ([jobs - 1] domains plus the calling
    domain, which participates in every [map]).  Worker domains are spawned
    lazily, on the first [map] that goes parallel: a pool whose batches all
    fall back never leaves single-domain execution (and never pays the
    multi-domain GC overhead).  [seq_grain] (default {!default_seq_grain})
    is the minimum estimated batch cost, in caller-chosen work units, below
    which [map ~cost] runs sequentially. *)

val jobs : t -> int
(** The worker count the pool was created with (>= 1). *)

val seq_grain : t -> int
(** The sequential-fallback threshold the pool was created with. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: one worker per hardware thread.
    Workers read the flat graph store in place (shared, read-only), so
    extra domains carry no per-domain data cost. *)

val default_seq_grain : int
(** The default [seq_grain]: 8192 work units.  With the convention that a
    unit is one graph node of batch work, this is roughly the point where
    domain wake-up and cache traffic are amortised now that per-part build
    cost is O(part) on the flat store. *)

val runs_parallel : ?cost:int -> t -> int -> bool
(** [runs_parallel ?cost t len] is the exact predicate [map] uses to decide
    between the pool and the sequential path for a batch of [len] elements
    with estimated total [cost]: true iff the pool has [jobs > 1] and is
    not shut down, [len > 1], and [cost] (when given) is at least
    [seq_grain t].  (A re-entrant [map] from inside a task still falls
    back dynamically.) *)

val map :
  ?trace:Repro_trace.Trace.t ->
  ?label:string ->
  ?cost:int ->
  t ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [map ?cost t f arr] applies [f] to every element and returns the
    results in input order.  When [runs_parallel ?cost t (length arr)]
    holds, elements are scheduled over the pool's domains in contiguous
    chunks; otherwise this is [Array.map f arr].  If any task raises, the
    first exception (in completion order) is re-raised after the batch
    drains and the remaining unstarted tasks are skipped; the pool stays
    usable.  Re-entrant calls (a task calling [map] on the same pool) fall
    back to sequential execution rather than deadlock.

    With [?trace], the batch runs under a span named [label] (default
    ["pool.batch"]) on the {e calling} domain's tracer, annotated with the
    batch size; tasks themselves never touch that tracer, so the span tree
    is identical whichever domains the tasks land on. *)

val shutdown : t -> unit
(** Join all worker domains (a no-op if none were ever spawned).
    Idempotent; [map] after [shutdown] runs sequentially. *)

val with_pool : ?seq_grain:int -> jobs:int -> (t -> 'a) -> 'a
(** [create], run the function, and always [shutdown]. *)
