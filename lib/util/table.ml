(* Plain-text table rendering for the benchmark harness and examples. *)

type align = Left | Right

type t = {
  title : string;
  headers : string array;
  aligns : align array;
  mutable rows : string array list; (* reversed *)
}

let create ~title headers =
  let headers = Array.of_list headers in
  {
    title;
    headers;
    aligns = Array.make (Array.length headers) Right;
    rows = [];
  }

let set_align t i a = t.aligns.(i) <- a

let add_row t cells =
  let cells = Array.of_list cells in
  if Array.length cells <> Array.length t.headers then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- cells :: t.rows

let title t = t.title
let headers t = Array.to_list t.headers
let rows t = List.rev_map Array.to_list t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  List.iter
    (fun row ->
      Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    rows;
  let buf = Buffer.create 256 in
  let line ch =
    for i = 0 to ncols - 1 do
      Buffer.add_char buf '+';
      Buffer.add_string buf (String.make (widths.(i) + 2) ch)
    done;
    Buffer.add_string buf "+\n"
  in
  let render_row ?(align_override = None) row =
    Array.iteri
      (fun i c ->
        let a = match align_override with Some a -> a | None -> t.aligns.(i) in
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad a widths.(i) c);
        Buffer.add_char buf ' ')
      row;
    Buffer.add_string buf "|\n"
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  line '-';
  render_row ~align_override:(Some Left) t.headers;
  line '=';
  List.iter render_row rows;
  line '-';
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float ?(digits = 2) x = Printf.sprintf "%.*f" digits x

let fmt_int = string_of_int
