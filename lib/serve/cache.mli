(** Keyed result cache with LRU eviction — the serving layer's memory.

    The daemon computes decompositions, per-part phase-1 trees and query
    results once and reuses them across requests; this module is the keyed
    store that makes that reuse observable and bounded.  Recency is a
    logical tick incremented on every access, so eviction order is a pure
    function of the access sequence — no clocks, no hashing order: two
    replays of the same request stream evict the same keys in the same
    order on every OCaml version.

    Counters (hits / misses / evictions) are cumulative over the cache's
    lifetime and surface in the daemon's [stats] document, where the CI
    serving gate compares them exactly against the committed baseline. *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** An empty cache holding at most [max 1 capacity] entries. *)

val capacity : 'a t -> int

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a * bool
(** [find_or_add t key compute] returns [(value, hit)].  On a hit the
    entry's recency is refreshed and [compute] is not run.  On a miss
    [compute ()] is inserted (evicting the least-recently-used entry when
    full); if [compute] raises, nothing is inserted and the miss is still
    counted — the exception propagates to the caller. *)

val mem : 'a t -> string -> bool
(** Membership without touching recency or counters. *)

val length : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int

val keys_lru_first : 'a t -> string list
(** Current keys, least-recently-used first — the eviction order the next
    inserts would follow.  Deterministic; used by the cache tests. *)

val stats_json : 'a t -> Repro_trace.Json.t
(** [{"hits";"misses";"evictions";"entries";"capacity"}] — the fragment
    embedded in the daemon's [stats] response and in BENCH_8's E19
    metrics document. *)
