(** Unix-domain socket front end for {!Engine}.

    A single-threaded [Unix.select] event loop: accept connections, read
    newline-delimited request lines into per-connection buffers, answer
    each line through [Engine.handle_line] in arrival order.  Query-level
    parallelism lives below, in the engine's domain pool — so the protocol
    layer stays trivially deterministic: per-connection response streams
    depend only on that connection's request stream (responses are pure
    functions of the request), never on how clients interleave. *)

val run :
  socket:string ->
  ?max_requests:int ->
  ?on_ready:(unit -> unit) ->
  Engine.t ->
  int
(** Bind [socket] (unlinking any stale file first), call [on_ready], and
    serve until a [shutdown] request arrives or [max_requests] lines have
    been answered (a safety stop for CI).  Returns the number of requests
    served; the socket file is unlinked on exit. *)
