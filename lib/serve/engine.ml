open Repro_graph
open Repro_embedding
open Repro_congest
open Repro_core
module Json = Repro_trace.Json
module Trace = Repro_trace.Trace

(* ------------------------------------------------------------------ *)
(* Version-stable hashing (FNV-1a, folded into 62 bits)                 *)
(* ------------------------------------------------------------------ *)

(* [Hashtbl.hash] is not pinned across compiler versions; response hashes
   are gated exactly across the 5.1/5.2 CI matrix, so the fold is spelled
   out here.  The mask keeps every intermediate non-negative. *)
let hash_mask = 0x3FFFFFFFFFFFFFFF
let fnv_prime = 0x100000001B3
let hash_seed = 0x2545F4914F6CDD1D land hash_mask
let hash_mix h x = (h lxor (x land hash_mask)) * fnv_prime land hash_mask

let hash_ints l =
  List.fold_left hash_mix (hash_mix hash_seed (List.length l)) l

let hash_int_array a =
  Array.fold_left hash_mix (hash_mix hash_seed (Array.length a)) a

let hex_of_hash h = Printf.sprintf "%016x" h

(* ------------------------------------------------------------------ *)
(* State                                                                *)
(* ------------------------------------------------------------------ *)

type dfs_info = { phases : int; depth : int; hash : int }

type sep_info = {
  cfg : Config.t; (* pins the part's phase-1 tree with the result *)
  size : int;
  max_component : int;
  limit : int;
  valid : bool;
  phase : string;
  shash : int;
}

type decomp_info = { decomp : Decomposition.t; dhash : int }

type entry =
  | Dfs_entry of dfs_info
  | Sep_entry of sep_info
  | Decomp_entry of decomp_info

type t = {
  emb : Embedded.t;
  g : Graph.t;
  d : int;
  pool : Repro_util.Pool.t;
  backend : Backend.t;
  cutoff : int option;
  tracer : Trace.t option;
  cache : entry Cache.t;
  cfg0 : Config.t; (* whole-graph configuration, built once at load *)
  mutable q_dfs : int;
  mutable q_sep : int;
  mutable q_dec : int;
  mutable q_stats : int;
  mutable q_errors : int;
  mutable charged : float; (* summed per-request ledgers, misses only *)
  mutable response_hash : int; (* commutative sum of response hashes *)
  mutable shutdown : bool;
}

let create ?tracer ?backend ?small_part_cutoff ?cache_capacity ~pool emb =
  Repro_baseline.Backends.ensure ();
  let backend =
    match backend with Some b -> b | None -> Backend.default ()
  in
  let cache_capacity =
    match cache_capacity with
    | Some c -> c
    | None -> Workload.canonical_cache_capacity
  in
  let g = Embedded.graph emb in
  let d = Algo.diameter g in
  Trace.within tracer "serve.load" @@ fun () ->
  let rounds = Rounds.create ?trace:tracer ~n:(Graph.n g) ~d () in
  Screen.require ~rounds ~entry:"serve" emb;
  let cfg0 = Config.of_embedded emb in
  {
    emb;
    g;
    d;
    pool;
    backend;
    cutoff = small_part_cutoff;
    tracer;
    cache = Cache.create ~capacity:cache_capacity ();
    cfg0;
    q_dfs = 0;
    q_sep = 0;
    q_dec = 0;
    q_stats = 0;
    q_errors = 0;
    charged = 0.0;
    response_hash = 0;
    shutdown = false;
  }

let shutdown_requested t = t.shutdown

let requests_served t =
  t.q_dfs + t.q_sep + t.q_dec + t.q_stats + t.q_errors

(* Every miss computes under a fresh ledger sharing the engine tracer;
   only misses charge (a hit re-serves state already at the server), so
   the accumulated total is a sum over distinct cache keys — independent
   of request order and client interleaving as long as nothing evicts. *)
let with_ledger t f =
  let rounds = Rounds.create ?trace:t.tracer ~n:(Graph.n t.g) ~d:t.d () in
  let v = f rounds in
  t.charged <- t.charged +. Rounds.total rounds;
  v

exception Bad_request of string

(* ------------------------------------------------------------------ *)
(* Query evaluation (cache-keyed)                                       *)
(* ------------------------------------------------------------------ *)

let dfs_entry t root =
  let key = "dfs:" ^ string_of_int root in
  Cache.find_or_add t.cache key (fun () ->
      with_ledger t @@ fun rounds ->
      let r =
        Dfs.run ~rounds ~pool:t.pool ~backend:t.backend
          ?small_part_cutoff:t.cutoff t.emb ~root
      in
      let depth = Array.fold_left max 0 r.Dfs.depth in
      Dfs_entry { phases = r.Dfs.phases; depth; hash = hash_int_array r.Dfs.parent })

let decomp_entry t piece =
  let key = "decomp:" ^ string_of_int piece in
  Cache.find_or_add t.cache key (fun () ->
      with_ledger t @@ fun rounds ->
      let dec =
        Decomposition.build ~rounds ~pool:t.pool ~piece_target:piece
          ~backend:t.backend ?small_part_cutoff:t.cutoff t.emb
      in
      let h =
        List.fold_left
          (fun h p -> hash_mix (hash_ints p) h)
          (hash_mix hash_seed dec.Decomposition.separator_count)
          dec.Decomposition.pieces
      in
      Decomp_entry { decomp = dec; dhash = h })

let decomposition t piece =
  match decomp_entry t piece with
  | Decomp_entry e, hit -> (e, hit)
  | _ -> assert false

(* Connectivity probe for explicit vertex-list parts: [Config.of_part]
   requires a connected member set, so reject disconnected lists at the
   front door instead of corrupting the pipeline. *)
let connected_in t members =
  let n = Graph.n t.g in
  let inset = Array.make n false in
  Array.iter (fun v -> inset.(v) <- true) members;
  let seen = Array.make n false in
  let stack = ref [ members.(0) ] in
  seen.(members.(0)) <- true;
  let count = ref 0 in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      incr count;
      Graph.iter_neighbors t.g v (fun w ->
          if inset.(w) && not seen.(w) then begin
            seen.(w) <- true;
            stack := w :: !stack
          end)
  done;
  !count = Array.length members

let part_config t part =
  match part with
  | Workload.All -> ("all", t.cfg0)
  | Workload.Piece i ->
    let e, _hit = decomposition t Workload.default_piece_target in
    let pieces =
      List.filter
        (fun p -> List.length p > 3)
        e.decomp.Decomposition.pieces
      |> Array.of_list
    in
    if Array.length pieces = 0 then
      raise (Bad_request "no decomposition piece above the trivial size");
    let p = pieces.(((i mod Array.length pieces) + Array.length pieces)
                    mod Array.length pieces)
    in
    let members = Array.of_list p in
    let root = Array.fold_left min members.(0) members in
    ( "piece:" ^ string_of_int i,
      Config.of_part ~members ~root t.emb )
  | Workload.Vertices vs ->
    let n = Graph.n t.g in
    if vs = [] then raise (Bad_request "empty part");
    List.iter
      (fun v ->
        if v < 0 || v >= n then
          raise (Bad_request (Printf.sprintf "part vertex %d out of range" v)))
      vs;
    let members = Array.of_list (List.sort_uniq compare vs) in
    if not (connected_in t members) then
      raise (Bad_request "part is not connected");
    let root = members.(0) in
    ( Printf.sprintf "v:%s" (hex_of_hash (hash_ints (Array.to_list members))),
      Config.of_part ~members ~root t.emb )

let sep_entry t part =
  let spec, cfg =
    (* Resolving a Piece part may itself fill the decomposition key; the
       cache's [find_or_add] is re-entrant for exactly this nesting. *)
    part_config t part
  in
  let key = "sep:" ^ spec in
  let entry, hit =
    Cache.find_or_add t.cache key (fun () ->
        with_ledger t @@ fun rounds ->
        let r = t.backend.Backend.find ~rounds cfg in
        let v = Check.check_separator cfg r.Separator.separator in
        let global =
          List.map (Config.to_global cfg) r.Separator.separator
        in
        Sep_entry
          {
            cfg;
            size = v.Check.size;
            max_component = v.Check.max_component;
            limit = v.Check.limit;
            valid = v.Check.valid;
            phase = r.Separator.phase;
            shash = hash_ints global;
          })
  in
  (spec, entry, hit)

(* ------------------------------------------------------------------ *)
(* Protocol                                                             *)
(* ------------------------------------------------------------------ *)

let stats_json t =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("op", Json.String "stats");
      ("n", Json.Int (Graph.n t.g));
      ("m", Json.Int (Graph.m t.g));
      ("d", Json.Int t.d);
      ("backend", Json.String t.backend.Backend.name);
      ( "requests",
        Json.Obj
          [
            ("dfs", Json.Int t.q_dfs);
            ("separator", Json.Int t.q_sep);
            ("decompose", Json.Int t.q_dec);
            ("stats", Json.Int t.q_stats);
            ("errors", Json.Int t.q_errors);
          ] );
      ("cache", Cache.stats_json t.cache);
      ("charged_rounds", Json.Float t.charged);
      ("response_hash", Json.String (hex_of_hash t.response_hash));
    ]

let int_field ~default name req =
  match Json.member name req with
  | None -> default
  | Some (Json.Int i) -> i
  | Some _ -> raise (Bad_request (name ^ " must be an integer"))

let part_field req =
  match Json.member "part" req with
  | None | Some (Json.String "all") -> Workload.All
  | Some (Json.String s)
    when String.length s > 6 && String.sub s 0 6 = "piece:" -> (
    match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
    | Some i when i >= 0 -> Workload.Piece i
    | _ -> raise (Bad_request ("bad part spec: " ^ s)))
  | Some (Json.List l) ->
    Workload.Vertices
      (List.map
         (function
           | Json.Int v -> v
           | _ -> raise (Bad_request "part list must hold integers"))
         l)
  | Some _ -> raise (Bad_request "bad part field")

let note_response t h =
  t.response_hash <- (t.response_hash + h) land hash_mask

(* The sum-mod-2^62 aggregate commutes, so the stats document cannot see
   the interleaving — only the multiset of answered requests. *)

let op_of req =
  match Json.member "op" req with
  | Some (Json.String op) -> op
  | Some _ -> raise (Bad_request "op must be a string")
  | None -> raise (Bad_request "missing op")

let dispatch t req =
  let op = op_of req in
  match op with
  | "dfs" ->
    let root = int_field ~default:(Embedded.outer t.emb) "root" req in
    if root < 0 || root >= Graph.n t.g then
      raise (Bad_request (Printf.sprintf "root %d out of range" root));
    let entry, _hit = dfs_entry t root in
    let e = match entry with Dfs_entry e -> e | _ -> assert false in
    t.q_dfs <- t.q_dfs + 1;
    note_response t e.hash;
    ( op,
      [
        ("root", Json.Int root);
        ("n", Json.Int (Graph.n t.g));
        ("phases", Json.Int e.phases);
        ("depth", Json.Int e.depth);
        ("hash", Json.String (hex_of_hash e.hash));
      ] )
  | "separator" ->
    let part = part_field req in
    let spec, entry, _hit = sep_entry t part in
    let e = match entry with Sep_entry e -> e | _ -> assert false in
    t.q_sep <- t.q_sep + 1;
    note_response t e.shash;
    ( op,
      [
        ("part", Json.String spec);
        ("size", Json.Int e.size);
        ("max_component", Json.Int e.max_component);
        ("limit", Json.Int e.limit);
        ("valid", Json.Bool e.valid);
        ("phase", Json.String e.phase);
        ("hash", Json.String (hex_of_hash e.shash));
      ] )
  | "decompose" ->
    let piece =
      int_field ~default:Workload.default_piece_target "piece" req
    in
    if piece < 2 then raise (Bad_request "piece target must be >= 2");
    let e, _hit = decomposition t piece in
    t.q_dec <- t.q_dec + 1;
    note_response t e.dhash;
    let dec = e.decomp in
    ( op,
      [
        ("piece", Json.Int piece);
        ("pieces", Json.Int (List.length dec.Decomposition.pieces));
        ("levels", Json.Int dec.Decomposition.levels);
        ("separator_count", Json.Int dec.Decomposition.separator_count);
        ("hash", Json.String (hex_of_hash e.dhash));
      ] )
  | "stats" ->
    t.q_stats <- t.q_stats + 1;
    ("stats", [])
  | "shutdown" ->
    t.shutdown <- true;
    (op, [])
  | other -> raise (Bad_request ("unknown op: " ^ other))

let traced_metrics t req =
  match (Json.member "trace" req, t.tracer) with
  | Some (Json.Bool true), Some tr -> (
    (* The request just ran under [serve.<op>], the newest child of the
       tracer root: that subtree is the request-scoped metrics doc. *)
    match (Trace.root tr).Trace.children with
    | sp :: _ -> [ ("metrics", Trace.metrics_of_span sp) ]
    | [] -> [])
  | _ -> []

let id_fields req =
  match Json.member "id" req with
  | Some id -> [ ("id", id) ]
  | None -> []

let handle t req =
  let id = id_fields req in
  try
    let op = op_of req in
    let op_name, fields =
      Trace.within t.tracer ("serve." ^ op) (fun () -> dispatch t req)
    in
    let body =
      if op_name = "stats" then
        match stats_json t with
        | Json.Obj fields -> fields
        | _ -> assert false
      else
        (("ok", Json.Bool true) :: ("op", Json.String op_name) :: fields)
        @ traced_metrics t req
    in
    Json.Obj (id @ body)
  with
  | Bad_request msg ->
    t.q_errors <- t.q_errors + 1;
    Json.Obj (id @ [ ("ok", Json.Bool false); ("error", Json.String msg) ])
  | Separator.No_separator_found msg ->
    t.q_errors <- t.q_errors + 1;
    Json.Obj
      (id
      @ [
          ("ok", Json.Bool false);
          ("error", Json.String ("no separator found: " ^ msg));
        ])
  | e ->
    (* Backends, the checker and the DFS driver are allowed to raise on
       inputs the screen can't rule out; the mli promises errors come
       back as responses, so nothing may escape into the server loop. *)
    t.q_errors <- t.q_errors + 1;
    Json.Obj
      (id
      @ [
          ("ok", Json.Bool false);
          ("error", Json.String ("internal error: " ^ Printexc.to_string e));
        ])

let handle_line t line =
  let req =
    try Ok (Json.of_string line) with e -> Error (Printexc.to_string e)
  in
  match req with
  | Ok req -> Json.to_string (handle t req)
  | Error msg ->
    t.q_errors <- t.q_errors + 1;
    Json.to_string
      (Json.Obj
         [
           ("ok", Json.Bool false);
           ("error", Json.String ("parse error: " ^ msg));
         ])
