(** Seed-deterministic request mixes for the serving layer.

    One generator feeds three consumers — [tools/loadgen.exe] (over the
    socket), bench E19 (in-process) and the serve-smoke CI job — so the
    deterministic counters they produce (cache hits, charged rounds,
    response hashes) are comparable across all three.  The canonical mix
    below is the one committed into BENCH_8.json's E19 metrics document:
    changing any [canonical_*] constant is a baseline change. *)

type part =
  | All  (** the whole loaded graph *)
  | Piece of int  (** piece [i mod count] of the default decomposition *)
  | Vertices of int list  (** an explicit connected vertex set *)

type request =
  | Dfs of { root : int }
  | Separator of { part : part }
  | Decompose of { piece : int }  (** piece-size target *)

val to_json : request -> Repro_trace.Json.t
(** The wire form the daemon parses, e.g.
    [{"op":"separator","part":"piece:2"}]. *)

val mix : seed:int -> n:int -> count:int -> request list
(** [count] requests over a graph of [n] vertices: 50% DFS (roots drawn
    from a fixed pool of 6, so repeats hit the cache), 30% separator
    (whole graph or one of 4 decomposition pieces), 20% decompose (piece
    target 24 or 48).  Pure function of [(seed, n, count)]. *)

val default_piece_target : int
(** Piece-size target of the decomposition that [Piece] parts index (24;
    shared with the [Decompose] draw so the dependency is a cache hit). *)

(** The canonical serving instance + mix: grid, n = 1600, generator seed
    1, BFS tree, 120 requests from mix seed 0, cache capacity 64.  At
    capacity 64 the mix's 13 distinct keys (6 DFS roots, 5 separator
    parts — whole graph + pieces 0..3 — and 2 decompose targets) never
    evict, so the
    hit/miss counters depend only on the request multiset — never on
    client interleaving — and gate exactly in CI. *)

val canonical_family : string

val canonical_n : int
val canonical_seed : int
val canonical_requests : int
val canonical_mix_seed : int
val canonical_cache_capacity : int
val canonical : unit -> request list

val percentile : float array -> float -> float
(** Nearest-rank percentile of an (unsorted) sample, [p] in [0, 1];
    [0.0] on an empty sample.  Shared by loadgen and bench E19. *)
