type 'a entry = { value : 'a; mutable last_use : int }

type 'a t = {
  cap : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable tick : int; (* logical time; strictly increasing per access *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity () =
  {
    cap = max 1 capacity;
    table = Hashtbl.create 32;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let mem t key = Hashtbl.mem t.table key

let touch t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

(* O(entries) scan per eviction.  Capacities are small (the daemon's
   default is 64) and ticks are unique, so the victim — the minimal
   [last_use] — is unambiguous; no linked-list bookkeeping to get wrong. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, best) when best.last_use <= e.last_use -> ()
      | _ -> victim := Some (key, e))
    t.table;
  match !victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1

let find_or_add t key compute =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    t.hits <- t.hits + 1;
    touch t e;
    (e.value, true)
  | None ->
    t.misses <- t.misses + 1;
    let value = compute () in
    (* [compute] may have recursed into the cache (a separator query
       filling its decomposition dependency); re-check before insert. *)
    if not (Hashtbl.mem t.table key) then begin
      if Hashtbl.length t.table >= t.cap then evict_lru t;
      let e = { value; last_use = 0 } in
      touch t e;
      Hashtbl.replace t.table key e
    end;
    (value, false)

let keys_lru_first t =
  Hashtbl.fold (fun key e acc -> (e.last_use, key) :: acc) t.table []
  |> List.sort compare |> List.map snd

let stats_json t =
  Repro_trace.Json.Obj
    [
      ("hits", Repro_trace.Json.Int t.hits);
      ("misses", Repro_trace.Json.Int t.misses);
      ("evictions", Repro_trace.Json.Int t.evictions);
      ("entries", Repro_trace.Json.Int (length t));
      ("capacity", Repro_trace.Json.Int t.cap);
    ]
