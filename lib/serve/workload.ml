module Json = Repro_trace.Json
module Rng = Repro_util.Rng

type part = All | Piece of int | Vertices of int list

type request =
  | Dfs of { root : int }
  | Separator of { part : part }
  | Decompose of { piece : int }

let default_piece_target = 24

let part_to_json = function
  | All -> Json.String "all"
  | Piece i -> Json.String ("piece:" ^ string_of_int i)
  | Vertices vs -> Json.List (List.map (fun v -> Json.Int v) vs)

let to_json = function
  | Dfs { root } ->
    Json.Obj [ ("op", Json.String "dfs"); ("root", Json.Int root) ]
  | Separator { part } ->
    Json.Obj [ ("op", Json.String "separator"); ("part", part_to_json part) ]
  | Decompose { piece } ->
    Json.Obj [ ("op", Json.String "decompose"); ("piece", Json.Int piece) ]

(* Root pool: 6 fixed vertices spread across the id range.  Small enough
   that a 120-request mix revisits every root several times (the
   repeated-root cache hits E19 measures), large enough to exercise
   distinct DFS trees. *)
let root_pool n = Array.init 6 (fun i -> (i + 1) * n / 8)

let piece_targets = [| default_piece_target; 2 * default_piece_target |]

let mix ~seed ~n ~count =
  let rng = Rng.create seed in
  let roots = root_pool n in
  List.init count (fun _ ->
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 | 4 -> Dfs { root = Rng.pick rng roots }
      | 5 | 6 | 7 ->
        let k = Rng.int rng 5 in
        Separator { part = (if k = 0 then All else Piece (k - 1)) }
      | _ -> Decompose { piece = Rng.pick rng piece_targets })

let canonical_family = "grid"
let canonical_n = 1600
let canonical_seed = 1
let canonical_requests = 120
let canonical_mix_seed = 0
let canonical_cache_capacity = 64

let canonical () =
  mix ~seed:canonical_mix_seed ~n:canonical_n ~count:canonical_requests

let percentile samples p =
  let k = Array.length samples in
  if k = 0 then 0.0
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let rank =
      int_of_float (Float.round (p *. float_of_int (k - 1)))
      |> max 0 |> min (k - 1)
    in
    sorted.(rank)
  end
