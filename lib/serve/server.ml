type client = { fd : Unix.file_descr; buf : Buffer.t }

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

(* Pop the first complete line (without its newline) off a buffer. *)
let pop_line buf =
  let s = Buffer.contents buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear buf;
    Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
    Some (String.sub s 0 i)

let run ~socket ?max_requests ?(on_ready = fun () -> ()) engine =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX socket);
  Unix.listen srv 16;
  on_ready ();
  (* Clients kept in accept order (an explicit list, not a hashtable) so
     the drain order below is reproducible. *)
  let clients = ref [] in
  let served = ref 0 in
  let finished = ref false in
  let limit_reached () =
    match max_requests with Some k -> !served >= k | None -> false
  in
  let drop c =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    clients := List.filter (fun c' -> c'.fd <> c.fd) !clients
  in
  let serve_ready_lines c =
    let continue = ref true in
    while !continue do
      match pop_line c.buf with
      | None -> continue := false
      | Some line ->
        if String.trim line <> "" then begin
          let resp = Engine.handle_line engine line in
          incr served;
          (try write_all c.fd (resp ^ "\n")
           with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
             (* The fd is closed now; any pipelined lines still buffered
                for this client must not be served to it. *)
             drop c;
             continue := false);
          if Engine.shutdown_requested engine || limit_reached () then begin
            finished := true;
            continue := false
          end
        end
    done
  in
  let chunk = Bytes.create 4096 in
  while not !finished do
    let fds = srv :: List.map (fun c -> c.fd) !clients in
    let ready, _, _ = Unix.select fds [] [] 1.0 in
    List.iter
      (fun fd ->
        if !finished then ()
        else if fd = srv then begin
          let cfd, _ = Unix.accept srv in
          clients := !clients @ [ { fd = cfd; buf = Buffer.create 256 } ]
        end
        else
          match List.find_opt (fun c -> c.fd = fd) !clients with
          | None -> ()
          | Some c -> (
            match Unix.read c.fd chunk 0 (Bytes.length chunk) with
            | 0 -> drop c
            | k ->
              Buffer.add_subbytes c.buf chunk 0 k;
              serve_ready_lines c
            | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> drop c))
      ready
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    !clients;
  (try Unix.close srv with Unix.Unix_error _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  !served
