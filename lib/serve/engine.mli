(** The serving engine: one loaded graph, many queries.

    [create] pays the per-instance setup exactly once — screen the
    embedding ([Screen.require] under a [serve.load] span), build the
    whole-graph phase-1 configuration — and every subsequent [handle]
    call answers one line-delimited JSON request against that shared
    state: [dfs] (root), [separator] (whole graph, a decomposition piece,
    or an explicit vertex list), [decompose] (piece-size target),
    [stats], [shutdown].

    Determinism contract (what the CI serving gate relies on): a
    response body is a pure function of the request and the loaded graph
    — it never mentions cache state or which client asked — so replaying
    a request stream over any number of connections, in any interleaving,
    yields byte-identical per-connection responses.  The [stats] document
    is order-independent as long as the cache never evicts: hits/misses
    depend only on the request multiset, charged rounds sum over the
    (set of) cache misses, and the response-hash aggregate is a
    commutative sum.  All hashes are computed with an in-repo FNV-1a
    fold, never [Hashtbl.hash], so they agree across OCaml versions. *)

open Repro_embedding
open Repro_core
module Json = Repro_trace.Json

type t

val create :
  ?tracer:Repro_trace.Trace.t ->
  ?backend:Backend.t ->
  ?small_part_cutoff:int ->
  ?cache_capacity:int ->
  pool:Repro_util.Pool.t ->
  Embedded.t ->
  t
(** Load, screen and index one graph.  Raises [Screen.Rejected_input]
    (entry ["serve"]) on hostile input — the daemon refuses to start
    rather than serving a corrupted instance.  [backend] defaults to the
    registry default (["congest"]); [cache_capacity] defaults to
    {!Workload.canonical_cache_capacity}. *)

val handle : t -> Json.t -> Json.t
(** Answer one request.  Unknown ops, malformed fields and out-of-range
    arguments produce [{"ok":false,"error":…}] responses (counted in the
    [errors] counter), never exceptions.  A request carrying
    ["trace":true] on a traced engine gets its own [serve.*] span's
    aggregated metrics attached as a ["metrics"] member. *)

val handle_line : t -> string -> string
(** Parse one request line, [handle] it, print the response (no trailing
    newline).  Parse failures become error responses. *)

val stats_json : t -> Json.t
(** The deterministic serving document: instance shape, per-class request
    counters, {!Cache.stats_json}, summed charged rounds over cache
    misses, and the commutative response-hash aggregate.  This is the
    metrics document BENCH_8's E19 entry commits and serve-smoke gates. *)

val shutdown_requested : t -> bool
val requests_served : t -> int
(** Total requests handled, every class and errors included. *)

val hash_ints : int list -> int
(** The engine's FNV-1a fold over a vertex list (62-bit, version-stable);
    exposed for tests and for clients that want to check response
    hashes. *)
