(* Spanning-tree constructors.

   The separator algorithm works with an *arbitrary* spanning tree (that is
   the point of Lemma 11: the tree may be Θ(n) deep).  We provide BFS trees
   (shallow), DFS trees (deep) and random trees, so experiments can stress
   both regimes.  These are the centralized counterparts of the Borůvka
   simulation of Lemma 9; the CONGEST cost is charged separately. *)

open Repro_util
open Repro_graph

let bfs g ~root = Algo.bfs_parents g root

let dfs g ~root = Algo.dfs_parents g root

(* Uniform-ish random spanning tree by randomized Kruskal: random edge order
   + union-find.  Cheap and adequate for stress testing. *)
let random g ~root ~seed =
  let rng = Rng.create seed in
  let es = Graph.edge_array g in
  Rng.shuffle_in_place rng es;
  let uf = Union_find.create (Graph.n g) in
  let adj = Array.make (Graph.n g) [] in
  Array.iter
    (fun (u, v) ->
      if Union_find.union uf u v then begin
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v)
      end)
    es;
  let parent = Array.make (Graph.n g) (-2) in
  parent.(root) <- -1;
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if parent.(v) = -2 then begin
          parent.(v) <- u;
          Queue.add v queue
        end)
      adj.(u)
  done;
  parent

type kind = Bfs | Dfs | Random of int

let make kind g ~root =
  match kind with
  | Bfs -> bfs g ~root
  | Dfs -> dfs g ~root
  | Random seed -> random g ~root ~seed

let kind_name = function
  | Bfs -> "bfs"
  | Dfs -> "dfs"
  | Random _ -> "random"
