(* Rooted spanning trees with children ordered by the planar embedding.

   Following the paper's convention (Section 5.1), the edge from a node to
   its parent sits at position 0 of the node's rotation, and the children
   appear clockwise after it.  The LEFT-DFS-ORDER visits children in
   counterclockwise order (greatest rotation position first); the
   RIGHT-DFS-ORDER visits them clockwise.  Both orders are computed here
   centrally; the CONGEST round cost of the distributed computation
   (Lemma 11) is charged by [Repro_congest.Rounds].

   Children are stored flat: the clockwise child list of [v] occupies
   [ch_off.(v) .. ch_off.(v + 1) - 1] of [ch] — the same CSR idiom as the
   graph, so a tree adds two int arrays instead of n boxed rows. *)

open Repro_embedding

type t = {
  root : int;
  parent : int array; (* -1 at the root *)
  depth : int array;
  ch_off : int array; (* n + 1 offsets into ch *)
  ch : int array; (* n - 1 children, clockwise, parent edge first *)
  size : int array; (* n_T(v): nodes in the subtree rooted at v *)
  pi_left : int array; (* LEFT-DFS-ORDER position, 0-based *)
  pi_right : int array; (* RIGHT-DFS-ORDER position, 0-based *)
  left_at : int array; (* inverse of pi_left *)
  right_at : int array; (* inverse of pi_right *)
  up : int array array; (* binary-lifting ancestor table [k].(v) *)
}

let n t = Array.length t.parent
let root t = t.root
let parent t v = t.parent.(v)
let depth t v = t.depth.(v)
let children_count t v = t.ch_off.(v + 1) - t.ch_off.(v)
let child t v i = t.ch.(t.ch_off.(v) + i)
let children t v = Array.sub t.ch t.ch_off.(v) (children_count t v)

let iter_children t v f =
  for i = t.ch_off.(v) to t.ch_off.(v + 1) - 1 do
    f t.ch.(i)
  done

let fold_children t v f acc =
  let acc = ref acc in
  for i = t.ch_off.(v) to t.ch_off.(v + 1) - 1 do
    acc := f !acc t.ch.(i)
  done;
  !acc

let size t v = t.size.(v)
let pi_left t v = t.pi_left.(v)
let pi_right t v = t.pi_right.(v)
let node_at_left t i = t.left_at.(i)
let node_at_right t i = t.right_at.(i)
let is_leaf t v = children_count t v = 0

(* DFS-interval ancestor test: u is an ancestor of v (reflexively). *)
let is_ancestor t ~anc ~desc =
  t.pi_left.(anc) <= t.pi_left.(desc)
  && t.pi_left.(desc) < t.pi_left.(anc) + t.size.(anc)

let in_subtree t ~of_:u v = is_ancestor t ~anc:u ~desc:v

let build ?root_first ~rot ~root parent =
  let n = Array.length parent in
  if n = 0 then invalid_arg "Rooted.build: empty tree";
  if parent.(root) <> -1 then invalid_arg "Rooted.build: root must have parent -1";
  (* Children of v in clockwise rotation order, starting right after the
     parent edge.  For the root the virtual parent direction is given by
     [root_first]: the child listed first.  Counted from the parent array
     (O(n)), then filled by walking each rotation once (O(m) total). *)
  let ch_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    if parent.(v) >= 0 then ch_off.(parent.(v) + 1) <- ch_off.(parent.(v) + 1) + 1
  done;
  for v = 1 to n do
    ch_off.(v) <- ch_off.(v) + ch_off.(v - 1)
  done;
  let ch = Array.make (max 1 ch_off.(n)) (-1) in
  let fill = Array.copy ch_off in
  for v = 0 to n - 1 do
    if ch_off.(v + 1) > ch_off.(v) then begin
      let d = Rotation.degree rot v in
      let start =
        if v = root then begin
          match root_first with
          | Some f -> Rotation.position rot v f
          | None -> 0
        end
        else Rotation.position rot v parent.(v)
      in
      for k = 0 to d - 1 do
        let u = Rotation.nth rot v ((start + k) mod d) in
        if u <> parent.(v) && parent.(u) = v then begin
          ch.(fill.(v)) <- u;
          fill.(v) <- fill.(v) + 1
        end
      done
    end
  done;
  let depth = Array.make n (-1) in
  let size = Array.make n 1 in
  let pi_left = Array.make n (-1) in
  let pi_right = Array.make n (-1) in
  (* Iterative post-order pass for sizes and pre-order passes for both DFS
     orders; explicit preallocated stacks keep deep paths (Θ(n)) from
     overflowing without allocating a cons cell per visit.  The children
     relation partitions the vertices, so no stack ever holds more than n
     entries. *)
  depth.(root) <- 0;
  let order = Array.make n root in
  let top = ref 0 in
  let stack = Array.make n root in
  let sp = ref 1 in
  while !sp > 0 do
    decr sp;
    let v = stack.(!sp) in
    order.(!top) <- v;
    incr top;
    for i = ch_off.(v) to ch_off.(v + 1) - 1 do
      let c = ch.(i) in
      depth.(c) <- depth.(v) + 1;
      stack.(!sp) <- c;
      incr sp
    done
  done;
  if !top <> n then invalid_arg "Rooted.build: parent array is not a tree";
  for i = n - 1 downto 0 do
    let v = order.(i) in
    for j = ch_off.(v) to ch_off.(v + 1) - 1 do
      size.(v) <- size.(v) + size.(ch.(j))
    done
  done;
  let assign_order pi ~leftmost_first =
    let clock = ref 0 in
    stack.(0) <- root;
    sp := 1;
    while !sp > 0 do
      decr sp;
      let v = stack.(!sp) in
      pi.(v) <- !clock;
      incr clock;
      let lo = ch_off.(v) and hi = ch_off.(v + 1) - 1 in
      (* Stack is LIFO: push the child to visit *last* first. *)
      if leftmost_first then
        for i = lo to hi do
          stack.(!sp) <- ch.(i);
          incr sp
        done
      else
        for i = hi downto lo do
          stack.(!sp) <- ch.(i);
          incr sp
        done
    done
  in
  (* LEFT-DFS-ORDER explores the counterclockwise-most unexplored child
     first, i.e. the child with the greatest rotation position; RIGHT takes
     them clockwise. *)
  assign_order pi_left ~leftmost_first:true;
  assign_order pi_right ~leftmost_first:false;
  let left_at = Array.make n (-1) and right_at = Array.make n (-1) in
  for v = 0 to n - 1 do
    left_at.(pi_left.(v)) <- v;
    right_at.(pi_right.(v)) <- v
  done;
  (* Binary lifting for LCA queries. *)
  let levels =
    let rec go k = if 1 lsl k >= n then k + 1 else go (k + 1) in
    go 0
  in
  let up = Array.make levels [||] in
  up.(0) <- Array.map (fun p -> if p < 0 then -1 else p) parent;
  for k = 1 to levels - 1 do
    up.(k) <-
      Array.init n (fun v ->
          let mid = up.(k - 1).(v) in
          if mid < 0 then -1 else up.(k - 1).(mid))
  done;
  {
    root;
    parent = Array.copy parent;
    depth;
    ch_off;
    ch;
    size;
    pi_left;
    pi_right;
    left_at;
    right_at;
    up;
  }

let kth_ancestor t v k =
  let v = ref v and k = ref k and bit = ref 0 in
  while !k > 0 && !v >= 0 do
    if !k land 1 = 1 then v := if !v < 0 then -1 else t.up.(!bit).(!v);
    k := !k lsr 1;
    incr bit
  done;
  !v

let lca t a b =
  if is_ancestor t ~anc:a ~desc:b then a
  else if is_ancestor t ~anc:b ~desc:a then b
  else begin
    let a = ref a in
    for k = Array.length t.up - 1 downto 0 do
      let cand = t.up.(k).(!a) in
      if cand >= 0 && not (is_ancestor t ~anc:cand ~desc:b) then a := cand
    done;
    t.parent.(!a)
  end

(* Vertices of the tree path from u to v, endpoints included, in order. *)
let path t u v =
  let w = lca t u v in
  let rec climb x acc = if x = w then acc else climb t.parent.(x) (x :: acc) in
  let from_u = List.rev (climb u []) in (* u .. just below w *)
  let from_v = climb v [] in (* just below w .. v *)
  from_u @ [ w ] @ from_v

let path_length t u v =
  let w = lca t u v in
  t.depth.(u) + t.depth.(v) - (2 * t.depth.(w))

(* Last node of the subtree of v in the given DFS order; this is always a
   leaf (the deepest node along the chain of last-visited children). *)
let last_leaf_left t v = t.left_at.(t.pi_left.(v) + t.size.(v) - 1)
let last_leaf_right t v = t.right_at.(t.pi_right.(v) + t.size.(v) - 1)

(* A centroid: removing it leaves components of size <= n/2. *)
let centroid t =
  let total = n t in
  let v = ref t.root in
  let continue_ = ref true in
  while !continue_ do
    let heavy = ref (-1) in
    iter_children t !v (fun c -> if t.size.(c) > total / 2 then heavy := c);
    if !heavy >= 0 then v := !heavy else continue_ := false
  done;
  !v

(* Re-root the same set of tree edges at a new vertex (RE-ROOT-PROBLEM,
   Lemma 19).  Children orders are recomputed from the rotation so that the
   re-rooted tree again satisfies the parent-first convention. *)
let reroot ?root_first ~rot t new_root =
  let size = n t in
  let adj = Array.make size [] in
  for v = 0 to size - 1 do
    if t.parent.(v) >= 0 then begin
      adj.(v) <- t.parent.(v) :: adj.(v);
      adj.(t.parent.(v)) <- v :: adj.(t.parent.(v))
    end
  done;
  let parent = Array.make size (-2) in
  parent.(new_root) <- -1;
  let queue = Queue.create () in
  Queue.add new_root queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if parent.(v) = -2 then begin
          parent.(v) <- u;
          Queue.add v queue
        end)
      adj.(u)
  done;
  build ?root_first ~rot ~root:new_root parent

let edges t =
  let acc = ref [] in
  for v = 0 to n t - 1 do
    if t.parent.(v) >= 0 then acc := (v, t.parent.(v)) :: !acc
  done;
  !acc

let parent_array t = Array.copy t.parent

let pp fmt t = Fmt.pf fmt "tree(n=%d, root=%d)" (n t) t.root
