(** Rooted spanning trees with embedding-ordered children.

    Children of each node are stored clockwise starting right after the
    parent edge, realizing the paper's convention [t_v(parent) = 0].
    LEFT/RIGHT DFS orders, subtree sizes and LCA structures are precomputed
    at construction. *)

open Repro_embedding

type t

val build : ?root_first:int -> rot:Rotation.t -> root:int -> int array -> t
(** [build ~rot ~root parent] packages the parent array (root has [-1]) into
    a rooted tree.  [root_first] selects which neighbour of the root comes
    first in its rotation — i.e. where the virtual root edge is inserted
    (paper, Section 4); defaults to the rotation's own starting point. *)

val n : t -> int
val root : t -> int

val parent : t -> int -> int
(** Parent of a vertex; [-1] at the root. *)

val depth : t -> int -> int

val children : t -> int -> int array
(** Children in clockwise rotation order.  Allocates a fresh array — hot
    paths use {!children_count} / {!child} / {!iter_children}. *)

val children_count : t -> int -> int

val child : t -> int -> int -> int
(** [child t v i] is the [i]-th clockwise child of [v] (unchecked:
    [0 <= i < children_count t v]), without allocating. *)

val iter_children : t -> int -> (int -> unit) -> unit
(** Apply to each child in clockwise order, without allocating. *)

val fold_children : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val size : t -> int -> int
(** [n_T(v)]: number of nodes in the subtree rooted at [v]. *)

val is_leaf : t -> int -> bool

val pi_left : t -> int -> int
(** LEFT-DFS-ORDER position (0-based). *)

val pi_right : t -> int -> int
(** RIGHT-DFS-ORDER position (0-based). *)

val node_at_left : t -> int -> int
(** Inverse of [pi_left]. *)

val node_at_right : t -> int -> int

val is_ancestor : t -> anc:int -> desc:int -> bool
(** Reflexive ancestor test via DFS intervals. *)

val in_subtree : t -> of_:int -> int -> bool

val kth_ancestor : t -> int -> int -> int
(** [kth_ancestor t v k]; [-1] when walking above the root. *)

val lca : t -> int -> int -> int

val path : t -> int -> int -> int list
(** Vertices of the tree path between two nodes, endpoints included. *)

val path_length : t -> int -> int -> int
(** Number of edges on the tree path. *)

val last_leaf_left : t -> int -> int
(** The leaf of the subtree of [v] with the greatest LEFT position. *)

val last_leaf_right : t -> int -> int

val centroid : t -> int
(** A vertex whose removal leaves components of size at most [n/2]. *)

val reroot : ?root_first:int -> rot:Rotation.t -> t -> int -> t
(** Same tree edges, new root (RE-ROOT-PROBLEM, Lemma 19). *)

val edges : t -> (int * int) list
val parent_array : t -> int array
val pp : Format.formatter -> t -> unit
