(** The differential-oracle registry.

    One oracle = one invariant family of the paper, checked on an arbitrary
    fuzzed instance by comparing an executed (distributed) computation
    against an independent reference — the dense engine scheduler, the
    serial collective choreography, or a centralized algorithm — plus a
    pinned round budget (rounds = Õ(depth)) so an asymptotic regression
    fails the check even when outputs still agree.

    The registry unifies what used to be three hand-rolled differential
    suites (engine_equiv, test_collective, test_composed): those suites are
    now thin property declarations over these oracles, and [bin/fuzz] runs
    the same oracles over a seed-driven instance stream. *)

type report = {
  oracle : string;
  ok : bool;
  detail : string;  (** failure reasons, or "ok (N checks)" *)
  rounds : int;  (** observed rounds (0 when not applicable) *)
  budget : int;  (** asserted round budget ([max_int] when not applicable) *)
  checks : int;  (** individual comparisons performed *)
}

type t = {
  name : string;
  guards : string;  (** the lemma/theorem this oracle guards *)
  run : Instance.t -> report;
}

exception Duplicate_oracle of string

(** Engine differential driver: one program through both schedulers.
    Exposed so the engine-equiv suite can keep its deterministic tiny-graph
    edge cases (n = 1, n = 2) next to the fuzzed property. *)
module Diff (P : Repro_congest.Engine.PROGRAM) : sig
  val check :
    ?max_rounds:int ->
    ?bandwidth:int ->
    Repro_graph.Graph.t ->
    input:P.input array ->
    int * string option
  (** (event-driven engine rounds, divergence description if any);
      divergence covers outputs and all four statistics. *)
end

val register : t -> unit
(** Raises {!Duplicate_oracle} if the name is taken. *)

val restrict_backends : string list -> unit
(** Narrow (or widen) the separator backends the ["backend"] oracle
    conformance-checks; defaults to the three shipped backends
    (["congest"], ["lt-level"], ["hn-cycle"]) so test-registered extras
    don't leak into fuzz runs.  Used by [bin/fuzz --backend]. *)

val all : unit -> t list
(** Registration order; the built-ins are registered at module load. *)

val names : unit -> string list

val find : string -> t
(** Raises [Failure] with the known names on an unknown oracle. *)

val run_protected : t -> Instance.t -> report
(** [run] with exceptions captured as failing reports. *)

val sabotage : threshold:int -> t
(** Deliberately broken oracle (fails on any instance with at least
    [threshold] vertices): the injected-bug drill used by
    [bin/fuzz --self-check] and the testkit's own suite to prove that the
    fuzzer catches, shrinks and replays a failure.  Never registered. *)
