(** Brute-force LEFT/RIGHT DFS orders by walking the face of the tree.

    A spanning tree T of an embedded graph has exactly one face; walking its
    2(n-1) darts and recording each vertex at first visit yields the
    LEFT-DFS order (counterclockwise walk, in this repository's rotation
    convention) and RIGHT-DFS order (clockwise walk) directly from the
    paper's geometric definition — an oracle for
    Lemma 11 that shares no code with [Rooted]'s recursive precomputation
    or [Composed.dfs_orders]'s distributed fragment merging. *)

open Repro_embedding

val orders :
  rot:Rotation.t ->
  parent:int array ->
  root:int ->
  ?root_first:int ->
  unit ->
  int array * int array
(** [(pi_left, pi_right)], 0-based positions.  [root_first] is the
    neighbour of the root right after the virtual root edge (the same
    convention as {!Repro_tree.Rooted.build}). *)
