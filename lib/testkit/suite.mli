(** Alcotest suite registration with derived names and duplicate
    detection.

    Every test module declares [let suites = Suite.make __MODULE__ cases];
    the suite name is derived from the module name (strip the dune prefix
    and a [Test_] prefix, lowercase, [_] → [-]), so renaming a module
    renames its suite and two modules can never silently merge under one
    hand-typed name.  [combine] is the aggregation point of
    test/test_main.ml and raises on a duplicate. *)

exception Duplicate_suite of string

val derive : string -> string
(** ["Dune__exe__Test_collective"] → ["collective"],
    ["Engine_equiv"] → ["engine-equiv"]. *)

val make :
  string ->
  unit Alcotest.test_case list ->
  (string * unit Alcotest.test_case list) list
(** One suite named after the module ([__MODULE__]). *)

val combine :
  (string * unit Alcotest.test_case list) list list ->
  (string * unit Alcotest.test_case list) list
(** Flatten, raising {!Duplicate_suite} when two suites share a name. *)

val property :
  ?count:int ->
  ?max_size:int ->
  ?families:string list ->
  seed:int ->
  oracles:string list ->
  string ->
  unit Alcotest.test_case
(** A fuzz property as an alcotest case: run [count] (default 25) cases
    through the named oracles; on failure, shrink and fail the test with
    the repro line. *)
