type report = {
  spec : Instance.spec;
  results : Oracle.report list;
  ok : bool;
  checks : int;
}

let check_all ?oracles (inst : Instance.t) =
  let oracles = match oracles with Some os -> os | None -> Oracle.all () in
  let results = List.map (fun o -> Oracle.run_protected o inst) oracles in
  {
    spec = inst.Instance.spec;
    results;
    ok = List.for_all (fun r -> r.Oracle.ok) results;
    checks = List.fold_left (fun a r -> a + r.Oracle.checks) 0 results;
  }

let check_spec ?oracles spec = check_all ?oracles (Instance.build spec)

let pp_report fmt r =
  Format.fprintf fmt "%s: %s (%d checks)@."
    (Instance.to_string r.spec)
    (if r.ok then "ok" else "FAILED")
    r.checks;
  List.iter
    (fun (res : Oracle.report) ->
      Format.fprintf fmt "  %s %a@."
        (if res.Oracle.ok then "pass" else "FAIL")
        Runner.pp_report res)
    r.results
