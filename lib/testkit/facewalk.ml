(* Lemma 11 by brute force: first-visit orders along the unique face of the
   spanning tree.

   At a node v entered along the dart (u, v), the walk leaves along the
   first TREE neighbour after u in v's rotation — scanning clockwise for
   the LEFT order, counterclockwise for the RIGHT order.  At the root the
   scan starts at the virtual root edge's position (the [root_first]
   neighbour, or the rotation's own starting point).  This visits children
   exactly in the paper's convention (clockwise starting right after the
   parent edge), so the order of first visits is the LEFT (resp. RIGHT)
   DFS order. *)

open Repro_embedding

let orders ~rot ~parent ~root ?root_first () =
  let n = Array.length parent in
  let is_tree_edge v w = parent.(v) = w || parent.(w) = v in
  let walk dir =
    let order = Array.make n (-1) in
    let next_rank = ref 0 in
    let visit v =
      if order.(v) = -1 then begin
        order.(v) <- !next_rank;
        incr next_rank
      end
    in
    visit root;
    if n > 1 then begin
      let rotation = Rotation.order rot root in
      let start_idx =
        match root_first with
        | None -> 0
        | Some rf ->
          let idx = ref 0 in
          Array.iteri (fun i w -> if w = rf then idx := i) rotation;
          !idx
      in
      (* First tree neighbour of [v] scanning [dir] from index [from]
         (inclusive); a node with any incidence has a tree neighbour. *)
      let scan v from =
        let rotation = Rotation.order rot v in
        let deg = Array.length rotation in
        let rec go i remaining =
          if remaining = 0 then invalid_arg "Facewalk: isolated vertex"
          else begin
            let i = ((i mod deg) + deg) mod deg in
            let w = rotation.(i) in
            if is_tree_edge v w then w else go (i + dir) (remaining - 1)
          end
        in
        go from deg
      in
      (* The virtual root edge sits between [start_idx - 1] and
         [start_idx]: the clockwise walk starts at [start_idx], the
         counterclockwise one right before it. *)
      let first = scan root (if dir = 1 then start_idx else start_idx - 1) in
      let u = ref root and v = ref first in
      (* The closed face walk of a tree has exactly 2(n-1) darts. *)
      for _ = 1 to 2 * (n - 1) do
        visit !v;
        let p = Rotation.position rot !v !u in
        let w = scan !v (p + dir) in
        u := !v;
        v := w
      done
    end;
    order
  in
  (* In this repository's convention (Rooted: children clockwise starting
     right after the parent edge, LEFT visits the last-stored child's side
     first) the LEFT order is the counterclockwise face walk and RIGHT the
     clockwise one. *)
  (walk (-1), walk 1)
