(* Suite names derived from module names; duplicates rejected at startup
   instead of silently merging in alcotest's UI. *)

exception Duplicate_suite of string

let derive module_name =
  (* Dune prefixes executable modules ("Dune__exe__Test_foo"); keep
     everything after the last "__". *)
  let last_chunk s =
    let n = String.length s in
    let start = ref 0 in
    for i = 0 to n - 2 do
      if s.[i] = '_' && s.[i + 1] = '_' then start := i + 2
    done;
    String.sub s !start (n - !start)
  in
  let s = String.lowercase_ascii (last_chunk module_name) in
  let s =
    if String.length s > 5 && String.sub s 0 5 = "test_" then
      String.sub s 5 (String.length s - 5)
    else s
  in
  String.map (function '_' -> '-' | c -> c) s

let make module_name cases = [ (derive module_name, cases) ]

let combine groups =
  let seen = Hashtbl.create 32 in
  let flat = List.concat groups in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then raise (Duplicate_suite name);
      Hashtbl.add seen name ())
    flat;
  flat

let property ?(count = 25) ?max_size ?families ~seed ~oracles name =
  Alcotest.test_case name `Quick (fun () ->
      let oracles = List.map Oracle.find oracles in
      let outcome =
        Runner.fuzz ~oracles ?families ?max_size ~seed ~count ()
      in
      match outcome.Runner.failures with
      | [] -> ()
      | f :: _ ->
        Alcotest.fail
          (Format.asprintf "%s@.  %a@.  replay: %s"
             (Instance.to_string f.Runner.spec)
             (Format.pp_print_list Runner.pp_report)
             f.Runner.reports (Runner.repro_line f)))
