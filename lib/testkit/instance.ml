(* Fuzzing instances, determined by a printable (family, n, seed, spanning)
   spec.  Everything downstream of the spec is deterministic: the embedded
   graph, the spanning tree, and (because every oracle seeds its own input
   stream from [spec.seed]) the full check performed on it.  That makes a
   spec string a complete, replayable repro of any failure. *)

open Repro_util
open Repro_graph
open Repro_embedding
open Repro_tree
open Repro_core

type spec = { family : string; n : int; seed : int; spanning : Spanning.kind }
type t = { spec : spec; emb : Embedded.t; config : Config.t }

(* Gen's benchmark families plus the testkit-only ones.  Trees (rtree,
   caterpillar, path, star) are kept in the pool on purpose: they exercise
   the tree phases of the separator and the empty-fundamental-edge paths of
   the face oracles. *)
let families =
  [
    "grid"; "tgrid"; "stacked"; "thinned"; "cycle"; "chords"; "fan"; "wheel";
    "rtree"; "caterpillar"; "path"; "star";
  ]

(* Hostile families: near-planar adversarial instances the Screen layer
   must reject or flag.  They are kept OUT of [families] on purpose —
   the fuzzer draws every oracle's cases from that pool, and only the
   [screen] oracle is defined on hostile input. *)
let hostile_families = [ "xchords1"; "xchords4"; "xchords16"; "xrot"; "xunion" ]
let is_hostile f = List.mem f hostile_families

let min_size = function
  | "wheel" | "chords" -> 4
  | "grid" | "tgrid" -> 4
  | "stacked" | "thinned" -> 4
  | "cycle" | "fan" -> 3
  | "star" -> 2
  | "path" -> 1
  | "xchords1" | "xchords4" | "xrot" -> 9
  | "xchords16" -> 16
  | "xunion" -> 8
  | _ -> 4

(* Cycle 0..n-1 in convex position with a random set of non-crossing chords:
   regions are split recursively, so all chords are nested intervals and the
   straight-line drawing stays planar (a random outerplanar graph). *)
let chorded_cycle ~seed ~n =
  if n < 4 then invalid_arg "Instance.chorded_cycle: n >= 4 required";
  let rng = Rng.create seed in
  let edges = ref (List.init n (fun i -> (i, (i + 1) mod n))) in
  let rec split lo hi =
    (* region spanned by cycle vertices lo..hi (hi - lo >= 3 has room) *)
    if hi - lo >= 3 then begin
      let mid = lo + 1 + Rng.int rng (hi - lo - 1) in
      if mid - lo >= 2 && Rng.int rng 3 > 0 then edges := (lo, mid) :: !edges;
      if hi - mid >= 2 && Rng.int rng 3 > 0 then edges := (mid, hi) :: !edges;
      split lo mid;
      split mid hi
    end
  in
  split 0 (n - 1);
  let coords =
    Array.init n (fun i ->
        let a = 2.0 *. Float.pi *. float_of_int i /. float_of_int n in
        (cos a, sin a))
  in
  Embedded.of_coords
    ~name:(Printf.sprintf "chords-%d" n)
    (Graph.of_edges ~n !edges) coords

(* ---- hostile builders --------------------------------------------------

   Each is deterministic from (seed, n) and names its embedding with the
   family:n:seed triple, so a screen failure is replayable from the
   verdict message alone.  Corruption is retried (with fresh draws from
   the same stream) until planarity actually breaks: a bad swap on a
   low-degree vertex or an unlucky chord splice can leave the Euler
   count intact, and a generator that sometimes emits a clean instance
   under a hostile family would poison the oracle. *)

let insert_at l pos x =
  let rec go i = function
    | [] -> [ x ]
    | hd :: tl as rest -> if i = pos then x :: rest else hd :: go (i + 1) tl
  in
  go 0 l

let hostile_attempts = 64

(* Planar grid plus [k] random chords, each spliced into both endpoint
   rotations at a random position.  The rotations stay valid
   permutations (tier-1 clean) but the embedding stops satisfying
   Euler's formula: the chord is the planted witness. *)
let planar_plus_chords ~seed ~n ~k =
  let base = Gen.by_family ~seed "grid" ~n in
  let g = Embedded.graph base in
  let rot = Embedded.rot base in
  let nv = Graph.n g in
  let rng = Rng.create (seed + (31 * k)) in
  let rec attempt a =
    if a > hostile_attempts then
      failwith "Instance.planar_plus_chords: no non-planar draw found";
    let chords = ref [] in
    let guard = ref 0 in
    while List.length !chords < k && !guard < 10_000 do
      incr guard;
      let u = Rng.int rng nv and v = Rng.int rng nv in
      let e = (min u v, max u v) in
      if u <> v && (not (Graph.mem_edge g u v)) && not (List.mem e !chords)
      then chords := e :: !chords
    done;
    let g' = Graph.of_edges ~n:nv (Graph.edges g @ !chords) in
    let orders =
      Array.init nv (fun v -> ref (Array.to_list (Rotation.order rot v)))
    in
    List.iter
      (fun (u, v) ->
        let splice a b =
          let l = !(orders.(a)) in
          orders.(a) := insert_at l (Rng.int rng (List.length l + 1)) b
        in
        splice u v;
        splice v u)
      !chords;
    let rot' =
      Rotation.of_orders g' (Array.map (fun r -> Array.of_list !r) orders)
    in
    if Rotation.is_planar_embedding g' rot' then attempt (a + 1)
    else
      Embedded.make ~outer:(Embedded.outer base)
        ~name:(Printf.sprintf "xchords%d:%d:%d" k n seed)
        g' rot'
  in
  attempt 1

(* Same grid, same graph — but one rotation corrupted by swapping two
   entries at a vertex of degree >= 3.  Still a permutation of the
   adjacency (tier-1 clean), yet the face walks no longer close a genus-0
   surface. *)
let corrupted_rotation ~seed ~n =
  let base = Gen.by_family ~seed "grid" ~n in
  let g = Embedded.graph base in
  let rot = Embedded.rot base in
  let nv = Graph.n g in
  let rng = Rng.create (seed + 17) in
  let rec attempt a =
    if a > hostile_attempts then
      failwith "Instance.corrupted_rotation: no non-planar swap found";
    let v = Rng.int rng nv in
    let deg = Graph.degree g v in
    if deg < 3 then attempt (a + 1)
    else begin
      let i = Rng.int rng deg in
      let j = (i + 1 + Rng.int rng (deg - 1)) mod deg in
      let orders = Array.init nv (Rotation.order rot) in
      let o = orders.(v) in
      let tmp = o.(i) in
      o.(i) <- o.(j);
      o.(j) <- tmp;
      let rot' = Rotation.of_orders g orders in
      if Rotation.is_planar_embedding g rot' then attempt (a + 1)
      else
        Embedded.make ~outer:(Embedded.outer base)
          ~name:(Printf.sprintf "xrot:%d:%d" n seed)
          g rot'
    end
  in
  attempt 1

(* Two grids with no edge between them: every per-component structure is
   perfectly planar, so only the connectivity screen catches it. *)
let disconnected_union ~seed ~n =
  let half = max 4 (n / 2) in
  let a = Gen.by_family ~seed "grid" ~n:half in
  let b = Gen.by_family ~seed:(seed + 1) "grid" ~n:(max 4 (n - half)) in
  let ga = Embedded.graph a and gb = Embedded.graph b in
  let na = Graph.n ga and nb = Graph.n gb in
  let edges =
    Graph.edges ga
    @ List.map (fun (u, v) -> (u + na, v + na)) (Graph.edges gb)
  in
  let g = Graph.of_edges ~n:(na + nb) edges in
  let orders =
    Array.init (na + nb) (fun v ->
        if v < na then Rotation.order (Embedded.rot a) v
        else Array.map (fun u -> u + na) (Rotation.order (Embedded.rot b) (v - na)))
  in
  Embedded.make ~outer:(Embedded.outer a)
    ~name:(Printf.sprintf "xunion:%d:%d" n seed)
    g
    (Rotation.of_orders g orders)

let hostile_embedded spec =
  let n = max (min_size spec.family) spec.n in
  let seed = spec.seed in
  match spec.family with
  | "xchords1" -> planar_plus_chords ~seed ~n ~k:1
  | "xchords4" -> planar_plus_chords ~seed ~n ~k:4
  | "xchords16" -> planar_plus_chords ~seed ~n ~k:16
  | "xrot" -> corrupted_rotation ~seed ~n
  | "xunion" -> disconnected_union ~seed ~n
  | f -> invalid_arg ("Instance.hostile_embedded: not a hostile family " ^ f)

let embedded spec =
  let n = max (min_size spec.family) spec.n in
  match spec.family with
  | "chords" -> chorded_cycle ~seed:spec.seed ~n
  | "caterpillar" -> Gen.caterpillar ~spine:(max 2 (n / 4)) ~legs:3
  | f -> Gen.by_family ~seed:spec.seed f ~n

(* The configuration uses the rotation's own starting point as the virtual
   root edge position (no [root_first]) — the convention the Composed
   subroutines assume (their local views carry raw rotations), and the one
   test_composed always used.  [Config.of_embedded] would instead pick the
   outward direction, making the centralized and distributed sides
   disagree at the root. *)
let build_clean spec =
  let emb = embedded spec in
  let g = Embedded.graph emb in
  let root = Embedded.outer emb in
  let parent = Spanning.make spec.spanning g ~root in
  let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
  let config = Config.of_parts ~graph:g ~rot:(Embedded.rot emb) ~tree () in
  { spec; emb; config }

(* A hostile instance carries the hostile embedding but a placeholder
   config built from a clean grid of the same size: spanning trees and
   configurations are undefined on corrupted input (that is the point of
   the screen), while the Runner/shrinker machinery builds every
   instance the same way and only the [screen] oracle ever reads a
   hostile instance. *)
let build spec =
  if is_hostile spec.family then begin
    let emb = hostile_embedded spec in
    let base = build_clean { spec with family = "grid" } in
    { spec; emb; config = base.config }
  end
  else build_clean spec

let spanning_name = function
  | Spanning.Bfs -> "bfs"
  | Spanning.Dfs -> "dfs"
  | Spanning.Random s -> Printf.sprintf "rand%d" s

let spanning_of_name s =
  match s with
  | "bfs" -> Spanning.Bfs
  | "dfs" -> Spanning.Dfs
  | _ ->
    (match
       if String.length s > 4 && String.sub s 0 4 = "rand" then
         int_of_string_opt (String.sub s 4 (String.length s - 4))
       else None
     with
    | Some k -> Spanning.Random k
    | None -> failwith ("Instance.spanning_of_name: " ^ s))

let to_string spec =
  Printf.sprintf "%s:%d:%d:%s" spec.family spec.n spec.seed
    (spanning_name spec.spanning)

let of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ family; n; seed; sp ] ->
    if not (List.mem family families || is_hostile family) then
      failwith ("Instance.of_string: unknown family " ^ family);
    (match (int_of_string_opt n, int_of_string_opt seed) with
    | Some n, Some seed -> { family; n; seed; spanning = spanning_of_name sp }
    | _ -> failwith ("Instance.of_string: malformed spec " ^ s))
  | _ -> failwith ("Instance.of_string: malformed spec " ^ s)

let pp fmt spec = Format.pp_print_string fmt (to_string spec)
