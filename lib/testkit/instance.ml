(* Fuzzing instances, determined by a printable (family, n, seed, spanning)
   spec.  Everything downstream of the spec is deterministic: the embedded
   graph, the spanning tree, and (because every oracle seeds its own input
   stream from [spec.seed]) the full check performed on it.  That makes a
   spec string a complete, replayable repro of any failure. *)

open Repro_util
open Repro_graph
open Repro_embedding
open Repro_tree
open Repro_core

type spec = { family : string; n : int; seed : int; spanning : Spanning.kind }
type t = { spec : spec; emb : Embedded.t; config : Config.t }

(* Gen's benchmark families plus the testkit-only ones.  Trees (rtree,
   caterpillar, path, star) are kept in the pool on purpose: they exercise
   the tree phases of the separator and the empty-fundamental-edge paths of
   the face oracles. *)
let families =
  [
    "grid"; "tgrid"; "stacked"; "thinned"; "cycle"; "chords"; "fan"; "wheel";
    "rtree"; "caterpillar"; "path"; "star";
  ]

let min_size = function
  | "wheel" | "chords" -> 4
  | "grid" | "tgrid" -> 4
  | "stacked" | "thinned" -> 4
  | "cycle" | "fan" -> 3
  | "star" -> 2
  | "path" -> 1
  | _ -> 4

(* Cycle 0..n-1 in convex position with a random set of non-crossing chords:
   regions are split recursively, so all chords are nested intervals and the
   straight-line drawing stays planar (a random outerplanar graph). *)
let chorded_cycle ~seed ~n =
  if n < 4 then invalid_arg "Instance.chorded_cycle: n >= 4 required";
  let rng = Rng.create seed in
  let edges = ref (List.init n (fun i -> (i, (i + 1) mod n))) in
  let rec split lo hi =
    (* region spanned by cycle vertices lo..hi (hi - lo >= 3 has room) *)
    if hi - lo >= 3 then begin
      let mid = lo + 1 + Rng.int rng (hi - lo - 1) in
      if mid - lo >= 2 && Rng.int rng 3 > 0 then edges := (lo, mid) :: !edges;
      if hi - mid >= 2 && Rng.int rng 3 > 0 then edges := (mid, hi) :: !edges;
      split lo mid;
      split mid hi
    end
  in
  split 0 (n - 1);
  let coords =
    Array.init n (fun i ->
        let a = 2.0 *. Float.pi *. float_of_int i /. float_of_int n in
        (cos a, sin a))
  in
  Embedded.of_coords
    ~name:(Printf.sprintf "chords-%d" n)
    (Graph.of_edges ~n !edges) coords

let embedded spec =
  let n = max (min_size spec.family) spec.n in
  match spec.family with
  | "chords" -> chorded_cycle ~seed:spec.seed ~n
  | "caterpillar" -> Gen.caterpillar ~spine:(max 2 (n / 4)) ~legs:3
  | f -> Gen.by_family ~seed:spec.seed f ~n

(* The configuration uses the rotation's own starting point as the virtual
   root edge position (no [root_first]) — the convention the Composed
   subroutines assume (their local views carry raw rotations), and the one
   test_composed always used.  [Config.of_embedded] would instead pick the
   outward direction, making the centralized and distributed sides
   disagree at the root. *)
let build spec =
  let emb = embedded spec in
  let g = Embedded.graph emb in
  let root = Embedded.outer emb in
  let parent = Spanning.make spec.spanning g ~root in
  let tree = Rooted.build ~rot:(Embedded.rot emb) ~root parent in
  let config = Config.of_parts ~graph:g ~rot:(Embedded.rot emb) ~tree () in
  { spec; emb; config }

let spanning_name = function
  | Spanning.Bfs -> "bfs"
  | Spanning.Dfs -> "dfs"
  | Spanning.Random s -> Printf.sprintf "rand%d" s

let spanning_of_name s =
  match s with
  | "bfs" -> Spanning.Bfs
  | "dfs" -> Spanning.Dfs
  | _ ->
    (match
       if String.length s > 4 && String.sub s 0 4 = "rand" then
         int_of_string_opt (String.sub s 4 (String.length s - 4))
       else None
     with
    | Some k -> Spanning.Random k
    | None -> failwith ("Instance.spanning_of_name: " ^ s))

let to_string spec =
  Printf.sprintf "%s:%d:%d:%s" spec.family spec.n spec.seed
    (spanning_name spec.spanning)

let of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ family; n; seed; sp ] ->
    if not (List.mem family families) then
      failwith ("Instance.of_string: unknown family " ^ family);
    (match (int_of_string_opt n, int_of_string_opt seed) with
    | Some n, Some seed -> { family; n; seed; spanning = spanning_of_name sp }
    | _ -> failwith ("Instance.of_string: malformed spec " ^ s))
  | _ -> failwith ("Instance.of_string: malformed spec " ^ s)

let pp fmt spec = Format.pp_print_string fmt (to_string spec)
