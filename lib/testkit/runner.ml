(* The deterministic fuzz loop.  No wall clocks, no global RNG: the case
   stream is a pure function of the seed, and every failure is reported as
   a spec string that rebuilds the exact instance (see Instance). *)

open Repro_util
open Repro_tree

type failure = {
  original : Instance.spec;
  spec : Instance.spec;
  case : int;
  shrink_steps : int;
  reports : Oracle.report list;
}

type outcome = { cases : int; checks : int; failures : failure list }

let build_failure_report exn =
  {
    Oracle.oracle = "build";
    ok = false;
    detail = "instance construction raised: " ^ Printexc.to_string exn;
    rounds = 0;
    budget = max_int;
    checks = 0;
  }

let run_spec ~oracles spec =
  match Instance.build spec with
  | exception e -> [ build_failure_report e ]
  | inst -> List.map (fun o -> Oracle.run_protected o inst) oracles

let failing ~oracles spec =
  List.filter (fun r -> not r.Oracle.ok) (run_spec ~oracles spec)

(* ------------------------------------------------------------------ *)
(* Shrinking: greedy descent through the spec space.                   *)
(* ------------------------------------------------------------------ *)

(* Candidate specs, most aggressive first.  A candidate that fails to
   build is simply not a counterexample (the generator families reject
   some sizes); [failing] never confuses that with an oracle failure
   because shrinking only accepts candidates whose failing oracles are a
   subset of the ones we started from. *)
let shrink_candidates (spec : Instance.spec) =
  let lo = Instance.min_size spec.family in
  let smaller =
    [ lo; spec.n / 2; spec.n * 2 / 3; spec.n - 8; spec.n - 1 ]
    |> List.filter (fun n -> n >= lo && n < spec.n)
    |> List.sort_uniq compare
  in
  let sizes = List.map (fun n -> { spec with n }) smaller in
  let spannings =
    match spec.spanning with
    | Spanning.Random _ ->
      [ { spec with spanning = Spanning.Dfs }; { spec with spanning = Spanning.Bfs } ]
    | Spanning.Dfs -> [ { spec with spanning = Spanning.Bfs } ]
    | Spanning.Bfs -> []
  in
  sizes @ spannings

let shrink ~oracles ?(budget = 60) spec =
  let target_oracles reports =
    List.map (fun r -> r.Oracle.oracle) reports |> List.sort_uniq compare
  in
  let targets = target_oracles (failing ~oracles spec) in
  let still_fails candidate =
    let now = target_oracles (failing ~oracles candidate) in
    now <> [] && List.for_all (fun o -> List.mem o targets) now
  in
  let steps = ref 0 and fuel = ref budget in
  let rec descend spec =
    if !fuel <= 0 then spec
    else
      match
        List.find_opt
          (fun c ->
            decr fuel;
            !fuel >= 0 && still_fails c)
          (shrink_candidates spec)
      with
      | Some smaller ->
        incr steps;
        descend smaller
      | None -> spec
  in
  let minimal = descend spec in
  (minimal, !steps)

(* ------------------------------------------------------------------ *)
(* The fuzz loop.                                                      *)
(* ------------------------------------------------------------------ *)

let pp_report fmt (r : Oracle.report) =
  Format.fprintf fmt "[%s] %s (%d checks" r.Oracle.oracle r.Oracle.detail
    r.Oracle.checks;
  if r.Oracle.budget <> max_int then
    Format.fprintf fmt ", %d/%d rounds" r.Oracle.rounds r.Oracle.budget;
  Format.fprintf fmt ")"

let repro_line f =
  let oracle =
    match f.reports with
    | [ r ] -> Printf.sprintf " --oracle %s" r.Oracle.oracle
    | _ -> ""
  in
  Printf.sprintf "bin/fuzz --replay %s%s" (Instance.to_string f.spec) oracle

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let artifact_json ~seed f =
  let report_json (r : Oracle.report) =
    Printf.sprintf
      "{\"oracle\":\"%s\",\"ok\":false,\"detail\":\"%s\",\"rounds\":%d,\"budget\":%s,\"checks\":%d}"
      (json_escape r.Oracle.oracle)
      (json_escape r.Oracle.detail)
      r.Oracle.rounds
      (if r.Oracle.budget = max_int then "null"
       else string_of_int r.Oracle.budget)
      r.Oracle.checks
  in
  Printf.sprintf
    "{\"fuzz_seed\":%d,\"case\":%d,\"original\":\"%s\",\"shrunk\":\"%s\",\"shrink_steps\":%d,\"replay\":\"%s\",\"reports\":[%s]}"
    seed f.case
    (json_escape (Instance.to_string f.original))
    (json_escape (Instance.to_string f.spec))
    f.shrink_steps
    (json_escape (repro_line f))
    (String.concat "," (List.map report_json f.reports))

let fuzz ?oracles ?families ?(max_size = 64) ?(max_failures = 1)
    ?(log = fun _ -> ()) ~seed ~count () =
  let oracles = match oracles with Some os -> os | None -> Oracle.all () in
  let rng = Rng.create seed in
  let cases = ref 0 and checks = ref 0 in
  let failures = ref [] in
  (let exception Stop in
   try
     for i = 0 to count - 1 do
       (* Size ramp: start tiny (boundary cases), end at max_size. *)
       let size =
         if count <= 1 then max_size
         else 4 + ((max_size - 4) * i / (count - 1))
       in
       let spec = Generator.spec ?families ~size rng in
       let reports = run_spec ~oracles spec in
       incr cases;
       List.iter (fun r -> checks := !checks + r.Oracle.checks) reports;
       let bad = List.filter (fun r -> not r.Oracle.ok) reports in
       if bad <> [] then begin
         log
           (Printf.sprintf "case %d FAILED: %s — shrinking..." i
              (Instance.to_string spec));
         let shrunk, steps = shrink ~oracles spec in
         let f =
           {
             original = spec;
             spec = shrunk;
             case = i;
             shrink_steps = steps;
             reports = failing ~oracles shrunk;
           }
         in
         failures := f :: !failures;
         if List.length !failures >= max_failures then raise Stop
       end
       else if i > 0 && i mod 50 = 0 then
         log (Printf.sprintf "case %d/%d ok (%d checks so far)" i count !checks)
     done
   with Stop -> ());
  { cases = !cases; checks = !checks; failures = List.rev !failures }
