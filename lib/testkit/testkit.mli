(** The one-call entry point: every registered oracle on one instance.

    [check_all] is what [bin/fuzz] runs per case and what external callers
    use to validate an instance end to end; the submodules ({!Instance},
    {!Generator}, {!Oracle}, {!Runner}, {!Suite}, {!Facewalk}) expose the
    pieces individually. *)

type report = {
  spec : Instance.spec;
  results : Oracle.report list;  (** registry order *)
  ok : bool;  (** all results ok *)
  checks : int;  (** total comparisons *)
}

val check_all : ?oracles:Oracle.t list -> Instance.t -> report
(** Run the oracles (default: the whole registry) with exception capture. *)

val check_spec : ?oracles:Oracle.t list -> Instance.spec -> report
(** [check_all] on the instance the spec builds. *)

val pp_report : Format.formatter -> report -> unit
