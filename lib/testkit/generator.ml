(* Seed-driven generator combinators (QuickCheck style, but with the
   repository's splitmix Rng so every draw is reproducible from a seed). *)

open Repro_util
open Repro_graph
open Repro_tree

type 'a t = Rng.t -> 'a

let return x _ = x
let map f g rng = f (g rng)
let bind g f rng = f (g rng) rng
let pair a b rng =
  let x = a rng in
  let y = b rng in
  (x, y)

let int_range lo hi rng = Rng.int_in_range rng ~lo ~hi
let oneof xs rng = Rng.pick rng (Array.of_list xs)
let oneof_gen gs rng = (Rng.pick rng (Array.of_list gs)) rng

let frequency weighted rng =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 weighted in
  if total <= 0 then invalid_arg "Generator.frequency";
  let roll = Rng.int rng total in
  let rec pick acc = function
    | [] -> invalid_arg "Generator.frequency"
    | (w, x) :: rest -> if roll < acc + w then x else pick (acc + w) rest
  in
  pick 0 weighted

(* BFS trees are the shallow common case; bias toward DFS and random trees,
   which stress the depth-dependent bounds much harder. *)
let spanning_kind rng =
  match Rng.int rng 5 with
  | 0 -> Spanning.Bfs
  | 1 | 2 -> Spanning.Dfs
  | _ -> Spanning.Random (Rng.int rng 1000)

let spec ?(families = Instance.families) ~size rng =
  let family = oneof families rng in
  let lo = Instance.min_size family in
  (* +-25% size jitter so one fuzz run covers a band, not a single n. *)
  let jitter = max 1 (size / 4) in
  let n = max lo (size + Rng.int rng (2 * jitter) - jitter) in
  {
    Instance.family;
    n;
    seed = Rng.int rng 100_000;
    spanning = spanning_kind rng;
  }

(* Near-planar adversarial generators (the hostile counterpart of [spec]):
   re-exported from Instance, where the builders live next to the other
   testkit-only family constructions, so callers reach the whole
   adversarial pool through this module. *)
let hostile_families = Instance.hostile_families
let planar_plus_chords = Instance.planar_plus_chords
let corrupted_rotation = Instance.corrupted_rotation
let disconnected_union = Instance.disconnected_union

let hostile_spec ?(families = Instance.hostile_families) ~size rng =
  let family = oneof families rng in
  let lo = Instance.min_size family in
  let jitter = max 1 (size / 4) in
  let n = max lo (size + Rng.int rng (2 * jitter) - jitter) in
  {
    Instance.family;
    n;
    seed = Rng.int rng 100_000;
    spanning = spanning_kind rng;
  }

let connected_parts g ~parts rng =
  let n = Graph.n g in
  let k = max 1 (min parts n) in
  let perm = Array.init n Fun.id in
  Rng.shuffle_in_place rng perm;
  let part = Array.make n (-1) in
  let q = Queue.create () in
  for i = 0 to k - 1 do
    part.(perm.(i)) <- i;
    Queue.add perm.(i) q
  done;
  (* Multi-source BFS: each region grows from its seed, so every part is
     connected; a connected graph is fully covered. *)
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun u ->
        if part.(u) = -1 then begin
          part.(u) <- part.(v);
          Queue.add u q
        end)
      (Graph.neighbors g v)
  done;
  let members = Array.make k [] in
  for v = n - 1 downto 0 do
    if part.(v) >= 0 then members.(part.(v)) <- v :: members.(part.(v))
  done;
  Array.to_list members |> List.filter (fun m -> m <> [])
