(** The deterministic fuzz loop: seed-driven case stream, oracle
    execution, spec-space shrinking, replayable failure records.

    Everything is a pure function of [(seed, count, max_size, families,
    oracles)]: the same invocation always visits the same instance stream
    and produces the same failures, which is what makes the printed repro
    line (and the CI crash artifact built from it) sufficient to reproduce
    a failure locally. *)

type failure = {
  original : Instance.spec;  (** the spec that first failed *)
  spec : Instance.spec;  (** shrunk minimal counterexample *)
  case : int;  (** 0-based index in the case stream *)
  shrink_steps : int;  (** accepted shrink steps *)
  reports : Oracle.report list;  (** failing reports on [spec] *)
}

type outcome = {
  cases : int;  (** cases executed (≤ count when failures stop the run) *)
  checks : int;  (** individual oracle comparisons performed *)
  failures : failure list;  (** in discovery order *)
}

val run_spec : oracles:Oracle.t list -> Instance.spec -> Oracle.report list
(** All reports (passing and failing) of the oracles on the instance the
    spec builds; a spec that fails to build yields one failing ["build"]
    report.  Exceptions inside an oracle are captured as failing reports
    ({!Oracle.run_protected}). *)

val failing : oracles:Oracle.t list -> Instance.spec -> Oracle.report list
(** Just the failing reports. *)

val shrink :
  oracles:Oracle.t list -> ?budget:int -> Instance.spec -> Instance.spec * int
(** Greedy spec-space descent: repeatedly try smaller [n] and simpler
    spanning kinds, keeping any candidate on which some given oracle still
    fails, until no candidate fails or the step [budget] (default 60) is
    spent.  Returns the minimal failing spec and the number of accepted
    steps.  The input spec must be failing. *)

val fuzz :
  ?oracles:Oracle.t list ->
  ?families:string list ->
  ?max_size:int ->
  ?max_failures:int ->
  ?log:(string -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  outcome
(** [count] cases with sizes ramping up to [max_size] (default 64), each
    checked by all [oracles] (default: the whole registry); failures are
    shrunk immediately.  The run stops early after [max_failures]
    (default 1) failures. *)

val repro_line : failure -> string
(** The replay command for a failure, e.g.
    ["bin/fuzz --replay stacked:24:7:rand3 --oracle separator"]. *)

val artifact_json : seed:int -> failure -> string
(** Machine-readable crash artifact (JSON): seeds, specs, shrink
    trajectory length, failing oracle reports, and the replay command. *)

val pp_report : Format.formatter -> Oracle.report -> unit
