(* The differential-oracle registry: every oracle checks one slice of the
   paper's correctness story on an arbitrary fuzzed instance, by comparing
   an executed computation against an independent reference AND asserting a
   pinned Õ(depth) round budget.  The budgets are deliberately generous
   (constants pinned ~4x above the observed ceiling across the seeded fuzz
   corpus) — they exist to catch asymptotic regressions (an O(n)-round
   schedule, an O(n)-candidate loop), not constant-factor drift, which the
   benchmarks track. *)

open Repro_util
open Repro_graph
open Repro_embedding
open Repro_tree
open Repro_congest
open Repro_core
open Repro_baseline

type report = {
  oracle : string;
  ok : bool;
  detail : string;
  rounds : int;
  budget : int;
  checks : int;
}

type t = { name : string; guards : string; run : Instance.t -> report }

exception Duplicate_oracle of string

(* ------------------------------------------------------------------ *)
(* Check accumulation.                                                 *)
(* ------------------------------------------------------------------ *)

type ctx = {
  mutable fails : string list;
  mutable checks : int;
  mutable max_rounds : int;
  mutable max_budget : int;  (* budget paired with max_rounds *)
}

let ctx_create () =
  { fails = []; checks = 0; max_rounds = 0; max_budget = max_int }

let ck ctx label cond =
  ctx.checks <- ctx.checks + 1;
  if not cond then ctx.fails <- label :: ctx.fails

(* Round-budget assertion: also feeds the report's (rounds, budget) pair
   with the heaviest observed execution. *)
let bud ctx label rounds budget =
  if rounds > ctx.max_rounds then begin
    ctx.max_rounds <- rounds;
    ctx.max_budget <- budget
  end;
  ck ctx (Printf.sprintf "%s: %d rounds exceed budget %d" label rounds budget)
    (rounds <= budget)

let finish ~name ctx =
  {
    oracle = name;
    ok = ctx.fails = [];
    detail =
      (match ctx.fails with
      | [] -> Printf.sprintf "ok (%d checks)" ctx.checks
      | fs -> String.concat "; " (List.rev fs));
    rounds = ctx.max_rounds;
    budget = (if ctx.max_budget = max_int then max_int else ctx.max_budget);
    checks = ctx.checks;
  }

(* ------------------------------------------------------------------ *)
(* Shared instance views.                                              *)
(* ------------------------------------------------------------------ *)

let log2ceil n = int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.0))

let knowledge_of tree =
  let n = Rooted.n tree in
  Composed.
    {
      parent = Array.init n (Rooted.parent tree);
      depth = Array.init n (Rooted.depth tree);
      pi_left = Array.init n (Rooted.pi_left tree);
      size = Array.init n (Rooted.size tree);
      root = Rooted.root tree;
    }

let local_view_of rot tree =
  let n = Rooted.n tree in
  Composed.
    {
      lparent = Array.init n (Rooted.parent tree);
      ldepth = Array.init n (Rooted.depth tree);
      lsize = Array.init n (Rooted.size tree);
      lrot = Array.init n (Rotation.order rot);
      lchildren = Array.init n (Rooted.children tree);
      lpi_l = Array.init n (Rooted.pi_left tree);
      lpi_r = Array.init n (Rooted.pi_right tree);
    }

let tree_depth tree =
  let d = ref 0 in
  for v = 0 to Rooted.n tree - 1 do
    if Rooted.depth tree v > !d then d := Rooted.depth tree v
  done;
  !d

let take k xs = List.filteri (fun i _ -> i < k) xs

(* ------------------------------------------------------------------ *)
(* 0. "graph": the flat CSR store = a retained reference adjacency-list *)
(*    build (the pre-CSR representation), plus the induced-subgraph map  *)
(*    contracts every hot path relies on.                               *)
(* ------------------------------------------------------------------ *)

let run_graph (inst : Instance.t) =
  let ctx = ctx_create () in
  let g = Config.graph inst.config in
  let n = Graph.n g in
  let rng = Rng.create ((2 * inst.spec.Instance.seed) + 9) in
  let edge_list = Graph.edges g in
  (* Reference build: hash-table membership + per-vertex list adjacency,
     exactly the shape the pre-CSR core used. *)
  let ref_mem = Hashtbl.create (4 * Graph.m g) in
  let ref_adj = Array.make (max 1 n) [] in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace ref_mem (min u v, max u v) ();
      ref_adj.(u) <- v :: ref_adj.(u);
      ref_adj.(v) <- u :: ref_adj.(v))
    edge_list;
  let ref_sorted = Array.map (List.sort_uniq compare) ref_adj in
  (* n / m / degree / neighbour rows (contents AND order: rows are sorted
     ascending by construction). *)
  ck ctx "m = |edges|" (Graph.m g = List.length edge_list);
  ck ctx "sum of degrees = 2m"
    (let s = ref 0 in
     for v = 0 to n - 1 do
       s := !s + Graph.degree g v
     done;
     !s = 2 * Graph.m g);
  let rows_ok = ref true and iter_ok = ref true in
  for v = 0 to n - 1 do
    let row = Graph.neighbors g v in
    if Array.to_list row <> ref_sorted.(v) then rows_ok := false;
    let seen = ref [] in
    Graph.iter_neighbors g v (fun u -> seen := u :: !seen);
    if List.rev !seen <> Array.to_list row then iter_ok := false;
    Array.iteri (fun i u -> if Graph.nth_neighbor g v i <> u then iter_ok := false) row
  done;
  ck ctx "neighbour rows = reference sets, ascending" !rows_ok;
  ck ctx "iter_neighbors/nth_neighbor = neighbors" !iter_ok;
  (* Membership: every reference edge present (both directions), sampled
     non-edges absent. *)
  ck ctx "mem_edge covers reference edges"
    (List.for_all (fun (u, v) -> Graph.mem_edge g u v && Graph.mem_edge g v u) edge_list);
  let neg_ok = ref true in
  for _ = 1 to 32 do
    let u = Rng.int rng n and v = Rng.int rng n in
    let reference = u <> v && Hashtbl.mem ref_mem (min u v, max u v) in
    if Graph.mem_edge g u v <> reference then neg_ok := false
  done;
  ck ctx "mem_edge = reference membership on random pairs" !neg_ok;
  (* edge_array is the primitive: u < v, lexicographically ascending, and
     [edges] derives from it unchanged. *)
  let ea = Graph.edge_array g in
  ck ctx "edges = Array.to_list edge_array" (edge_list = Array.to_list ea);
  ck ctx "edge_array normalized ascending"
    (let ok = ref true in
     Array.iteri
       (fun i (u, v) ->
         if u >= v then ok := false;
         if i > 0 && ea.(i - 1) >= (u, v) then ok := false)
       ea;
     !ok);
  (* Construction round-trip: flipped orientations and duplicates must
     normalize to the identical structure. *)
  let noisy =
    List.concat_map (fun (u, v) -> [ (v, u); (u, v) ]) edge_list
  in
  let g2 = Graph.of_edges ~n noisy in
  ck ctx "of_edges normalizes duplicates/orientation"
    (Graph.m g2 = Graph.m g
    && (let same = ref true in
        for v = 0 to n - 1 do
          if Graph.neighbors g2 v <> Graph.neighbors g v then same := false
        done;
        !same));
  (* Induced subgraphs: keep-array and member-array forms agree with each
     other and with a naive reference, and the scratch-backed form resets
     correctly across reuse. *)
  let scratch = Graph.Scratch.create () in
  let check_induced tag members =
    let keep = Array.make n false in
    Array.iter (fun v -> keep.(v) <- true) members;
    let sub_k, old2new_k, new2old_k = Graph.induced g keep in
    let sub_m, old2new_m, new2old_m = Graph.induced_members ~scratch g members in
    ck ctx (tag ^ ": members = keep (new->old map)") (new2old_m = new2old_k);
    ck ctx (tag ^ ": members = keep (old->new map)")
      (Array.for_all
         (fun v -> old2new_m.(v) = old2new_k.(v))
         (Array.init n Fun.id));
    ck ctx (tag ^ ": members = keep (graph)")
      (Graph.n sub_m = Graph.n sub_k
      && Graph.m sub_m = Graph.m sub_k
      && (let same = ref true in
          for v = 0 to Graph.n sub_k - 1 do
            if Graph.neighbors sub_m v <> Graph.neighbors sub_k v then
              same := false
          done;
          !same));
    (* New ids follow increasing old id; maps are mutual inverses. *)
    ck ctx (tag ^ ": new ids ascend in old id")
      (let ok = ref true in
       Array.iteri (fun i v -> if i > 0 && new2old_k.(i - 1) >= v then ok := false)
         new2old_k;
       !ok);
    ck ctx (tag ^ ": maps inverse")
      (Array.for_all (fun i -> old2new_k.(new2old_k.(i)) = i)
         (Array.init (Graph.n sub_k) Fun.id));
    (* Sub-edges = reference edges with both endpoints kept. *)
    let expect =
      List.filter (fun (u, v) -> keep.(u) && keep.(v)) edge_list
      |> List.map (fun (u, v) ->
             let a = old2new_k.(u) and b = old2new_k.(v) in
             (min a b, max a b))
      |> List.sort compare
    in
    ck ctx (tag ^ ": sub-edges = filtered reference edges")
      (List.sort compare (Graph.edges sub_k) = expect)
  in
  if n > 0 then begin
    let subset bound =
      let marks = Array.init n (fun _ -> Rng.int rng bound = 0) in
      let members = ref [] in
      Array.iteri (fun v m -> if m then members := v :: !members) marks;
      Array.of_list !members
    in
    let m1 = subset 2 in
    if Array.length m1 > 0 then check_induced "induced#1" m1;
    (* Reusing the same scratch on a different member set exercises the
       un-mark pass between calls. *)
    let m2 = subset 3 in
    if Array.length m2 > 0 then check_induced "induced#2 (scratch reuse)" m2
  end;
  finish ~name:"graph" ctx

(* ------------------------------------------------------------------ *)
(* 1. "engine": event-driven scheduler = dense reference scheduler      *)
(*    (bit-identical outputs AND statistics on every program).          *)
(* ------------------------------------------------------------------ *)

module Diff (P : Engine.PROGRAM) = struct
  module Fast = Engine.Make (P)
  module Ref = Engine.Reference.Make (P)

  let check ?max_rounds ?bandwidth g ~input =
    let out_r, st_r = Ref.run ?max_rounds ?bandwidth g ~input in
    let out_f, st_f = Fast.run ?max_rounds ?bandwidth g ~input in
    let err =
      if out_r <> out_f then Some "outputs diverge"
      else if st_r <> st_f then
        Some
          (Format.asprintf "stats diverge (ref %a, fast %a)" Engine.pp_stats
             st_r Engine.pp_stats st_f)
      else None
    in
    (st_f.Engine.rounds, err)
end

module Bfs_diff = Diff (Prim.Bfs_program)
module Subtree_diff = Diff (Prim.Subtree_program)
module Ancestor_diff = Diff (Prim.Ancestor_program)
module Broadcast_diff = Diff (Prim.Broadcast_program)
module Exchange_diff = Diff (Prim.Exchange_program)
module Collect_diff = Diff (Collective.Collect_program)
module Partwise_batch_diff = Diff (Collective.Partwise_batch_program)

let run_engine (inst : Instance.t) =
  let ctx = ctx_create () in
  let g = Config.graph inst.config in
  let tree = Config.tree inst.config in
  let n = Graph.n g in
  let root = Rooted.root tree in
  let parent = Array.init n (Rooted.parent tree) in
  let rng = Rng.create ((2 * inst.spec.Instance.seed) + 1) in
  let diam = Algo.diameter g in
  let budget = (4 * (diam + tree_depth tree + 8)) + 16 in
  let diff name (rounds, err) =
    ck ctx
      (Printf.sprintf "%s: %s" name
         (match err with Some e -> e | None -> "engines agree"))
      (err = None);
    bud ctx name rounds budget
  in
  (* BFS from one root and from a seeded multi-root forest. *)
  diff "bfs" (Bfs_diff.check g ~input:(Array.init n (fun v -> v = root)));
  let multi = Array.init n (fun _ -> Rng.int rng 8 = 0) in
  multi.(root) <- true;
  diff "bfs-forest" (Bfs_diff.check g ~input:multi);
  (* Tree aggregations over the instance's own (possibly adversarial)
     spanning tree. *)
  let values = Array.init n (fun _ -> Rng.int rng 10_000) in
  let op = Rng.pick rng [| Prim.Sum; Prim.Min; Prim.Max |] in
  diff "subtree"
    (Subtree_diff.check g
       ~input:
         (Array.init n (fun v ->
              { Prim.Subtree_program.parent = parent.(v); value = values.(v); op })));
  diff "ancestor"
    (Ancestor_diff.check g
       ~input:
         (Array.init n (fun v ->
              { Prim.Ancestor_program.parent = parent.(v); value = values.(v); op })));
  diff "broadcast"
    (Broadcast_diff.check g
       ~input:
         (Array.init n (fun v ->
              {
                Prim.Broadcast_program.parent = parent.(v);
                value = (if v = root then Some 4242 else None);
              })));
  (* One-round neighbourhood exchange with random payloads. *)
  diff "exchange"
    (Exchange_diff.check g
       ~input:
         (Array.init n (fun v ->
              Graph.neighbors g v |> Array.to_seq
              |> Seq.filter_map (fun u ->
                     if Rng.int rng 2 = 0 then Some (u, Rng.int rng 100)
                     else None)
              |> List.of_seq)));
  (* The batched collective programs (k-slot convergecast, k-slot
     part-wise) — the layer the composed subroutines ride on. *)
  let k = 3 in
  let ops = Array.init k (fun j -> [| Prim.Sum; Prim.Min; Prim.Max |].(j mod 3)) in
  diff "collect-batch"
    (Collect_diff.check g
       ~input:
         (Array.init n (fun v ->
              {
                Collective.Collect_program.parent = parent.(v);
                slots = Array.init k (fun _ -> Rng.int rng 1000);
                ops;
              })));
  let part = Array.init n (fun _ -> Rng.int rng 5) in
  part.(root) <- 0;
  diff "partwise-batch"
    (Partwise_batch_diff.check g
       ~input:
         (Array.init n (fun v ->
              {
                Collective.Partwise_batch_program.parent = parent.(v);
                part = part.(v);
                values = Array.init k (fun _ -> Rng.int rng 1000);
                ops;
              })));
  finish ~name:"engine" ctx

(* ------------------------------------------------------------------ *)
(* 2. "orders": Lemma 11 — distributed LEFT/RIGHT orders = Rooted's     *)
(*    recursive precomputation = the brute-force face walk.             *)
(* ------------------------------------------------------------------ *)

let run_orders (inst : Instance.t) =
  let ctx = ctx_create () in
  let g = Config.graph inst.config in
  let tree = Config.tree inst.config in
  let n = Graph.n g in
  let root = Rooted.root tree in
  let parent = Array.init n (Rooted.parent tree) in
  let depth = Array.init n (Rooted.depth tree) in
  let children = Array.init n (Rooted.children tree) in
  let pi_l = Array.init n (Rooted.pi_left tree) in
  let pi_r = Array.init n (Rooted.pi_right tree) in
  (* Independent geometric reference: first-visit orders along the face of
     the tree. *)
  let walk_l, walk_r =
    Facewalk.orders
      ~rot:(Config.rot inst.config)
      ~parent ~root
      ?root_first:(Config.root_first inst.config)
      ()
  in
  ck ctx "face-walk LEFT = Rooted pi_left" (walk_l = pi_l);
  ck ctx "face-walk RIGHT = Rooted pi_right" (walk_r = pi_r);
  (* Distributed fragment merging (the executed Lemma 11). *)
  let orders, phases, st = Composed.dfs_orders g ~children ~parent ~depth ~root in
  ck ctx "executed pi_left = Rooted" (orders.Composed.pi_left = pi_l);
  ck ctx "executed pi_right = Rooted" (orders.Composed.pi_right = pi_r);
  let d = tree_depth tree in
  let phase_bound = log2ceil (max 2 d) + 2 in
  ck ctx
    (Printf.sprintf "merging phases %d <= %d" phases phase_bound)
    (phases <= phase_bound);
  (* Executed rounds: the per-phase part-wise broadcast is pipelined over
     the fragments, so a phase with p fragments costs O(depth + p) rounds
     — linear in n at the first phases (observed ceiling ~12n; the engine
     has no shortcuts).  The Õ(depth) claim is asserted on the charged
     ledger by the separator/dfs oracles instead. *)
  bud ctx "dfs-orders" st.Composed.rounds
    ((20 * (n + (phase_bound * (d + 8)))) + 64);
  finish ~name:"orders" ctx

(* ------------------------------------------------------------------ *)
(* 3. "collective": batched tree subroutines = serial oracle =          *)
(*    centralized truth (Lemmas 12, 13, 14, 19).                        *)
(* ------------------------------------------------------------------ *)

let run_collective (inst : Instance.t) =
  let ctx = ctx_create () in
  let g = Config.graph inst.config in
  let tree = Config.tree inst.config in
  let rot = Config.rot inst.config in
  let n = Graph.n g in
  let tk = knowledge_of tree in
  let lv = local_view_of rot tree in
  let d = tree_depth tree in
  let rng = Rng.create ((2 * inst.spec.Instance.seed) + 3) in
  for _ = 1 to 3 do
    let u = Rng.int rng n and v = Rng.int rng n in
    let w, _ = Composed.lca g tk ~u ~v in
    let w', _ = Composed.Reference.lca g tk ~u ~v in
    ck ctx (Printf.sprintf "lca(%d,%d) = serial oracle" u v) (w = w');
    ck ctx
      (Printf.sprintf "lca(%d,%d) = centralized" u v)
      (w = Rooted.lca tree u v);
    let marked, st = Composed.mark_path g tk ~u ~v in
    let marked', st' = Composed.Reference.mark_path g tk ~u ~v in
    ck ctx "mark-path = serial oracle" (marked = marked');
    let path = Rooted.path tree u v in
    ck ctx "mark-path = centralized path"
      (List.for_all (fun x -> marked.(x)) path
      && Array.fold_left (fun a m -> if m then a + 1 else a) 0 marked
         = List.length path);
    (* The batching win must not silently erode. *)
    ck ctx
      (Printf.sprintf "mark-path batching: serial %d runs >= 3x batched %d"
         st'.Composed.engine_runs st.Composed.engine_runs)
      (st'.Composed.engine_runs >= 3 * st.Composed.engine_runs);
    bud ctx "mark-path" st.Composed.rounds ((16 * (d + 3)) + 16)
  done;
  let new_root = Rng.int rng n in
  let (p', d'), str = Composed.reroot g lv ~new_root in
  let (p'', d''), _ = Composed.Reference.reroot g lv ~new_root in
  ck ctx "reroot = serial oracle" (p' = p'' && d' = d'');
  let tree' = Rooted.reroot ~rot tree new_root in
  ck ctx "reroot = centralized"
    (p' = Array.init n (Rooted.parent tree')
    && d' = Array.init n (Rooted.depth tree'));
  bud ctx "reroot" str.Composed.rounds ((8 * (d + 3)) + 24);
  let ws, stw = Composed.weights g lv in
  let ws', _ = Composed.Reference.weights g lv in
  ck ctx "weights = serial oracle" (ws = ws');
  ck ctx "weights cover all fundamental edges"
    (List.length ws = List.length (Config.fundamental_edges inst.config));
  ck ctx "weights = centralized Definition 2"
    (List.for_all
       (fun ((u, v), w) -> w = Weights.weight inst.config ~u ~v)
       (take 6 ws));
  (* Lemma 12: constant executed rounds once Phase-1 data is local. *)
  bud ctx "weights" stw.Composed.rounds 8;
  finish ~name:"collective" ctx

(* ------------------------------------------------------------------ *)
(* 4. "faces": DETECT-FACE and HIDDEN (Lemmas 15, 16) = serial oracle   *)
(*    = centralized face traversal.                                     *)
(* ------------------------------------------------------------------ *)

let run_faces (inst : Instance.t) =
  let ctx = ctx_create () in
  let g = Config.graph inst.config in
  let tree = Config.tree inst.config in
  let lv = local_view_of (Config.rot inst.config) tree in
  let d = tree_depth tree in
  List.iter
    (fun (u, v) ->
      let fm, st = Composed.detect_face g lv ~u ~v in
      let fm', _ = Composed.Reference.detect_face g lv ~u ~v in
      ck ctx
        (Printf.sprintf "detect-face(%d,%d) = serial oracle" u v)
        (fm.Composed.border = fm'.Composed.border
        && fm.Composed.inside = fm'.Composed.inside);
      let inside_ref = Faces.interior_reference inst.config ~u ~v in
      let border_ref = Faces.border inst.config ~u ~v in
      let as_marks xs =
        let m = Array.make (Graph.n g) false in
        List.iter (fun x -> m.(x) <- true) xs;
        m
      in
      ck ctx "detect-face interior = centralized face traversal"
        (fm.Composed.inside = as_marks inside_ref);
      ck ctx "detect-face border = centralized border path"
        (fm.Composed.border = as_marks border_ref);
      bud ctx "detect-face" st.Composed.rounds ((16 * (d + 3)) + 64);
      (* HIDDEN on the first interior T-leaf, when the face has one. *)
      match List.filter (Rooted.is_leaf tree) inside_ref with
      | [] -> ()
      | t :: _ ->
        let h, sth = Composed.hidden g lv ~u ~v ~t in
        let h', _ = Composed.Reference.hidden g lv ~u ~v ~t in
        ck ctx (Printf.sprintf "hidden(t=%d) = serial oracle" t) (h = h');
        ck ctx "hidden = centralized Definition 4"
          (Array.to_list h |> List.concat |> List.sort_uniq compare
          = (Hidden.hiding_edges inst.config ~e:(u, v) ~t |> List.sort compare));
        bud ctx "hidden" sth.Composed.rounds ((10 * (d + 3)) + 160))
    (take 3 (Config.fundamental_edges inst.config));
  finish ~name:"faces" ctx

(* ------------------------------------------------------------------ *)
(* 5. "pipeline": Phase 1, the Phase-3 separator election, Lemma 9      *)
(*    forests — batched = serial oracle, and valid.                     *)
(* ------------------------------------------------------------------ *)

let run_pipeline (inst : Instance.t) =
  let ctx = ctx_create () in
  let g = Config.graph inst.config in
  let tree = Config.tree inst.config in
  let n = Graph.n g in
  let root = Rooted.root tree in
  let rot = Config.rot inst.config in
  let rot_orders = Array.init n (Rotation.order rot) in
  let parent = Array.init n (Rooted.parent tree) in
  let depth = Array.init n (Rooted.depth tree) in
  let d = tree_depth tree in
  let lg = log2ceil n in
  let lv, st1 = Composed.phase1 g ~rot_orders ~parent ~depth ~root in
  let lv', _ = Composed.Reference.phase1 g ~rot_orders ~parent ~depth ~root in
  ck ctx "phase1 = serial oracle"
    (lv.Composed.lsize = lv'.Composed.lsize
    && lv.Composed.lpi_l = lv'.Composed.lpi_l
    && lv.Composed.lpi_r = lv'.Composed.lpi_r);
  ck ctx "phase1 = centralized tree data"
    (lv.Composed.lsize = Array.init n (Rooted.size tree)
    && lv.Composed.lpi_l = Array.init n (Rooted.pi_left tree)
    && lv.Composed.lpi_r = Array.init n (Rooted.pi_right tree));
  (* Observed ceiling ~7·n (fragment-pipelined part-wise, see "orders"). *)
  bud ctx "phase1" st1.Composed.rounds ((12 * (n + ((lg + 2) * (d + 8)))) + 64);
  let sep, st = Composed.separator_phase3 g ~rot_orders ~parent ~depth ~root in
  let sep', st' =
    Composed.Reference.separator_phase3 g ~rot_orders ~parent ~depth ~root
  in
  ck ctx "phase-3 election = serial oracle" (sep = sep');
  ck ctx
    (Printf.sprintf "batched %d rounds <= serial %d" st.Composed.rounds
       st'.Composed.rounds)
    (st.Composed.rounds <= st'.Composed.rounds);
  (match sep with
  | None -> ()
  | Some (_, marked) ->
    ck ctx
      (Printf.sprintf "batched %d rounds < serial %d" st.Composed.rounds
         st'.Composed.rounds)
      (st.Composed.rounds < st'.Composed.rounds);
    let s = ref [] in
    Array.iteri (fun x m -> if m then s := x :: !s) marked;
    ck ctx "phase-3 separator valid (Check)"
      (Check.check_separator inst.config !s).Check.valid);
  let (fp, fd, ffrag), phases, stf = Composed.spanning_forest g () in
  let reference = Composed.Reference.spanning_forest g () in
  let (fp', fd', ffrag'), phases', _ = reference in
  ck ctx "Lemma-9 forest = serial oracle"
    (fp = fp' && fd = fd' && ffrag = ffrag' && phases = phases');
  let roots = ref 0 in
  let well_formed = ref true in
  for v = 0 to n - 1 do
    if fp.(v) = -1 then incr roots
    else if not (Graph.mem_edge g v fp.(v)) || fd.(v) <> fd.(fp.(v)) + 1 then
      well_formed := false
  done;
  ck ctx "forest is a single well-formed tree" (!well_formed && !roots = 1);
  ck ctx
    (Printf.sprintf "Boruvka phases %d <= %d" phases (lg + 2))
    (phases <= lg + 2);
  (* Observed ceiling ~3.2·(n + phases·diam): fragment leaders flood their
     fragments, whose diameter approaches the graph's. *)
  bud ctx "spanning-forest" stf.Composed.rounds
    ((8 * (n + ((lg + 2) * (Algo.diameter g + 8)))) + 64);
  finish ~name:"pipeline" ctx

(* ------------------------------------------------------------------ *)
(* 6. "separator": Theorem 1's six-phase algorithm, certified by the    *)
(*    centralized Check/Lipton–Tarjan side.                             *)
(* ------------------------------------------------------------------ *)

let run_separator (inst : Instance.t) =
  let ctx = ctx_create () in
  let g = Config.graph inst.config in
  let n = Graph.n g in
  let d = Algo.diameter g in
  let ledger = Rounds.create ~n ~d:(max 1 d) () in
  let r = Separator.find ~rounds:ledger inst.config in
  let verdict = Check.check_separator inst.config r.Separator.separator in
  ck ctx
    (Format.asprintf "separator valid (%a) via phase %s" Check.pp_verdict
       verdict r.Separator.phase)
    verdict.Check.valid;
  (* Cross-validate the component computation: Check and the Lipton–Tarjan
     baseline implement it independently. *)
  ck ctx "Check max-component = Lipton-Tarjan max-component"
    (verdict.Check.max_component
    = Lipton_tarjan.max_component_after g r.Separator.separator);
  (match r.Separator.endpoints with
  | None -> ()
  | Some e ->
    ck ctx "closing edge certifiable (DMP)"
      (Check.cycle_closable inst.config ~endpoints:e));
  (* Shrinking keeps balance and never grows. *)
  let shrunk = Separator.shrink inst.config r.Separator.separator in
  ck ctx "shrunk separator still balanced" (Check.balanced inst.config shrunk);
  ck ctx "shrink never grows"
    (List.length shrunk <= List.length r.Separator.separator);
  (* Amortized verification: the phase groups are tried in a fixed order
     (tree | phase3 -> phase4/phase5 -> fallback), each maintaining one
     running balance aggregate — so a find charges at most four
     "verify-balance" batches, however many candidates it probes, and the
     retired per-candidate mark-path walks must stay retired. *)
  ck ctx
    (Printf.sprintf "verify-balance batches %d <= 4"
       (Rounds.label_invocations ledger "verify-balance"))
    (Rounds.label_invocations ledger "verify-balance" <= 4);
  ck ctx "no per-candidate mark-path walks"
    (Rounds.label_invocations ledger "mark-path[Lem13]" = 0);
  (* Charged-model budget: the candidate loop stays polylog, and the total
     stays a polylog multiple of one part-wise aggregation (Õ(D)). *)
  let lg = log2ceil n in
  let inv_budget = (16 * lg) + 48 in
  ck ctx
    (Printf.sprintf "ledger invocations %d <= %d" (Rounds.invocations ledger)
       inv_budget)
    (Rounds.invocations ledger <= inv_budget);
  bud ctx "charged rounds"
    (int_of_float (Rounds.total ledger))
    (int_of_float
       (float_of_int (inv_budget * lg * lg) *. Rounds.pa_cost ledger));
  finish ~name:"separator" ctx

(* ------------------------------------------------------------------ *)
(* 6b. "join": Lemma 2's batched election choreography = the serial     *)
(*     reference, bit-identically, and strictly cheaper.                *)
(* ------------------------------------------------------------------ *)

let run_join (inst : Instance.t) =
  let ctx = ctx_create () in
  let g = Config.graph inst.config in
  let n = Graph.n g in
  let d = Algo.diameter g in
  let root = Rooted.root (Config.tree inst.config) in
  let members = Array.init n Fun.id in
  let separator = (Separator.find inst.config).Separator.separator in
  let run_join ledger exec reference =
    let st = Join.create g ~root in
    let iters =
      if reference then Join.Reference.join ~rounds:ledger st ~members ~separator
      else Join.join ~rounds:ledger ?exec st ~members ~separator
    in
    (st, iters)
  in
  let fresh () = Rounds.create ~n ~d:(max 1 d) () in
  let lb = fresh () and lr = fresh () in
  let stb, ib = run_join lb None false in
  let str_, ir = run_join lr None true in
  (* Bit-identity of the resulting partial tree and iteration count. *)
  ck ctx "batched parent array = reference" (stb.Join.parent = str_.Join.parent);
  ck ctx "batched depth array = reference" (stb.Join.depth = str_.Join.depth);
  ck ctx
    (Printf.sprintf "iteration count identical (%d vs %d)" ib ir)
    (ib = ir);
  (* The charged win must not silently erode: per iteration the batched
     schedule costs 2*lg + 3 PA units against the serial lg^2 + lg + 2, so
     it is never dearer, and from lg >= 4 (n >= 9) at least 2x cheaper. *)
  ck ctx
    (Printf.sprintf "charged rounds never dearer (%.0f vs %.0f)"
       (Rounds.total lb) (Rounds.total lr))
    (Rounds.total lb <= Rounds.total lr);
  if log2ceil n >= 4 then
    ck ctx
      (Printf.sprintf "charged rounds halved (%.0f vs %.0f)" (Rounds.total lb)
         (Rounds.total lr))
      (2.0 *. Rounds.total lb <= Rounds.total lr);
  ck ctx "batched join never charges mark-path"
    (Rounds.label_invocations lb "mark-path[Lem13]" = 0);
  (* Executed elections: batched and serial bindings agree bit-identically
     with the host-side choreography, and the slot batching keeps a >= 2x
     engine-run advantage (the Collect/Partwise-batch economics). *)
  let exec_run serial =
    let st = Join.create g ~root in
    let e = Join.exec_create ~serial st ~root in
    let iters = Join.join ~exec:e st ~members ~separator in
    (st, iters, e.Join.stats)
  in
  let stb2, ib2, sb = exec_run false in
  let sts2, is2, ss = exec_run true in
  ck ctx "executed batched elections = host choreography"
    (stb2.Join.parent = stb.Join.parent
    && stb2.Join.depth = stb.Join.depth
    && ib2 = ib);
  ck ctx "executed serial elections = host choreography"
    (sts2.Join.parent = stb.Join.parent
    && sts2.Join.depth = stb.Join.depth
    && is2 = ib);
  ck ctx
    (Printf.sprintf "join batching: serial %d runs >= 2x batched %d"
       ss.Composed.engine_runs sb.Composed.engine_runs)
    (ss.Composed.engine_runs >= 2 * sb.Composed.engine_runs);
  bud ctx "join elections" sb.Composed.rounds
    (((ib + 1) * 24 * (n + d + 8)) + 64);
  finish ~name:"join" ctx

(* ------------------------------------------------------------------ *)
(* 7. "dfs": Theorem 2 end to end, against the centralized DFS          *)
(*    characterization (every non-tree edge ancestor–descendant).       *)
(* ------------------------------------------------------------------ *)

let run_dfs (inst : Instance.t) =
  let ctx = ctx_create () in
  let g = Config.graph inst.config in
  let n = Graph.n g in
  let root = Embedded.outer inst.emb in
  let d = Algo.diameter g in
  let ledger = Rounds.create ~n ~d:(max 1 d) () in
  let r = Dfs.run ~rounds:ledger inst.emb ~root in
  ck ctx "Dfs.verify" (Dfs.verify inst.emb ~root r);
  ck ctx "distributed tree satisfies the DFS-tree characterization"
    (Algo.is_dfs_tree g ~root ~parent:r.Dfs.parent);
  (* The sequential oracle must satisfy the same characterization — if it
     does not, the characterization itself regressed. *)
  ck ctx "sequential DFS satisfies the characterization"
    (Algo.is_dfs_tree g ~root ~parent:(Algo.dfs_parents g root));
  let wf = ref true in
  for v = 0 to n - 1 do
    if r.Dfs.parent.(v) >= 0 && r.Dfs.depth.(v) <> r.Dfs.depth.(r.Dfs.parent.(v)) + 1
    then wf := false
  done;
  ck ctx "depth array consistent with parent chains" !wf;
  let lg = log2ceil n in
  ck ctx
    (Printf.sprintf "recursion phases %d <= %d" r.Dfs.phases ((2 * lg) + 8))
    (r.Dfs.phases <= (2 * lg) + 8);
  let inv_budget = 64 * (lg + 2) * (lg + 2) in
  ck ctx
    (Printf.sprintf "ledger invocations %d <= %d" (Rounds.invocations ledger)
       inv_budget)
    (Rounds.invocations ledger <= inv_budget);
  bud ctx "charged rounds"
    (int_of_float (Rounds.total ledger))
    (int_of_float
       (float_of_int (inv_budget * lg * lg) *. Rounds.pa_cost ledger));
  finish ~name:"dfs" ctx

(* ------------------------------------------------------------------ *)
(* 8. "forest": Lemma 9 over a fuzzed partition into connected parts.   *)
(* ------------------------------------------------------------------ *)

let parts_array n parts =
  let a = Array.make n (-1) in
  List.iteri (fun i members -> List.iter (fun v -> a.(v) <- i) members) parts;
  a

let run_forest (inst : Instance.t) =
  let ctx = ctx_create () in
  let g = Config.graph inst.config in
  let n = Graph.n g in
  let rng = Rng.create ((2 * inst.spec.Instance.seed) + 5) in
  let parts = Generator.connected_parts g ~parts:(1 + Rng.int rng 4) rng in
  ck ctx "generated partition is connected (Check)"
    (Check.connected_partition g parts);
  let pa = parts_array n parts in
  let (fp, fd, _), phases, st = Composed.spanning_forest g ~parts:pa () in
  let (fp', fd', _), phases', _ =
    Composed.Reference.spanning_forest g ~parts:pa ()
  in
  ck ctx "per-part forest = serial oracle"
    (fp = fp' && fd = fd' && phases = phases');
  let roots = ref 0 and wf = ref true in
  for v = 0 to n - 1 do
    if fp.(v) = -1 then incr roots
    else begin
      if not (Graph.mem_edge g v fp.(v)) || fd.(v) <> fd.(fp.(v)) + 1 then
        wf := false;
      (* Lemma 9 stops before any cross-part edge. *)
      if pa.(v) <> pa.(fp.(v)) then wf := false
    end
  done;
  ck ctx
    (Printf.sprintf "one tree per part (%d roots, %d parts)" !roots
       (List.length parts))
    (!roots = List.length parts);
  ck ctx "per-part trees well-formed" !wf;
  let lg = log2ceil n in
  ck ctx
    (Printf.sprintf "Boruvka phases %d <= %d" phases (lg + 2))
    (phases <= lg + 2);
  bud ctx "per-part forest" st.Composed.rounds
    ((8 * (n + ((lg + 2) * (Algo.diameter g + 8)))) + 64);
  finish ~name:"forest" ctx

(* ------------------------------------------------------------------ *)
(* 9. "pool": jobs=1 and jobs=N produce bit-identical separators and    *)
(*    charged ledgers over a fuzzed partition (Theorem 1 parallelism).  *)
(* ------------------------------------------------------------------ *)

let run_pool (inst : Instance.t) =
  let ctx = ctx_create () in
  let g = Config.graph inst.config in
  let n = Graph.n g in
  let d = Algo.diameter g in
  let rng = Rng.create ((2 * inst.spec.Instance.seed) + 7) in
  let parts = Generator.connected_parts g ~parts:(2 + Rng.int rng 3) rng in
  ck ctx "generated partition is connected (Check)"
    (Check.connected_partition g parts);
  let run pool =
    let ledger = Rounds.create ~n ~d:(max 1 d) () in
    let results = Separator.find_partition ~rounds:ledger ?pool inst.emb ~parts in
    ( List.map
        (fun (_, r) ->
          (r.Separator.separator, r.Separator.endpoints, r.Separator.phase))
        results,
      Rounds.total ledger )
  in
  let seq_results, seq_total = run None in
  (* seq_grain 0 forces the batch onto the domains even at fuzz sizes. *)
  let par_results, par_total =
    Repro_util.Pool.with_pool ~seq_grain:0 ~jobs:3 (fun pool ->
        run (Some pool))
  in
  ck ctx "separators bit-identical across pool sizes"
    (seq_results = par_results);
  ck ctx
    (Printf.sprintf "charged rounds identical (%.1f vs %.1f)" seq_total
       par_total)
    (seq_total = par_total);
  finish ~name:"pool" ctx

(* ------------------------------------------------------------------ *)
(* 10. "backend": separator-backend registry conformance — every        *)
(*     selected backend balances (cross-checked by two independent      *)
(*     component computations), certificates hold, the uniform trim     *)
(*     post-pass behaves, and the charge discipline matches the kind.   *)
(* ------------------------------------------------------------------ *)

(* Fuzz-selectable subset of the backend registry: defaults to the four
   shipped backends so test-registered extras don't leak into fuzz runs;
   [restrict_backends] (bin/fuzz --backend) narrows or widens it. *)
let backend_filter = ref [ "congest"; "lt-level"; "hn-cycle"; "random-sep" ]
let restrict_backends names = backend_filter := names

let run_backend (inst : Instance.t) =
  let ctx = ctx_create () in
  Backends.ensure ();
  (* Registry round-trip. *)
  let bs = Backend.all () in
  ck ctx "congest registered first and is the default"
    (match bs with
    | b :: _ ->
      b.Backend.name = "congest"
      && (Backend.default ()).Backend.name = "congest"
    | [] -> false);
  ck ctx "shipped backends present"
    (List.for_all
       (fun name -> List.exists (fun b -> b.Backend.name = name) bs)
       [ "congest"; "lt-level"; "hn-cycle"; "random-sep" ]);
  ck ctx "lookup round-trips"
    (List.for_all
       (fun b -> (Backend.lookup b.Backend.name).Backend.name = b.Backend.name)
       bs);
  ck ctx "duplicate registration rejected"
    (match Backend.register (Backend.default ()) with
    | () -> false
    | exception Backend.Duplicate_backend "congest" -> true
    | exception _ -> false);
  ck ctx "centralized default resolves"
    (match Backend.centralized_default () with
    | Some b -> b.Backend.kind = Backend.Centralized
    | None -> false);
  let g = Config.graph inst.config in
  let n = Graph.n g in
  let d = Algo.diameter g in
  let lg = log2ceil n in
  let limit = Check.balance_limit n in
  let selected =
    List.filter (fun b -> List.mem b.Backend.name !backend_filter) bs
  in
  ck ctx "backend filter selects at least one backend" (selected <> []);
  List.iter
    (fun b ->
      let name = b.Backend.name in
      let lbl s = Printf.sprintf "%s[%s]" s name in
      let ledger = Rounds.create ~n ~d:(max 1 d) () in
      let r = b.Backend.find ~rounds:ledger inst.config in
      let sep = r.Separator.separator in
      ck ctx (lbl "separator nonempty") (sep <> []);
      ck ctx (lbl "separator vertices in range")
        (List.for_all (fun v -> v >= 0 && v < n) sep);
      (* Balance, cross-validated: Check and the Lipton–Tarjan baseline
         implement the component computation independently. *)
      let mc = Lipton_tarjan.max_component_after g sep in
      ck ctx (Printf.sprintf "%s: max component %d <= %d" name mc limit)
        (mc <= limit);
      let removed = Array.make n false in
      List.iter (fun v -> removed.(v) <- true) sep;
      ck ctx (lbl "Check = Lipton-Tarjan max-component")
        (Check.max_component_without g removed = mc);
      (* Determinism: a second find is bit-identical. *)
      let r2 = b.Backend.find inst.config in
      ck ctx (lbl "find deterministic")
        (r2.Separator.separator = sep && r2.Separator.phase = r.Separator.phase);
      (* Certificate discipline: endpoints only from cycle-certified
         backends, and the closing edge must be DMP-certifiable. *)
      (match r.Separator.endpoints with
      | None -> ()
      | Some e ->
        ck ctx (lbl "endpoints imply cycle-certified")
          (b.Backend.certificate = Backend.Cycle_certified);
        ck ctx (lbl "closing edge certifiable (DMP)")
          (Check.cycle_closable inst.config ~endpoints:e));
      (* The uniform trim post-pass keeps balance and never grows. *)
      let trimmed = b.Backend.trim inst.config sep in
      ck ctx (lbl "trim never grows")
        (List.length trimmed <= List.length sep);
      ck ctx (lbl "trimmed separator still balanced")
        (Lipton_tarjan.max_component_after g trimmed <= limit);
      (* Size-vs-sqrt(n) tripwire: vacuous at fuzz sizes, catches only a
         catastrophic quality regression on the big suite instances. *)
      let sqrt_n = int_of_float (ceil (sqrt (float_of_int n))) in
      ck ctx (lbl "trimmed size within 4*sqrt(n)*lg + 8")
        (List.length trimmed <= (4 * sqrt_n * lg) + 8);
      (* Charge discipline per kind: distributed backends stay within the
         Õ(D) budget; centralized ones charge exactly one O(part)
         collect. *)
      match b.Backend.kind with
      | Backend.Distributed ->
        let inv_budget = (16 * lg) + 48 in
        ck ctx
          (Printf.sprintf "%s: ledger invocations %d <= %d" name
             (Rounds.invocations ledger)
             inv_budget)
          (Rounds.invocations ledger <= inv_budget);
        bud ctx (lbl "charged rounds")
          (int_of_float (Rounds.total ledger))
          (int_of_float
             (float_of_int (inv_budget * lg * lg) *. Rounds.pa_cost ledger))
      | Backend.Centralized ->
        let collect = Printf.sprintf "backend-collect[%s]" name in
        ck ctx (lbl "collect charged exactly once")
          (Rounds.label_invocations ledger collect = 1);
        ck ctx (lbl "collect charge covers the part")
          (Rounds.total ledger >= float_of_int n))
    selected;
  finish ~name:"backend" ctx

(* ------------------------------------------------------------------ *)
(* 11. "screen": hostile-input screening — clean instances Accepted    *)
(*     with the executed CONGEST tally agreeing with the host census   *)
(*     and the charges pinned Õ(D); hostile instances (fuzzed directly *)
(*     or derived here from the spec seed) Rejected/Flagged with an    *)
(*     independently verified witness before any separator phase runs. *)
(* ------------------------------------------------------------------ *)

let screen_hostile ctx ~tag emb =
  let verdict = Screen.check emb in
  ck ctx (tag ^ ": hostile verdict is not Accepted")
    (not (Screen.accepted verdict));
  (match verdict with
  | Screen.Flagged w ->
    ck ctx (tag ^ ": flag witness certifies") (Screen.witness_certifies emb w)
  | _ -> ());
  (* The entry guard dies before any separator phase: Decomposition.build
     must raise the typed rejection, never reach No_separator_found. *)
  ck ctx (tag ^ ": entry guard raises before separator phases")
    (match Decomposition.build emb with
    | _ -> false
    | exception Screen.Rejected_input { verdict = v; _ } -> v = verdict
    | exception _ -> false);
  (* The verdict line is the replay handle: stable and non-empty. *)
  ck ctx (tag ^ ": verdict prints")
    (String.length (Screen.verdict_to_string verdict) > 0)

let run_screen (inst : Instance.t) =
  let ctx = ctx_create () in
  let emb = inst.Instance.emb in
  let g = Embedded.graph emb in
  let n = Graph.n g in
  let spec = inst.spec in
  (* Every instance — clean or hostile — replays from its one-line spec. *)
  ck ctx "spec round-trips"
    (Instance.of_string (Instance.to_string spec) = spec);
  if Instance.is_hostile spec.Instance.family then begin
    screen_hostile ctx ~tag:spec.Instance.family emb;
    (* The hostile build is deterministic: replaying the spec reproduces
       the embedding bit-identically. *)
    let e2 = Instance.hostile_embedded spec in
    ck ctx "hostile build deterministic"
      (Graph.edges (Embedded.graph e2) = Graph.edges g
      && Array.for_all
           (fun v ->
             Rotation.order (Embedded.rot e2) v = Rotation.order (Embedded.rot emb) v)
           (Array.init n Fun.id))
  end
  else begin
    let d = max 1 (Algo.diameter g) in
    let ledger = Rounds.create ~n ~d () in
    let verdict = Screen.check ~rounds:ledger emb in
    ck ctx
      (Printf.sprintf "clean instance accepted (%s)"
         (Screen.verdict_to_string verdict))
      (Screen.accepted verdict);
    ck ctx "verdict deterministic" (Screen.check emb = verdict);
    (* Charge pins: one structure aggregate, one embedding broadcast, one
       planarity aggregate — flat Õ(D), independent of n. *)
    ck ctx "screen-structure charged exactly once"
      (Rounds.label_invocations ledger "screen-structure" = 1);
    ck ctx "screen-planarity charged exactly once"
      (Rounds.label_invocations ledger "screen-planarity" = 1);
    ck ctx
      (Printf.sprintf "ledger invocations %d <= 4" (Rounds.invocations ledger))
      (Rounds.invocations ledger <= 4);
    bud ctx "charged rounds"
      (int_of_float (Rounds.total ledger))
      (int_of_float (4.0 *. Rounds.pa_cost ledger));
    (* Executed differential: the CONGEST tally must reproduce the host
       census — reach all of the graph, sum the degrees to 2m, count the
       faces, and elect no violating edge. *)
    let sums, mins = Screen.local_tallies emb in
    let s, mn, reached, st =
      Composed.screen_tally g ~root:(Embedded.outer emb) ~sums ~mins
    in
    ck ctx "tally reaches the whole graph" (reached = n);
    ck ctx "degree census = 2m" (s.(0) = 2 * Graph.m g);
    ck ctx "face-leader census = face count"
      (s.(1) = Rotation.count_faces g (Embedded.rot emb));
    ck ctx "no violating edge elected" (mn.(0) = Screen.no_violation emb);
    bud ctx "screen tally" st.Composed.rounds ((16 * (d + 8)) + 64);
    (* Derived hostile variants from the same seed: the default fuzz pool
       is all-clean, so each clean case also proves the screen rejects
       its own corrupted siblings. *)
    if n >= 9 then begin
      let seed = spec.Instance.seed in
      screen_hostile ctx ~tag:"derived xchords1"
        (Instance.planar_plus_chords ~seed ~n ~k:1);
      screen_hostile ctx ~tag:"derived xrot"
        (Instance.corrupted_rotation ~seed ~n);
      screen_hostile ctx ~tag:"derived xunion"
        (Instance.disconnected_union ~seed ~n)
    end
  end;
  finish ~name:"screen" ctx

(* ------------------------------------------------------------------ *)
(* Registry.                                                           *)
(* ------------------------------------------------------------------ *)

let registry : t list ref = ref []

let register o =
  if List.exists (fun o' -> o'.name = o.name) !registry then
    raise (Duplicate_oracle o.name);
  registry := !registry @ [ o ]

let all () = !registry
let names () = List.map (fun o -> o.name) !registry

let find name =
  match List.find_opt (fun o -> o.name = name) !registry with
  | Some o -> o
  | None ->
    failwith
      (Printf.sprintf "unknown oracle %s (known: %s)" name
         (String.concat ", " (names ())))

let run_protected o inst =
  try o.run inst
  with e ->
    {
      oracle = o.name;
      ok = false;
      detail = "exception: " ^ Printexc.to_string e;
      rounds = 0;
      budget = max_int;
      checks = 0;
    }

let sabotage ~threshold =
  {
    name = "sabotage";
    guards = "none (deliberately injected bug for the self-check drill)";
    run =
      (fun inst ->
        let n = Embedded.n inst.Instance.emb in
        let ok = n < threshold in
        {
          oracle = "sabotage";
          ok;
          detail =
            (if ok then "ok (1 checks)"
             else Printf.sprintf "injected bug fires: n = %d >= %d" n threshold);
          rounds = 0;
          budget = max_int;
          checks = 1;
        });
  }

let () =
  List.iter register
    [
      {
        name = "graph";
        guards = "flat CSR store (vs reference adjacency-list build)";
        run = run_graph;
      };
      {
        name = "engine";
        guards = "engine equivalence (event-driven = dense scheduler)";
        run = run_engine;
      };
      { name = "orders"; guards = "Lemma 11 (DFS-ORDER)"; run = run_orders };
      {
        name = "collective";
        guards = "Lemmas 12/13/14/19 (WEIGHTS, MARK-PATH, LCA, RE-ROOT)";
        run = run_collective;
      };
      {
        name = "faces";
        guards = "Lemmas 15/16 (DETECT-FACE, HIDDEN)";
        run = run_faces;
      };
      {
        name = "pipeline";
        guards = "Lemmas 5/9 + Phase 1 (election pipeline, forests)";
        run = run_pipeline;
      };
      {
        name = "separator";
        guards = "Theorem 1 (cycle separator, all phases)";
        run = run_separator;
      };
      {
        name = "join";
        guards = "Lemma 2 (batched JOIN = serial choreography)";
        run = run_join;
      };
      { name = "dfs"; guards = "Theorem 2 (distributed DFS)"; run = run_dfs };
      {
        name = "forest";
        guards = "Lemma 9 (per-part spanning forests)";
        run = run_forest;
      };
      {
        name = "pool";
        guards = "Theorem 1 parallelism (pool determinism)";
        run = run_pool;
      };
      {
        name = "backend";
        guards = "backend registry conformance (congest / lt-level / hn-cycle)";
        run = run_backend;
      };
      {
        name = "screen";
        guards = "hostile-input screening (verdicts, witnesses, entry guards)";
        run = run_screen;
      };
    ]
