(** Deterministic, seed-driven generator combinators.

    A generator is a function of the [Rng.t] it draws from, so composing
    generators never hides state: the same generator applied to generators
    seeded identically yields identical values, which is what makes the
    fuzzer's case stream (and hence every failure) replayable. *)

open Repro_graph
open Repro_tree

type 'a t = Repro_util.Rng.t -> 'a

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val pair : 'a t -> 'b t -> ('a * 'b) t
val int_range : int -> int -> int t
(** Inclusive. *)

val oneof : 'a list -> 'a t
(** Uniform element of a non-empty list. *)

val oneof_gen : 'a t list -> 'a t
val frequency : (int * 'a) list -> 'a t
(** Weighted choice; weights must be positive. *)

val spanning_kind : Spanning.kind t
(** Adversarial spanning-tree pool: BFS (shallow), DFS (deep) and seeded
    random trees, biased toward the random ones. *)

val spec : ?families:string list -> size:int -> Instance.spec t
(** An instance spec of roughly the given size. *)

val hostile_families : string list
(** The near-planar adversarial families ([Instance.hostile_families]). *)

val hostile_spec : ?families:string list -> size:int -> Instance.spec t
(** Like {!spec} but drawn from the hostile pool: chorded, corrupted-
    rotation and disconnected instances the Screen layer must reject. *)

val planar_plus_chords : seed:int -> n:int -> k:int -> Repro_embedding.Embedded.t
(** Planar grid plus [k] chords spliced into the rotations at random
    positions: tier-1 clean but non-planar (retries until Euler breaks). *)

val corrupted_rotation : seed:int -> n:int -> Repro_embedding.Embedded.t
(** Grid with two rotation entries swapped at one degree->=3 vertex. *)

val disconnected_union : seed:int -> n:int -> Repro_embedding.Embedded.t
(** Two grids with no connecting edge. *)

val connected_parts : Graph.t -> parts:int -> int list list t
(** Random partition of a connected graph into at most [parts] connected,
    non-empty parts (multi-source BFS regions grown from random seeds). *)
