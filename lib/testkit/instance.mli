(** Fuzzing instances: a planar embedded graph plus the spanning-tree
    choice, fully determined by a printable four-field spec.

    The spec is the repro currency of the whole testkit: every failure is
    reported as a spec string, [of_string] rebuilds the exact instance, and
    shrinking searches the spec space (smaller [n], simpler spanning kind)
    rather than mutating graphs directly — so a shrunk counterexample is
    always replayable from one line. *)

open Repro_embedding
open Repro_tree
open Repro_core

type spec = {
  family : string;  (** generator family, e.g. ["stacked"], ["chords"] *)
  n : int;  (** requested size (the family may round it) *)
  seed : int;  (** generator seed; also seeds the oracle's input stream *)
  spanning : Spanning.kind;
}

type t = {
  spec : spec;
  emb : Embedded.t;
  config : Config.t;
      (** configuration rooted at the embedding's outer vertex, with the
          spanning tree of [spec.spanning] and the virtual root edge at
          the rotation's own starting point (the convention the Composed
          subroutines assume) *)
}

val families : string list
(** Families the fuzzer draws from: every [Gen] family plus the
    testkit-only [chords] (cycle with random non-crossing chords) and
    [caterpillar]. *)

val hostile_families : string list
(** Near-planar adversarial families the Screen layer must reject or
    flag: [xchords1]/[xchords4]/[xchords16] (planar grid plus k random
    chords spliced into the rotations), [xrot] (one corrupted rotation)
    and [xunion] (two disconnected grids).  Deliberately NOT in
    {!families}: only the [screen] oracle is defined on hostile input. *)

val is_hostile : string -> bool

val min_size : string -> int
(** Smallest [n] the family accepts (shrinking floor). *)

val chorded_cycle : seed:int -> n:int -> Embedded.t
(** Cycle with a random set of non-crossing chords (outerplanar), drawn
    with vertices in convex position so the rotation system is the
    straight-line one. *)

val planar_plus_chords : seed:int -> n:int -> k:int -> Embedded.t
(** Planar grid plus [k] random chords, each spliced into both endpoint
    rotations at a random position: tier-1 clean (the rotations stay
    permutations) but non-planar.  Retries draws until Euler's formula
    actually breaks; deterministic from [(seed, n, k)]. *)

val corrupted_rotation : seed:int -> n:int -> Embedded.t
(** A planar grid whose rotation at one vertex (degree >= 3) has two
    entries swapped — still a permutation of the adjacency, but the face
    walks no longer close a genus-0 surface. *)

val disconnected_union : seed:int -> n:int -> Embedded.t
(** Two grids with no edge between them: per-component structure is
    planar, only the connectivity screen catches it. *)

val hostile_embedded : spec -> Embedded.t
(** Dispatch over {!hostile_families}; raises [Invalid_argument] on a
    clean family. *)

val build : spec -> t
(** Deterministic: equal specs build bit-identical instances.  On a
    hostile family, [emb] is the hostile embedding and [config] is a
    placeholder built from a clean grid of the same size (configurations
    are undefined on corrupted input; only the [screen] oracle reads
    hostile instances). *)

val spanning_name : Spanning.kind -> string
val spanning_of_name : string -> Spanning.kind

val to_string : spec -> string
(** Repro line, e.g. ["stacked:60:7:rand3"]. *)

val of_string : string -> spec
(** Inverse of [to_string]; raises [Failure] on malformed input. *)

val pp : Format.formatter -> spec -> unit
