(** Fuzzing instances: a planar embedded graph plus the spanning-tree
    choice, fully determined by a printable four-field spec.

    The spec is the repro currency of the whole testkit: every failure is
    reported as a spec string, [of_string] rebuilds the exact instance, and
    shrinking searches the spec space (smaller [n], simpler spanning kind)
    rather than mutating graphs directly — so a shrunk counterexample is
    always replayable from one line. *)

open Repro_embedding
open Repro_tree
open Repro_core

type spec = {
  family : string;  (** generator family, e.g. ["stacked"], ["chords"] *)
  n : int;  (** requested size (the family may round it) *)
  seed : int;  (** generator seed; also seeds the oracle's input stream *)
  spanning : Spanning.kind;
}

type t = {
  spec : spec;
  emb : Embedded.t;
  config : Config.t;
      (** configuration rooted at the embedding's outer vertex, with the
          spanning tree of [spec.spanning] and the virtual root edge at
          the rotation's own starting point (the convention the Composed
          subroutines assume) *)
}

val families : string list
(** Families the fuzzer draws from: every [Gen] family plus the
    testkit-only [chords] (cycle with random non-crossing chords) and
    [caterpillar]. *)

val min_size : string -> int
(** Smallest [n] the family accepts (shrinking floor). *)

val chorded_cycle : seed:int -> n:int -> Embedded.t
(** Cycle with a random set of non-crossing chords (outerplanar), drawn
    with vertices in convex position so the rotation system is the
    straight-line one. *)

val build : spec -> t
(** Deterministic: equal specs build bit-identical instances. *)

val spanning_name : Spanning.kind -> string
val spanning_of_name : string -> Spanning.kind

val to_string : spec -> string
(** Repro line, e.g. ["stacked:60:7:rand3"]. *)

val of_string : string -> spec
(** Inverse of [to_string]; raises [Failure] on malformed input. *)

val pp : Format.formatter -> spec -> unit
