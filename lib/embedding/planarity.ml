(* Planarity testing and embedding of arbitrary graphs.

   The generators build rotation systems from coordinates; this module
   handles graphs that arrive without geometry, which is what the paper's
   Proposition 1 assumes exists ([GH16] computes it distributively).

   Algorithm: Demoucron–Malgrange–Pertuiset (DMP) vertex-addition embedding
   on each biconnected block, glued at cut vertices.

   - Blocks are found with the classic Hopcroft–Tarjan lowpoint scan
     (iterative, so Θ(n)-deep DFS trees are fine).
   - DMP embeds a block face by face: starting from any cycle, repeatedly
     take a *fragment* (a bridge of the embedded subgraph), check which
     faces can host it (all attachment vertices on the face), and embed one
     fragment path through a hosting face, splitting it in two.  A fragment
     with no admissible face certifies non-planarity; a fragment with
     exactly one admissible face is forced and is processed first, which is
     what makes DMP correct.
   - Faces of a 2-connected plane graph are simple cycles, so faces are
     stored as vertex cycles; the final rotation system is recovered from
     the face set via the face-traversal successor rule.

   O(n m) per block — ample for simulator-scale instances, and validated by
   the Euler check and the straight-line/Kuratowski tests in the suite. *)

open Repro_graph

type outcome = Planar of Rotation.t | Not_planar

(* ------------------------------------------------------------------ *)
(* Biconnected components (Hopcroft–Tarjan), iterative.                 *)
(* Returns the edge set of every block.                                 *)
(* ------------------------------------------------------------------ *)

let biconnected_components g =
  let n = Graph.n g in
  let num = Array.make n (-1) in
  let low = Array.make n 0 in
  let parent = Array.make n (-1) in
  let counter = ref 0 in
  let edge_stack = ref [] in
  let blocks = ref [] in
  let pop_block u v =
    (* Pop edges up to and including (u, v). *)
    let rec go acc =
      match !edge_stack with
      | [] -> acc
      | (a, b) :: rest ->
        edge_stack := rest;
        let acc = (a, b) :: acc in
        if (a, b) = (u, v) || (b, a) = (u, v) then acc else go acc
    in
    let block = go [] in
    if block <> [] then blocks := block :: !blocks
  in
  for start = 0 to n - 1 do
    if num.(start) < 0 then begin
      (* Iterative DFS with an explicit neighbour cursor. *)
      let cursor = Array.make n 0 in
      let stack = ref [ start ] in
      num.(start) <- !counter;
      low.(start) <- !counter;
      incr counter;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
          let adj = Graph.neighbors g u in
          if cursor.(u) < Array.length adj then begin
            let v = adj.(cursor.(u)) in
            cursor.(u) <- cursor.(u) + 1;
            if num.(v) < 0 then begin
              edge_stack := (u, v) :: !edge_stack;
              parent.(v) <- u;
              num.(v) <- !counter;
              low.(v) <- !counter;
              incr counter;
              stack := v :: !stack
            end
            else if v <> parent.(u) && num.(v) < num.(u) then begin
              edge_stack := (u, v) :: !edge_stack;
              low.(u) <- min low.(u) num.(v)
            end
          end
          else begin
            stack := rest;
            (match rest with
            | p :: _ ->
              low.(p) <- min low.(p) low.(u);
              if low.(u) >= num.(p) then pop_block p u
            | [] -> ())
          end
      done
    end
  done;
  !blocks

(* ------------------------------------------------------------------ *)
(* DMP embedding of one 2-connected block.                              *)
(* ------------------------------------------------------------------ *)

module Dmp = struct
  (* Faces as simple vertex cycles (valid in 2-connected plane graphs). *)
  type state = {
    g : Graph.t;
    mutable faces : int list list;
    in_g : bool array; (* vertex embedded *)
    edge_in : (int * int, unit) Hashtbl.t; (* embedded edges, (min, max) *)
  }

  let encode u v = if u < v then (u, v) else (v, u)

  let edge_embedded st u v = Hashtbl.mem st.edge_in (encode u v)

  let embed_edge st u v = Hashtbl.replace st.edge_in (encode u v) ()

  (* A cycle through the block: proper iterative DFS, where every non-tree
     edge of an undirected DFS is a back edge to an ancestor — the first
     one found closes a cycle through the parent chain. *)
  let find_cycle g inside =
    let n = Graph.n g in
    let parent = Array.make n (-2) in
    let cursor = Array.make n 0 in
    let start =
      let s = ref (-1) in
      for v = n - 1 downto 0 do
        if inside.(v) then s := v
      done;
      !s
    in
    let stack = ref [ start ] in
    parent.(start) <- -1;
    let cycle = ref None in
    while !stack <> [] && !cycle = None do
      match !stack with
      | [] -> ()
      | u :: rest ->
        let adj = Graph.neighbors g u in
        if cursor.(u) >= Array.length adj then stack := rest
        else begin
          let v = adj.(cursor.(u)) in
          cursor.(u) <- cursor.(u) + 1;
          if inside.(v) then begin
            if parent.(v) = -2 then begin
              parent.(v) <- u;
              stack := v :: !stack
            end
            else if v <> parent.(u) then begin
              (* Back edge: v is an ancestor of u; walk the chain up. *)
              let rec walk x acc =
                if x = v then x :: acc else walk parent.(x) (x :: acc)
              in
              cycle := Some (walk u [])
            end
          end
        end
    done;
    !cycle

  (* Fragments of G w.r.t. the embedded subgraph: single unembedded edges
     between embedded vertices, and components of unembedded vertices with
     their attachment edges. *)
  type fragment = {
    attachments : int list; (* embedded vertices, sorted *)
    inner : int list; (* unembedded vertices of the fragment *)
  }

  let fragments st inside =
    let n = Graph.n st.g in
    let frags = ref [] in
    (* Single-edge fragments. *)
    for u = 0 to n - 1 do
      if inside.(u) && st.in_g.(u) then
        Array.iter
          (fun v ->
            if inside.(v) && st.in_g.(v) && u < v && not (edge_embedded st u v)
            then frags := { attachments = [ u; v ]; inner = [] } :: !frags)
          (Graph.neighbors st.g u)
    done;
    (* Components of unembedded vertices. *)
    let seen = Array.make n false in
    for s = 0 to n - 1 do
      if inside.(s) && (not st.in_g.(s)) && not seen.(s) then begin
        let comp = ref [] and attach = ref [] in
        let queue = Queue.create () in
        seen.(s) <- true;
        Queue.add s queue;
        while not (Queue.is_empty queue) do
          let u = Queue.pop queue in
          comp := u :: !comp;
          Array.iter
            (fun v ->
              if inside.(v) then
                if st.in_g.(v) then attach := v :: !attach
                else if not seen.(v) then begin
                  seen.(v) <- true;
                  Queue.add v queue
                end)
            (Graph.neighbors st.g u)
        done;
        let attach = List.sort_uniq compare !attach in
        frags := { attachments = attach; inner = !comp } :: !frags
      end
    done;
    !frags

  let admissible_faces st frag =
    List.filter
      (fun face ->
        List.for_all (fun a -> List.mem a face) frag.attachments)
      st.faces

  (* A path through the fragment between two attachments (the "alpha path"
     embedded into the hosting face). *)
  let fragment_path st frag =
    match frag.inner with
    | [] ->
      (match frag.attachments with
      | [ a; b ] -> [ a; b ]
      | _ -> invalid_arg "Dmp.fragment_path: edge fragment arity")
    | inner ->
      let a = List.hd frag.attachments in
      let inner_set = Hashtbl.create (List.length inner) in
      List.iter (fun v -> Hashtbl.replace inner_set v ()) inner;
      (* BFS from a through inner vertices to another attachment. *)
      let prev = Hashtbl.create 16 in
      let queue = Queue.create () in
      let final = ref (-1) in
      Hashtbl.replace prev a (-1);
      Queue.add a queue;
      (* The path must pass through the fragment's interior: from [a] only
         interior neighbours are explored, and a second attachment is only
         accepted when reached from an interior vertex (a direct embedded
         edge a-b is a separate single-edge fragment). *)
      while !final < 0 && not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Array.iter
          (fun v ->
            if !final < 0 && not (Hashtbl.mem prev v) then begin
              if Hashtbl.mem inner_set v then begin
                Hashtbl.replace prev v u;
                Queue.add v queue
              end
              else if st.in_g.(v) && v <> a && Hashtbl.mem inner_set u then begin
                (* Reached a second attachment. *)
                Hashtbl.replace prev v u;
                final := v
              end
            end)
          (Graph.neighbors st.g u)
      done;
      if !final < 0 then invalid_arg "Dmp.fragment_path: no second attachment";
      let rec build x acc =
        if x = -1 then acc else build (Hashtbl.find prev x) (x :: acc)
      in
      build !final []

  (* Split the hosting face along the path.  [face0] must be the physical
     list element held in [st.faces] (as returned by [admissible_faces]);
     the path endpoints lie on it. *)
  let embed_path st face0 path =
    let a = List.hd path in
    let b = List.nth path (List.length path - 1) in
    let interior = List.filteri (fun i _ -> i > 0 && i < List.length path - 1) path in
    (* Rotate the face cycle so it starts at a. *)
    let rec rotate f guard =
      if guard = 0 then invalid_arg "Dmp.embed_path: a not on face"
      else
        match f with
        | [] -> invalid_arg "Dmp.embed_path: empty face"
        | x :: rest -> if x = a then f else rotate (rest @ [ x ]) (guard - 1)
    in
    let face = rotate face0 (List.length face0 + 1) in
    let rec split seg1 = function
      | [] -> invalid_arg "Dmp.embed_path: b not on face"
      | x :: rest ->
        if x = b then (List.rev (x :: seg1), rest) else split (x :: seg1) rest
    in
    let seg_ab, seg_rest = split [] face in
    (* seg_ab = a .. b along the face; seg_rest = the rest, back towards a.
       The path splits the face into:
         face1 = a .. b (along the face) then back through the path;
         face2 = b .. a (rest of the face) then forward through the path. *)
    let face1 = seg_ab @ List.rev interior in
    let face2 = (b :: seg_rest) @ (a :: interior) in
    st.faces <- face1 :: face2 :: List.filter (fun f -> f != face0) st.faces;
    List.iter (fun v -> st.in_g.(v) <- true) interior;
    let rec mark = function
      | x :: (y :: _ as rest) ->
        embed_edge st x y;
        mark rest
      | _ -> ()
    in
    mark path

  let embed_block g inside =
    let n = Graph.n g in
    (* Count block size. *)
    let verts = ref [] in
    for v = 0 to n - 1 do
      if inside.(v) then verts := v :: !verts
    done;
    match !verts with
    | [] | [ _ ] -> Some [] (* nothing to embed *)
    | [ a; b ] ->
      (* A single edge: one face walk a-b-a; rotation is trivial and is
         handled by the caller. *)
      ignore (a, b);
      Some []
    | _ ->
      (match find_cycle g inside with
      | None -> Some [] (* acyclic block: single edge handled above *)
      | Some cycle ->
        let st =
          {
            g;
            faces = [ cycle; List.rev cycle ];
            in_g = Array.make n false;
            edge_in = Hashtbl.create 64;
          }
        in
        List.iter (fun v -> st.in_g.(v) <- true) cycle;
        let rec mark_cycle = function
          | x :: (y :: _ as rest) ->
            embed_edge st x y;
            mark_cycle rest
          | [ last ] -> embed_edge st last (List.hd cycle)
          | [] -> ()
        in
        mark_cycle cycle;
        let rec loop () =
          let frags = fragments st inside in
          if frags = [] then Some st.faces
          else begin
            (* Pick the most constrained fragment. *)
            let with_faces =
              List.map (fun f -> (f, admissible_faces st f)) frags
            in
            match
              List.fold_left
                (fun acc (f, fs) ->
                  match acc with
                  | Some (_, best) when List.length best <= List.length fs -> acc
                  | _ -> Some (f, fs))
                None with_faces
            with
            | None -> Some st.faces
            | Some (_, []) -> None (* no admissible face: not planar *)
            | Some (frag, face :: _) ->
              let path = fragment_path st frag in
              embed_path st face path;
              loop ()
          end
        in
        loop ())
end

(* ------------------------------------------------------------------ *)
(* Rotation recovery and gluing.                                        *)
(* ------------------------------------------------------------------ *)

(* Successor maps from face cycles: consecutive darts (u,v),(v,w) in a face
   mean "after u comes w, clockwise around v". *)
let rotation_orders_of_faces g faces orders =
  let succ = Hashtbl.create 64 in
  List.iter
    (fun face ->
      let arr = Array.of_list face in
      let t = Array.length arr in
      for i = 0 to t - 1 do
        let u = arr.(i) and v = arr.((i + 1) mod t) and w = arr.((i + 2) mod t) in
        Hashtbl.replace succ (v, u) w
      done)
    faces;
  (* Walk the successor cycle at every vertex touched by these faces. *)
  let touched = Hashtbl.create 64 in
  List.iter (fun f -> List.iter (fun v -> Hashtbl.replace touched v ()) f) faces;
  Hashtbl.iter
    (fun v () ->
      let nbrs =
        Graph.neighbors g v |> Array.to_list
        |> List.filter (fun u -> Hashtbl.mem succ (v, u))
      in
      match nbrs with
      | [] -> ()
      | first :: _ ->
        let rec walk u acc count =
          if count > List.length nbrs then None
          else begin
            let w = Hashtbl.find succ (v, u) in
            if w = first then Some (List.rev (u :: acc))
            else walk w (u :: acc) (count + 1)
          end
        in
        (match walk first [] 0 with
        | Some cycle when List.length cycle = List.length nbrs ->
          orders.(v) <- orders.(v) @ cycle
        | _ ->
          (* Inconsistent rotation: flag by truncating (caller validates
             with the Euler check and reports Not_planar). *)
          orders.(v) <- orders.(v) @ nbrs))
    touched

let embed g =
  let n = Graph.n g in
  if n = 0 then Some (Rotation.of_adjacency g)
  else if n >= 3 && Graph.m g > (3 * n) - 6 then None
  else begin
    let blocks = biconnected_components g in
    let orders = Array.make n [] in
    let covered = Hashtbl.create (2 * Graph.m g) in
    let encode u v = if u < v then (u, v) else (v, u) in
    let ok = ref true in
    List.iter
      (fun block_edges ->
        if !ok then begin
          List.iter
            (fun (u, v) -> Hashtbl.replace covered (encode u v) ())
            block_edges;
          match block_edges with
          | [ (u, v) ] ->
            (* Bridge: append each endpoint to the other's rotation. *)
            orders.(u) <- orders.(u) @ [ v ];
            orders.(v) <- orders.(v) @ [ u ]
          | _ ->
            let inside = Array.make n false in
            List.iter
              (fun (u, v) ->
                inside.(u) <- true;
                inside.(v) <- true)
              block_edges;
            (* Induced block subgraph view: DMP only follows edges inside
               the block, so restrict with a wrapper graph. *)
            let sub = Graph.of_edges ~n block_edges in
            (* A structural surprise inside DMP (defensive Invalid_argument)
               is treated as a non-planarity verdict; the Euler validation
               below keeps false positives out either way. *)
            (match Dmp.embed_block sub inside with
            | None -> ok := false
            | Some faces -> rotation_orders_of_faces sub faces orders
            | exception Invalid_argument _ -> ok := false)
        end)
      blocks;
    if not !ok then None
    else begin
      (* Edges in no block (none — blocks cover all edges) plus isolated
         vertices are fine; validate the assembled rotation. *)
      ignore covered;
      let order_arrays =
        Array.init n (fun v ->
            (* Deduplicate defensively while preserving order. *)
            let seen = Hashtbl.create 8 in
            orders.(v)
            |> List.filter (fun u ->
                   if Hashtbl.mem seen u then false
                   else begin
                     Hashtbl.replace seen u ();
                     true
                   end)
            |> Array.of_list)
      in
      match Rotation.of_orders g order_arrays with
      | rot -> if Rotation.is_planar_embedding g rot then Some rot else None
      | exception Invalid_argument _ -> None
    end
  end

let is_planar g = embed g <> None

let outcome g = match embed g with Some rot -> Planar rot | None -> Not_planar
