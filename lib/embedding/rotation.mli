(** Combinatorial planar embeddings as rotation systems.

    For every vertex [v], the rotation lists the neighbours of [v] in
    clockwise order (the paper's [t_v]).  The order is circular.

    Stored as two flat int arrays aligned with the graph's CSR rows, so a
    rotation adds no per-vertex boxes and is shared read-only across
    worker domains together with its graph. *)

open Repro_graph

type t

val of_orders : Graph.t -> int array array -> t
(** Build from explicit clockwise neighbour orders; validates that every
    order is a permutation of the adjacency. *)

val of_adjacency : Graph.t -> t
(** Use the graph's (sorted) adjacency order as the rotation (useful for
    trees, where any rotation system is planar). *)

val induced : t -> sub:Graph.t -> new_of_old:int array -> old_of_new:int array -> t
(** Restriction of a rotation to an induced subgraph of its graph, built
    flat without re-validation.  [sub] and the two maps must come from
    [Graph.induced] / [Graph.induced_members] on the rotation's graph. *)

val graph : t -> Graph.t
(** The graph this rotation embeds. *)

val order : t -> int -> int array
(** Clockwise neighbour order of a vertex.  Allocates a fresh array —
    hot paths use {!nth}. *)

val nth : t -> int -> int -> int
(** [nth t v i] is the [i]-th neighbour in the rotation of [v]
    (unchecked: [0 <= i < degree t v]), without allocating. *)

val degree : t -> int -> int

val position : t -> int -> int -> int
(** [position t v u] is the index of [u] in the rotation of [v]. *)

val next_clockwise : t -> int -> int -> int
(** Neighbour following [u] clockwise around [v]. *)

val prev_clockwise : t -> int -> int -> int

val order_from : t -> int -> first:int -> int array
(** Rotation of [v] as a linear order starting at neighbour [first]. *)

val next_dart : t -> int * int -> int * int
(** Face-traversal successor of a directed edge. *)

val faces : Graph.t -> t -> (int * int) list list
(** All faces as closed dart walks (each dart appears in exactly one face). *)

val iter_faces : Graph.t -> t -> ((int * int) list -> unit) -> unit
(** Apply to each face walk without retaining the face list. *)

val count_faces : Graph.t -> t -> int

val is_planar_embedding : Graph.t -> t -> bool
(** Euler-formula check: [V - E + F = 1 + components]. *)
