(* Straight-line embeddings: clockwise sorting, point-in-polygon, and a
   brute-force crossing check used as ground truth in tests. *)

open Repro_graph

type point = float * float

let sub (x1, y1) (x2, y2) = (x1 -. x2, y1 -. y2)

let cross (x1, y1) (x2, y2) = (x1 *. y2) -. (y1 *. x2)

(* Orientation of the triangle (a, b, c): positive = counterclockwise. *)
let orient a b c = cross (sub b a) (sub c a)

(* Sort the neighbours of [v] clockwise by angle.  With the standard plane
   orientation (x right, y up), decreasing [atan2] order is clockwise. *)
let clockwise_order coords v nbrs =
  let (vx, vy) = coords.(v) in
  let angle u =
    let (ux, uy) = coords.(u) in
    atan2 (uy -. vy) (ux -. vx)
  in
  let nbrs = Array.copy nbrs in
  Array.sort
    (fun a b ->
      let c = compare (angle b) (angle a) in
      if c <> 0 then c else compare a b)
    nbrs;
  nbrs

let rotation_of_coords g coords =
  Rotation.of_orders g
    (Array.init (Graph.n g) (fun v -> clockwise_order coords v (Graph.neighbors g v)))

(* Ray casting; points on the boundary may be classified either way, so
   callers must exclude boundary vertices explicitly. *)
let point_in_polygon poly (px, py) =
  let n = Array.length poly in
  let inside = ref false in
  for i = 0 to n - 1 do
    let (x1, y1) = poly.(i) in
    let (x2, y2) = poly.((i + 1) mod n) in
    if (y1 > py) <> (y2 > py) then begin
      let x_at = x1 +. ((py -. y1) /. (y2 -. y1) *. (x2 -. x1)) in
      if px < x_at then inside := not !inside
    end
  done;
  !inside

(* Proper crossing of open segments (shared endpoints do not count). *)
let segments_cross (a, b) (c, d) =
  let o1 = orient a b c and o2 = orient a b d in
  let o3 = orient c d a and o4 = orient c d b in
  o1 *. o2 < 0.0 && o3 *. o4 < 0.0

(* O(m^2) straight-line planarity check; test-only ground truth. *)
let straight_line_planar g coords =
  let es = Graph.edge_array g in
  let ok = ref true in
  let k = Array.length es in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let (u1, v1) = es.(i) and (u2, v2) = es.(j) in
      if u1 <> u2 && u1 <> v2 && v1 <> u2 && v1 <> v2 then
        if segments_cross (coords.(u1), coords.(v1)) (coords.(u2), coords.(v2))
        then ok := false
    done
  done;
  !ok

let centroid pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Geometry.centroid: empty";
  let sx = ref 0.0 and sy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y)
    pts;
  (!sx /. float_of_int n, !sy /. float_of_int n)
