(* Combinatorial planar embeddings as rotation systems, stored flat.

   The rotation of every vertex lives in one int array aligned with the
   graph's CSR rows: the clockwise neighbour order of [v] occupies
   [Graph.adj_offset g v .. + degree v - 1] of [ord].  A parallel array
   maps each SORTED-adjacency rank to its rotation index, so [position]
   is one binary search plus one array read — no hash table, no encoded
   vertex pairs, nothing for the GC to walk, and domains share the whole
   structure read-only. *)

open Repro_graph

type t = {
  g : Graph.t;
  ord : int array; (* 2m: clockwise orders, row of v at adj_offset v *)
  pos_of_rank : int array; (* 2m: rotation index of the rank-th neighbour *)
}

let graph t = t.g
let degree t v = Graph.degree t.g v
let nth t v i = t.ord.(Graph.adj_offset t.g v + i)

let of_orders g order =
  if Array.length order <> Graph.n g then
    invalid_arg "Rotation.of_orders: wrong number of vertices";
  let ord = Array.make (2 * Graph.m g) 0 in
  let pos_of_rank = Array.make (2 * Graph.m g) (-1) in
  Array.iteri
    (fun v nbrs ->
      if Array.length nbrs <> Graph.degree g v then
        invalid_arg "Rotation.of_orders: degree mismatch";
      let off = Graph.adj_offset g v in
      Array.iteri
        (fun i u ->
          let r = Graph.neighbor_rank g v u in
          if r < 0 then
            invalid_arg "Rotation.of_orders: rotation lists a non-edge";
          if pos_of_rank.(off + r) >= 0 then
            invalid_arg "Rotation.of_orders: duplicate neighbour";
          pos_of_rank.(off + r) <- i;
          ord.(off + i) <- u)
        nbrs)
    order;
  { g; ord; pos_of_rank }

(* The graph's own (sorted) adjacency as the rotation: both flat arrays
   are the identity over each row, no validation needed. *)
let of_adjacency g =
  let sz = 2 * Graph.m g in
  let ord = Array.make sz 0 in
  let pos_of_rank = Array.make sz 0 in
  for v = 0 to Graph.n g - 1 do
    let off = Graph.adj_offset g v in
    for i = 0 to Graph.degree g v - 1 do
      ord.(off + i) <- Graph.nth_neighbor g v i;
      pos_of_rank.(off + i) <- i
    done
  done;
  { g; ord; pos_of_rank }

(* Restriction of a rotation to an induced subgraph, built flat without
   re-validation: dropping non-members from a circular order keeps it a
   valid rotation, and the sub-CSR rows are exactly the kept neighbours.
   [new_of_old] maps members to their [sub] ids (-1 outside — the
   scratch-backed map from [Graph.induced_members] works as-is). *)
let induced t ~sub ~new_of_old ~old_of_new =
  let sz = 2 * Graph.m sub in
  let ord = Array.make sz 0 in
  let pos_of_rank = Array.make sz 0 in
  for nv = 0 to Graph.n sub - 1 do
    let v = old_of_new.(nv) in
    let off = Graph.adj_offset t.g v in
    let noff = Graph.adj_offset sub nv in
    let i = ref 0 in
    for k = 0 to Graph.degree t.g v - 1 do
      let nu = new_of_old.(t.ord.(off + k)) in
      if nu >= 0 then begin
        let r = Graph.neighbor_rank sub nv nu in
        pos_of_rank.(noff + r) <- !i;
        ord.(noff + !i) <- nu;
        incr i
      end
    done
  done;
  { g = sub; ord; pos_of_rank }

let order t v = Array.sub t.ord (Graph.adj_offset t.g v) (degree t v)

let position t v u =
  let r = Graph.neighbor_rank t.g v u in
  if r < 0 then invalid_arg "Rotation.position: not a neighbour";
  t.pos_of_rank.(Graph.adj_offset t.g v + r)

let next_clockwise t v u =
  let d = degree t v in
  t.ord.(Graph.adj_offset t.g v + ((position t v u + 1) mod d))

let prev_clockwise t v u =
  let d = degree t v in
  t.ord.(Graph.adj_offset t.g v + ((position t v u - 1 + d) mod d))

(* Circular order around [v] starting at [first] (callers usually want the
   parent edge first). *)
let order_from t v ~first =
  let d = degree t v in
  let off = Graph.adj_offset t.g v in
  let i0 = position t v first in
  Array.init d (fun k -> t.ord.(off + ((i0 + k) mod d)))

(* Face traversal.  A dart is a directed edge (u, v).  Following the "next
   dart" rule below partitions all 2m darts into closed walks; for a genus-0
   rotation system those walks are exactly the faces of the embedding.  With
   clockwise vertex rotations this rule walks each face so that its interior
   lies to the left of the traversal.  Visited marks live in a flat bool
   array indexed by dart id [adj_offset u + rank of v]. *)
let next_dart t (u, v) = (v, next_clockwise t v u)

let dart_id t u v = Graph.adj_offset t.g u + Graph.neighbor_rank t.g u v

let iter_faces g t f =
  let seen = Array.make (2 * Graph.m g) false in
  let visit u v =
    if not (seen.(dart_id t u v)) then begin
      let walk = ref [] in
      let rec go (a, b) =
        let id = dart_id t a b in
        if not seen.(id) then begin
          seen.(id) <- true;
          walk := (a, b) :: !walk;
          go (next_dart t (a, b))
        end
      in
      go (u, v);
      f (List.rev !walk)
    end
  in
  Graph.iter_edges g (fun u v ->
      visit u v;
      visit v u)

let faces g t =
  let result = ref [] in
  iter_faces g t (fun walk -> result := walk :: !result);
  List.rev !result

let count_faces g t =
  let k = ref 0 in
  iter_faces g t (fun _ -> incr k);
  !k

(* Euler's formula, per component (each lives on its own sphere): a
   component with at least one edge satisfies V - E + F = 2, while an
   isolated vertex contributes V = 1 and no face walk.  Summing:
   V - E + F = 2 * (#components with edges) + (#isolated vertices). *)
let is_planar_embedding g t =
  let comp, c = Algo.components g in
  let sizes = Array.make c 0 in
  Array.iter (fun ci -> sizes.(ci) <- sizes.(ci) + 1) comp;
  let isolated = Array.fold_left (fun a s -> if s = 1 then a + 1 else a) 0 sizes in
  let with_edges = c - isolated in
  Graph.n g - Graph.m g + count_faces g t = (2 * with_edges) + isolated
