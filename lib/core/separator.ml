(* The deterministic cycle-separator algorithm (Theorem 1, Section 5.3).

   The implementation mirrors the paper's phase structure:

   - Phase 1 (precomputation): spanning tree, LEFT/RIGHT DFS orders and all
     real fundamental face weights — charged their Õ(D) CONGEST bounds.
   - Phase 2: G[P] is a tree — pick a subtree in [n/3, 2n/3] (falling back
     to the centroid, see DESIGN.md deviation 1) and mark the root path.
   - Phase 3: a real fundamental face has weight in [n/3, 2n/3] — its border
     path is the separator (Lemma 5).
   - Phase 4: some face is heavier than 2n/3 — take the minimal such face
     and search its full augmentation from u (Lemma 7): a sweep of the
     interior leaves in the face's DFS order, then the maximal hiding edge,
     then the face border itself.
   - Phase 5: all faces lighter than n/3 — take a maximal face, split the
     outside into F_l / F_r (Lemma 8), and either the border path works or
     one side is heavy and is swept like Phase 4 from the root.

   Every candidate is verified with a balance probe before being returned —
   but verification is amortized over each phase group: the Phase-1 tree
   and its orders (already charged once in "sep.phase1-precompute") make
   path membership node-local, so the candidates a phase generates ride
   the slots of ONE running inside/outside weight aggregation on the
   shared tree handle, instead of a fresh mark-path + aggregation per
   candidate (the Lemma 18/19 balance-check idiom; DESIGN.md deviation 2).
   Host-side the handle carries one scratch removal array reused by every
   probe.  The phase and the number of candidates tried are reported so
   the experiments can show the paper's first-choice candidate almost
   always wins. *)

open Repro_tree
open Repro_congest

type result = {
  separator : int list;
  endpoints : (int * int) option; (* fundamental edge closing the cycle *)
  phase : string;
  candidates_tried : int;
  weights_computed : int;
}

exception No_separator_found of string

let charge_opt rounds f = match rounds with Some r -> f r | None -> ()

(* The tracer rides the charged-round ledger: spans open on whatever
   tracer the caller attached to its [Rounds.t], so phase attribution
   needs no extra plumbing through the call stack. *)
module Trace = Repro_trace.Trace

let tracer rounds = Option.bind rounds Rounds.tracer

let span rounds name f = Trace.within (tracer rounds) name f

(* The shared verification handle of one [find]: the Phase-1 tree is held
   by the config, the scratch removal array is reused by every probe, and
   [batch] tracks which phase group's slot-batched balance aggregation has
   already been charged. *)
type verifier = { scratch : bool array; mutable batch : string option }

let verifier_create n = { scratch = Array.make n false; batch = None }

(* Try the T-path between [a] and [b].  The first probe of a phase group
   charges the group's single k-slot balance aggregation (the running
   inside/outside weights of every candidate the group generates ride one
   collective on the Phase-1 tree); later probes of the same group are
   free slots of it.  Path membership is node-local given the Phase-1
   orders, so no per-candidate mark-path is charged. *)
let try_path ?rounds cfg ver tried ~batch ~phase ~closing (a, b) =
  incr tried;
  if ver.batch <> Some batch then begin
    ver.batch <- Some batch;
    span rounds "sep.verify" (fun () ->
        charge_opt rounds (fun r -> Rounds.charge_aggregate r "verify-balance"))
  end;
  let path = Rooted.path (Config.tree cfg) a b in
  if Check.balanced_with ~scratch:ver.scratch cfg path then
    Some
      {
        separator = path;
        endpoints = closing;
        phase;
        candidates_tried = !tried;
        weights_computed = 0;
      }
  else None

let first_some candidates =
  List.fold_left
    (fun acc c -> match acc with Some _ -> acc | None -> c ())
    None candidates

(* ------------------------------------------------------------------ *)
(* Phase 2: trees.                                                     *)
(* ------------------------------------------------------------------ *)

let tree_phase ?rounds cfg ver tried =
  let tree = Config.tree cfg in
  let n = Config.n cfg in
  charge_opt rounds (fun r -> Rounds.charge_aggregate r "range-subtree");
  (* The paper's RANGE-PROBLEM: any v with n_T(v) in [n/3, 2n/3]. *)
  let in_range = ref None in
  for v = 0 to n - 1 do
    let s = Rooted.size tree v in
    if 3 * s >= n && 3 * s <= 2 * n && !in_range = None then in_range := Some v
  done;
  let v0 =
    match !in_range with
    | Some v -> v
    | None ->
      (* Deviation 1: stars and similar trees have no subtree in range; the
         centroid path is still a valid separator. *)
      Rooted.centroid tree
  in
  match
    try_path ?rounds cfg ver tried ~batch:"tree" ~phase:"2-tree" ~closing:None
      (Rooted.root tree, v0)
  with
  | Some r -> r
  | None -> raise (No_separator_found "tree phase failed — centroid path unbalanced?")

(* ------------------------------------------------------------------ *)
(* Phase 4 sweep: monotone counter over a region's leaves.             *)
(* ------------------------------------------------------------------ *)

(* Order the region by [pi]; return, for each T-leaf in the region (in
   sweep order), the counter value at it.  [counter] distinguishes the two
   sweeps of the algorithm:
   - [`Prefix]: number of region nodes up to the leaf — the augmented-face
     weight proxy for a face anchored at one of its endpoints (Phase 4);
   - [`Global]: the leaf's own DFS position — the enclosed-side size of a
     root-anchored path (Phase 5 / Lemma 8's virtual face from the root). *)
let region_leaves_with_counter cfg ~pi ~counter region =
  let tree = Config.tree cfg in
  let arr = Array.of_list region in
  Array.sort (fun a b -> compare (pi a) (pi b)) arr;
  let acc = ref [] in
  Array.iteri
    (fun i z ->
      if Rooted.is_leaf tree z then begin
        let c = match counter with `Prefix -> i + 1 | `Global -> pi z + 1 in
        acc := (z, c) :: !acc
      end)
    arr;
  List.rev !acc

(* Candidate leaves: the one at which the counter first reaches n/3, its
   sweep neighbours, and a bounded evenly-spaced sample of the leaves whose
   counter lies in the balanced window [n/3, 2n/3].  The sample bound keeps
   the number of Õ(D) verification probes constant. *)
let max_window_probes = 24

let crossing_leaves ~n leaves_with_counter =
  let in_window =
    List.filter (fun (_, c) -> 3 * c >= n && 3 * c <= 2 * n) leaves_with_counter
  in
  let sampled =
    let k = List.length in_window in
    if k <= max_window_probes then List.map fst in_window
    else begin
      let arr = Array.of_list in_window in
      List.init max_window_probes (fun i ->
          fst arr.(i * (k - 1) / (max_window_probes - 1)))
    end
  in
  let around =
    let rec find prev = function
      | [] -> (match prev with Some p -> [ p ] | None -> [])
      | (t, c) :: rest ->
        if 3 * c >= n then begin
          let next = match rest with (t', _) :: _ -> [ t' ] | [] -> [] in
          (t :: next) @ (match prev with Some p -> [ p ] | None -> [])
        end
        else find (Some t) rest
    in
    find None leaves_with_counter
  in
  (* Dedup, preserving priority: crossing point first, then the window. *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun t ->
      if Hashtbl.mem seen t then false
      else begin
        Hashtbl.replace seen t ();
        true
      end)
    (around @ sampled)

(* NOT-CONTAINED / NOT-CONTAINS selection (Lemmas 17 and 18).  Weights are
   monotone under face containment, so a weight-extremal edge can only be
   contained in (or contain) an edge of equal weight: it suffices to resolve
   containment inside the tied tier. *)

let edge_contained cfg ~e ~container:(a, b) =
  Faces.edge_in_face cfg ~e:(a, b) ~f:e

(* First edge of [tier] (priority order) not contained in any other tier
   edge. *)
let pick_not_contained cfg tier =
  let rec go = function
    | [] -> List.hd tier
    | e :: rest ->
      if List.exists (fun f -> f <> e && edge_contained cfg ~e ~container:f) tier
      then go rest
      else e
  in
  go tier

(* First edge of [tier] that does not contain any other tier edge. *)
let pick_not_contains cfg tier =
  let rec go = function
    | [] -> List.hd tier
    | e :: rest ->
      if List.exists (fun f -> f <> e && edge_contained cfg ~e:f ~container:e) tier
      then go rest
      else e
  in
  go tier

let weight_tier ~best weights =
  List.filter_map (fun (e, w) -> if w = best then Some e else None) weights
  |> List.sort compare

let pi_for_case cfg = function
  | Faces.Anc_left -> Rooted.pi_right (Config.tree cfg)
  | Faces.Unrelated | Faces.Anc_right -> Rooted.pi_left (Config.tree cfg)

(* Phase 4 on a concrete heavy face F_e: a sweep anchored at each endpoint
   (the paper augments from u; sweeping from v as well covers embeddings
   whose root is not on the outer face, where the augmentation geometry is
   mirrored), then the hidden-edge fallback, then the border itself. *)
let heavy_face_candidates ?rounds cfg ver tried ~u ~v =
  let n = Config.n cfg in
  let case = Faces.classify cfg ~u ~v in
  charge_opt rounds (fun r -> Rounds.charge_detect_face r);
  let interior = Faces.interior_reference cfg ~u ~v in
  charge_opt rounds (fun r ->
      Rounds.charge_aggregate r "full-augmentation[Phase4]");
  let pi = pi_for_case cfg case in
  let sweep ~anchor ~order =
    let key = match order with `Asc -> pi | `Desc -> fun z -> -pi z in
    let leaves =
      region_leaves_with_counter cfg ~pi:key ~counter:`Prefix interior
    in
    let hits = crossing_leaves ~n leaves in
    let paths =
      (* Sweep hits are balance-verified; a closing edge is reported only
         with the paper's own certificate: the hit is anchored at u and not
         hidden (Lemma 6 = (T, F_e)-compatibility with u).  Hits anchored at
         v (the mirrored sweep) are reported as balanced path separators. *)
      List.map
        (fun t () ->
          let closing =
            if anchor = u && not (Hidden.is_hidden cfg ~e:(u, v) ~t) then
              Some (u, t)
            else None
          in
          try_path ?rounds cfg ver tried ~batch:"phase4" ~phase:"4-augmented"
            ~closing (anchor, t))
        hits
    in
    let hidden =
      List.map
        (fun t () ->
          charge_opt rounds (fun r -> Rounds.charge_hidden r);
          match Hidden.maximal_hiding_edge cfg ~e:(u, v) ~t with
          | None -> None
          | Some (z1, z2) ->
            (* Claim 6 certifies the virtual edge u-z2; the mirrored
               (anchor = v) variants are path separators. *)
            let closing z = if anchor = u then Some (u, z) else None in
            first_some
              [
                (fun () ->
                  try_path ?rounds cfg ver tried ~batch:"phase4"
                    ~phase:"4-hidden" ~closing:(closing z2) (anchor, z2));
                (fun () ->
                  try_path ?rounds cfg ver tried ~batch:"phase4"
                    ~phase:"4-hidden" ~closing:(closing z1) (anchor, z1));
              ])
        hits
    in
    paths @ hidden
  in
  first_some
    (sweep ~anchor:u ~order:`Asc
    @ [
        (fun () ->
          try_path ?rounds cfg ver tried ~batch:"phase4" ~phase:"4-border"
            ~closing:(Some (u, v)) (u, v));
      ]
    @ sweep ~anchor:v ~order:`Desc)

(* Phase-5 heavy-outside sweep: the region outside F_e on one side, swept
   from the tree root (simulating the virtual face F_{root,u'} of Lemma 8). *)
let outside_sweep_candidates ?rounds cfg ver tried ~label region =
  let n = Config.n cfg in
  let root = Rooted.root (Config.tree cfg) in
  charge_opt rounds (fun r -> Rounds.charge_aggregate r "outside-sweep[Phase5]");
  let leaves =
    region_leaves_with_counter cfg
      ~pi:(Rooted.pi_left (Config.tree cfg))
      ~counter:`Global region
  in
  let hits = crossing_leaves ~n leaves in
  (* Root-anchored sweep hits carry no certified closing edge. *)
  List.map
    (fun t () ->
      try_path ?rounds cfg ver tried ~batch:"phase5" ~phase:label ~closing:None
        (root, t))
    hits

(* ------------------------------------------------------------------ *)
(* The full algorithm for one part.                                    *)
(* ------------------------------------------------------------------ *)

let find ?rounds cfg =
  let tree = Config.tree cfg in
  let n = Config.n cfg in
  let root = Rooted.root tree in
  let tried = ref 0 in
  if n <= 3 then
    {
      separator = [ root ];
      endpoints = None;
      phase = "trivial";
      candidates_tried = 0;
      weights_computed = 0;
    }
  else begin
    (* Phase 1 precomputation charges; the tree, its orders and the
       verification scratch live in one handle shared by every probe and
       election below — nothing below re-marks or re-walks it. *)
    let ver = verifier_create n in
    span rounds "sep.phase1-precompute" (fun () ->
        charge_opt rounds (fun r ->
            Rounds.charge_spanning_forest r;
            Rounds.charge_dfs_order r;
            Rounds.charge_weights r));
    let fundamental = Config.fundamental_edges cfg in
    if fundamental = [] then
      span rounds "sep.phase2-tree" (fun () -> tree_phase ?rounds cfg ver tried)
    else begin
      let weights =
        List.map (fun (u, v) -> ((u, v), Weights.weight cfg ~u ~v)) fundamental
      in
      let wcount = List.length weights in
      let finish r = { r with weights_computed = wcount } in
      (* Phase 3: a face with weight in range. *)
      let phase3_result =
        span rounds "sep.phase3-face" (fun () ->
            charge_opt rounds (fun r ->
                Rounds.charge_aggregate r "range-weights[Phase3]");
            let in_range =
              List.filter (fun (_, w) -> 3 * w >= n && 3 * w <= 2 * n) weights
            in
            first_some
              (List.map
                 (fun ((u, v), _) () ->
                   try_path ?rounds cfg ver tried ~batch:"phase3"
                     ~phase:"3-face" ~closing:(Some (u, v)) (u, v))
                 in_range))
      in
      match phase3_result with
      | Some r -> finish r
      | None ->
        let heavy = List.filter (fun (_, w) -> 3 * w > 2 * n) weights in
        let result =
          if heavy <> [] then
            span rounds "sep.phase4-heavy" @@ fun () ->
            begin
            (* Phase 4: a minimal heavy face — one that does not contain any
               other heavy face (NOT-CONTAINS, Lemma 18).  Containment can
               only hold within the minimum-weight tier.  If every candidate
               of that face fails (possible on embeddings whose root is not
               on the outer face), fall through to the other heavy faces in
               weight order, up to a constant cap. *)
            charge_opt rounds (fun r -> Rounds.charge_not_contained r);
            let wmin = List.fold_left (fun a (_, w) -> min a w) max_int heavy in
            let primary = pick_not_contains cfg (weight_tier ~best:wmin heavy) in
            let others =
              List.sort (fun (_, w1) (_, w2) -> compare w1 w2) heavy
              |> List.map fst
              |> List.filter (fun e -> e <> primary)
              |> List.filteri (fun i _ -> i < 7)
            in
            first_some
              (List.map
                 (fun (u, v) () ->
                   heavy_face_candidates ?rounds cfg ver tried ~u ~v)
                 (primary :: others))
          end
          else
            span rounds "sep.phase5-light" @@ fun () ->
            begin
            (* Phase 5: every face lighter than n/3.  Take an edge not
               contained in any other face (NOT-CONTAINED, Lemma 17); only
               the maximum-weight tier can contain it. *)
            charge_opt rounds (fun r -> Rounds.charge_not_contained r);
            let wmax = List.fold_left (fun a (_, w) -> max a w) min_int weights in
            let u, v = pick_not_contained cfg (weight_tier ~best:wmax weights) in
            let f_left, f_right = Weights.outside_split cfg ~u ~v in
            charge_opt rounds (fun r -> Rounds.charge_aggregate r "outside-split[Phase5]");
            let nl = List.length f_left and nr = List.length f_right in
            let base_candidates =
              (* Only the border path carries a certified closing edge (the
                 real fundamental edge e); the root-anchored candidates are
                 balanced path separators — Lemma 8's insertability argument
                 for the virtual root edge relies on the outer-face root
                 convention, which arbitrary embeddings need not satisfy. *)
              [
                (fun () ->
                  try_path ?rounds cfg ver tried ~batch:"phase5"
                    ~phase:"5-border" ~closing:(Some (u, v)) (u, v));
                (fun () ->
                  try_path ?rounds cfg ver tried ~batch:"phase5"
                    ~phase:"5-root-v" ~closing:None (root, v));
                (fun () ->
                  try_path ?rounds cfg ver tried ~batch:"phase5"
                    ~phase:"5-root-u" ~closing:None (root, u));
              ]
            in
            let sweeps =
              if 3 * nl > 2 * n then
                outside_sweep_candidates ?rounds cfg ver tried
                  ~label:"5-left-sweep" f_left
              else if 3 * nr > 2 * n then
                outside_sweep_candidates ?rounds cfg ver tried
                  ~label:"5-right-sweep" f_right
              else []
            in
            (* Backup: sweep the larger outside region even when neither
               exceeds 2n/3 — lazily evaluated, so it costs rounds only if
               the paper's primary candidates all fail. *)
            let backup () =
              if sweeps <> [] then None
              else begin
                let label, region =
                  if nl >= nr then ("5-left-sweep", f_left)
                  else ("5-right-sweep", f_right)
                in
                first_some
                  (outside_sweep_candidates ?rounds cfg ver tried ~label region)
              end
            in
            first_some (base_candidates @ sweeps @ [ backup ])
          end
        in
        (match result with
        | Some r -> finish r
        | None ->
          (* Safety net: reached when the bounded sweeps miss (the even
             window sample of [crossing_leaves] can skip the only balanced
             hit — observed on tgrid 100x100 seed 3) or no face border
             balances at all. *)
          let fallback =
            span rounds "sep.fallback" @@ fun () ->
            first_some
              [
                (fun () ->
                  try_path ?rounds cfg ver tried ~batch:"fallback"
                    ~phase:"fallback-centroid" ~closing:None
                    (root, Rooted.centroid tree));
                (fun () ->
                  (* Closest-to-balanced face border. *)
                  let sorted =
                    List.sort
                      (fun (_, w1) (_, w2) ->
                        compare (abs ((2 * w1) - n)) (abs ((2 * w2) - n)))
                      weights
                  in
                  first_some
                    (List.filteri (fun i _ -> i < 50) sorted
                    |> List.map (fun ((u, v), _) () ->
                           try_path ?rounds cfg ver tried ~batch:"fallback"
                             ~phase:"fallback-face" ~closing:(Some (u, v))
                             (u, v))));
                (fun () ->
                  (* Exhaustive root-anchored leaf sweep: a root-to-leaf
                     path encloses pi_left(t) + 1 nodes on one side, so
                     ordering ALL tree leaves by how close that side is to
                     n/2 probes the most balanced candidates first.  The
                     probes ride the fallback batch's running aggregate
                     (one charged collective however many leaves are
                     tried), and unlike the Phase-4/5 sweeps nothing is
                     sampled away — this is the completeness backstop for
                     the bounded [crossing_leaves] window. *)
                  charge_opt rounds (fun r ->
                      Rounds.charge_aggregate r "fallback-leaf-sweep");
                  let pi = Rooted.pi_left tree in
                  let leaves = ref [] in
                  for v = 0 to n - 1 do
                    if Rooted.is_leaf tree v then leaves := v :: !leaves
                  done;
                  let arr = Array.of_list !leaves in
                  Array.sort
                    (fun a b ->
                      compare
                        (abs ((2 * (pi a + 1)) - n), pi a)
                        (abs ((2 * (pi b + 1)) - n), pi b))
                    arr;
                  first_some
                    (Array.to_list arr
                    |> List.map (fun t () ->
                           try_path ?rounds cfg ver tried ~batch:"fallback"
                             ~phase:"fallback-leaf" ~closing:None (root, t))));
              ]
          in
          (match fallback with
          | Some r -> finish r
          | None -> raise (No_separator_found "all candidates failed")))
    end
  end

(* Balanced-trim post-pass: drop vertices from both ends of the separator
   path while the balance holds.  Balance is monotone under set inclusion of
   tree paths (removing more vertices only shrinks components), so a binary
   search per end suffices: O(log n) verification probes.

   The probes all test contiguous windows of the ONE marked path, so the
   removal marks are maintained incrementally — each probe flips only the
   window boundary that moved and charges a single running-aggregate
   update, not a fresh mark-path + re-walk.

   The result is still a balanced tree-path separator, but the closing edge
   of the trimmed path may no longer be insertable in the embedding — use it
   when only balance matters (e.g. divide-and-conquer applications), not
   when the cycle property itself is needed. *)
let shrink ?rounds cfg path =
  let arr = Array.of_list path in
  let k = Array.length arr in
  let n = Config.n cfg in
  let removed = Array.make n false in
  Array.iter (fun v -> removed.(v) <- true) arr;
  let lo = ref 0 and hi = ref (k - 1) in
  let set_window i j =
    for x = !lo to !hi do
      if x < i || x > j then removed.(arr.(x)) <- false
    done;
    for x = i to j do
      if x < !lo || x > !hi then removed.(arr.(x)) <- true
    done;
    lo := i;
    hi := j
  in
  let balanced_sub i j =
    span rounds "sep.shrink-probe" (fun () ->
        charge_opt rounds (fun r -> Rounds.charge_aggregate r "shrink-balance"));
    set_window i j;
    Check.max_component_without (Config.graph cfg) removed
    <= Check.balance_limit n
  in
  if k <= 1 then path
  else begin
    (* Largest i such that [i .. k-1] stays balanced. *)
    let rec search_lo lo hi =
      (* invariant: [lo .. k-1] balanced, [hi .. k-1] not (or hi = k). *)
      if hi - lo <= 1 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if balanced_sub mid (k - 1) then search_lo mid hi else search_lo lo mid
      end
    in
    let i = search_lo 0 k in
    (* Smallest j such that [i .. j] stays balanced. *)
    let rec search_hi lo hi =
      (* invariant: [i .. hi] balanced, [i .. lo] not (or lo = i - 1). *)
      if hi - lo <= 1 then hi
      else begin
        let mid = (lo + hi) / 2 in
        if balanced_sub i mid then search_hi lo mid else search_hi mid hi
      end
    in
    let j = search_hi (i - 1) (k - 1) in
    let out = ref [] in
    for x = j downto i do
      out := arr.(x) :: !out
    done;
    !out
  end

(* Theorem 1: separators for every part of a partition.  Parts run
   concurrently under the shortcut framework — and, host-side, over the
   domain pool when one is given — so the batch is charged the rounds of
   its most expensive part, not the sum.  Per-part ledgers are merged in
   part order; the output is independent of pool scheduling. *)
let find_partition ?rounds ?pool emb ~parts =
  Screen.require ?rounds ~entry:"Separator.find_partition" emb;
  let tasks = Array.of_list (List.map Array.of_list parts) in
  let cost = Array.fold_left (fun a m -> a + Array.length m) 0 tasks in
  (* The batch span covers both the (possibly parallel) per-part runs and
     the deterministic merge, so the heaviest part's spliced trace lands
     inside it. *)
  span rounds "sep.partition" @@ fun () ->
  let pmap ~cost f arr =
    match pool with
    | Some p ->
      Repro_util.Pool.map ?trace:(tracer rounds) ~label:"pool.separators"
        ~cost p f arr
    | None -> Array.map f arr
  in
  let results =
    pmap ~cost
      (fun members ->
        if Array.length members = 0 then
          invalid_arg "Separator.find_partition: empty part"
        else begin
          let cfg = Config.of_part ~members ~root:members.(0) emb in
          let local = Option.map Rounds.like rounds in
          let r = find ?rounds:local cfg in
          (cfg, r, local)
        end)
      tasks
  in
  (match rounds with
  | Some global ->
    Rounds.absorb_heaviest global (Array.map (fun (_, _, l) -> l) results)
  | None -> ());
  Array.to_list (Array.map (fun (cfg, r, _) -> (cfg, r)) results)
