(** JOIN-PROBLEM (Lemma 2): growing a partial DFS tree by the nodes of a
    marked cycle separator under the DFS-RULE.

    Joins of distinct components only touch their own members, so the DFS
    driver may run them concurrently over a domain pool. *)

open Repro_graph
open Repro_congest

type state = {
  g : Graph.t;
  parent : int array; (** -1 at the DFS root, -2 while unvisited *)
  depth : int array; (** -1 while unvisited *)
  unvisited : int Atomic.t; (** running count of unvisited nodes *)
}

val create : Graph.t -> root:int -> state

val in_tree : state -> int -> bool

val unvisited : state -> int
(** Number of still-unvisited nodes, maintained incrementally (O(1), where
    scanning the parent array per phase would be O(n)). *)

val component_anchor : state -> int array -> (int * int) option
(** The unvisited node of the component with the deepest visited neighbour,
    paired with that neighbour (the DFS-RULE attachment point). *)

val unvisited_components : state -> int array -> int array list
(** Connected components of the unvisited part of the member set. *)

val join : ?rounds:Rounds.t -> state -> members:int array -> separator:int list -> int
(** Add every separator node of the component to the partial tree; returns
    the number of halving iterations used (Lemma 2 bounds it by O(log n)
    per surviving path piece). *)
