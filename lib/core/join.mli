(** JOIN-PROBLEM (Lemma 2): growing a partial DFS tree by the nodes of a
    marked cycle separator under the DFS-RULE.

    The per-iteration queries — anchor election, target election, attach
    bookkeeping — are slot-batched across all active components (one
    part-wise aggregation each), with the preferring forests and their
    rooted orders charged as Lemmas 9 and 11.  {!Reference} keeps the
    pre-batching choreography (anchor aggregation + re-root + mark-path
    per iteration) verbatim as the differential oracle.

    Joins of distinct components only touch their own members, so the DFS
    driver may run them concurrently over a domain pool. *)

open Repro_graph
open Repro_congest

type state = {
  g : Graph.t;
  parent : int array;  (** -1 at the DFS root, -2 while unvisited *)
  depth : int array;  (** -1 while unvisited *)
  unvisited : int Atomic.t;  (** running count of unvisited nodes *)
}

val create : Graph.t -> root:int -> state

val in_tree : state -> int -> bool

val unvisited : state -> int
(** Number of still-unvisited nodes, maintained incrementally (O(1), where
    scanning the parent array per phase would be O(n)). *)

val component_anchor : state -> int array -> (int * int) option
(** The unvisited node of the component with the deepest visited neighbour,
    paired with that neighbour (the DFS-RULE attachment point). *)

val unvisited_components : state -> int array -> int array list
(** Connected components of the unvisited part of the member set. *)

type exec = {
  serial : bool;  (** bind the elections to the serial choreography *)
  bcast_parent : int array;  (** pipeline tree for the part-wise batches *)
  bcast_root : int;
  mutable stats : Composed.stats;  (** accumulated over all iterations *)
}

val exec_create : ?serial:bool -> state -> root:int -> exec
(** Engine-backed election mode for {!join}: every iteration's elections
    run for real as {!Repro_congest.Composed.join_elections} (or its
    [Reference] serial binding when [serial]), accumulating the executed
    statistics into [stats].  Builds a BFS pipeline tree from [root], so
    the graph must be connected.  Reads the whole graph's state per
    iteration and is NOT pool-safe: for the differential suite and the
    serial-vs-batched benchmark, never the hot path. *)

val join :
  ?rounds:Rounds.t ->
  ?exec:exec ->
  state ->
  members:int array ->
  separator:int list ->
  int
(** Add every separator node of the component to the partial tree; returns
    the number of halving iterations used (Lemma 2 bounds it by O(log n)
    per surviving path piece). *)

(** The pre-batching serial choreography, verbatim (per-component hash
    index, per-iteration anchor aggregation + re-root + mark-path): the
    differential oracle against which the batched {!join} must be
    bit-identical in resulting tree and iteration count. *)
module Reference : sig
  val join :
    ?rounds:Rounds.t -> state -> members:int array -> separator:int list -> int
end
