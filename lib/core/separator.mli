(** The deterministic cycle-separator algorithm (Theorem 1, Section 5.3).

    [find] runs the paper's six-phase algorithm on one planar configuration;
    every candidate path is verified with a balance probe before being
    returned (see DESIGN.md, deviation 2).  Verification is amortized: one
    shared handle (scratch marks + the phase-1 tree) serves every probe of
    a [find], and each phase group charges a single running balance
    aggregate — the Lemma 18/19 balance check maintained incrementally —
    however many candidates the group tries.  [find_partition] is
    Theorem 1 proper: separators for all parts of a partition, charged as
    a parallel batch. *)

open Repro_embedding
open Repro_congest

type result = {
  separator : int list; (** vertices of the separator (a tree path) *)
  endpoints : (int * int) option;
      (** the certified closing edge of the cycle: a real fundamental edge,
          or a virtual edge whose planar insertability follows from the
          producing lemma (5, 6 or 8).  [None] for tree-phase and sweep
          outputs, which are balanced tree-path separators without a
          closing-edge certificate ([Check.cycle_closable] re-checks any
          reported edge with the DMP tester). *)
  phase : string; (** which phase/candidate produced the separator *)
  candidates_tried : int;
  weights_computed : int;
}

exception No_separator_found of string

val find : ?rounds:Rounds.t -> Config.t -> result

val shrink : ?rounds:Rounds.t -> Config.t -> int list -> int list
(** Trim a separator path from both ends while it stays balanced (balance is
    monotone under path inclusion, so two binary searches = O(log n)
    verification probes).  The result remains a balanced tree-path separator
    but may lose the cycle-closing property; use for applications that only
    need balance. *)

val find_partition :
  ?rounds:Rounds.t ->
  ?pool:Repro_util.Pool.t ->
  Embedded.t ->
  parts:int list list ->
  (Config.t * result) list
(** Separator of [G[P_i]] for every part; each part must induce a connected
    subgraph.  Results are in part order, paired with the (renumbered)
    per-part configuration.  Parts are computed concurrently over [pool]
    when given, mirroring Theorem 1's partition parallelism; results and
    charged rounds do not depend on the pool size. *)
