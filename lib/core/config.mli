(** Planar configurations (G, E, T): a planar graph, a combinatorial
    embedding and a rooted spanning tree with embedding-ordered children —
    the object all of the paper's algorithms manipulate. *)

open Repro_graph
open Repro_embedding
open Repro_tree

type t

val of_embedded :
  ?spanning:Spanning.kind -> ?root:int -> ?root_first:int -> Embedded.t -> t
(** Configuration for a whole embedded graph.  The root defaults to the
    embedding's outer vertex; [root_first] (where the virtual root edge is
    inserted) defaults to the outward direction when coordinates exist. *)

val of_part :
  ?spanning:Spanning.kind -> members:int array -> root:int -> Embedded.t -> t
(** Configuration for the subgraph induced by [members] (which must be
    connected); the embedding is inherited by restriction.  Vertices are
    renumbered; map back with [to_global].  Members are an array — the
    representation the part-parallel batch runners traffic in. *)

val of_parts :
  graph:Graph.t ->
  rot:Rotation.t ->
  tree:Rooted.t ->
  ?root_first:int ->
  ?to_global:int array ->
  unit ->
  t
(** Assemble a configuration from existing pieces (tests, DFS driver). *)

val graph : t -> Graph.t
val rot : t -> Rotation.t
val tree : t -> Rooted.t
val n : t -> int
val root_first : t -> int option

val to_global : t -> int -> int
(** Map a local vertex back to the original graph's numbering. *)

val outer_root_first : Embedded.t -> int -> int option
(** Neighbour of the given hull vertex that follows the outward direction
    clockwise — the virtual-root-edge convention of Section 4. *)

val fundamental_edges : t -> (int * int) list
(** Real fundamental edges (non-tree edges), normalized so that
    [pi_left u < pi_left v]. *)

val is_tree : t -> bool
