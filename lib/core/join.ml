(* JOIN-PROBLEM (Lemma 2): grow a partial DFS tree by the nodes of a marked
   cycle separator, following the DFS-RULE.

   Per iteration, every component of the not-yet-visited region that still
   holds marked nodes receives one tree path: from its anchor (the node with
   the deepest neighbour in the partial tree, as the DFS-RULE requires) to
   the deepest remaining marked node of a spanning tree that prefers
   marked-marked edges.  Preferring those edges keeps every surviving piece
   of the separator a path of the spanning tree, so the chosen path absorbs
   at least half of the piece it enters — giving the O(log) iteration bound
   of the paper, which experiment E9 measures.

   The per-iteration queries are batched across components: all anchor
   elections ride one two-slot part-wise MAX over the component partition,
   all target elections one more slot once the preferring forests are
   rooted, and the attach bookkeeping one two-slot SUM — so an iteration
   charges the preferring forests (Lemma 9), their rooted orders
   (Lemma 11, making path activation node-local) and three aggregations,
   instead of the old per-component anchor aggregation + re-root +
   mark-path schedule.  The elections are expressed as integer codes whose
   part-wise maximum realises exactly the serial tie-breaks; [Reference]
   keeps the pre-batching choreography verbatim as the differential
   oracle, and [?exec] runs the batched elections for real in the message
   engine ({!Repro_congest.Composed.join_elections}).

   Joins of distinct components may run concurrently (the DFS driver batches
   them over a domain pool): a join writes [parent]/[depth] only for its own
   members, and every neighbour it reads outside the component was already
   visited when the phase began — two unvisited nodes joined by an edge are
   by definition in the same component.  The running unvisited count is an
   [Atomic] so those concurrent attachments keep it exact.  The [?exec]
   path reads the whole graph's state and is NOT pool-safe; it exists for
   the differential suite and the serial-vs-batched benchmark only. *)

open Repro_graph
open Repro_congest

type state = {
  g : Graph.t;
  parent : int array; (* -1 at the DFS root, -2 while unvisited *)
  depth : int array; (* -1 while unvisited *)
  unvisited : int Atomic.t; (* count of parent.(v) = -2 entries *)
}

let create g ~root =
  let n = Graph.n g in
  let parent = Array.make n (-2) in
  let depth = Array.make n (-1) in
  parent.(root) <- -1;
  depth.(root) <- 0;
  { g; parent; depth; unvisited = Atomic.make (n - 1) }

let in_tree st v = st.parent.(v) > -2

let unvisited st = Atomic.get st.unvisited

(* Anchor of a component: the unvisited node with the deepest visited
   neighbour (ties broken by identifiers for determinism).  Returns the
   anchor and that neighbour. *)
let component_anchor st members =
  Array.fold_left
    (fun acc v ->
      Graph.fold_neighbors st.g v
        (fun acc u ->
          if in_tree st u then begin
            match acc with
            | Some (_, best_u) when st.depth.(best_u) > st.depth.(u) -> acc
            | Some (best_v, best_u)
              when st.depth.(best_u) = st.depth.(u) && (best_u, best_v) <= (u, v) ->
              acc
            | _ -> Some (v, u)
          end
          else acc)
        acc)
    None members

(* Election codes.  The part-wise MAX of the anchor codes picks the
   candidate edge (u, v) — u visited, v an unvisited component member —
   with the deepest u, ties to the lexicographically smallest (u, v):
   exactly the [component_anchor] fold.  The MAX of the target codes picks
   the deepest node of the rooted preferring forest, ties to the first in
   component order: exactly the serial target fold.  Codes are O(n^3) and
   therefore fit the engine's O(log n)-bit message budget. *)
let encode_anchor n ~du ~u ~v = 1 + (du * n * n) + ((n * n) - 1 - ((u * n) + v))

let decode_anchor n code =
  let e = (n * n) - 1 - ((code - 1) mod (n * n)) in
  (e / n, e mod n)

let encode_target n ~depth ~rank = 1 + (depth * n) + (n - 1 - rank)
let decode_target_rank n code = n - 1 - ((code - 1) mod n)

(* Spanning tree of the member set rooted at [anchor], preferring edges
   between still-marked nodes (Kruskal with 0/1 weights), then BFS over the
   chosen edges for parents and depths, both in member-index space.  [idx]
   is the shared vertex -> member-index scratch (-1 outside the current
   component): filled on entry and cleared before returning, so one flat
   array serves every component of every iteration without the per-call
   hash table the serial choreography allocates. *)
let preferring_tree st members ~anchor ~marked ~idx =
  let k = Array.length members in
  Array.iteri (fun i v -> idx.(v) <- i) members;
  let uf = Repro_util.Union_find.create k in
  let adj = Array.make k [] in
  let add_edge u v =
    if Repro_util.Union_find.union uf idx.(u) idx.(v) then begin
      adj.(idx.(u)) <- v :: adj.(idx.(u));
      adj.(idx.(v)) <- u :: adj.(idx.(v))
    end
  in
  let consider pass =
    Array.iter
      (fun v ->
        Graph.iter_neighbors st.g v (fun u ->
            if idx.(u) >= 0 && v < u then begin
              let zero = marked v && marked u in
              if (pass = 0 && zero) || (pass = 1 && not zero) then add_edge v u
            end))
      members
  in
  consider 0;
  consider 1;
  let parent = Array.make k (-2) in
  let depth = Array.make k (-1) in
  parent.(idx.(anchor)) <- -1;
  depth.(idx.(anchor)) <- 0;
  let queue = Array.make k idx.(anchor) in
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let jv = queue.(!head) in
    incr head;
    List.iter
      (fun u ->
        let ju = idx.(u) in
        if parent.(ju) = -2 then begin
          parent.(ju) <- jv;
          depth.(ju) <- depth.(jv) + 1;
          queue.(!tail) <- ju;
          incr tail
        end)
      adj.(jv)
  done;
  Array.iter (fun v -> idx.(v) <- -1) members;
  (parent, depth)

(* Attach the tree path anchor -> target (given by its member rank) to the
   partial DFS tree. *)
let attach st comp ~anchor_parent ~tparent ~target_rank =
  let rec path_to j acc =
    let acc = comp.(j) :: acc in
    if tparent.(j) = -1 then acc else path_to tparent.(j) acc
  in
  let path = path_to target_rank [] in
  let rec walk prev = function
    | [] -> ()
    | v :: rest ->
      st.parent.(v) <- prev;
      st.depth.(v) <- st.depth.(prev) + 1;
      Atomic.decr st.unvisited;
      walk v rest
  in
  walk anchor_parent path

(* Components of the unvisited part of [members]. *)
let unvisited_components st members =
  Algo.restricted_components st.g ~members ~skip:(in_tree st)

type exec = {
  serial : bool;
  bcast_parent : int array;
  bcast_root : int;
  mutable stats : Composed.stats;
}

let exec_create ?(serial = false) st ~root =
  (* The broadcast tree is shared setup, identical for both choreographies,
     so its construction cost is deliberately not tallied. *)
  let (bcast_parent, _), _ = Prim.bfs_tree st.g ~root in
  { serial; bcast_parent; bcast_root = root; stats = Collective.no_stats }

(* Add all separator nodes of one original component to the partial DFS
   tree.  Returns the number of halving iterations used. *)
let join_inner ?rounds ?exec st ~members ~separator =
  let n = Graph.n st.g in
  let remaining = Hashtbl.create (2 * List.length separator) in
  List.iter
    (fun v -> if not (in_tree st v) then Hashtbl.replace remaining v ())
    separator;
  let marked v = Hashtbl.mem remaining v in
  let idx = Array.make n (-1) in
  let iterations = ref 0 in
  while Hashtbl.length remaining > 0 do
    incr iterations;
    (match rounds with
    | Some r ->
      (* One iteration, all active components in parallel: preferring
         forests (Lemma 9), their orders rooted at the anchors (Lemma 11 —
         path activation becomes node-local), and the three slot-batched
         aggregations: anchor/marked election, target election, attach
         bookkeeping (Section 6.1). *)
      Rounds.charge_spanning_forest r;
      Rounds.charge_dfs_order r;
      Rounds.charge_aggregate r "join-elections";
      Rounds.charge_aggregate r "join-target";
      Rounds.charge_aggregate r "join-attach"
    | None -> ());
    let comps = Array.of_list (unvisited_components st members) in
    let m = Array.length comps in
    let forests = Array.make m None in
    (* Batch A, host side: per-component maxima of the anchor codes and
       marked flags (what the part-wise MAX computes per part). *)
    let elect_anchors () =
      let a0 = Array.make m 0 and a1 = Array.make m 0 in
      Array.iteri
        (fun i comp ->
          Array.iter
            (fun v ->
              if marked v then a1.(i) <- 1;
              Graph.iter_neighbors st.g v (fun u ->
                  if in_tree st u then begin
                    let c = encode_anchor n ~du:st.depth.(u) ~u ~v in
                    if c > a0.(i) then a0.(i) <- c
                  end))
            comp)
        comps;
      (a0, a1)
    in
    let build_forests (a0, a1) =
      Array.iteri
        (fun i comp ->
          if a1.(i) > 0 then begin
            if a0.(i) = 0 then
              invalid_arg "Join.join: component with no tree neighbour";
            let anchor_parent, anchor = decode_anchor n a0.(i) in
            let tparent, tdepth = preferring_tree st comp ~anchor ~marked ~idx in
            forests.(i) <- Some (anchor_parent, tparent, tdepth)
          end)
        comps
    in
    (* Batch B, host side: per-component maximum of the target codes. *)
    let elect_targets () =
      Array.mapi
        (fun i comp ->
          match forests.(i) with
          | None -> 0
          | Some (_, _, tdepth) ->
            let best = ref 0 in
            Array.iteri
              (fun j v ->
                if marked v then begin
                  let c = encode_target n ~depth:tdepth.(j) ~rank:j in
                  if c > !best then best := c
                end)
              comp;
            !best)
        comps
    in
    let attach_all b0 =
      let touched = ref false in
      Array.iteri
        (fun i comp ->
          match forests.(i) with
          | None -> ()
          | Some (anchor_parent, tparent, _) ->
            if b0.(i) > 0 then begin
              attach st comp ~anchor_parent ~tparent
                ~target_rank:(decode_target_rank n b0.(i));
              touched := true;
              Array.iter
                (fun v -> if in_tree st v then Hashtbl.remove remaining v)
                comp
            end)
        comps;
      if not !touched then
        invalid_arg "Join.join: no progress — separator nodes unreachable"
    in
    match exec with
    | None ->
      build_forests (elect_anchors ());
      attach_all (elect_targets ())
    | Some e ->
      (* Run the elections for real in the engine; the host callbacks keep
         the forest building and attaching between the batches. *)
      let visited_depth =
        Array.init n (fun v -> if in_tree st v then st.depth.(v) else -1)
      in
      let marked_arr = Array.init n marked in
      let parts = Array.make n m in
      Array.iteri (fun i comp -> Array.iter (fun v -> parts.(v) <- i) comp) comps;
      let forest a =
        let a0 = Array.map (fun comp -> a.(0).(comp.(0))) comps in
        let a1 = Array.map (fun comp -> a.(1).(comp.(0))) comps in
        build_forests (a0, a1);
        let target_code = Array.make n 0 in
        Array.iteri
          (fun i comp ->
            match forests.(i) with
            | None -> ()
            | Some (_, _, tdepth) ->
              Array.iteri
                (fun j v ->
                  if marked v then
                    target_code.(v) <- encode_target n ~depth:tdepth.(j) ~rank:j)
                comp)
          comps;
        target_code
      in
      let attach_cb brow =
        attach_all (Array.map (fun comp -> brow.(comp.(0))) comps);
        let rem = Array.init n (fun v -> if marked v then 1 else 0) in
        let unv = Array.init n (fun v -> if in_tree st v then 0 else 1) in
        (rem, unv)
      in
      let (_, _, t), stats =
        if e.serial then
          Composed.Reference.join_elections st.g ~bcast_parent:e.bcast_parent
            ~root:e.bcast_root ~parts ~visited_depth ~marked:marked_arr ~forest
            ~attach:attach_cb
        else
          Composed.join_elections st.g ~bcast_parent:e.bcast_parent
            ~root:e.bcast_root ~parts ~visited_depth ~marked:marked_arr ~forest
            ~attach:attach_cb
      in
      assert (t.(0) = Hashtbl.length remaining);
      e.stats <- Collective.add e.stats stats;
      Option.iter (fun r -> Rounds.note_exec r stats) rounds
  done;
  !iterations

let join ?rounds ?exec st ~members ~separator =
  Repro_trace.Trace.within
    (Option.bind rounds Rounds.tracer)
    "join" (fun () -> join_inner ?rounds ?exec st ~members ~separator)

(* ------------------------------------------------------------------ *)
(* The pre-batching choreography, verbatim: one anchor aggregation, a   *)
(* re-root and a full mark-path per iteration, with a per-component     *)
(* hash-table member index.  Kept as the differential oracle: the       *)
(* batched join above must produce a bit-identical partial tree and     *)
(* iteration count on every input.                                      *)
(* ------------------------------------------------------------------ *)

module Reference = struct
  let preferring_tree st members ~anchor ~marked =
    let k = Array.length members in
    let member = Hashtbl.create (2 * k) in
    Array.iteri (fun i v -> Hashtbl.replace member v i) members;
    let idx v = Hashtbl.find member v in
    let uf = Repro_util.Union_find.create k in
    let adj = Array.make k [] in
    let add_edge u v =
      if Repro_util.Union_find.union uf (idx u) (idx v) then begin
        adj.(idx u) <- v :: adj.(idx u);
        adj.(idx v) <- u :: adj.(idx v)
      end
    in
    let consider pass =
      Array.iter
        (fun v ->
          Array.iter
            (fun u ->
              if Hashtbl.mem member u && v < u then begin
                let zero = marked v && marked u in
                if (pass = 0 && zero) || (pass = 1 && not zero) then add_edge v u
              end)
            (Graph.neighbors st.g v))
        members
    in
    consider 0;
    consider 1;
    let parent = Array.make k (-2) in
    let depth = Array.make k (-1) in
    parent.(idx anchor) <- -1;
    depth.(idx anchor) <- 0;
    let queue = Array.make k anchor in
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let v = queue.(!head) in
      incr head;
      List.iter
        (fun u ->
          if parent.(idx u) = -2 then begin
            parent.(idx u) <- v;
            depth.(idx u) <- depth.(idx v) + 1;
            queue.(!tail) <- u;
            incr tail
          end)
        adj.(idx v)
    done;
    (idx, parent, depth)

  let attach st ~anchor ~anchor_parent ~idx ~tree_parent target =
    let rec path_to v acc =
      if v = anchor then v :: acc else path_to tree_parent.(idx v) (v :: acc)
    in
    let path = path_to target [] in
    let rec walk prev = function
      | [] -> ()
      | v :: rest ->
        st.parent.(v) <- prev;
        st.depth.(v) <- st.depth.(prev) + 1;
        Atomic.decr st.unvisited;
        walk v rest
    in
    walk anchor_parent path

  let join_inner ?rounds st ~members ~separator =
    let remaining = Hashtbl.create (2 * List.length separator) in
    List.iter
      (fun v -> if not (in_tree st v) then Hashtbl.replace remaining v ())
      separator;
    let iterations = ref 0 in
    while Hashtbl.length remaining > 0 do
      incr iterations;
      (match rounds with
      | Some r ->
        (* One iteration: spanning forest, anchor/leaf aggregation,
           re-root, path marking — all Õ(D) (Section 6.1). *)
        Rounds.charge_spanning_forest r;
        Rounds.charge_aggregate r "join-anchor";
        Rounds.charge_reroot r;
        Rounds.charge_mark_path r
      | None -> ());
      let comps = unvisited_components st members in
      let touched = ref false in
      List.iter
        (fun comp ->
          let has_marked = Array.exists (Hashtbl.mem remaining) comp in
          if has_marked then begin
            match component_anchor st comp with
            | None -> invalid_arg "Join.join: component with no tree neighbour"
            | Some (anchor, anchor_parent) ->
              let idx, tree_parent, tree_depth =
                preferring_tree st comp ~anchor ~marked:(Hashtbl.mem remaining)
              in
              (* Deepest remaining marked node of this component's tree. *)
              let target =
                Array.fold_left
                  (fun acc v ->
                    if Hashtbl.mem remaining v then begin
                      match acc with
                      | Some best when tree_depth.(idx best) >= tree_depth.(idx v)
                        ->
                        acc
                      | _ -> Some v
                    end
                    else acc)
                  None comp
              in
              (match target with
              | None -> ()
              | Some h ->
                attach st ~anchor ~anchor_parent ~idx ~tree_parent h;
                touched := true;
                Array.iter
                  (fun v -> if in_tree st v then Hashtbl.remove remaining v)
                  comp)
          end)
        comps;
      if not !touched then
        invalid_arg "Join.join: no progress — separator nodes unreachable"
    done;
    !iterations

  let join ?rounds st ~members ~separator =
    Repro_trace.Trace.within
      (Option.bind rounds Rounds.tracer)
      "join" (fun () -> join_inner ?rounds st ~members ~separator)
end
