(* JOIN-PROBLEM (Lemma 2): grow a partial DFS tree by the nodes of a marked
   cycle separator, following the DFS-RULE.

   Per iteration, every component of the not-yet-visited region that still
   holds marked nodes receives one tree path: from its anchor (the node with
   the deepest neighbour in the partial tree, as the DFS-RULE requires) to
   the deepest remaining marked node of a spanning tree that prefers
   marked-marked edges.  Preferring those edges keeps every surviving piece
   of the separator a path of the spanning tree, so the chosen path absorbs
   at least half of the piece it enters — giving the O(log) iteration bound
   of the paper, which experiment E9 measures.

   Joins of distinct components may run concurrently (the DFS driver batches
   them over a domain pool): a join writes [parent]/[depth] only for its own
   members, and every neighbour it reads outside the component was already
   visited when the phase began — two unvisited nodes joined by an edge are
   by definition in the same component.  The running unvisited count is an
   [Atomic] so those concurrent attachments keep it exact. *)

open Repro_graph
open Repro_congest

type state = {
  g : Graph.t;
  parent : int array; (* -1 at the DFS root, -2 while unvisited *)
  depth : int array; (* -1 while unvisited *)
  unvisited : int Atomic.t; (* count of parent.(v) = -2 entries *)
}

let create g ~root =
  let n = Graph.n g in
  let parent = Array.make n (-2) in
  let depth = Array.make n (-1) in
  parent.(root) <- -1;
  depth.(root) <- 0;
  { g; parent; depth; unvisited = Atomic.make (n - 1) }

let in_tree st v = st.parent.(v) > -2

let unvisited st = Atomic.get st.unvisited

(* Anchor of a component: the unvisited node with the deepest visited
   neighbour (ties broken by identifiers for determinism).  Returns the
   anchor and that neighbour. *)
let component_anchor st members =
  Array.fold_left
    (fun acc v ->
      Array.fold_left
        (fun acc u ->
          if in_tree st u then begin
            match acc with
            | Some (_, best_u) when st.depth.(best_u) > st.depth.(u) -> acc
            | Some (best_v, best_u)
              when st.depth.(best_u) = st.depth.(u) && (best_u, best_v) <= (u, v) ->
              acc
            | _ -> Some (v, u)
          end
          else acc)
        acc (Graph.neighbors st.g v))
    None members

(* Spanning tree of the member set rooted at [anchor], preferring edges
   between still-marked nodes (Kruskal with 0/1 weights), then BFS over the
   chosen edges for parents and depths. *)
let preferring_tree st members ~anchor ~marked =
  let k = Array.length members in
  let member = Hashtbl.create (2 * k) in
  Array.iteri (fun i v -> Hashtbl.replace member v i) members;
  let idx v = Hashtbl.find member v in
  let uf = Repro_util.Union_find.create k in
  let adj = Array.make k [] in
  let add_edge u v =
    if Repro_util.Union_find.union uf (idx u) (idx v) then begin
      adj.(idx u) <- v :: adj.(idx u);
      adj.(idx v) <- u :: adj.(idx v)
    end
  in
  let consider pass =
    Array.iter
      (fun v ->
        Array.iter
          (fun u ->
            if Hashtbl.mem member u && v < u then begin
              let zero = marked v && marked u in
              if (pass = 0 && zero) || (pass = 1 && not zero) then add_edge v u
            end)
          (Graph.neighbors st.g v))
      members
  in
  consider 0;
  consider 1;
  let parent = Array.make k (-2) in
  let depth = Array.make k (-1) in
  parent.(idx anchor) <- -1;
  depth.(idx anchor) <- 0;
  let queue = Array.make k anchor in
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let v = queue.(!head) in
    incr head;
    List.iter
      (fun u ->
        if parent.(idx u) = -2 then begin
          parent.(idx u) <- v;
          depth.(idx u) <- depth.(idx v) + 1;
          queue.(!tail) <- u;
          incr tail
        end)
      adj.(idx v)
  done;
  (idx, parent, depth)

(* Attach the tree path anchor -> target to the partial DFS tree. *)
let attach st ~anchor ~anchor_parent ~idx ~tree_parent target =
  let rec path_to v acc =
    if v = anchor then v :: acc else path_to tree_parent.(idx v) (v :: acc)
  in
  let path = path_to target [] in
  let rec walk prev = function
    | [] -> ()
    | v :: rest ->
      st.parent.(v) <- prev;
      st.depth.(v) <- st.depth.(prev) + 1;
      Atomic.decr st.unvisited;
      walk v rest
  in
  walk anchor_parent path

(* Components of the unvisited part of [members]. *)
let unvisited_components st members =
  Algo.restricted_components st.g ~members ~skip:(in_tree st)

(* Add all separator nodes of one original component to the partial DFS
   tree.  Returns the number of halving iterations used. *)
let join_inner ?rounds st ~members ~separator =
  let remaining = Hashtbl.create (2 * List.length separator) in
  List.iter
    (fun v -> if not (in_tree st v) then Hashtbl.replace remaining v ())
    separator;
  let iterations = ref 0 in
  while Hashtbl.length remaining > 0 do
    incr iterations;
    (match rounds with
    | Some r ->
      (* One iteration: spanning forest, anchor/leaf aggregation, re-root,
         path marking — all Õ(D) (Section 6.1). *)
      Rounds.charge_spanning_forest r;
      Rounds.charge_aggregate r "join-anchor";
      Rounds.charge_reroot r;
      Rounds.charge_mark_path r
    | None -> ());
    let comps = unvisited_components st members in
    let touched = ref false in
    List.iter
      (fun comp ->
        let has_marked = Array.exists (Hashtbl.mem remaining) comp in
        if has_marked then begin
          match component_anchor st comp with
          | None -> invalid_arg "Join.join: component with no tree neighbour"
          | Some (anchor, anchor_parent) ->
            let idx, tree_parent, tree_depth =
              preferring_tree st comp ~anchor ~marked:(Hashtbl.mem remaining)
            in
            (* Deepest remaining marked node of this component's tree. *)
            let target =
              Array.fold_left
                (fun acc v ->
                  if Hashtbl.mem remaining v then begin
                    match acc with
                    | Some best when tree_depth.(idx best) >= tree_depth.(idx v) ->
                      acc
                    | _ -> Some v
                  end
                  else acc)
                None comp
            in
            (match target with
            | None -> ()
            | Some h ->
              attach st ~anchor ~anchor_parent ~idx ~tree_parent h;
              touched := true;
              Array.iter
                (fun v -> if in_tree st v then Hashtbl.remove remaining v)
                comp)
        end)
      comps;
    if not !touched then
      invalid_arg "Join.join: no progress — separator nodes unreachable"
  done;
  !iterations

let join ?rounds st ~members ~separator =
  Repro_trace.Trace.within
    (Option.bind rounds Rounds.tracer)
    "join" (fun () -> join_inner ?rounds st ~members ~separator)
