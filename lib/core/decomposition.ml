(* Recursive cycle-separator decomposition — the divide-and-conquer pattern
   of Lipton–Tarjan, driven by the deterministic separators of Theorem 1.

   The graph is recursively split until every piece has at most
   [piece_target] vertices.  Distinct pieces are never adjacent (every path
   between them crosses a removed separator node), so any per-piece solution
   of a "closed under non-adjacency" problem combines trivially; the classic
   application, an approximate maximum independent set, is provided.

   The recursion is executed level-synchronously: all parts of one recursion
   level are node-disjoint, so each level is a batch that an optional domain
   pool distributes over workers (exactly the partition parallelism of
   Theorem 1).  A splitting task only reads the graph and its own members
   and returns its separator plus child components; the shared [removed]
   array and the round ledger are updated on the calling domain, in part
   order, after the batch — results never depend on scheduling.  Each
   level's charged rounds are the maximum over its parts, per the paper's
   parallel-parts model. *)

open Repro_graph
open Repro_embedding


type t = {
  pieces : int list list;
  separator : bool array; (* removed separator nodes *)
  levels : int; (* recursion depth *)
  separator_count : int;
}

(* One split: separator of the part (via the selected backend), then the
   connected remainders.  Pure with respect to shared state — safe as a
   pool task.  [trim] goes through the backend's own trim hook, so the
   balanced-trim post-pass applies uniformly regardless of which backend
   produced the separator. *)
let split_part ?rounds ~trim ~backend emb members =
  let g = Embedded.graph emb in
  let cfg = Config.of_part ~members ~root:members.(0) emb in
  let local = Option.map Repro_congest.Rounds.like rounds in
  let r = backend.Backend.find ?rounds:local cfg in
  let sep =
    if trim then backend.Backend.trim ?rounds:local cfg r.Separator.separator
    else r.Separator.separator
  in
  let sep_global = List.map (Config.to_global cfg) sep in
  (* Guard against stalling when the separator comes back empty (tiny
     pieces): drop at least one vertex so the recursion always makes
     progress. *)
  let sep_global =
    match sep_global with [] -> [ members.(0) ] | s -> s
  in
  let in_sep = Hashtbl.create (2 * List.length sep_global) in
  List.iter (fun v -> Hashtbl.replace in_sep v ()) sep_global;
  let children =
    Algo.restricted_components g ~members ~skip:(Hashtbl.mem in_sep)
  in
  (sep_global, children, local)

let absorb_heaviest rounds locals =
  match rounds with
  | None -> ()
  | Some g -> Repro_congest.Rounds.absorb_heaviest g locals

(* Backend selection for one part: parts at or below the cutoff dispatch
   to the (typically centralized) small-part backend — the fast path that
   dominates deep recursion levels — everything else to the main one. *)
let pick_backend ~backend ~small_part_cutoff ~small_backend members =
  match small_part_cutoff with
  | Some c when Array.length members <= c -> small_backend
  | _ -> backend

(* [?small_backend] defaults to the first registered centralized backend
   (lt-level once [Repro_baseline.Backends.ensure] has run), falling back
   to the main backend when none is registered. *)
let resolve_backends ?backend ?small_backend () =
  let backend =
    match backend with Some b -> b | None -> Backend.default ()
  in
  let small_backend =
    match small_backend with
    | Some b -> b
    | None -> (
      match Backend.centralized_default () with
      | Some b -> b
      | None -> backend)
  in
  (backend, small_backend)

(* Level-synchronous driver shared by the size- and diameter-bounded
   variants.  [stop] decides whether a part is already a piece (it runs
   inside the batch, in parallel); [guard] bounds the level count. *)
let build_frontier ?rounds ?pool ~trim ~backend ~small_part_cutoff
    ~small_backend ~stop ~guard emb =
  let g = Embedded.graph emb in
  let n = Graph.n g in
  let removed = Array.make n false in
  let pieces = ref [] in
  let levels = ref 0 in
  let tracer = Option.bind rounds Repro_congest.Rounds.tracer in
  let pmap ~cost f arr =
    match pool with
    | Some p -> Repro_util.Pool.map ?trace:tracer ~label:"pool.splits" ~cost p f arr
    | None -> Array.map f arr
  in
  let frontier = ref [ Array.init n Fun.id ] in
  let level = ref 0 in
  while !frontier <> [] do
    levels := max !levels !level;
    guard !level;
    (* The level span wraps the batch and the absorb that follows it, so
       the heaviest part's spliced trace lands inside the level. *)
    Repro_trace.Trace.within tracer (Printf.sprintf "decomp.level%d" !level)
    @@ fun () ->
    let batch = Array.of_list !frontier in
    (* Parts at a level are node-disjoint: the batch cost is their total
       node count. *)
    let cost = Array.fold_left (fun a m -> a + Array.length m) 0 batch in
    let results =
      pmap ~cost
        (fun members ->
          if stop members then `Piece members
          else
            `Split
              (split_part ?rounds ~trim
                 ~backend:
                   (pick_backend ~backend ~small_part_cutoff ~small_backend
                      members)
                 emb members))
        batch
    in
    let locals =
      Array.map
        (function `Split (_, _, local) -> local | `Piece _ -> None)
        results
    in
    absorb_heaviest rounds locals;
    let next = ref [] in
    Array.iter
      (function
        | `Piece members -> pieces := members :: !pieces
        | `Split (sep_global, children, _) ->
          List.iter (fun v -> removed.(v) <- true) sep_global;
          List.iter (fun c -> next := c :: !next) children)
      results;
    frontier := List.rev !next;
    incr level
  done;
  let separator_count =
    Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 removed
  in
  {
    pieces = List.rev_map Array.to_list !pieces;
    separator = removed;
    levels = !levels;
    separator_count;
  }

let build ?rounds ?pool ?(piece_target = 20) ?(trim = true) ?backend
    ?small_part_cutoff ?small_backend emb =
  if piece_target < 1 then invalid_arg "Decomposition.build: piece_target >= 1";
  Screen.require ?rounds ~entry:"Decomposition.build" emb;
  let backend, small_backend = resolve_backends ?backend ?small_backend () in
  build_frontier ?rounds ?pool ~trim ~backend ~small_part_cutoff ~small_backend
    ~stop:(fun members -> Array.length members <= piece_target)
    ~guard:(fun _ -> ())
    emb

(* Structural validation: pieces and separator partition V, every piece is
   within the size target, and no edge joins two distinct pieces. *)
let check emb ~piece_target t =
  let g = Embedded.graph emb in
  let n = Graph.n g in
  let owner = Array.make n (-1) in
  let ok = ref true in
  List.iteri
    (fun i members ->
      if List.length members > piece_target then ok := false;
      List.iter
        (fun v ->
          if owner.(v) >= 0 || t.separator.(v) then ok := false;
          owner.(v) <- i)
        members)
    t.pieces;
  for v = 0 to n - 1 do
    if owner.(v) < 0 && not t.separator.(v) then ok := false
  done;
  Graph.iter_edges g (fun u v ->
      if owner.(u) >= 0 && owner.(v) >= 0 && owner.(u) <> owner.(v) then ok := false);
  !ok

(* Exact maximum independent set of a tiny graph: branch on a max-degree
   vertex.  Exponential in the worst case — callers bound the piece size. *)
let rec exact_mis g alive =
  let pick =
    let best = ref (-1) and best_deg = ref 0 in
    for v = 0 to Graph.n g - 1 do
      if alive.(v) then begin
        let deg =
          Graph.fold_neighbors g v
            (fun acc u -> if alive.(u) then acc + 1 else acc)
            0
        in
        if deg > !best_deg then begin
          best := v;
          best_deg := deg
        end
      end
    done;
    if !best < 0 then None else Some !best
  in
  match pick with
  | None ->
    let acc = ref [] in
    Array.iteri (fun v a -> if a then acc := v :: !acc) alive;
    !acc
  | Some v ->
    let without =
      let alive' = Array.copy alive in
      alive'.(v) <- false;
      exact_mis g alive'
    in
    let with_v =
      let alive' = Array.copy alive in
      alive'.(v) <- false;
      Graph.iter_neighbors g v (fun u -> alive'.(u) <- false);
      v :: exact_mis g alive'
    in
    if List.length with_v >= List.length without then with_v else without

(* Lipton–Tarjan application: exact MIS inside every piece; the union is
   independent in G because pieces are pairwise non-adjacent. *)
let independent_set emb t =
  let g = Embedded.graph emb in
  let n = Graph.n g in
  let solution = ref [] in
  List.iter
    (fun members ->
      let keep = Array.make n false in
      List.iter (fun v -> keep.(v) <- true) members;
      let sub, _, old_of_new = Graph.induced g keep in
      let mis = exact_mis sub (Array.make (Graph.n sub) true) in
      List.iter (fun v -> solution := old_of_new.(v) :: !solution) mis)
    t.pieces;
  !solution

(* ------------------------------------------------------------------ *)
(* Bounded-diameter decomposition — the application cited in Section    *)
(* 1.2 (the BDD of Li–Parter, where randomness was only needed for the  *)
(* separators): recursively split until every piece has hop diameter    *)
(* at most the target.                                                  *)
(* ------------------------------------------------------------------ *)

(* Hop diameter of the subgraph induced by the member set.  The double
   sweep is only a lower bound, so it is used as a cheap split trigger; a
   candidate stop is confirmed with the exact all-sources BFS. *)
let piece_diameter_bfs g inside src =
  let dist = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace dist src 0;
  Queue.add src queue;
  let far = ref (src, 0) in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = Hashtbl.find dist u in
    if du > snd !far then far := (u, du);
    Graph.iter_neighbors g u (fun v ->
        if Hashtbl.mem inside v && not (Hashtbl.mem dist v) then begin
          Hashtbl.replace dist v (du + 1);
          Queue.add v queue
        end)
  done;
  !far

let piece_diameter_exceeds g members target =
  if Array.length members = 0 then false
  else begin
    let first = members.(0) in
    let inside = Hashtbl.create (2 * Array.length members) in
    Array.iter (fun v -> Hashtbl.replace inside v ()) members;
    let far1, _ = piece_diameter_bfs g inside first in
    let _, sweep = piece_diameter_bfs g inside far1 in
    if sweep > target then true
    else
      (* Confirm exactly. *)
      Array.exists
        (fun src -> snd (piece_diameter_bfs g inside src) > target)
        members
  end

let bounded_diameter ?rounds ?pool ?(trim = true) ?backend ?small_part_cutoff
    ?small_backend ~diameter_target emb =
  if diameter_target < 1 then
    invalid_arg "Decomposition.bounded_diameter: target >= 1";
  Screen.require ?rounds ~entry:"Decomposition.bounded_diameter" emb;
  let g = Embedded.graph emb in
  let backend, small_backend = resolve_backends ?backend ?small_backend () in
  build_frontier ?rounds ?pool ~trim ~backend ~small_part_cutoff ~small_backend
    ~stop:(fun members -> not (piece_diameter_exceeds g members diameter_target))
    ~guard:(fun level ->
      if level > 4 * Graph.n g then
        invalid_arg "Decomposition.bounded_diameter: no progress")
    emb

let check_bounded_diameter emb ~diameter_target t =
  let g = Embedded.graph emb in
  let n = Graph.n g in
  let owner = Array.make n (-1) in
  let ok = ref true in
  List.iteri
    (fun i members ->
      (* Exact per-piece diameter for validation. *)
      let keep = Array.make n false in
      List.iter (fun v -> keep.(v) <- true) members;
      let sub, _, _ = Graph.induced g keep in
      if Algo.diameter_exact sub > diameter_target then ok := false;
      List.iter
        (fun v ->
          if owner.(v) >= 0 || t.separator.(v) then ok := false;
          owner.(v) <- i)
        members)
    t.pieces;
  for v = 0 to n - 1 do
    if owner.(v) < 0 && not t.separator.(v) then ok := false
  done;
  Graph.iter_edges g (fun u v ->
      if owner.(u) >= 0 && owner.(v) >= 0 && owner.(u) <> owner.(v) then ok := false);
  !ok

let is_independent g nodes =
  let chosen = Array.make (Graph.n g) false in
  List.iter (fun v -> chosen.(v) <- true) nodes;
  let ok = ref true in
  Graph.iter_edges g (fun u v -> if chosen.(u) && chosen.(v) then ok := false);
  !ok
