(** Pluggable separator backends.

    A backend is one way of producing a balanced separator for a planar
    configuration, packaged behind a first-class record so the vertical
    stack ({!Decomposition}, {!Dfs}, the CLIs and the bench harness) can
    dispatch by name instead of hard-wiring the six-phase algorithm.
    Capability metadata travels with the implementation: whether it runs
    in the charged CONGEST model or centrally on the host, whether its
    output carries a cycle-closing certificate, and the cost model its
    charges follow — so callers (and the testkit's [backend] oracle) know
    what each backend guarantees without inspecting its results.

    The registry is name-keyed and append-only.  The paper's six-phase
    algorithm registers here as ["congest"] at module load and is the
    default; centralized baselines register from [Repro_baseline.Backends]
    (the library dependency points that way), which exposes an [ensure]
    hook the executables call to force linkage. *)

open Repro_congest

type kind =
  | Distributed
      (** runs in the charged CONGEST model: cost is Õ(D) rounds in the
          [Rounds] ledger, every subroutine charged its published bound *)
  | Centralized
      (** runs on the host against the full graph: cost is wall-clock;
          the ledger is charged the collect-and-solve round cost of
          shipping the part to one node (O(part size) rounds) *)

type certificate =
  | Cycle_certified
      (** may report [endpoints] closing the separator path into a simple
          cycle (a real edge, or a virtual edge certified insertable) *)
  | Balance_only
      (** never reports [endpoints]: the separator is only guaranteed to
          be balanced (max remaining component ≤ 2n/3) *)

type t = {
  name : string;
  description : string;
  kind : kind;
  certificate : certificate;
  cost_model : string;
      (** human-readable cost statement, e.g. ["O~(D) charged rounds"] or
          ["O(n + m) centralized; ledger charged O(part) collect"] *)
  find : ?rounds:Rounds.t -> Config.t -> Separator.result;
  trim : ?rounds:Rounds.t -> Config.t -> int list -> int list;
      (** balanced-trim post-pass applied by [Decomposition.build ~trim];
          every built-in backend uses {!Separator.shrink}, which only
          relies on balance monotonicity and so works on any separator
          vertex list, path-shaped or not *)
}

exception Duplicate_backend of string

val register : t -> unit
(** Raises {!Duplicate_backend} if the name is taken. *)

val lookup : string -> t
(** Raises [Failure] listing the known names on an unknown backend. *)

val lookup_opt : string -> t option

val all : unit -> t list
(** Registration order; ["congest"] is registered at module load. *)

val names : unit -> string list

val default : unit -> t
(** The behavior-preserving default: ["congest"], the six-phase algorithm
    of Theorem 1 ([find = Separator.find], [trim = Separator.shrink]). *)

val centralized_default : unit -> t option
(** First registered [Centralized] backend (the small-part fast path used
    when a cutoff is given without an explicit backend), if any centralized
    backend has been registered. *)
