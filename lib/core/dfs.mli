(** Deterministic distributed DFS in planar graphs (Theorem 2). *)

open Repro_embedding
open Repro_tree
open Repro_congest

type result = {
  parent : int array; (** -1 at the root *)
  depth : int array;
  phases : int; (** recursion depth; O(log n) *)
  max_join_iterations : int;
  phase_log : (int * int * int) list;
      (** per phase: #components, largest component, max join iterations *)
  separator_phases : (string * int) list;
      (** histogram of the separator phases that fired *)
}

val run :
  ?rounds:Rounds.t ->
  ?spanning:Spanning.kind ->
  ?pool:Repro_util.Pool.t ->
  Embedded.t ->
  root:int ->
  result
(** The per-phase separator and join batches are distributed over [pool]
    when given; results and charged rounds are independent of the pool size
    (per-part round ledgers are merged in part-index order, charging each
    batch its heaviest part). *)

val verify : Embedded.t -> root:int -> result -> bool
(** DFS-tree check: spanning, rooted correctly, and every non-tree edge
    joins an ancestor–descendant pair. *)
