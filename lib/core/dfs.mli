(** Deterministic distributed DFS in planar graphs (Theorem 2). *)

open Repro_embedding
open Repro_tree
open Repro_congest

type result = {
  parent : int array; (** -1 at the root *)
  depth : int array;
  phases : int; (** recursion depth; O(log n) *)
  max_join_iterations : int;
  phase_log : (int * int * int) list;
      (** per phase: #components, largest component, max join iterations *)
  separator_phases : (string * int) list;
      (** histogram of the separator phases that fired *)
}

val run :
  ?rounds:Rounds.t ->
  ?spanning:Spanning.kind ->
  ?pool:Repro_util.Pool.t ->
  ?backend:Backend.t ->
  ?small_part_cutoff:int ->
  ?small_backend:Backend.t ->
  Embedded.t ->
  root:int ->
  result
(** The per-phase separator and join batches are distributed over [pool]
    when given; results and charged rounds are independent of the pool size
    (per-part round ledgers are merged in part-index order, charging each
    batch its heaviest part).

    Separators are computed by [backend] (default: the registry's
    ["congest"] backend — bit-identical to the pre-registry pipeline).
    When [small_part_cutoff] is given, components at or below that size
    dispatch to [small_backend] instead (default: the first registered
    centralized backend), charged their O(part) collect cost and visible
    as distinct [backend.<name>] trace spans. *)

val verify : Embedded.t -> root:int -> result -> bool
(** DFS-tree check: spanning, rooted correctly, and every non-tree edge
    joins an ancestor–descendant pair. *)
