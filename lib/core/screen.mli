(** Hostile-input screening: a pre-flight validation front-end.

    Everything downstream of [Config.of_part] assumes a promised-planar,
    well-formed instance; this module is the layer that turns that
    promise into a checked contract.  Every entry point ([Dfs.run],
    [Decomposition.build], [Separator.find_partition], the CLI commands)
    calls {!require} before trusting an embedding, so hostile input dies
    here with a typed verdict and a replayable witness instead of
    corrupting the six-phase pipeline or surfacing as a deep-phase
    [No_separator_found].

    Two tiers, each under its own [screen.*] trace span and charged
    O(D) / Õ(D) on the ledger:

    - {b structure} ([screen.structure], one aggregate): rotation-system
      consistency (permutation closure of every rotation against its CSR
      row), the Euler bound [m <= 3n - 6], and connectivity.
    - {b planarity} ([screen.planarity], one embedding broadcast plus one
      aggregate): face-count vs Euler's formula via
      [Rotation.iter_faces], and — when the genus check fails — a
      one-sided witness election in the spirit of Levi–Medina–Ron
      (arXiv 1805.10657): the minimal non-bridge edge whose two darts lie
      on the same face walk certifies non-planarity of the rotation
      system. *)

open Repro_embedding
open Repro_congest

(** Why an instance was rejected outright (no single-edge witness). *)
type reason =
  | Disconnected of { components : int; witness : int }
      (** [witness] is the smallest vertex outside the outer vertex's
          component. *)
  | Euler_bound of { n : int; m : int }  (** [m > 3n - 6] with [n >= 3]. *)
  | Rotation_inconsistent of { vertex : int }
      (** The rotation at [vertex] is not a permutation of its
          adjacency row. *)
  | Genus of { faces : int; expected : int }
      (** Euler's formula fails but no single-edge witness certifies it
          (e.g. every same-face repeated edge is a bridge). *)

(** A single violating edge certifying non-planarity: both darts of
    [edge] lie on the same face walk (of length [face_len]) yet the edge
    is not a bridge — impossible in a plane graph. *)
type witness = { edge : int * int; face_len : int }

type verdict =
  | Accepted
  | Rejected of reason
  | Flagged of witness
      (** One-sided detection: the instance is certainly not a planar
          embedding, and [witness] is the proof. *)

exception
  Rejected_input of { entry : string; verdict : verdict; spec : string }
(** Raised by {!require}.  [entry] names the screened entry point,
    [spec] is a one-line replay handle (the embedding's name — for
    testkit instances this is a [family:n:seed] spec). *)

val check : ?rounds:Rounds.t -> Embedded.t -> verdict
(** Run both screening tiers.  Deterministic: the same embedding always
    yields the same verdict (witnesses are elected by minimal dart id). *)

val require : ?rounds:Rounds.t -> ?spec:string -> entry:string -> Embedded.t -> unit
(** [check] and raise {!Rejected_input} on anything but [Accepted].
    [spec] defaults to the embedding's name. *)

val accepted : verdict -> bool

val witness_certifies : Embedded.t -> witness -> bool
(** Recheck a witness from scratch: both darts of the edge on one face
    walk, and the edge is not a bridge.  Used by the [screen] oracle and
    the shrinker tests to validate flags independently of {!check}. *)

val local_tallies : Embedded.t -> int array array * int array array
(** Per-vertex inputs for the CONGEST screening collective
    ([Composed.screen_tally]): [(sums, mins)] where [sums.(0)] is the
    degree (sums to [2m]), [sums.(1)] the number of face walks whose
    minimal dart starts at the vertex (sums to the face count), and
    [mins.(0)] the smallest violating-edge code held at the edge's lower
    endpoint ([2m] — one past the last dart id — when the vertex sees no
    violation). *)

val no_violation : Embedded.t -> int
(** The sentinel code ([2m]) meaning "no violating edge" in
    [local_tallies] mins — kept [O(log n)] bits so the Min fits the
    CONGEST bandwidth. *)

val verdict_to_string : verdict -> string
(** One line, stable across runs; witnesses print their edge so a
    failure is replayable from the message alone. *)
