(** Recursive cycle-separator decomposition and the Lipton–Tarjan
    divide-and-conquer application (approximate maximum independent set). *)

open Repro_graph
open Repro_embedding
open Repro_congest

type t = {
  pieces : int list list; (** ≤ piece_target vertices each *)
  separator : bool array; (** removed separator nodes *)
  levels : int; (** recursion depth *)
  separator_count : int;
}

val build :
  ?rounds:Rounds.t ->
  ?pool:Repro_util.Pool.t ->
  ?piece_target:int ->
  ?trim:bool ->
  ?backend:Backend.t ->
  ?small_part_cutoff:int ->
  ?small_backend:Backend.t ->
  Embedded.t ->
  t
(** Recursively split until every piece has at most [piece_target]
    (default 20) vertices.  Splitting goes through [backend] (default:
    the registry's ["congest"] six-phase algorithm — bit-identical to the
    pre-registry pipeline); [trim] (default true) applies the backend's
    balanced-trim post-pass to every separator.  When
    [small_part_cutoff] is given, parts at or below that size dispatch to
    [small_backend] instead (default: the first registered centralized
    backend, i.e. lt-level once [Repro_baseline.Backends.ensure] has run)
    — the centralized fast path for the small parts that dominate deep
    recursion levels, charged its O(part) collect cost in the ledger and
    visible as a distinct [backend.<name>] trace span.  The recursion
    runs level-synchronously: each level's node-disjoint parts form one
    batch distributed over [pool] when given; the output and the charged
    rounds (max over each level's parts) are independent of the pool
    size. *)

val check : Embedded.t -> piece_target:int -> t -> bool
(** Pieces + separator partition V, pieces respect the target, and no edge
    joins two distinct pieces. *)

val exact_mis : Graph.t -> bool array -> int list
(** Exact maximum independent set of the alive subgraph (exponential;
    intended for tiny pieces). *)

val independent_set : Embedded.t -> t -> int list
(** Exact MIS per piece; the union is independent in the whole graph. *)

val is_independent : Graph.t -> int list -> bool

val bounded_diameter :
  ?rounds:Repro_congest.Rounds.t ->
  ?pool:Repro_util.Pool.t ->
  ?trim:bool ->
  ?backend:Backend.t ->
  ?small_part_cutoff:int ->
  ?small_backend:Backend.t ->
  diameter_target:int ->
  Embedded.t ->
  t
(** Bounded-diameter decomposition (the BDD application of Section 1.2):
    recursively split with Theorem-1 separators until every piece's hop
    diameter is at most the target. *)

val check_bounded_diameter : Embedded.t -> diameter_target:int -> t -> bool
