(* Hostile-input screening (see screen.mli for the contract).

   The checks run cheapest-first so a corrupted instance pays as little
   as possible before dying: rotation closure and the Euler bound are
   pure local scans folded into one aggregate, connectivity is the BFS
   the pipeline would run anyway, and only a structurally sound instance
   reaches the face-walk tier.  The witness election is one-sided in the
   Levi–Medina–Ron sense: a flag is always a proof (in a plane graph an
   edge lies on one face iff it is a bridge, so a non-bridge edge with
   both darts on the same walk cannot be planar), while a genus failure
   with no such edge is still a rejection, just without the single-edge
   certificate. *)

open Repro_graph
open Repro_embedding
open Repro_congest

type reason =
  | Disconnected of { components : int; witness : int }
  | Euler_bound of { n : int; m : int }
  | Rotation_inconsistent of { vertex : int }
  | Genus of { faces : int; expected : int }

type witness = { edge : int * int; face_len : int }

type verdict = Accepted | Rejected of reason | Flagged of witness

exception
  Rejected_input of { entry : string; verdict : verdict; spec : string }

let charge_opt rounds f = match rounds with Some r -> f r | None -> ()
let tracer rounds = Option.bind rounds Rounds.tracer
let span rounds name f = Repro_trace.Trace.within (tracer rounds) name f

(* ---- tier 1: structure ------------------------------------------------ *)

(* The rotation store validates at [of_orders] time, but hostile
   instances are built through [induced]-style raw paths on purpose, so
   re-establish permutation closure here: every rotation row must be a
   permutation of its CSR adjacency row and the position index must
   round-trip. *)
let rotation_violation g rot =
  let n = Graph.n g in
  let bad = ref (-1) in
  (try
     for v = 0 to n - 1 do
       let deg = Graph.degree g v in
       if Rotation.degree rot v <> deg then begin
         bad := v;
         raise Exit
       end;
       let sorted = Array.init deg (Rotation.nth rot v) in
       Array.sort compare sorted;
       if sorted <> Graph.neighbors g v then begin
         bad := v;
         raise Exit
       end;
       for i = 0 to deg - 1 do
         let u = Rotation.nth rot v i in
         if Rotation.position rot v u <> i then begin
           bad := v;
           raise Exit
         end
       done
     done
   with Exit -> ());
  if !bad < 0 then None else Some !bad

let structural_reason g rot ~outer =
  match rotation_violation g rot with
  | Some vertex -> Some (Rotation_inconsistent { vertex })
  | None ->
    let n = Graph.n g and m = Graph.m g in
    if n >= 3 && m > (3 * n) - 6 then Some (Euler_bound { n; m })
    else begin
      let comp, count = Algo.components g in
      if count <= 1 then None
      else begin
        let home = comp.(outer) in
        let witness = ref (-1) in
        (try
           for v = 0 to n - 1 do
             if comp.(v) <> home then begin
               witness := v;
               raise Exit
             end
           done
         with Exit -> ());
        Some (Disconnected { components = count; witness = !witness })
      end
    end

(* ---- tier 2: planarity ------------------------------------------------ *)

let dart g u v = Graph.adj_offset g u + Graph.neighbor_rank g u v

(* One pass over the face walks: the face count, plus every edge whose
   two darts land on the same walk, tagged with the walk length and
   keyed (deterministically) by the edge's smaller dart id.  [stamp] is
   a flat walk-id mark per canonical dart, so the scan stays
   allocation-light at bench sizes. *)
let face_scan g rot =
  let faces = ref 0 in
  let cands = ref [] in
  let stamp = Array.make (max 1 (2 * Graph.m g)) (-1) in
  Rotation.iter_faces g rot (fun walk ->
      let id = !faces in
      incr faces;
      let len = List.length walk in
      List.iter
        (fun (a, b) ->
          let key = min (dart g a b) (dart g b a) in
          if stamp.(key) = id then
            cands := ((min a b, max a b), key, len) :: !cands
          else stamp.(key) <- id)
        walk);
  ( !faces,
    List.sort (fun (_, k1, _) (_, k2, _) -> compare k1 k2) !cands )

(* Bridge edges by iterative Tarjan lowlink (explicit stack: hostile
   instances reach bench sizes where recursion would blow the stack).
   Returns a per-dart flag array indexed by [dart g u v]. *)
let bridge_darts g =
  let n = Graph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n max_int in
  let parent = Array.make n (-1) in
  let next = Array.make n 0 in
  let is_bridge = Array.make (max 1 (2 * Graph.m g)) false in
  let time = ref 0 in
  for s = 0 to n - 1 do
    if disc.(s) < 0 then begin
      let stack = ref [ s ] in
      disc.(s) <- !time;
      low.(s) <- !time;
      incr time;
      while !stack <> [] do
        let v = List.hd !stack in
        if next.(v) < Graph.degree g v then begin
          let u = Graph.nth_neighbor g v next.(v) in
          next.(v) <- next.(v) + 1;
          if disc.(u) < 0 then begin
            parent.(u) <- v;
            disc.(u) <- !time;
            low.(u) <- !time;
            incr time;
            stack := u :: !stack
          end
          else if u <> parent.(v) then low.(v) <- min low.(v) disc.(u)
        end
        else begin
          stack := List.tl !stack;
          match !stack with
          | p :: _ when parent.(v) = p ->
            low.(p) <- min low.(p) low.(v);
            if low.(v) > disc.(p) then begin
              is_bridge.(dart g p v) <- true;
              is_bridge.(dart g v p) <- true
            end
          | _ -> ()
        end
      done
    end
  done;
  is_bridge

(* ---- verdict ----------------------------------------------------------- *)

let check ?rounds emb =
  span rounds "screen" @@ fun () ->
  let g = Embedded.graph emb in
  let rot = Embedded.rot emb in
  let structural =
    span rounds "screen.structure" @@ fun () ->
    (* Degree sum, rotation-closure flag and BFS reach ride the slots
       of one aggregation over the communication tree: O(D). *)
    charge_opt rounds (fun r -> Rounds.charge_aggregate r "screen-structure");
    structural_reason g rot ~outer:(Embedded.outer emb)
  in
  match structural with
  | Some reason -> Rejected reason
  | None ->
    span rounds "screen.planarity" @@ fun () ->
    (* Face tallies need the rotation known along the walks — priced as
       one embedding broadcast — and the count / witness election is
       one more aggregation: Õ(D) total. *)
    charge_opt rounds (fun r ->
        Rounds.charge_embedding r;
        Rounds.charge_aggregate r "screen-planarity");
    let n = Graph.n g and m = Graph.m g in
    if m = 0 then Accepted (* connected with no edges: a single vertex *)
    else begin
      let faces, cands = face_scan g rot in
      let expected = 2 - n + m in
      if faces = expected then Accepted
      else begin
        let is_bridge = bridge_darts g in
        let flag =
          List.find_opt (fun (_, key, _) -> not is_bridge.(key)) cands
        in
        match flag with
        | Some (edge, _, face_len) -> Flagged { edge; face_len }
        | None -> Rejected (Genus { faces; expected })
      end
    end

let accepted = function Accepted -> true | _ -> false

let verdict_to_string = function
  | Accepted -> "accepted"
  | Rejected (Disconnected { components; witness }) ->
    Printf.sprintf "rejected: disconnected (%d components; vertex %d unreachable)"
      components witness
  | Rejected (Euler_bound { n; m }) ->
    Printf.sprintf "rejected: too many edges for a planar graph (n=%d, m=%d > 3n-6=%d)"
      n m ((3 * n) - 6)
  | Rejected (Rotation_inconsistent { vertex }) ->
    Printf.sprintf
      "rejected: rotation at vertex %d is not a permutation of its adjacency"
      vertex
  | Rejected (Genus { faces; expected }) ->
    Printf.sprintf "rejected: Euler's formula fails (%d faces, planar needs %d)"
      faces expected
  | Flagged { edge = u, v; face_len } ->
    Printf.sprintf
      "flagged: edge %d-%d is not a bridge yet both darts share one face walk (length %d)"
      u v face_len

let require ?rounds ?spec ~entry emb =
  match check ?rounds emb with
  | Accepted -> ()
  | verdict ->
    let spec = match spec with Some s -> s | None -> Embedded.name emb in
    raise (Rejected_input { entry; verdict; spec })

(* ---- independent witness validation ------------------------------------ *)

let witness_certifies emb { edge = u, v; face_len = _ } =
  let g = Embedded.graph emb in
  let rot = Embedded.rot emb in
  let n = Graph.n g in
  if u < 0 || v < 0 || u >= n || v >= n || not (Graph.mem_edge g u v) then
    false
  else begin
    let same_walk = ref false in
    let key = min (dart g u v) (dart g v u) in
    let other = max (dart g u v) (dart g v u) in
    Rotation.iter_faces g rot (fun walk ->
        let hit_min = ref false and hit_max = ref false in
        List.iter
          (fun (a, b) ->
            let d = dart g a b in
            if d = key then hit_min := true;
            if d = other then hit_max := true)
          walk;
        if !hit_min && !hit_max then same_walk := true);
    !same_walk && not (bridge_darts g).(dart g u v)
  end

(* ---- local tallies for the CONGEST collective -------------------------- *)

let no_violation emb = 2 * Graph.m (Embedded.graph emb)

let local_tallies emb =
  let g = Embedded.graph emb in
  let rot = Embedded.rot emb in
  let n = Graph.n g in
  let deg = Array.init n (Graph.degree g) in
  let leader = Array.make n 0 in
  let sentinel = no_violation emb in
  let viol = Array.make n sentinel in
  (* Attribute each face walk to the tail of its minimal dart, so the
     leadership column sums to the face count. *)
  Rotation.iter_faces g rot (fun walk ->
      let best = ref max_int and tail = ref (-1) in
      List.iter
        (fun (a, b) ->
          let d = dart g a b in
          if d < !best then begin
            best := d;
            tail := a
          end)
        walk;
      if !tail >= 0 then leader.(!tail) <- leader.(!tail) + 1);
  if Graph.m g > 0 then begin
    let _, cands = face_scan g rot in
    let is_bridge = bridge_darts g in
    List.iter
      (fun ((u, v), key, _) ->
        if not is_bridge.(key) then begin
          let holder = min u v in
          viol.(holder) <- min viol.(holder) key
        end)
      cands
  end;
  ([| deg; leader |], [| viol |])
