(** Separator validation: tree-path shape and 2n/3 balance. *)

open Repro_tree

type verdict = {
  valid : bool;
  is_tree_path : bool;
  max_component : int;
  limit : int;
  size : int;
}

val balance_limit : int -> int
(** ceil(2n/3). *)

val max_component_without : Repro_graph.Graph.t -> bool array -> int
(** Largest component after removing the marked vertices. *)

val is_tree_path : Rooted.t -> int list -> bool
(** Does the set equal the vertex set of a path of the tree? *)

val connected_partition : Repro_graph.Graph.t -> int list list -> bool
(** Do the parts partition the whole vertex set into non-empty connected
    parts (no overlap, no vertex missing)?  The precondition of
    [Separator.find_partition] and of Lemma 9's per-part forests. *)

val check_separator : Config.t -> int list -> verdict

val balanced : Config.t -> int list -> bool
(** Balance-only probe (the candidate-verification step). *)

val balanced_with : scratch:bool array -> Config.t -> int list -> bool
(** [balanced], but marking a caller-owned scratch array (all-false on
    entry, restored on exit) instead of allocating one per probe — the
    shared-handle path of the incremental candidate verification. *)

val pp_verdict : Format.formatter -> verdict -> unit

val cycle_closable : Config.t -> endpoints:int * int -> bool
(** Certificate for the full cycle-separator definition: the closing edge is
    a graph edge, or inserting it keeps the graph planar (checked with the
    DMP tester; test/reporting use). *)
