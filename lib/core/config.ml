(* Planar configurations (G, E, T) — the object every algorithm in the paper
   manipulates: a planar graph, a combinatorial embedding and a rooted
   spanning tree whose children are ordered by the embedding.

   A configuration is built either for a whole embedded graph or for one part
   of a partition (the induced subgraph inherits the embedding: deleting
   vertices/edges preserves the relative rotation order, hence planarity). *)

open Repro_graph
open Repro_embedding
open Repro_tree

type t = {
  graph : Graph.t;
  rot : Rotation.t;
  tree : Rooted.t;
  root_first : int option; (* where the virtual root edge is inserted *)
  to_global : int array option; (* local -> original ids, None if identical *)
}

let graph t = t.graph
let rot t = t.rot
let tree t = t.tree
let n t = Graph.n t.graph
let root_first t = t.root_first
let to_global t v = match t.to_global with None -> v | Some m -> m.(v)

(* Direction of the virtual root edge for an embedded graph with
   coordinates: point it at a spot strictly outside the drawing, so the root
   corner it occupies lies on the outer face.  Returns the neighbour that
   comes first when sweeping clockwise from that direction. *)
let outer_root_first emb root =
  match Embedded.coords emb with
  | None -> None
  | Some coords ->
    let g = Embedded.graph emb in
    if Graph.degree g root = 0 then None
    else begin
      (* The root sits on the convex hull (generator convention), so the
         direction away from the drawing's centroid points into the outer
         face. *)
      let cx = ref 0.0 and cy = ref 0.0 in
      Array.iter
        (fun (x, y) ->
          cx := !cx +. x;
          cy := !cy +. y)
        coords;
      let k = float_of_int (Array.length coords) in
      let cx = !cx /. k and cy = !cy /. k in
      let (rx, ry) = coords.(root) in
      let out_angle = atan2 (ry -. cy) (rx -. cx) in
      let best = ref (-1) and best_delta = ref infinity in
      Array.iter
        (fun u ->
          let (ux, uy) = coords.(u) in
          let a = atan2 (uy -. ry) (ux -. rx) in
          (* Clockwise sweep = decreasing angle; wrap into (0, 2pi]. *)
          let delta =
            let d = out_angle -. a in
            let d = Float.rem d (2.0 *. Float.pi) in
            if d <= 0.0 then d +. (2.0 *. Float.pi) else d
          in
          if delta < !best_delta then begin
            best_delta := delta;
            best := u
          end)
        (Graph.neighbors g root);
      Some !best
    end

let of_embedded ?(spanning = Spanning.Bfs) ?root ?root_first emb =
  let g = Embedded.graph emb in
  let root = match root with Some r -> r | None -> Embedded.outer emb in
  let root_first =
    match root_first with
    | Some f -> Some f
    | None -> outer_root_first emb root
  in
  let parent = Spanning.make spanning g ~root in
  let tree = Rooted.build ?root_first ~rot:(Embedded.rot emb) ~root parent in
  { graph = g; rot = Embedded.rot emb; tree; root_first; to_global = None }

(* Hot path of every part-parallel batch: [members] is a plain int array
   (components come out of [Algo.restricted_components] that way).  The
   induced build runs through a per-domain scratch, so a batch of parts
   allocates nothing proportional to the GLOBAL n — each worker domain
   reads the shared flat graph/rotation store and compacts its own part
   into fresh flat arrays sized by the part. *)
let scratch_key = Domain.DLS.new_key Graph.Scratch.create

let of_part ?(spanning = Spanning.Bfs) ~members ~root emb =
  let g = Embedded.graph emb in
  let scratch = Domain.DLS.get scratch_key in
  let g_sub, new_of_old, old_of_new = Graph.induced_members ~scratch g members in
  if root < 0 || root >= Graph.n g || new_of_old.(root) < 0 then
    invalid_arg "Config.of_part: root not in part";
  let rot_sub =
    Rotation.induced (Embedded.rot emb) ~sub:g_sub ~new_of_old ~old_of_new
  in
  let local_root = new_of_old.(root) in
  let parent = Spanning.make spanning g_sub ~root:local_root in
  let tree = Rooted.build ~rot:rot_sub ~root:local_root parent in
  {
    graph = g_sub;
    rot = rot_sub;
    tree;
    root_first = None;
    to_global = Some old_of_new;
  }

(* Build a configuration from pre-existing pieces (used by tests and by the
   DFS driver, which re-roots trees). *)
let of_parts ~graph ~rot ~tree ?root_first ?to_global () =
  { graph; rot; tree; root_first; to_global }

(* Real fundamental edges of T: the non-tree edges of G, normalized so that
   pi_left(u) < pi_left(v). *)
let fundamental_edges t =
  let acc = ref [] in
  Graph.iter_edges t.graph (fun a b ->
      if Rooted.parent t.tree a <> b && Rooted.parent t.tree b <> a then begin
        let u, v =
          if Rooted.pi_left t.tree a < Rooted.pi_left t.tree b then (a, b)
          else (b, a)
        in
        acc := (u, v) :: !acc
      end);
  !acc

let is_tree t = fundamental_edges t = []
