(* Separator validation.

   A cycle separator of G is a set S that (i) is the vertex set of a path of
   the spanning tree (so that, together with the closing fundamental edge,
   it is a cycle or a path in the paper's sense) and (ii) leaves every
   connected component of G - S with at most ceil(2n/3) vertices. *)

open Repro_graph
open Repro_tree

type verdict = {
  valid : bool;
  is_tree_path : bool;
  max_component : int;
  limit : int;
  size : int;
}

let balance_limit n = (2 * n + 2) / 3 (* ceil(2n/3) *)

(* Maximum component size of G - S, via union-find over surviving edges. *)
let max_component_without g removed =
  let n = Graph.n g in
  let uf = Repro_util.Union_find.create n in
  Graph.iter_edges g (fun a b ->
      if (not removed.(a)) && not removed.(b) then ignore (Repro_util.Union_find.union uf a b));
  let best = ref 0 in
  for v = 0 to n - 1 do
    if not removed.(v) then
      best := max !best (Repro_util.Union_find.component_size uf v)
  done;
  !best

(* Does [members] equal the vertex set of some tree path?  True iff every
   member has at most two member-neighbours in T, at most two members have
   fewer than two, and the member set is T-connected. *)
let is_tree_path tree members =
  match members with
  | [] -> false
  | [ _ ] -> true
  | first :: _ ->
    let mem = Hashtbl.create (List.length members) in
    List.iter (fun v -> Hashtbl.replace mem v ()) members;
    let tree_nbrs v =
      let p = Rooted.parent tree v in
      let cs =
        Rooted.children tree v
        |> Array.to_seq |> Seq.filter (Hashtbl.mem mem) |> List.of_seq
      in
      if p >= 0 && Hashtbl.mem mem p then p :: cs else cs
    in
    let degs = List.map (fun v -> List.length (tree_nbrs v)) members in
    let ok_degree =
      List.for_all (fun d -> d <= 2) degs
      && List.length (List.filter (fun d -> d <= 1) degs) <= 2
    in
    ok_degree
    &&
    (* Connectivity within the member set. *)
    let seen = Hashtbl.create (List.length members) in
    let rec visit v =
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v ();
        List.iter visit (tree_nbrs v)
      end
    in
    visit first;
    Hashtbl.length seen = List.length members

let check_separator cfg separator =
  let g = Config.graph cfg in
  let n = Graph.n g in
  let removed = Array.make n false in
  List.iter (fun v -> removed.(v) <- true) separator;
  let max_component = max_component_without g removed in
  let limit = balance_limit n in
  let path_ok = is_tree_path (Config.tree cfg) separator in
  {
    valid = path_ok && max_component <= limit && separator <> [];
    is_tree_path = path_ok;
    max_component;
    limit;
    size = List.length separator;
  }

(* Fast balance-only probe used by the candidate search: the Õ(D)
   verification step described in DESIGN.md (deviation 2). *)
let balanced cfg separator =
  let g = Config.graph cfg in
  let n = Graph.n g in
  let removed = Array.make n false in
  List.iter (fun v -> removed.(v) <- true) separator;
  max_component_without g removed <= balance_limit n

(* Same probe against a caller-owned scratch array (all-false on entry,
   restored to all-false on exit): the candidate search probes many paths
   per phase, and the shared scratch keeps that allocation-free. *)
let balanced_with ~scratch cfg separator =
  let g = Config.graph cfg in
  let n = Graph.n g in
  List.iter (fun v -> scratch.(v) <- true) separator;
  let ok = max_component_without g scratch <= balance_limit n in
  List.iter (fun v -> scratch.(v) <- false) separator;
  ok

(* A partition into connected parts is the precondition of Theorem 1's
   [find_partition] and Lemma 9's per-part spanning forests; the testkit
   validates its fuzzed partitions with this before handing them over. *)
let connected_partition g parts =
  let n = Graph.n g in
  let seen = Array.make n false in
  let covered = ref 0 in
  let connected part =
    match part with
    | [] -> false
    | seed :: _ ->
      let in_part = Array.make n false in
      List.iter (fun v -> in_part.(v) <- true) part;
      let q = Queue.create () in
      let reached = ref 0 in
      let visit v =
        if in_part.(v) then begin
          in_part.(v) <- false;
          incr reached;
          Queue.add v q
        end
      in
      visit seed;
      while not (Queue.is_empty q) do
        Graph.iter_neighbors g (Queue.pop q) visit
      done;
      !reached = List.length part
  in
  List.for_all
    (fun part ->
      List.for_all
        (fun v ->
          let fresh = v >= 0 && v < n && not seen.(v) in
          if fresh then begin
            seen.(v) <- true;
            incr covered
          end;
          fresh)
        part
      && connected part)
    parts
  && !covered = n

let pp_verdict fmt v =
  Fmt.pf fmt "valid=%b path=%b max_comp=%d/%d size=%d" v.valid v.is_tree_path
    v.max_component v.limit v.size

(* Full cycle-separator certificate: the closing fundamental edge must be
   insertable without breaking planarity.  Uses the DMP planarity tester on
   G plus the virtual edge — a centralized certificate for tests and
   reporting (the distributed certificate is Lemma 6's hidden test). *)
let cycle_closable cfg ~endpoints:(a, b) =
  let g = Config.graph cfg in
  Graph.mem_edge g a b
  ||
  let g' = Graph.of_edges ~n:(Graph.n g) ((a, b) :: Graph.edges g) in
  Repro_embedding.Planarity.is_planar g'
