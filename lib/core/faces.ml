(* Fundamental faces of a planar configuration (paper, Sections 2 and 4).

   For a real fundamental edge e = uv (normalized pi_left(u) < pi_left(v))
   the fundamental face F_e is the face of T + e that does not contain the
   virtual root.  Two implementations coexist:

   - [interior_reference]: exact, by traversing the two faces of T + e in the
     induced rotation system and discarding the one holding the root corner.
     O(n) per edge; the ground truth.

   - [is_inside] / [inside_children]: the paper's local characterization
     (Claims 1, 3, 4, 5 and Remark 1) in O(log n) per query — this is what
     the distributed algorithm can evaluate, and what the weight formula of
     Definition 2 consumes.  Its agreement with the reference is enforced by
     the test suite. *)

open Repro_graph
open Repro_embedding
open Repro_tree

type edge_case = Unrelated | Anc_left | Anc_right

let case_name = function
  | Unrelated -> "unrelated"
  | Anc_left -> "anc-left"
  | Anc_right -> "anc-right"

(* Normalized rotation position: the parent edge (or the virtual root edge
   position) is at 0 and positions grow clockwise. *)
let anchor cfg x =
  let tree = Config.tree cfg in
  if x = Rooted.root tree then begin
    match Config.root_first cfg with
    | Some f -> Rotation.position (Config.rot cfg) x f
    | None -> 0
  end
  else Rotation.position (Config.rot cfg) x (Rooted.parent tree x)

let npos cfg x y =
  let rot = Config.rot cfg in
  let d = Rotation.degree rot x in
  ((Rotation.position rot x y - anchor cfg x) + d) mod d

(* Child of [x] on the tree path towards its descendant [z]. *)
let child_toward cfg x z =
  let tree = Config.tree cfg in
  Rooted.kth_ancestor tree z (Rooted.depth tree z - Rooted.depth tree x - 1)

let normalize cfg (a, b) =
  let tree = Config.tree cfg in
  if Rooted.pi_left tree a < Rooted.pi_left tree b then (a, b) else (b, a)

let classify cfg ~u ~v =
  let tree = Config.tree cfg in
  if Rooted.is_ancestor tree ~anc:u ~desc:v then begin
    let z = child_toward cfg u v in
    if npos cfg u v < npos cfg u z then Anc_left else Anc_right
  end
  else Unrelated

let on_border cfg ~u ~v x =
  let tree = Config.tree cfg in
  let w = Rooted.lca tree u v in
  (Rooted.is_ancestor tree ~anc:x ~desc:u || Rooted.is_ancestor tree ~anc:x ~desc:v)
  && Rooted.is_ancestor tree ~anc:w ~desc:x

let border cfg ~u ~v = Rooted.path (Config.tree cfg) u v

(* ------------------------------------------------------------------ *)
(* Local classification of the tree children of a border node          *)
(* (Claims 1 and 4).                                                   *)
(* ------------------------------------------------------------------ *)

(* Is the tree child [c] of border node [x] inside F_e?  [c] itself must not
   be on the border. *)
let child_inside cfg ~u ~v ~case x c =
  let tree = Config.tree cfg in
  match case with
  | Unrelated ->
    let w = Rooted.lca tree u v in
    if x = u then npos cfg u c < npos cfg u v (* Claim 1 (ii) *)
    else if x = v then npos cfg v c > npos cfg v u (* Claim 1 (iii) *)
    else if x = w then begin
      (* Claim 1 (i): strictly between the branch to v and the branch to u. *)
      let u1 = child_toward cfg w u and v1 = child_toward cfg w v in
      npos cfg w v1 < npos cfg w c && npos cfg w c < npos cfg w u1
    end
    else if Rooted.is_ancestor tree ~anc:x ~desc:u then begin
      (* Claim 1 (iv): interior node of the w->u branch. *)
      let next = child_toward cfg x u in
      npos cfg x c < npos cfg x next
    end
    else begin
      (* Claim 1 (v): interior node of the w->v branch. *)
      let next = child_toward cfg x v in
      npos cfg x c > npos cfg x next
    end
  | Anc_right ->
    (* u is an ancestor of v and the edge leaves u clockwise-after the path
       child w1 (Claim 4 with t_u(v) > t_u(w1)). *)
    if x = u then begin
      let w1 = child_toward cfg u v in
      npos cfg u w1 < npos cfg u c && npos cfg u c < npos cfg u v
    end
    else if x = v then npos cfg v c > npos cfg v u
    else begin
      let next = child_toward cfg x v in
      npos cfg x c > npos cfg x next
    end
  | Anc_left ->
    (* Mirror image of Anc_right. *)
    if x = u then begin
      let w1 = child_toward cfg u v in
      npos cfg u v < npos cfg u c && npos cfg u c < npos cfg u w1
    end
    else if x = v then npos cfg v c < npos cfg v u
    else begin
      let next = child_toward cfg x v in
      npos cfg x c < npos cfg x next
    end

(* Tree children of border node [x] lying inside F_e, in rotation order. *)
let inside_children cfg ~u ~v ~case x =
  let tree = Config.tree cfg in
  List.rev
    (Rooted.fold_children tree x
       (fun acc c ->
         if (not (on_border cfg ~u ~v c)) && child_inside cfg ~u ~v ~case x c
         then c :: acc
         else acc)
       [])

(* ------------------------------------------------------------------ *)
(* Interior membership in O(log n) (Remark 1 + Claims 3 and 5).        *)
(* ------------------------------------------------------------------ *)

let is_inside cfg ~u ~v z =
  let tree = Config.tree cfg in
  let case = classify cfg ~u ~v in
  if on_border cfg ~u ~v z then false
  else begin
    match case with
    | Unrelated ->
      let w = Rooted.lca tree u v in
      if Rooted.is_ancestor tree ~anc:u ~desc:z then
        child_inside cfg ~u ~v ~case u (child_toward cfg u z)
      else if Rooted.is_ancestor tree ~anc:v ~desc:z then
        child_inside cfg ~u ~v ~case v (child_toward cfg v z)
      else if not (Rooted.is_ancestor tree ~anc:w ~desc:z) then false
      else begin
        (* Claim 3 interval, with border nodes already excluded. *)
        let pl = Rooted.pi_left tree in
        pl z > pl u + Rooted.size tree u - 1 && pl z < pl v
      end
    | Anc_left | Anc_right ->
      if not (Rooted.is_ancestor tree ~anc:u ~desc:z) || z = u then false
      else begin
        let w1 = child_toward cfg u v in
        let c = child_toward cfg u z in
        if c <> w1 then child_inside cfg ~u ~v ~case u c
        else if Rooted.is_ancestor tree ~anc:v ~desc:z then
          child_inside cfg ~u ~v ~case v (child_toward cfg v z)
        else begin
          (* Claim 5 interval: Anc_right (the orientation of the Lemma 4
             proof) pairs with the LEFT order, Anc_left with the RIGHT. *)
          let pi =
            match case with
            | Anc_right | Unrelated -> Rooted.pi_left tree
            | Anc_left -> Rooted.pi_right tree
          in
          pi z >= pi w1 && pi z < pi v
        end
      end
  end

(* All interior members, via the local rule: union of the subtrees hanging
   inside at each border node.  O(|border| * degree + |interior|). *)
let interior cfg ~u ~v =
  let tree = Config.tree cfg in
  let case = classify cfg ~u ~v in
  let acc = ref [] in
  List.iter
    (fun x ->
      List.iter
        (fun c ->
          (* The whole subtree of an inside child is inside. *)
          let lo = Rooted.pi_left tree c in
          for i = lo to lo + Rooted.size tree c - 1 do
            acc := Rooted.node_at_left tree i :: !acc
          done)
        (inside_children cfg ~u ~v ~case x))
    (border cfg ~u ~v);
  !acc

(* ------------------------------------------------------------------ *)
(* Exact reference via the two faces of T + e.                         *)
(* ------------------------------------------------------------------ *)

(* Rotation of T + e induced by the configuration's rotation; the root's
   order starts at the position of the virtual root edge. *)
let tree_plus_edge cfg ~u ~v =
  let g = Config.graph cfg in
  let tree = Config.tree cfg in
  let nn = Config.n cfg in
  let root = Rooted.root tree in
  let g' = Graph.of_edges ~n:nn ((u, v) :: Rooted.edges tree) in
  let orders =
    Array.init nn (fun x ->
        let raw =
          if x = root then begin
            match Config.root_first cfg with
            | Some f -> Rotation.order_from (Config.rot cfg) x ~first:f
            | None -> Rotation.order (Config.rot cfg) x
          end
          else Rotation.order (Config.rot cfg) x
        in
        raw |> Array.to_list
        |> List.filter (fun y -> Graph.mem_edge g' x y)
        |> Array.of_list)
  in
  ignore g;
  (g', Rotation.of_orders g' orders)

let interior_reference cfg ~u ~v =
  let tree = Config.tree cfg in
  let root = Rooted.root tree in
  let g', rot' = tree_plus_edge cfg ~u ~v in
  let faces = Rotation.faces g' rot' in
  (match faces with
  | [ _; _ ] -> ()
  | fs ->
    invalid_arg
      (Printf.sprintf "Faces.interior_reference: expected 2 faces, got %d"
         (List.length fs)));
  (* The outer face is the one containing the root corner where the virtual
     root edge sits: the dart from the root to the first neighbour of its
     rotation. *)
  let first_nbr = (Rotation.order rot' root).(0) in
  let is_outer f = List.exists (fun d -> d = (root, first_nbr)) f in
  let inner =
    match faces with
    | [ a; b ] -> if is_outer a then b else a
    | _ -> assert false
  in
  let on_cycle = Hashtbl.create 64 in
  List.iter (fun x -> Hashtbl.replace on_cycle x ()) (border cfg ~u ~v);
  let members = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      if not (Hashtbl.mem on_cycle a) then Hashtbl.replace members a ();
      if not (Hashtbl.mem on_cycle b) then Hashtbl.replace members b ())
    inner;
  Hashtbl.fold (fun x () acc -> x :: acc) members []

(* Containment: is the real fundamental edge f inside (the closed region of)
   F_e?  Both endpoints must lie on F_e, and when both sit on the border the
   edge must actually be drawn on the interior side — checked with the same
   positional rule that classifies border corners (Claims 1 and 4 apply to
   arbitrary neighbours of border nodes, not only tree children). *)
let edge_in_face cfg ~e:(u, v) ~f:(a, b) =
  if (a, b) = (u, v) || (b, a) = (u, v) then false
  else begin
    let inside z = is_inside cfg ~u ~v z in
    let bord z = on_border cfg ~u ~v z in
    let member z = inside z || bord z in
    member a && member b
    && (inside a || inside b
       ||
       let case = classify cfg ~u ~v in
       child_inside cfg ~u ~v ~case a b)
  end
