(* Deterministic distributed DFS (Theorem 2, Section 6.2).

   Each phase computes, in parallel over the connected components of the
   unvisited region, a cycle separator (Theorem 1) and joins it to the
   partial DFS tree with the DFS-RULE (Lemma 2).  Because each component
   loses a separator, component sizes drop by a constant factor per phase,
   so there are O(log n) phases, each costing Õ(D) rounds.

   The host-side execution mirrors the paper's part-parallelism: both
   per-phase batches (separators, then joins) are distributed over an
   optional domain pool.  Every task meters its rounds into a private
   ledger; ledgers are merged on the calling domain in part-index order and
   the batch is charged its heaviest part — so charged totals and the
   resulting tree are independent of how the pool schedules the parts, and
   running without a pool (or with jobs = 1) is bit-identical. *)

open Repro_graph
open Repro_embedding
open Repro_congest

type result = {
  parent : int array; (* -1 at the root *)
  depth : int array;
  phases : int;
  max_join_iterations : int;
  phase_log : (int * int * int) list;
      (* per phase: #components, largest component, max join iterations *)
  separator_phases : (string * int) list; (* separator phase histogram *)
}

let absorb_heaviest rounds locals =
  match rounds with None -> () | Some g -> Rounds.absorb_heaviest g locals

(* Per-phase and per-batch spans ride the tracer attached to the caller's
   [Rounds.t] (see Separator): the phase span wraps the batch *and* its
   absorb, so the heaviest part's spliced sub-tree lands inside it. *)
let tracer rounds = Option.bind rounds Rounds.tracer

let span rounds name f = Repro_trace.Trace.within (tracer rounds) name f

let run ?rounds ?(spanning = Repro_tree.Spanning.Bfs) ?pool ?backend
    ?small_part_cutoff ?small_backend emb ~root =
  let g = Embedded.graph emb in
  let n = Graph.n g in
  Graph.check_vertex g root;
  Screen.require ?rounds ~entry:"Dfs.run" emb;
  (* Per-component backend dispatch mirrors Decomposition: components at
     or below the cutoff go to the centralized fast path. *)
  let backend =
    match backend with Some b -> b | None -> Backend.default ()
  in
  let small_backend =
    match small_backend with
    | Some b -> b
    | None -> (
      match Backend.centralized_default () with
      | Some b -> b
      | None -> backend)
  in
  let pick members =
    match small_part_cutoff with
    | Some c when Array.length members <= c -> small_backend
    | _ -> backend
  in
  (match rounds with Some r -> Rounds.charge_embedding r | None -> ());
  let pmap ~label ~cost f arr =
    match pool with
    | Some p -> Repro_util.Pool.map ?trace:(tracer rounds) ~label ~cost p f arr
    | None -> Array.map f arr
  in
  let st = Join.create g ~root in
  let phases = ref 0 in
  let max_join = ref 0 in
  let phase_log = ref [] in
  let sep_phases = Hashtbl.create 8 in
  let bump k =
    Hashtbl.replace sep_phases k
      (1 + Option.value ~default:0 (Hashtbl.find_opt sep_phases k))
  in
  let all_members = Array.init n Fun.id in
  while Join.unvisited st > 0 do
    incr phases;
    if !phases > n + 1 then invalid_arg "Dfs.run: too many phases";
    span rounds (Printf.sprintf "dfs.phase%d" !phases) @@ fun () ->
    (match rounds with
    | Some r -> Rounds.charge_aggregate r "components[Phase]"
    | None -> ());
    let comps = Array.of_list (Join.unvisited_components st all_members) in
    let largest = Array.fold_left (fun a c -> max a (Array.length c)) 0 comps in
    (* Theorem 1 on the node-disjoint collection of components: compute all
       separators; parts run in parallel, so the batch costs the rounds of
       its heaviest part.  Components are node-disjoint, so the batch's
       work estimate is simply the number of still-unvisited nodes. *)
    let cost = Array.fold_left (fun a c -> a + Array.length c) 0 comps in
    let separators =
      pmap ~label:"pool.separators" ~cost
        (fun members ->
          if Array.length members <= 3 then
            (* Trivial components: every node is its own separator; skip the
               induced-configuration machinery. *)
            (members, Array.to_list members, "trivial", None)
          else begin
            let part_root =
              match Join.component_anchor st members with
              | Some (v, _) -> v
              | None -> members.(0)
            in
            let cfg = Config.of_part ~spanning ~members ~root:part_root emb in
            let local = Option.map Rounds.like rounds in
            let b = pick members in
            let r = b.Backend.find ?rounds:local cfg in
            let separator_global =
              List.map (Config.to_global cfg) r.Separator.separator
            in
            (members, separator_global, r.Separator.phase, local)
          end)
        comps
    in
    Array.iter (fun (_, _, phase, _) -> bump phase) separators;
    absorb_heaviest rounds (Array.map (fun (_, _, _, l) -> l) separators);
    (* JOIN runs in parallel over components as well: charge the deepest
       iteration count once. *)
    let joins =
      pmap ~label:"pool.joins" ~cost
        (fun (members, separator, _, _) ->
          let local = Option.map Rounds.like rounds in
          let iters = Join.join ?rounds:local st ~members ~separator in
          (iters, local))
        separators
    in
    let phase_join = Array.fold_left (fun acc (it, _) -> max acc it) 0 joins in
    absorb_heaviest rounds (Array.map snd joins);
    max_join := max !max_join phase_join;
    phase_log := (Array.length comps, largest, phase_join) :: !phase_log
  done;
  {
    parent = Array.copy st.Join.parent;
    depth = Array.copy st.Join.depth;
    phases = !phases;
    max_join_iterations = !max_join;
    phase_log = List.rev !phase_log;
    separator_phases =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) sep_phases []
      |> List.sort compare;
  }

let verify emb ~root result =
  Algo.is_dfs_tree (Embedded.graph emb) ~root ~parent:result.parent
