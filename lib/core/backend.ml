(* The separator-backend registry.

   Keeping the registry here (rather than in lib/baseline) matches the
   library dependency direction: repro_core does not know about the
   centralized baselines, but repro_baseline depends on repro_core, so
   the Lipton–Tarjan and Har-Peled–Nayyeri backends register themselves
   into this table from Repro_baseline.Backends.  OCaml only links
   archive modules that are referenced, so registration side effects in
   another library are not enough on their own — executables call
   [Backends.ensure ()] to force the centralized registrations before
   resolving names. *)

open Repro_congest

type kind = Distributed | Centralized
type certificate = Cycle_certified | Balance_only

type t = {
  name : string;
  description : string;
  kind : kind;
  certificate : certificate;
  cost_model : string;
  find : ?rounds:Rounds.t -> Config.t -> Separator.result;
  trim : ?rounds:Rounds.t -> Config.t -> int list -> int list;
}

exception Duplicate_backend of string

let registry : t list ref = ref []

let register b =
  if List.exists (fun b' -> b'.name = b.name) !registry then
    raise (Duplicate_backend b.name);
  registry := !registry @ [ b ]

let all () = !registry
let names () = List.map (fun b -> b.name) !registry
let lookup_opt name = List.find_opt (fun b -> b.name = name) !registry

let lookup name =
  match lookup_opt name with
  | Some b -> b
  | None ->
    failwith
      (Printf.sprintf "unknown separator backend %s (known: %s)" name
         (String.concat ", " (names ())))

let centralized_default () =
  List.find_opt (fun b -> b.kind = Centralized) !registry

(* The six-phase algorithm of Theorem 1, behavior-preserving: [find] and
   [trim] are the exact functions the stack called before the registry
   existed, so dispatching through the default backend is bit-identical
   to the pre-registry pipeline. *)
let congest =
  {
    name = "congest";
    description = "six-phase deterministic cycle separator (Theorem 1)";
    kind = Distributed;
    certificate = Cycle_certified;
    cost_model = "O~(D) charged rounds (one PA = c_pa*D*log^2 n)";
    find = Separator.find;
    trim = Separator.shrink;
  }

let default () = congest
let () = register congest
