(** Structured tracing for the CONGEST stack.

    A tracer is a tree of named spans with one open-span stack.  Spans wrap
    the composed subroutines, the separator phases, the DFS/decomposition
    recursion levels and the pool batches; counters attribute charged
    rounds, executed engine statistics and pool-batch sizes to the
    innermost open span.  Everything is driven by *virtual* time (charged
    and executed rounds), never by the wall clock, so a trace is a pure
    function of the run: jobs=N produces a bit-identical trace to jobs=1
    under the per-part ledger discipline of [Rounds.absorb_heaviest].

    The whole subsystem is optional-by-construction: every integration
    point holds a [t option], and the [None] path does no work and
    allocates nothing, keeping traced-off runs bit-identical to the
    pre-trace code.

    Sinks: an aggregated textual summary ({!pp}), a Chrome-trace JSON
    ({!to_chrome}, loadable in Perfetto / chrome://tracing with charged
    rounds as the time axis) and a machine-readable metrics tree
    ({!to_metrics}, embedded in BENCH emitters and diffed by the CI
    regression gate). *)

type counters = {
  mutable charged : float;  (** charged rounds ([Rounds.charge]) *)
  mutable exec_rounds : int;  (** executed engine rounds *)
  mutable messages : int;
  mutable engine_runs : int;
  mutable collectives : int;
  mutable charges : int;  (** number of charge invocations *)
  mutable pa_units : int;  (** charged part-wise-aggregation units *)
  mutable tasks : int;  (** pool-batch items executed under this span *)
}

type span = {
  name : string;
  self : counters;  (** attribution while this span was innermost *)
  mutable children : span list;  (** newest first *)
}

type t

val create : ?root:string -> unit -> t
(** Fresh tracer whose root span (default name ["run"]) is open. *)

val root : t -> span

val depth : t -> int
(** Number of open spans, root included; [1] when balanced. *)

val enter : t -> string -> unit

val leave : t -> unit
(** Raises [Invalid_argument] on an attempt to close the root. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [enter], run, [leave] — exception-safe. *)

val within : t option -> string -> (unit -> 'a) -> 'a
(** [with_span] through an optional tracer; [None] runs the thunk
    directly. *)

(** {2 Counter attribution (innermost open span)} *)

val note_charge : t -> float -> unit
(** One charged-model charge of the given rounds. *)

val note_pa : t -> int -> unit
(** Charged part-wise-aggregation units (rides a [note_charge]). *)

val note_exec :
  t -> rounds:int -> messages:int -> engine_runs:int -> collectives:int -> unit
(** Executed engine statistics (one engine run's worth, typically). *)

val note_tasks : t -> int -> unit
(** A pool batch of this many items ran under the current span. *)

val absorb : t -> t -> unit
(** Splice the other tracer's finished tree into this tracer's current
    span: the other root's children become children (in order), its root
    self-counters merge into the current span's self.  Used by
    [Rounds.absorb] so a parallel batch's heaviest per-part trace lands
    under the batch span deterministically. *)

(** {2 Reading} *)

val totals : span -> counters
(** Fresh counters: self plus all descendants. *)

val pp : Format.formatter -> t -> unit
(** Aggregated tree summary: sibling spans with equal names merge, with an
    instance count. *)

val to_chrome : t -> Json.t
(** Chrome-trace ("traceEvents") document of complete ("X") events.  The
    time axis is virtual: a span's duration is its total charged rounds
    plus executed rounds, children laid out sequentially inside the
    parent. *)

val to_metrics : t -> Json.t
(** Machine-readable aggregated tree; deterministic, so the CI bench-diff
    gate compares it exactly. *)

val metrics_of_span : span -> Json.t
(** {!to_metrics} rooted at an arbitrary span — the request-scoped
    metrics document: the serve daemon runs each query under its own
    [serve.*] span and can return just that subtree to the client. *)

val to_chrome_string : t -> string
val to_metrics_string : t -> string
