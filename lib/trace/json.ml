(* Minimal JSON tree shared by the trace exporters and the bench tooling.

   Printing keeps the [Int]/[Float] distinction observable: a float whose
   shortest form carries no '.', 'e' or 'n' gets a trailing ".0", so the
   parser maps it back to [Float] and counters emitted as [Int] stay exact
   through a round trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else begin
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s
    else s ^ ".0"
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  to_buffer buf j;
  Buffer.contents buf

(* --- parser --------------------------------------------------------- *)

type cursor = { s : string; mutable pos : int }

let fail cur msg = failwith (Printf.sprintf "Json.of_string: %s at %d" msg cur.pos)

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let skip_ws cur =
  while
    cur.pos < String.length cur.s
    &&
    match cur.s.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    cur.pos <- cur.pos + 1
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> cur.pos <- cur.pos + 1
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let literal cur word value =
  let k = String.length word in
  if
    cur.pos + k <= String.length cur.s && String.sub cur.s cur.pos k = word
  then begin
    cur.pos <- cur.pos + k;
    value
  end
  else fail cur ("expected " ^ word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if cur.pos >= String.length cur.s then fail cur "unterminated string";
    let c = cur.s.[cur.pos] in
    cur.pos <- cur.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
      if cur.pos >= String.length cur.s then fail cur "unterminated escape";
      let e = cur.s.[cur.pos] in
      cur.pos <- cur.pos + 1;
      (match e with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'u' ->
        if cur.pos + 4 > String.length cur.s then fail cur "short \\u escape";
        let code = int_of_string ("0x" ^ String.sub cur.s cur.pos 4) in
        cur.pos <- cur.pos + 4;
        (* UTF-8 encode the BMP code point. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
      | _ -> fail cur "bad escape");
      go ()
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while cur.pos < String.length cur.s && is_num_char cur.s.[cur.pos] do
    cur.pos <- cur.pos + 1
  done;
  let tok = String.sub cur.s start (cur.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> fail cur ("bad number " ^ tok)
  else begin
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail cur ("bad number " ^ tok))
  end

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' ->
    expect cur '{';
    skip_ws cur;
    if peek cur = Some '}' then begin
      expect cur '}';
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          expect cur ',';
          members ((k, v) :: acc)
        | Some '}' ->
          expect cur '}';
          List.rev ((k, v) :: acc)
        | _ -> fail cur "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    expect cur '[';
    skip_ws cur;
    if peek cur = Some ']' then begin
      expect cur ']';
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          expect cur ',';
          elements (v :: acc)
        | Some ']' ->
          expect cur ']';
          List.rev (v :: acc)
        | _ -> fail cur "expected ',' or ']'"
      in
      List (elements [])
    end
  | Some '"' -> String (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some _ -> parse_number cur

let of_string s =
  let cur = { s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | String a, String b -> String.equal a b
  | List a, List b -> List.equal equal a b
  | Obj a, Obj b ->
    List.equal (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
  | _ -> false
