(* Span-tree tracer driven entirely by virtual time (charged + executed
   rounds).  No wall clock, no identifiers minted from global state: a
   trace is a pure function of the run, which is what makes the jobs=N
   determinism guarantee (and the CI exact-diff gate) possible. *)

type counters = {
  mutable charged : float;
  mutable exec_rounds : int;
  mutable messages : int;
  mutable engine_runs : int;
  mutable collectives : int;
  mutable charges : int;
  mutable pa_units : int;
  mutable tasks : int;
}

type span = {
  name : string;
  self : counters;
  mutable children : span list; (* newest first *)
}

type t = {
  root_span : span;
  mutable stack : span list; (* innermost first; always ends with root_span *)
}

let zero () =
  {
    charged = 0.0;
    exec_rounds = 0;
    messages = 0;
    engine_runs = 0;
    collectives = 0;
    charges = 0;
    pa_units = 0;
    tasks = 0;
  }

let add_into ~into c =
  into.charged <- into.charged +. c.charged;
  into.exec_rounds <- into.exec_rounds + c.exec_rounds;
  into.messages <- into.messages + c.messages;
  into.engine_runs <- into.engine_runs + c.engine_runs;
  into.collectives <- into.collectives + c.collectives;
  into.charges <- into.charges + c.charges;
  into.pa_units <- into.pa_units + c.pa_units;
  into.tasks <- into.tasks + c.tasks

let create ?(root = "run") () =
  let root_span = { name = root; self = zero (); children = [] } in
  { root_span; stack = [ root_span ] }

let root t = t.root_span
let depth t = List.length t.stack

let current t =
  match t.stack with s :: _ -> s | [] -> assert false (* root never pops *)

let enter t name =
  let s = { name; self = zero (); children = [] } in
  let parent = current t in
  parent.children <- s :: parent.children;
  t.stack <- s :: t.stack

let leave t =
  match t.stack with
  | _ :: (_ :: _ as rest) -> t.stack <- rest
  | _ -> invalid_arg "Trace.leave: root span cannot be closed"

let with_span t name f =
  enter t name;
  Fun.protect ~finally:(fun () -> leave t) f

let within t name f =
  match t with None -> f () | Some t -> with_span t name f

(* --- attribution ---------------------------------------------------- *)

let note_charge t rounds =
  let c = (current t).self in
  c.charged <- c.charged +. rounds;
  c.charges <- c.charges + 1

let note_pa t units =
  let c = (current t).self in
  c.pa_units <- c.pa_units + units

let note_exec t ~rounds ~messages ~engine_runs ~collectives =
  let c = (current t).self in
  c.exec_rounds <- c.exec_rounds + rounds;
  c.messages <- c.messages + messages;
  c.engine_runs <- c.engine_runs + engine_runs;
  c.collectives <- c.collectives + collectives

let note_tasks t n =
  let c = (current t).self in
  c.tasks <- c.tasks + n

let absorb t other =
  let cur = current t in
  (* Both child lists are newest-first; prepending the other's keeps the
     chronological order after the final reversal. *)
  cur.children <- other.root_span.children @ cur.children;
  add_into ~into:cur.self other.root_span.self

(* --- reading -------------------------------------------------------- *)

let rec totals span =
  let acc = zero () in
  add_into ~into:acc span.self;
  List.iter (fun c -> add_into ~into:acc (totals c)) span.children;
  acc

let in_order span = List.rev span.children

(* Aggregation: merge sibling spans with equal names, preserving the order
   of first occurrence — the per-phase attribution view. *)
type agg = {
  aname : string;
  mutable count : int;
  aself : counters;
  atotal : counters;
  mutable akids : agg list; (* newest first *)
}

let rec aggregate_children spans =
  let index = Hashtbl.create 8 in
  let out = ref [] in
  List.iter
    (fun (s : span) ->
      let node =
        match Hashtbl.find_opt index s.name with
        | Some node -> node
        | None ->
          let node =
            {
              aname = s.name;
              count = 0;
              aself = zero ();
              atotal = zero ();
              akids = [];
            }
          in
          Hashtbl.replace index s.name node;
          out := node :: !out;
          node
      in
      node.count <- node.count + 1;
      add_into ~into:node.aself s.self;
      add_into ~into:node.atotal (totals s);
      node.akids <- List.rev_append (aggregate_children (in_order s)) node.akids)
    spans;
  (* Children aggregated per-sibling above may repeat across instances of
     the same name: fold them once more. *)
  let fold_aggs aggs =
    let index = Hashtbl.create 8 in
    let out = ref [] in
    List.iter
      (fun (a : agg) ->
        match Hashtbl.find_opt index a.aname with
        | Some node ->
          node.count <- node.count + a.count;
          add_into ~into:node.aself a.aself;
          add_into ~into:node.atotal a.atotal;
          node.akids <- a.akids @ node.akids
        | None ->
          Hashtbl.replace index a.aname a;
          out := a :: !out)
      aggs;
    List.rev !out
  in
  let merged = fold_aggs (List.rev !out) in
  List.iter (fun a -> a.akids <- fold_aggs (List.rev a.akids)) merged;
  merged

let aggregate_span (root : span) =
  let a =
    {
      aname = root.name;
      count = 1;
      aself = zero ();
      atotal = totals root;
      akids = List.rev (aggregate_children (in_order root));
    }
  in
  add_into ~into:a.aself root.self;
  a

let aggregate t = aggregate_span t.root_span

let pp fmt t =
  let rec go indent (a : agg) =
    let tot = a.atotal in
    Fmt.pf fmt "%s%-*s" indent (max 1 (34 - String.length indent)) a.aname;
    if a.count > 1 then Fmt.pf fmt " x%-5d" a.count else Fmt.pf fmt "       ";
    if tot.charged > 0.0 then Fmt.pf fmt " charged=%-10.0f" tot.charged;
    if tot.exec_rounds > 0 then Fmt.pf fmt " rounds=%-8d" tot.exec_rounds;
    if tot.messages > 0 then Fmt.pf fmt " msgs=%-9d" tot.messages;
    if tot.engine_runs > 0 then Fmt.pf fmt " engine=%-5d" tot.engine_runs;
    if tot.collectives > 0 then Fmt.pf fmt " coll=%-5d" tot.collectives;
    if tot.pa_units > 0 then Fmt.pf fmt " pa=%-6d" tot.pa_units;
    if tot.tasks > 0 then Fmt.pf fmt " tasks=%-5d" tot.tasks;
    Fmt.pf fmt "@.";
    List.iter (go (indent ^ "  ")) (List.rev a.akids)
  in
  go "" (aggregate t)

(* --- exporters ------------------------------------------------------ *)

let counters_fields (c : counters) =
  [
    ("charged_rounds", Json.Float c.charged);
    ("exec_rounds", Json.Int c.exec_rounds);
    ("messages", Json.Int c.messages);
    ("engine_runs", Json.Int c.engine_runs);
    ("collectives", Json.Int c.collectives);
    ("charges", Json.Int c.charges);
    ("pa_units", Json.Int c.pa_units);
    ("tasks", Json.Int c.tasks);
  ]

(* Virtual duration of a span: charged plus executed rounds (the two never
   both dominate — charged-model runs execute nothing and vice versa — and
   summing keeps the axis monotone for hybrid runs). *)
let duration tot = tot.charged +. float_of_int tot.exec_rounds

let to_chrome t =
  let events = ref [] in
  let rec emit ts span =
    let tot = totals span in
    events :=
      Json.Obj
        [
          ("name", Json.String span.name);
          ("cat", Json.String "congest");
          ("ph", Json.String "X");
          ("ts", Json.Float ts);
          ("dur", Json.Float (duration tot));
          ("pid", Json.Int 0);
          ("tid", Json.Int 0);
          ("args", Json.Obj (counters_fields tot));
        ]
      :: !events;
    (* Children occupy consecutive sub-intervals from the parent's start;
       the parent's self time fills whatever remains at the end. *)
    let cursor = ref ts in
    List.iter
      (fun c ->
        emit !cursor c;
        cursor := !cursor +. duration (totals c))
      (in_order span)
  in
  emit 0.0 t.root_span;
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj [ ("time_axis", Json.String "virtual-rounds") ] );
    ]

let metrics_of_span s =
  let rec node (a : agg) =
    Json.Obj
      ([ ("name", Json.String a.aname); ("count", Json.Int a.count) ]
      @ counters_fields a.atotal
      @ [
          ("self", Json.Obj (counters_fields a.aself));
          ("children", Json.List (List.map node (List.rev a.akids)));
        ])
  in
  node (aggregate_span s)

let to_metrics t = metrics_of_span t.root_span

let to_chrome_string t = Json.to_string (to_chrome t)
let to_metrics_string t = Json.to_string (to_metrics t)
