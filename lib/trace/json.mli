(** Minimal JSON tree, printer and parser.

    The repo deliberately avoids external JSON dependencies; this module is
    shared by the trace exporters (Chrome-trace, metrics), the bench
    emitter and the bench-diff regression gate, so emitted documents can be
    parsed back losslessly.  Integers and floats are kept distinct so exact
    counters survive a round trip; floats print with enough digits
    ([%.17g]) that [of_string (to_string j)] reproduces the same value. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> t
(** Raises [Failure] with a position-annotated message on malformed
    input. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val equal : t -> t -> bool
(** Structural equality ([Obj] key order significant). *)
