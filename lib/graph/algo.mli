(** Centralized graph algorithms (verification and instance preparation). *)

val bfs_dist : Graph.t -> int -> int array
(** Hop distances from the source; [-1] for unreachable vertices. *)

val bfs_parents : Graph.t -> int -> int array
(** BFS tree parents; the source gets [-1], unreachable vertices [-2]. *)

val components : Graph.t -> int array * int
(** Component id of every vertex and the number of components. *)

val component_sizes : Graph.t -> int array

val restricted_components :
  Graph.t -> members:int array -> skip:(int -> bool) -> int array list
(** Connected components of the subgraph induced by the members for which
    [skip] is false, in member-discovery order; each component lists its
    vertices in BFS order.  Only reads the graph. *)

val is_connected : Graph.t -> bool

val eccentricity : Graph.t -> int -> int

val diameter_exact : Graph.t -> int

val diameter_two_sweep : Graph.t -> int
(** Double-sweep BFS lower bound (exact on trees). *)

val diameter : ?exact_limit:int -> Graph.t -> int
(** Exact when [n <= exact_limit] (default 3000), double-sweep otherwise. *)

val dfs_parents : Graph.t -> int -> int array
(** Centralized DFS tree in adjacency order; source [-1], unreachable [-2]. *)

val is_dfs_tree : Graph.t -> root:int -> parent:int array -> bool
(** A rooted spanning tree is a DFS tree of an undirected graph iff every
    non-tree edge joins an ancestor–descendant pair; this checks exactly
    that, plus spanning-tree well-formedness. *)
