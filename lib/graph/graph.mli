(** Undirected simple graphs over vertices [0 .. n-1]. *)

type t

val of_edges : n:int -> (int * int) list -> t
(** Build a graph; duplicate edges are dropped, self loops rejected. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val degree : t -> int -> int

val neighbors : t -> int -> int array
(** Adjacency array of a vertex (do not mutate). *)

val mem_edge : t -> int -> int -> bool

val check_vertex : t -> int -> unit
(** Raises [Invalid_argument] if the vertex is out of range. *)

val edges : t -> (int * int) list
(** Each edge once, as [(u, v)] with [u < v]. *)

val edge_array : t -> (int * int) array
(** Same edges as [edges], in the same order, without the list. *)

val iter_edges : t -> (int -> int -> unit) -> unit

val induced : t -> bool array -> t * int array * int array
(** [induced g keep] is the subgraph induced by the marked vertices, plus the
    old-to-new (-1 when dropped) and new-to-old vertex maps. *)

val pp : Format.formatter -> t -> unit
