(** Undirected simple graphs over vertices [0 .. n-1].

    Stored as flat compressed-sparse-row (CSR) int arrays with each
    adjacency row sorted ascending: membership is a binary search, the GC
    never walks the adjacency, and worker domains share the structure
    read-only without copying.  Nothing is mutated after construction. *)

type t

val of_edges : n:int -> (int * int) list -> t
(** Build a graph; duplicate edges are dropped, self loops rejected. *)

val of_edge_array : n:int -> (int * int) array -> t
(** Same as {!of_edges} without the intermediate list. *)

val max_vertices : int
(** Largest representable [n]; {!of_edges} raises [Invalid_argument]
    beyond it instead of corrupting (the pre-CSR edge index silently
    collided past [2^30]). *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val degree : t -> int -> int

val neighbors : t -> int -> int array
(** Neighbours of a vertex, ascending.  Allocates a fresh array — cold
    callers only; hot paths use {!iter_neighbors} or {!nth_neighbor}. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Apply to each neighbour in ascending order, without allocating. *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val nth_neighbor : t -> int -> int -> int
(** [nth_neighbor g v i] is the [i]-th smallest neighbour of [v]
    (unchecked: [0 <= i < degree g v]). *)

val adj_offset : t -> int -> int
(** Global CSR offset of the row of [v]: [adj_offset g v + i] is a unique
    dart id for the [i]-th neighbour slot, letting parallel flat
    structures (rotation orders, per-dart marks) align with the store. *)

val neighbor_rank : t -> int -> int -> int
(** [neighbor_rank g v u] is the index of [u] in the sorted row of [v],
    or [-1] when [(v, u)] is not an edge. *)

val mem_edge : t -> int -> int -> bool

val check_vertex : t -> int -> unit
(** Raises [Invalid_argument] if the vertex is out of range. *)

val edge_array : t -> (int * int) array
(** Each edge once as [(u, v)] with [u < v], ascending [u] then [v] —
    the primitive, read straight off the CSR scan. *)

val edges : t -> (int * int) list
(** [Array.to_list (edge_array t)]. *)

val iter_edges : t -> (int -> int -> unit) -> unit

(** Reusable buffers for {!induced_members}.  One scratch per worker
    domain amortizes the per-part O(n) map allocation across a whole
    batch.  A scratch must never be shared between concurrent callers. *)
module Scratch : sig
  type t

  val create : unit -> t
end

val induced : t -> bool array -> t * int array * int array
(** [induced g keep] is the subgraph induced by the marked vertices, plus
    the old-to-new (-1 when dropped) and new-to-old vertex maps.  New ids
    follow increasing old id.  Scans all of [0 .. n-1]; hot callers with
    an explicit member set use {!induced_members}. *)

val induced_members : ?scratch:Scratch.t -> t -> int array -> t * int array * int array
(** [induced_members g members] is {!induced} driven by an explicit array
    of distinct member vertices (any order; same numbering as the
    keep-array form).  Touches only O(members + incident edges) — nothing
    proportional to [n g] — when given a [scratch].  Ownership rule: with
    [?scratch], the returned old-to-new map {e aliases the scratch
    buffer}; it is valid until the next call on the same scratch and must
    not be mutated. *)

val pp : Format.formatter -> t -> unit
