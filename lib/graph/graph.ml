(* Simple undirected graphs over vertices [0 .. n-1], stored as a flat
   compressed-sparse-row (CSR) structure:

     row : int array        length n + 1, row.(v) .. row.(v+1) - 1 slice of
     col : int array        length 2m, neighbour lists, each row SORTED

   Two flat int arrays hold the whole graph — no per-vertex boxes, no edge
   hash table — so the GC never walks the adjacency, membership is a binary
   search of a sorted row, and worker domains share the store by capturing
   the same two arrays (reads are data-race-free; nothing here is mutated
   after construction).  The former pair-encoded edge index
   (u * 0x40000000 + v) silently collided once vertex ids crossed 2^30;
   the CSR row search has no such bound — n is limited only by what the
   host can allocate (checked explicitly, so oversized requests fail with
   [Invalid_argument], not a corrupt graph). *)

type t = {
  n : int;
  m : int;
  row : int array; (* n + 1 offsets into col *)
  col : int array; (* 2m neighbour entries, ascending within each row *)
}

let n t = t.n
let m t = t.m
let degree t v = t.row.(v + 1) - t.row.(v)

(* The maximum vertex count we can represent: [row] needs n + 1 boxes. *)
let max_vertices = Sys.max_array_length - 1

let check_vertex t v =
  if v < 0 || v >= t.n then invalid_arg "Graph: vertex out of range"

(* Binary search of [x] in the sorted row of [v]; index into [col] when
   present, -1 otherwise.  This replaces the edge hash table. *)
let find_in_row t v x =
  let lo = ref t.row.(v) and hi = ref (t.row.(v + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let y = t.col.(mid) in
    if y = x then found := mid else if y < x then lo := mid + 1 else hi := mid - 1
  done;
  !found

let mem_edge t u v =
  u <> v && u >= 0 && v >= 0 && u < t.n && v < t.n && find_in_row t u v >= 0

(* Rank of neighbour [x] within the sorted row of [v] (-1 when not a
   neighbour): the alignment primitive for parallel flat structures (the
   rotation system stores per-dart data at [adj_offset v + rank]). *)
let neighbor_rank t v x =
  let i = find_in_row t v x in
  if i < 0 then -1 else i - t.row.(v)

let adj_offset t v = t.row.(v)
let nth_neighbor t v i = t.col.(t.row.(v) + i)

let neighbors t v = Array.sub t.col t.row.(v) (degree t v)

let iter_neighbors t v f =
  for i = t.row.(v) to t.row.(v + 1) - 1 do
    f t.col.(i)
  done

let fold_neighbors t v f acc =
  let acc = ref acc in
  for i = t.row.(v) to t.row.(v + 1) - 1 do
    acc := f !acc t.col.(i)
  done;
  !acc

(* Build from normalized (u < v), lexicographically sorted, deduplicated
   edge pairs.  One pass fills every row already sorted: row x first
   receives its smaller neighbours (from edges (u, x), scanned in ascending
   u) and then its larger ones (from edges (x, w), ascending w). *)
let of_sorted_pairs ~n pairs =
  let m = Array.length pairs in
  let row = Array.make (n + 1) 0 in
  Array.iter
    (fun (u, v) ->
      row.(u + 1) <- row.(u + 1) + 1;
      row.(v + 1) <- row.(v + 1) + 1)
    pairs;
  for v = 1 to n do
    row.(v) <- row.(v) + row.(v - 1)
  done;
  let col = Array.make (2 * m) 0 in
  let fill = Array.copy row in
  Array.iter
    (fun (u, v) ->
      col.(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      col.(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    pairs;
  { n; m; row; col }

let normalize_pairs ~n edges =
  let pairs =
    Array.map
      (fun (u, v) ->
        if u < 0 || u >= n || v < 0 || v >= n then
          invalid_arg "Graph.of_edges: vertex out of range";
        if u = v then invalid_arg "Graph.of_edges: self loop";
        if u < v then (u, v) else (v, u))
      edges
  in
  Array.sort
    (fun (a, b) (c, d) -> if a <> c then compare a c else compare b d)
    pairs;
  (* Drop duplicates in place. *)
  let k = ref 0 in
  Array.iteri
    (fun i p ->
      if i = 0 || p <> pairs.(i - 1) then begin
        pairs.(!k) <- p;
        incr k
      end)
    pairs;
  if !k = Array.length pairs then pairs else Array.sub pairs 0 !k

let of_edge_array ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  if n > max_vertices then
    invalid_arg
      (Printf.sprintf "Graph.of_edges: n = %d exceeds max_vertices = %d" n
         max_vertices);
  of_sorted_pairs ~n (normalize_pairs ~n edges)

let of_edges ~n edges = of_edge_array ~n (Array.of_list edges)

(* Each edge once, ascending u then ascending v, straight off the CSR scan
   — the primitive [edges] derives from. *)
let edge_array t =
  let out = Array.make t.m (0, 0) in
  let i = ref 0 in
  for u = 0 to t.n - 1 do
    for j = t.row.(u) to t.row.(u + 1) - 1 do
      let v = t.col.(j) in
      if u < v then begin
        out.(!i) <- (u, v);
        incr i
      end
    done
  done;
  out

let edges t = Array.to_list (edge_array t)

let iter_edges t f =
  for u = 0 to t.n - 1 do
    for j = t.row.(u) to t.row.(u + 1) - 1 do
      let v = t.col.(j) in
      if u < v then f u v
    done
  done

(* ------------------------------------------------------------------ *)
(* Induced subgraphs.                                                  *)
(* ------------------------------------------------------------------ *)

(* Reusable build buffer for the part-parallel hot path: one scratch per
   worker domain amortizes every per-part O(n) allocation away.  Ownership
   rule (see DESIGN.md): the old->new map returned by a scratch-backed
   [induced_members] call IS the scratch's buffer — valid until the next
   call on the same scratch, and the caller must not mutate it.  Each call
   un-marks the previous call's members, so only O(part) entries are ever
   touched. *)
module Scratch = struct
  type nonrec t = {
    mutable new_of_old : int array; (* -1 outside the current part *)
    mutable prev : int array; (* members currently marked *)
  }

  let create () = { new_of_old = [||]; prev = [||] }
end

(* Core induced build over a member array already sorted ascending (so new
   ids are assigned in increasing old id, matching the historical keep-scan
   compaction).  [new_of_old] must be -1 at every non-member on entry; it is
   left -1 there and set at members on exit (caller restores if pooled). *)
let induced_sorted t ~new_of_old ~members ~k =
  let old_of_new = Array.make k 0 in
  for i = 0 to k - 1 do
    let v = members.(i) in
    new_of_old.(v) <- i;
    old_of_new.(i) <- v
  done;
  let row = Array.make (k + 1) 0 in
  for i = 0 to k - 1 do
    let v = members.(i) in
    let d = ref 0 in
    for j = t.row.(v) to t.row.(v + 1) - 1 do
      if new_of_old.(t.col.(j)) >= 0 then incr d
    done;
    row.(i + 1) <- !d
  done;
  for i = 1 to k do
    row.(i) <- row.(i) + row.(i - 1)
  done;
  let col = Array.make row.(k) 0 in
  let fill = ref 0 in
  for i = 0 to k - 1 do
    let v = members.(i) in
    (* The old row is sorted and old->new is monotone over members, so each
       new row comes out sorted without any per-row sort. *)
    for j = t.row.(v) to t.row.(v + 1) - 1 do
      let nu = new_of_old.(t.col.(j)) in
      if nu >= 0 then begin
        col.(!fill) <- nu;
        incr fill
      end
    done
  done;
  ({ n = k; m = row.(k) / 2; row; col }, old_of_new)

(* Subgraph induced by a member array (distinct vertices, any order).
   Returns the subgraph plus old->new (-1 when dropped) and new->old maps.
   New ids are assigned in increasing old id, so the numbering matches the
   keep-array interface below.  With [?scratch] the call allocates nothing
   proportional to [Graph.n t]: the returned old->new map aliases the
   scratch buffer (ownership rule above). *)
let induced_members ?scratch t members =
  let k = Array.length members in
  let sorted = Array.copy members in
  Array.sort compare sorted;
  let new_of_old =
    match scratch with
    | None -> Array.make t.n (-1)
    | Some s ->
      if Array.length s.Scratch.new_of_old < t.n then
        s.Scratch.new_of_old <-
          Array.make (max t.n (2 * Array.length s.Scratch.new_of_old)) (-1)
      else
        (* Un-mark the previous occupant to restore the all-(-1) state. *)
        Array.iter (fun v -> s.Scratch.new_of_old.(v) <- -1) s.Scratch.prev;
      s.Scratch.prev <- sorted;
      s.Scratch.new_of_old
  in
  let g_sub, old_of_new = induced_sorted t ~new_of_old ~members:sorted ~k in
  (g_sub, new_of_old, old_of_new)

(* Subgraph induced by [keep] (classic keep-array interface; scans all of
   [0 .. n-1]).  Cold callers only — the hot path is [induced_members]. *)
let induced t keep =
  let count = ref 0 in
  for v = 0 to t.n - 1 do
    if keep.(v) then incr count
  done;
  let members = Array.make !count 0 in
  let i = ref 0 in
  for v = 0 to t.n - 1 do
    if keep.(v) then begin
      members.(!i) <- v;
      incr i
    end
  done;
  let new_of_old = Array.make t.n (-1) in
  let g_sub, old_of_new = induced_sorted t ~new_of_old ~members ~k:!count in
  (g_sub, new_of_old, old_of_new)

let pp fmt t = Fmt.pf fmt "graph(n=%d, m=%d)" t.n t.m
