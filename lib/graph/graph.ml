(* Simple undirected graphs over vertices [0 .. n-1].

   Adjacency is stored as immutable-by-convention arrays.  Vertex pairs are
   encoded into a single int for O(1) membership tests; this bounds n at
   2^31 on 64-bit platforms, far beyond what the simulator handles. *)

type t = {
  n : int;
  adj : int array array;
  edge_index : (int, unit) Hashtbl.t;
  m : int;
}

let encode u v = if u < v then (u * 0x40000000) + v else (v * 0x40000000) + u

let n t = t.n

let m t = t.m

let degree t v = Array.length t.adj.(v)

let neighbors t v = t.adj.(v)

let mem_edge t u v =
  u <> v && u >= 0 && v >= 0 && u < t.n && v < t.n
  && Hashtbl.mem t.edge_index (encode u v)

let check_vertex t v =
  if v < 0 || v >= t.n then invalid_arg "Graph: vertex out of range"

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let edge_index = Hashtbl.create (2 * List.length edges) in
  let deg = Array.make n 0 in
  let uniq =
    List.filter
      (fun (u, v) ->
        if u < 0 || u >= n || v < 0 || v >= n then
          invalid_arg "Graph.of_edges: vertex out of range";
        if u = v then invalid_arg "Graph.of_edges: self loop";
        let key = encode u v in
        if Hashtbl.mem edge_index key then false
        else begin
          Hashtbl.add edge_index key ();
          deg.(u) <- deg.(u) + 1;
          deg.(v) <- deg.(v) + 1;
          true
        end)
      edges
  in
  let adj = Array.init n (fun v -> Array.make deg.(v) (-1)) in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    uniq;
  { n; adj; edge_index; m = List.length uniq }

(* Each edge once, into a preallocated array (no list churn).  The order —
   ascending u, each vertex's adjacency scanned in reverse — matches what
   the historical list-accumulator produced, so seeded consumers (e.g. the
   random spanning tree's shuffle) see identical inputs. *)
let edge_array t =
  let out = Array.make t.m (0, 0) in
  let i = ref 0 in
  for u = 0 to t.n - 1 do
    let a = t.adj.(u) in
    for j = Array.length a - 1 downto 0 do
      let v = a.(j) in
      if u < v then begin
        out.(!i) <- (u, v);
        incr i
      end
    done
  done;
  out

let edges t = Array.to_list (edge_array t)

let iter_edges t f =
  for u = 0 to t.n - 1 do
    Array.iter (fun v -> if u < v then f u v) t.adj.(u)
  done

(* Subgraph induced by [keep]; [`Map (old -> new)] positions are compacted.
   Returns the subgraph together with old->new and new->old vertex maps. *)
let induced t keep =
  let new_of_old = Array.make t.n (-1) in
  let count = ref 0 in
  for v = 0 to t.n - 1 do
    if keep.(v) then begin
      new_of_old.(v) <- !count;
      incr count
    end
  done;
  let old_of_new = Array.make !count (-1) in
  for v = 0 to t.n - 1 do
    if keep.(v) then old_of_new.(new_of_old.(v)) <- v
  done;
  (* Scan only the kept vertices' adjacency, not the whole edge set, so a
     batch of small induced subgraphs stays near-linear overall.  The
     adjacency arrays are built directly — no intermediate edge list and no
     [of_edges] rebuild; the fill order reproduces the historical one
     (descending u, reversed adjacency) bit for bit. *)
  let k = !count in
  let deg = Array.make k 0 in
  let m = ref 0 in
  Array.iter
    (fun u ->
      Array.iter
        (fun v ->
          if u < v && keep.(v) then begin
            deg.(new_of_old.(u)) <- deg.(new_of_old.(u)) + 1;
            deg.(new_of_old.(v)) <- deg.(new_of_old.(v)) + 1;
            incr m
          end)
        t.adj.(u))
    old_of_new;
  let edge_index = Hashtbl.create (2 * !m) in
  let adj = Array.init k (fun v -> Array.make deg.(v) (-1)) in
  let fill = Array.make k 0 in
  for i = k - 1 downto 0 do
    let u = old_of_new.(i) in
    let nbrs = t.adj.(u) in
    for j = Array.length nbrs - 1 downto 0 do
      let v = nbrs.(j) in
      if u < v && keep.(v) then begin
        let nu = new_of_old.(u) and nv = new_of_old.(v) in
        Hashtbl.add edge_index (encode nu nv) ();
        adj.(nu).(fill.(nu)) <- nv;
        fill.(nu) <- fill.(nu) + 1;
        adj.(nv).(fill.(nv)) <- nu;
        fill.(nv) <- fill.(nv) + 1
      end
    done
  done;
  ({ n = k; adj; edge_index; m = !m }, new_of_old, old_of_new)

let pp fmt t =
  Fmt.pf fmt "graph(n=%d, m=%d)" t.n t.m
