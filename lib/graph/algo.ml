(* Centralized graph algorithms used for verification, ground truth and
   instance preparation.  The distributed algorithms live in [repro.congest]
   and [repro.core]; nothing here is charged CONGEST rounds. *)

let bfs_dist g src =
  Graph.check_vertex g src;
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let bfs_parents g src =
  Graph.check_vertex g src;
  let n = Graph.n g in
  let parent = Array.make n (-2) in
  let queue = Queue.create () in
  parent.(src) <- -1;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if parent.(v) = -2 then begin
          parent.(v) <- u;
          Queue.add v queue
        end)
  done;
  parent

let components g =
  let n = Graph.n g in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) < 0 then begin
      let id = !count in
      incr count;
      let queue = Queue.create () in
      comp.(v) <- id;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_neighbors g u (fun w ->
            if comp.(w) < 0 then begin
              comp.(w) <- id;
              Queue.add w queue
            end)
      done
    end
  done;
  (comp, !count)

let component_sizes g =
  let comp, k = components g in
  let sizes = Array.make k 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
  sizes

(* Connected components of [members \ skip], discovered in member order.
   Every surviving member enters a single preallocated ring exactly once, so
   each component is a contiguous slice of it — no per-node list cells.  The
   shared hot path of the part-parallel batches in [Dfs] and
   [Decomposition]; it only reads the graph, so concurrent calls on
   disjoint member sets are safe. *)
let restricted_components g ~members ~skip =
  let k = Array.length members in
  let inside = Hashtbl.create (2 * k) in
  Array.iter (fun v -> if not (skip v) then Hashtbl.replace inside v ()) members;
  let queue = Array.make (max 1 k) 0 in
  let tail = ref 0 in
  let comps = ref [] in
  Array.iter
    (fun v ->
      if Hashtbl.mem inside v then begin
        let start = !tail in
        Hashtbl.remove inside v;
        queue.(!tail) <- v;
        incr tail;
        let head = ref start in
        while !head < !tail do
          let x = queue.(!head) in
          incr head;
          Graph.iter_neighbors g x (fun u ->
              if Hashtbl.mem inside u then begin
                Hashtbl.remove inside u;
                queue.(!tail) <- u;
                incr tail
              end)
        done;
        comps := Array.sub queue start (!tail - start) :: !comps
      end)
    members;
  List.rev !comps

let is_connected g = Graph.n g = 0 || snd (components g) = 1

let eccentricity g v =
  let dist = bfs_dist g v in
  Array.fold_left max 0 dist

(* Exact diameter by all-pairs BFS; fine for simulator-scale graphs. *)
let diameter_exact g =
  let n = Graph.n g in
  let d = ref 0 in
  for v = 0 to n - 1 do
    d := max !d (eccentricity g v)
  done;
  !d

(* Double-sweep lower bound: BFS from an arbitrary node, then from the
   farthest node found.  Exact on trees, a good estimate on planar graphs. *)
let diameter_two_sweep g =
  if Graph.n g = 0 then 0
  else begin
    let dist0 = bfs_dist g 0 in
    let far = ref 0 in
    Array.iteri (fun v d -> if d > dist0.(!far) then far := v) dist0;
    eccentricity g !far
  end

let diameter ?(exact_limit = 3000) g =
  if Graph.n g <= exact_limit then diameter_exact g else diameter_two_sweep g

(* Iterative centralized DFS honouring adjacency order; reference
   implementation against which distributed DFS trees are validated. *)
let dfs_parents g src =
  Graph.check_vertex g src;
  let n = Graph.n g in
  let parent = Array.make n (-2) in
  let next = Array.make n 0 in
  let stack = ref [ src ] in
  parent.(src) <- -1;
  let rec step () =
    match !stack with
    | [] -> ()
    | u :: rest ->
      if next.(u) >= Graph.degree g u then begin
        stack := rest;
        step ()
      end
      else begin
        let v = Graph.nth_neighbor g u next.(u) in
        next.(u) <- next.(u) + 1;
        if parent.(v) = -2 then begin
          parent.(v) <- u;
          stack := v :: !stack
        end;
        step ()
      end
  in
  step ();
  parent

(* A rooted spanning tree T of G (given as a parent array) is a DFS tree iff
   every non-tree edge of G joins an ancestor-descendant pair. *)
let is_dfs_tree g ~root ~parent =
  let n = Graph.n g in
  if n = 0 then true
  else begin
    let tin = Array.make n (-1) and tout = Array.make n (-1) in
    let children = Array.make n [] in
    let ok = ref (parent.(root) = -1) in
    for v = 0 to n - 1 do
      if v <> root then begin
        match parent.(v) with
        | p when p >= 0 && p < n && Graph.mem_edge g p v ->
          children.(p) <- v :: children.(p)
        | _ -> ok := false
      end
    done;
    if !ok then begin
      (* Euler-tour timestamps, iteratively to avoid stack overflow. *)
      let clock = ref 0 in
      let stack = ref [ (root, false) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (v, closing) :: rest ->
          stack := rest;
          if closing then begin
            tout.(v) <- !clock;
            incr clock
          end
          else begin
            tin.(v) <- !clock;
            incr clock;
            stack := (v, true) :: !stack;
            List.iter (fun c -> stack := (c, false) :: !stack) children.(v)
          end
      done;
      (* All vertices reached exactly once? *)
      for v = 0 to n - 1 do
        if tin.(v) < 0 then ok := false
      done;
      if !ok then begin
        let is_ancestor a b = tin.(a) <= tin.(b) && tout.(b) <= tout.(a) in
        Graph.iter_edges g (fun u v ->
            if parent.(u) <> v && parent.(v) <> u then
              if not (is_ancestor u v || is_ancestor v u) then ok := false)
      end
    end;
    !ok
  end
