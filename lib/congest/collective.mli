(** Batched convergecast/broadcast collectives over a communication tree.

    A [ctx] fixes a communication tree once (parents, root) and
    accumulates execution statistics, so the composed subroutines of
    Section 5.2 stop hand-rolling their own convergecast/broadcast
    choreography and stats plumbing.  The batched variants multiplex k
    independent scalar collectives into a single pipelined engine run
    with k payload slots — O(depth + k) rounds instead of k · O(depth),
    which is the executable counterpart of the shortcut pipelining the
    paper cites for its Õ(D) bounds. *)

open Repro_graph

type stats = {
  rounds : int;
  messages : int;
  max_edge_bits : int;
  total_bits : int;
  engine_runs : int;  (** number of engine invocations *)
  collectives : int;  (** logical collective ops (a k-batch counts k) *)
}
(** Full engine statistics ([Engine.stats], nothing dropped) plus the
    execution observability counters. *)

val no_stats : stats
val add : stats -> stats -> stats

val of_engine : ?collectives:int -> Engine.stats -> stats
(** One engine run's statistics as a tally increment (default: one
    logical collective). *)

(** {2 Engine programs}

    Exposed so the differential suite (test/engine_equiv.ml) can run them
    through both [Engine.Make] and [Engine.Reference.Make], like the
    programs in {!Prim}. *)

(** k convergecast+broadcast slots in one pipelined run over a tree.
    Slot values stream up in ascending slot order, one per edge per
    round; the root completes slots in order and pipelines the results
    back down.  k is globally known ([Array.length ops]), so no Done
    control messages are needed.  Output: the k results, at every
    node. *)
module Collect_program : sig
  type input = {
    parent : int;
    slots : int array;  (** per-slot contribution; length >= k *)
    ops : Prim.op array;  (** length exactly k *)
  }

  include Engine.PROGRAM with type input := input and type output = int array
end

(** k part-wise aggregations sharing one partition in one pipelined run:
    the streams interleave over composite keys [part * k + slot].  With
    k = 1 this is message-for-message the scalar [Prim.Partwise_program].
    Output: the k per-part aggregates, at every node (for its own
    part). *)
module Partwise_batch_program : sig
  type input = {
    parent : int;
    part : int;
    values : int array;  (** length >= k: this node's per-slot value *)
    ops : Prim.op array;  (** length exactly k *)
  }

  include Engine.PROGRAM with type input := input and type output = int array
end

(** {2 The context} *)

type ctx

val create :
  ?trace:Repro_trace.Trace.t -> Graph.t -> parent:int array -> root:int -> ctx
(** A collective context over a spanning tree given as parent pointers
    ([-1] at [root]).  Builds no messages; the tree schedule is implicit
    in the pipelined programs.  [?trace] attributes every recorded engine
    run to the tracer's innermost open span (in addition to the tally). *)

val tally : ctx -> stats
(** Statistics accumulated by every primitive issued on this ctx. *)

val reset : ctx -> unit

val record : ?collectives:int -> ctx -> Engine.stats -> unit
(** Fold one externally-run engine execution into the tally (used by
    callers that must run a primitive on a different tree). *)

(** {2 Scalar primitives (one engine run each)} *)

val subtree_agg : ctx -> op:Prim.op -> values:int array -> int array
(** Every node learns the aggregate of its subtree (DESCENDANT-SUM). *)

val ancestor_agg : ctx -> op:Prim.op -> values:int array -> int array
(** Every node learns the aggregate over its root path (ANCESTOR-SUM). *)

val convergecast : ctx -> op:Prim.op -> values:int array -> int
(** The global aggregate, as known at the root after a convergecast. *)

val broadcast : ctx -> value:int -> int array
(** Every node learns the root's value. *)

val exchange : ctx -> sends:(int * int) list array -> (int * int) list array
(** One synchronous neighbour exchange (not tree-bound). *)

val bfs_tree : ctx -> root:int -> int array * int array
(** BFS tree (parents, distances) by flooding, recorded in the tally. *)

val bfs_forest : ctx -> roots:bool array -> int array * int array
(** Multi-source BFS forest, recorded in the tally. *)

(** {2 Batched collectives (k slots, one engine run)} *)

val agg_batch : ctx -> op:Prim.op -> int array array -> int array
(** [agg_batch ctx ~op [|vals_0; ...; vals_(k-1)|]] runs k whole-graph
    reductions and broadcasts all k results in one pipelined run:
    O(depth + k) rounds.  Returns the k global aggregates. *)

val learn_batch : ctx -> (int * int) array -> int array
(** [learn_batch ctx [|(src_0, x_0); ...|]]: k scalar learns (every node
    learns [x_i], held by [src_i]) in one pipelined run.  Values must be
    non-negative (the shared bottom element is [-1]).  Non-source nodes
    share one scratch buffer from the ctx instead of allocating an O(n)
    indicator array per scalar. *)

val learn : ctx -> source:int -> value:int -> int
(** Scalar learn: one-slot [learn_batch]. *)

val partwise_batch :
  ctx ->
  bcast_parent:int array ->
  op:Prim.op ->
  parts:int array ->
  int array array ->
  int array array
(** k part-wise aggregations over one partition in one pipelined run over
    [bcast_parent] (usually the BFS tree, so the pipeline pays depth_BFS).
    Returns k arrays: result [j].(v) is the slot-j aggregate of v's
    part. *)
