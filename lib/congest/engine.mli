(** Synchronous CONGEST execution engine.

    Nodes execute in lock step; per round, each node may send at most one
    message per incident edge, and every message must fit in the per-edge
    bandwidth (Θ(log n) bits by default).  The engine runs until every node
    has finished and no message is in flight.

    [Make] is the event-driven scheduler: it keeps an explicit worklist of
    active nodes (nodes holding a message or not yet finished), so a round
    costs O(active nodes + messages in flight) rather than O(n).
    [Reference.Make] is the original dense scheduler, kept as the oracle of
    the differential suite: both must produce bit-identical outputs and
    statistics on every program. *)

open Repro_graph

module type PROGRAM = sig
  type input
  type state
  type msg
  type output

  val msg_bits : msg -> int

  val init : n:int -> id:int -> neighbors:int array -> input -> state * (int * msg) list
  (** Initial state and round-0 outbox as [(destination, message)] pairs. *)

  val step : round:int -> id:int -> state -> inbox:(int * msg) list -> state * (int * msg) list
  (** One synchronous round. *)

  val finished : state -> bool
  (** Quiescence predicate: [true] when the node will take no action on an
      empty inbox (an incoming message may still wake it up).  Nodes
      reporting [false] are stepped every round even without messages. *)

  val output : state -> output
end

type stats = {
  rounds : int;
  messages : int;
  max_edge_bits : int;
  total_bits : int;
}

val pp_stats : Format.formatter -> stats -> unit
(** One-line rendering (differential-failure reports). *)

exception Bandwidth_exceeded of { src : int; dst : int; bits : int; limit : int }
exception Duplicate_message of { src : int; dst : int }
exception Did_not_terminate of { max_rounds : int }

module Make (P : PROGRAM) : sig
  val run :
    ?trace:Repro_trace.Trace.t ->
    ?max_rounds:int ->
    ?bandwidth:int ->
    Graph.t ->
    input:P.input array ->
    P.output array * stats
  (** [?trace] attributes this run's statistics (rounds, messages, one
      engine invocation) to the tracer's innermost open span.  The
      Reference scheduler takes no tracer: it is the differential oracle
      and stays byte-for-byte at its pre-trace behaviour. *)
end

(** The original O(n)-per-round scheduler, retained as the differential
    oracle (see test/engine_equiv.ml) and as the baseline of the engine
    micro-benchmark (E12). *)
module Reference : sig
  module Make (P : PROGRAM) : sig
    val run :
      ?max_rounds:int ->
      ?bandwidth:int ->
      Graph.t ->
      input:P.input array ->
      P.output array * stats
  end
end
