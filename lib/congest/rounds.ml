(* Round accounting for the charged-cost execution mode.

   The paper builds everything from a small set of black-box primitives
   (planar embedding [4], deterministic low-congestion shortcuts and
   part-wise aggregation [10], ancestor/descendant sums [8]).  We charge each
   primitive its published round bound and count invocations, so experiments
   can report total rounds and a per-subroutine breakdown.

   The unit cost of one part-wise aggregation (PA) over an arbitrary
   partition is modelled as

       pa_cost = c_pa * D * (ceil(log2 n))^2

   which matches the deterministic shortcut guarantee of
   Haeupler–Hershkowitz–Wajc (PODC 2018) up to the polylog exponent; the
   constant and exponent are configurable so sensitivity can be explored.
   Primitives whose exact executed cost we also implement message-level
   (BFS, broadcast, convergecast) are charged their exact bounds. *)

type params = { c_pa : float; log_exponent : int }

let default_params = { c_pa = 1.0; log_exponent = 2 }

type t = {
  n : int;
  d : int;
  params : params;
  mutable total : float;
  breakdown : (string, float * int) Hashtbl.t;
  (* Observability for the executed (message-level) portions: how many
     engine invocations and logical collectives backed the charges. *)
  mutable engine_runs : int;
  mutable collectives : int;
  (* Optional span tracer riding the accountant: every charge attributes
     to the tracer's innermost open span.  [None] is the zero-cost path. *)
  trace : Repro_trace.Trace.t option;
}

let create ?(params = default_params) ?trace ~n ~d () =
  {
    n = max n 2;
    d = max d 1;
    params;
    total = 0.0;
    breakdown = Hashtbl.create 32;
    engine_runs = 0;
    collectives = 0;
    trace;
  }

let tracer t = t.trace

let log2n t = ceil (log (float_of_int t.n) /. log 2.0)

let pa_cost t =
  let lg = log2n t in
  t.params.c_pa *. float_of_int t.d *. (lg ** float_of_int t.params.log_exponent)

let charge t ~label rounds =
  t.total <- t.total +. rounds;
  let prev_r, prev_c =
    match Hashtbl.find_opt t.breakdown label with Some x -> x | None -> (0.0, 0)
  in
  Hashtbl.replace t.breakdown label (prev_r +. rounds, prev_c + 1);
  match t.trace with
  | Some tr -> Repro_trace.Trace.note_charge tr rounds
  | None -> ()

(* One part-wise aggregation, executed in parallel over every part of the
   current partition — the parallelism is exactly what the shortcut
   framework provides, so the charge does not scale with the number of
   parts. *)
let charge_pa ?(units = 1) t ~label =
  charge t ~label (float_of_int units *. pa_cost t);
  match t.trace with
  | Some tr -> Repro_trace.Trace.note_pa tr units
  | None -> ()

(* Published bounds of the paper's named subroutines, in PA units. *)
let charge_embedding t = charge_pa t ~label:"embedding[Prop1]" ~units:1
let charge_spanning_forest t =
  charge_pa t ~label:"spanning-forest[Lem9]" ~units:(int_of_float (log2n t))
let charge_dfs_order t =
  charge_pa t ~label:"dfs-order[Lem11]" ~units:(int_of_float (log2n t))
let charge_weights t = charge_pa t ~label:"weights[Lem12]" ~units:1
let charge_mark_path t =
  let lg = int_of_float (log2n t) in
  charge_pa t ~label:"mark-path[Lem13]" ~units:(lg * lg)
let charge_lca t = charge_pa t ~label:"lca[Lem14]" ~units:1
let charge_detect_face t = charge_pa t ~label:"detect-face[Lem15]" ~units:1
let charge_hidden t = charge_pa t ~label:"hidden[Lem16]" ~units:1
let charge_not_contained t = charge_pa t ~label:"not-contained[Lem17]" ~units:1
let charge_aggregate t label = charge_pa t ~label ~units:1
let charge_reroot t = charge_pa t ~label:"re-root[Lem19]" ~units:1
let charge_exact t ~label rounds = charge t ~label (float_of_int rounds)

let total t = t.total

let note_exec t (s : Collective.stats) =
  t.engine_runs <- t.engine_runs + s.Collective.engine_runs;
  t.collectives <- t.collectives + s.Collective.collectives;
  match t.trace with
  | Some tr ->
    Repro_trace.Trace.note_exec tr ~rounds:s.Collective.rounds
      ~messages:s.Collective.messages ~engine_runs:s.Collective.engine_runs
      ~collectives:s.Collective.collectives
  | None -> ()

let engine_runs t = t.engine_runs
let collectives t = t.collectives

(* Fresh accountant with the same network parameters — used to meter the
   parts of a partition independently before taking the parallel maximum. *)
let like t =
  {
    t with
    total = 0.0;
    breakdown = Hashtbl.create 32;
    engine_runs = 0;
    collectives = 0;
    (* A fresh tracer per part: parts mutate only their own span tree, so
       pool tasks stay data-race free; the caller splices the heaviest
       part's tree back in via [absorb]. *)
    trace =
      Option.map (fun _ -> Repro_trace.Trace.create ~root:"part" ()) t.trace;
  }

(* Merge another accountant's charges into this one (used to absorb the
   heaviest part of a parallel batch: rounds of concurrent executions are
   the maximum, not the sum). *)
let absorb t other =
  t.total <- t.total +. other.total;
  t.engine_runs <- t.engine_runs + other.engine_runs;
  t.collectives <- t.collectives + other.collectives;
  (match (t.trace, other.trace) with
  | Some tr, Some tr' -> Repro_trace.Trace.absorb tr tr'
  | _ -> ());
  Hashtbl.iter
    (fun label (r, c) ->
      let prev_r, prev_c =
        match Hashtbl.find_opt t.breakdown label with
        | Some x -> x
        | None -> (0.0, 0)
      in
      Hashtbl.replace t.breakdown label (prev_r +. r, prev_c + c))
    other.breakdown

(* Charge a parallel batch: absorb only the heaviest per-part ledger
   (concurrent parts cost the max, not the sum).  Ties resolve to the lowest
   part index, so the result is independent of how the batch was
   scheduled. *)
let absorb_heaviest t locals =
  let heaviest =
    Array.fold_left
      (fun acc l ->
        match (l, acc) with
        | None, _ -> acc
        | Some _, None -> l
        | Some l', Some best -> if total l' > total best then l else acc)
      None locals
  in
  Option.iter (absorb t) heaviest

let breakdown t =
  Hashtbl.fold (fun label (r, c) acc -> (label, r, c) :: acc) t.breakdown []
  |> List.sort (fun (_, r1, _) (_, r2, _) -> compare r2 r1)

let invocations t =
  Hashtbl.fold (fun _ (_, c) acc -> acc + c) t.breakdown 0

let label_invocations t label =
  match Hashtbl.find_opt t.breakdown label with Some (_, c) -> c | None -> 0

let pp fmt t =
  Fmt.pf fmt "rounds=%.0f (n=%d, D=%d, PA=%.0f)@." t.total t.n t.d (pa_cost t);
  if t.engine_runs > 0 then
    Fmt.pf fmt "  executed: %d engine runs, %d collectives@." t.engine_runs
      t.collectives;
  List.iter
    (fun (label, r, c) -> Fmt.pf fmt "  %-26s %10.0f rounds %6d calls@." label r c)
    (breakdown t)
