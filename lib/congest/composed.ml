(* Composed message-level subroutines.

   The deterministic subroutines of Section 5.2 decompose into a constant
   number of broadcasts and aggregations once the Phase-1 data (DFS orders,
   depths, subtree intervals) is at the nodes.  This module executes that
   decomposition for real: every step is a run of the synchronous engine,
   and the returned statistics are the sums of genuinely executed rounds,
   messages and bandwidth maxima.

   Communication goes through the collective layer ([Collective]): each
   subroutine builds one communication-tree context and issues *batched*
   collectives against it, so the k scalar values a subroutine needs to
   make global (endpoint positions, sizes, the face-decision data, ...)
   ride a single pipelined engine run of O(depth + k) rounds instead of k
   serial convergecast+broadcast pairs.  The choreography itself is
   written once, against a small [comms] vocabulary, and instantiated
   twice:

   - the public API binds it to the batched [Collective] context;
   - [Reference] binds it to the serial pre-refactor choreography (one
     engine run per scalar hop) and is kept as the oracle for the
     differential suite (test/test_collective.ml): both instantiations
     must produce bit-identical outputs, while the [engine_runs] counter
     exposes the batching win.

   Inputs follow the distributed representation of a spanning tree: each
   node locally knows its parent, depth, LEFT/RIGHT order positions and the
   size of its subtree (so its LEFT interval is [pi_l, pi_l + size)). *)

open Repro_graph

type tree_knowledge = {
  parent : int array; (* -1 at the root *)
  depth : int array;
  pi_left : int array;
  size : int array; (* subtree sizes *)
  root : int; (* the unique node with parent -1 *)
}

type stats = Collective.stats = {
  rounds : int;
  messages : int;
  max_edge_bits : int;
  total_bits : int;
  engine_runs : int;
  collectives : int;
}

(* ------------------------------------------------------------------ *)
(* The communication vocabulary the subroutine cores are written in.    *)
(* Two bindings exist: batched (the public API) and serial (the         *)
(* pre-refactor oracle, [Reference]).                                   *)
(* ------------------------------------------------------------------ *)

type comms = {
  learn_batch : (int * int) array -> int array;
      (* k (source, value) scalar learns; every node ends up knowing all
         k values.  Batched: one pipelined run.  Serial: one
         convergecast + broadcast pair per scalar. *)
  agg_batch : op:Prim.op -> int array array -> int array;
      (* k whole-graph reductions, results known everywhere. *)
  subtree : op:Prim.op -> int array -> int array;
  ancestor : op:Prim.op -> int array -> int array;
  exchange : (int * int) list array -> (int * int) list array;
  partwise :
    bcast_parent:int array ->
    op:Prim.op ->
    parts:int array ->
    int array array ->
    int array array;
      (* k part-wise aggregations sharing one partition. *)
  bfs : root:int -> int array * int array;
  bfs_forest : Graph.t -> roots:bool array -> int array * int array;
      (* takes the graph explicitly: Borůvka floods the chosen forest
         edges, not the ctx graph. *)
}

(* The batched binding: everything runs against one [Collective] ctx,
   which also accumulates the statistics. *)
let batched_comms ctx =
  {
    learn_batch = Collective.learn_batch ctx;
    agg_batch = (fun ~op values -> Collective.agg_batch ctx ~op values);
    subtree = (fun ~op values -> Collective.subtree_agg ctx ~op ~values);
    ancestor = (fun ~op values -> Collective.ancestor_agg ctx ~op ~values);
    exchange = (fun sends -> Collective.exchange ctx ~sends);
    partwise =
      (fun ~bcast_parent ~op ~parts values ->
        Collective.partwise_batch ctx ~bcast_parent ~op ~parts values);
    bfs = (fun ~root -> Collective.bfs_tree ctx ~root);
    bfs_forest =
      (fun graph ~roots ->
        let out, s = Prim.bfs_forest graph ~roots in
        Collective.record ctx s;
        out);
  }

(* The serial binding: the pre-refactor choreography, one engine run per
   scalar hop, kept as the differential oracle.  Each learn rebuilds its
   own O(n) indicator array, exactly as the monolith did. *)
let serial_comms g acc ~parent ~root =
  let n = Graph.n g in
  let bump s = acc := Collective.add !acc (Collective.of_engine s) in
  {
    learn_batch =
      Array.map (fun (source, value) ->
          (* Values are all non-negative (orders, sizes), so -1 is a safe
             bottom element within the O(log n)-bit budget. *)
          let indicator =
            Array.init n (fun x -> if x = source then value else -1)
          in
          let maxes, s1 =
            Prim.subtree_agg g ~parent ~op:Prim.Max ~values:indicator
          in
          bump s1;
          let out, s2 = Prim.broadcast g ~parent ~root ~value:maxes.(root) in
          bump s2;
          out.(0));
    agg_batch =
      (fun ~op values ->
        Array.map
          (fun vals ->
            let maxes, s1 = Prim.subtree_agg g ~parent ~op ~values:vals in
            bump s1;
            let out, s2 = Prim.broadcast g ~parent ~root ~value:maxes.(root) in
            bump s2;
            out.(0))
          values);
    subtree =
      (fun ~op values ->
        let out, s = Prim.subtree_agg g ~parent ~op ~values in
        bump s;
        out);
    ancestor =
      (fun ~op values ->
        let out, s = Prim.ancestor_agg g ~parent ~op ~values in
        bump s;
        out);
    exchange =
      (fun sends ->
        let out, s = Prim.exchange g ~sends in
        bump s;
        out);
    partwise =
      (fun ~bcast_parent ~op ~parts values ->
        Array.map
          (fun vals ->
            let out, s =
              Prim.partwise g ~parent:bcast_parent ~op ~parts ~values:vals
            in
            bump s;
            out)
          values);
    bfs =
      (fun ~root ->
        let out, s = Prim.bfs_tree g ~root in
        bump s;
        out);
    bfs_forest =
      (fun graph ~roots ->
        let out, s = Prim.bfs_forest graph ~roots in
        bump s;
        out);
  }

(* Run a subroutine core against the batched collective layer and return
   its accumulated tally. *)
(* Every public batched subroutine funnels through here: one span per
   subroutine, with every engine run the ctx records attributed to it via
   [Collective.record].  [trace = None] (the default everywhere) is the
   exact pre-trace behaviour. *)
let with_batched ?trace ~name g ~parent ~root f =
  Repro_trace.Trace.within trace name (fun () ->
      let ctx = Collective.create ?trace g ~parent ~root in
      let out = f (batched_comms ctx) in
      (out, Collective.tally ctx))

let with_serial g ~parent ~root f =
  let acc = ref Collective.no_stats in
  let out = f (serial_comms g acc ~parent ~root) in
  (out, !acc)

(* ------------------------------------------------------------------ *)
(* DFS-ORDER-PROBLEM (Lemma 11): fragment merging with depth halving.   *)
(*                                                                      *)
(* Every node starts as its own fragment, knowing only local data: its  *)
(* parent, its depth, its children in rotation order and (after one     *)
(* subtree aggregation) the subtree sizes.  In each phase, fragments    *)
(* whose current depth is odd join the fragment holding their root's    *)
(* parent: the parent node computes the joining root's final relative   *)
(* position locally (positions are final from the start because they    *)
(* are derived from full subtree sizes), sends it across the one tree   *)
(* edge, and the joining fragment broadcasts the offset to its members  *)
(* with one part-wise aggregation.  Fragment depths halve each phase,   *)
(* so O(log n) phases suffice.                                          *)
(*                                                                      *)
(* All communication is executed in the engine: per phase, four         *)
(* one-round neighbour exchanges and ONE part-wise broadcast carrying   *)
(* all three payloads (delta_l, delta_r, new fragment id) as batch      *)
(* slots.  With the tree-pipelined part-wise fallback a phase costs     *)
(* O(depth + k) executed rounds (k = live fragments); the shortcut      *)
(* black box of the paper would make it Õ(D).                           *)
(* ------------------------------------------------------------------ *)

type orders = { pi_left : int array; pi_right : int array }

let dfs_orders_core comms g ~(children : int array array) ~(parent : int array)
    ~(depth : int array) ~root ~(size : int array) ~(bfs_parent : int array) =
  let n = Graph.n g in
  let frag = Array.init n Fun.id in
  let fdepth = Array.copy depth in
  let rel_l = Array.make n 0 in
  let rel_r = Array.make n 0 in
  let all_merged () = Array.for_all (fun f -> f = frag.(root)) frag in
  let phases = ref 0 in
  while not (all_merged ()) do
    incr phases;
    if !phases > 64 then invalid_arg "Composed.dfs_orders: too many phases";
    (* 1. Joining fragment roots ping their tree parents. *)
    let joining v = frag.(v) = v && v <> root && fdepth.(v) land 1 = 1 in
    let sends =
      Array.init n (fun v -> if joining v then [ (parent.(v), 1) ] else [])
    in
    let pings = comms.exchange sends in
    (* 2. Each parent z answers every joining child with its final relative
       LEFT/RIGHT positions and z's fragment id — all z-local data. *)
    let answers_l = Array.make n [] in
    let answers_r = Array.make n [] in
    let answers_f = Array.make n [] in
    Array.iteri
      (fun z received ->
        List.iter
          (fun (child, _) ->
            (* LEFT priority: counterclockwise-most child first, i.e. the
               reverse of the clockwise children order. *)
            let cs = children.(z) in
            let k = Array.length cs in
            let delta_l = ref (rel_l.(z) + 1) in
            (let continue_ = ref true in
             for i = k - 1 downto 0 do
               if !continue_ then
                 if cs.(i) = child then continue_ := false
                 else delta_l := !delta_l + size.(cs.(i))
             done);
            let delta_r = ref (rel_r.(z) + 1) in
            (let continue_ = ref true in
             for i = 0 to k - 1 do
               if !continue_ then
                 if cs.(i) = child then continue_ := false
                 else delta_r := !delta_r + size.(cs.(i))
             done);
            answers_l.(z) <- (child, !delta_l) :: answers_l.(z);
            answers_r.(z) <- (child, !delta_r) :: answers_r.(z);
            answers_f.(z) <- (child, frag.(z)) :: answers_f.(z))
          received)
      pings;
    let got_l = comms.exchange answers_l in
    let got_r = comms.exchange answers_r in
    let got_f = comms.exchange answers_f in
    (* 3. Broadcast (delta_l, delta_r, new fragment id) within each OLD
       fragment: one part-wise MAX aggregation with three batch slots,
       joining roots holding the payloads and everyone else -1 (deltas
       are >= 0). *)
    let pick got v = match got.(v) with [ (_, x) ] -> x | _ -> 0 in
    let payload_values payload =
      Array.init n (fun v -> if frag.(v) = v then payload v else -1)
    in
    let bcast =
      comms.partwise ~bcast_parent:bfs_parent ~op:Prim.Max ~parts:frag
        [|
          payload_values (fun v -> if joining v then pick got_l v else 0);
          payload_values (fun v -> if joining v then pick got_r v else 0);
          payload_values (fun v -> if joining v then pick got_f v else frag.(v));
        |]
    in
    let bl = bcast.(0) and br = bcast.(1) and bf = bcast.(2) in
    (* 4. Local updates. *)
    for v = 0 to n - 1 do
      rel_l.(v) <- rel_l.(v) + bl.(v);
      rel_r.(v) <- rel_r.(v) + br.(v);
      frag.(v) <- bf.(v);
      fdepth.(v) <- fdepth.(v) / 2
    done
  done;
  ({ pi_left = rel_l; pi_right = rel_r }, !phases)

(* Phase 0 of the order computation: subtree sizes (one convergecast) and
   a BFS communication tree, so the pipelined part-wise aggregation pays
   depth_BFS, not depth_T.  Callers that already hold both (phase1) pass
   them in instead of paying the runs again. *)
let dfs_orders_run comms g ~children ~parent ~depth ~root =
  let n = Graph.n g in
  let size = comms.subtree ~op:Prim.Sum (Array.make n 1) in
  let bfs_parent, _ = comms.bfs ~root in
  dfs_orders_core comms g ~children ~parent ~depth ~root ~size ~bfs_parent

let dfs_orders ?trace g ~children ~parent ~depth ~root =
  let (orders, phases), st =
    with_batched ?trace ~name:"composed.dfs-orders" g ~parent ~root
      (fun comms -> dfs_orders_run comms g ~children ~parent ~depth ~root)
  in
  (orders, phases, st)

(* ------------------------------------------------------------------ *)
(* WEIGHTS-PROBLEM (Lemma 12), executed.                                *)
(*                                                                      *)
(* After Phase 1 every node holds: parent, depth, subtree size, its     *)
(* LEFT/RIGHT positions and its full clockwise rotation.  The weight of *)
(* a real fundamental edge e = uv (Definition 2) is then computable by  *)
(* its two endpoints from five one-round exchanges across e itself:     *)
(* positions/depth both ways, the case decided at the deeper            *)
(* endpoint, and the far endpoint's locally-computed p-term.            *)
(* ------------------------------------------------------------------ *)

type local_view = {
  lparent : int array;
  ldepth : int array;
  lsize : int array;
  lrot : int array array; (* full clockwise neighbour order *)
  lchildren : int array array; (* tree children, clockwise *)
  lpi_l : int array;
  lpi_r : int array;
}

(* Package a Phase-1 local view as tree knowledge; the root is recovered
   once here rather than re-scanned by every collective. *)
let tk_of_view (lv : local_view) =
  let root = ref (-1) in
  Array.iteri (fun v p -> if p = -1 then root := v) lv.lparent;
  {
    parent = lv.lparent;
    depth = lv.ldepth;
    pi_left = lv.lpi_l;
    size = lv.lsize;
    root = !root;
  }

(* Rotation position of [y] around [x], normalized so the parent edge is at
   0 (the root keeps its rotation's own origin) — node-local. *)
let lnpos lv x y =
  let rot = lv.lrot.(x) in
  let d = Array.length rot in
  let find t =
    let p = ref (-1) in
    Array.iteri (fun i z -> if z = t then p := i) rot;
    !p
  in
  let anchor = if lv.lparent.(x) >= 0 then find lv.lparent.(x) else 0 in
  ((find y - anchor) + d) mod d

(* pi_left of a child: the node's own position plus the sizes of the
   children explored before it (LEFT priority = counterclockwise-most
   first, i.e. reverse clockwise order) — node-local. *)
let child_pi_left lv x c =
  let cs = lv.lchildren.(x) in
  let acc = ref (lv.lpi_l.(x) + 1) in
  (let continue_ = ref true in
   for i = Array.length cs - 1 downto 0 do
     if !continue_ then
       if cs.(i) = c then continue_ := false else acc := !acc + lv.lsize.(cs.(i))
   done);
  !acc

let child_pi_right lv x c =
  let cs = lv.lchildren.(x) in
  let acc = ref (lv.lpi_r.(x) + 1) in
  (let continue_ = ref true in
   for i = 0 to Array.length cs - 1 do
     if !continue_ then
       if cs.(i) = c then continue_ := false else acc := !acc + lv.lsize.(cs.(i))
   done);
  !acc

(* The child of [x] whose subtree contains LEFT position [pi] — local. *)
let lchild_toward lv x pi =
  let cs = lv.lchildren.(x) in
  let ans = ref (-1) in
  Array.iter
    (fun c ->
      let lo = child_pi_left lv x c in
      if pi >= lo && pi < lo + lv.lsize.(c) then ans := c)
    cs;
  !ans

(* Case encoding exchanged across the edge. *)
let case_unrelated = 0
and case_anc_right = 1 (* ancestor, path child before the edge clockwise *)
and case_anc_left = 2

(* p-term of endpoint [x] for the face of the edge (x, other): the sizes of
   x's children hanging inside — all conditions are rotation-local. *)
let p_term_local lv ~case ~at_ancestor_end x ~other ~w1 =
  let cs = lv.lchildren.(x) in
  let total = ref 0 in
  Array.iter
    (fun c ->
      let inside =
        if case = case_unrelated then
          if at_ancestor_end (* x plays the role of u *) then
            lnpos lv x c < lnpos lv x other
          else lnpos lv x c > lnpos lv x other
        else if at_ancestor_end then begin
          let pc = lnpos lv x c
          and pv = lnpos lv x other
          and pw = lnpos lv x w1 in
          if case = case_anc_right then pw < pc && pc < pv else pv < pc && pc < pw
        end
        else if case = case_anc_right then lnpos lv x c > lnpos lv x other
        else lnpos lv x c < lnpos lv x other
      in
      if inside && c <> w1 then total := !total + lv.lsize.(c))
    cs;
  !total

let weights_core comms g (lv : local_view) =
  let n = Graph.n g in
  (* Fundamental edges, as seen locally: graph neighbours that are not the
     parent and not a child. *)
  let fundamental v =
    Graph.neighbors g v |> Array.to_list
    |> List.filter (fun u -> lv.lparent.(v) <> u && lv.lparent.(u) <> v)
  in
  let swap_all field =
    let sends =
      Array.init n (fun v -> List.map (fun u -> (u, field v)) (fundamental v))
    in
    comms.exchange sends
  in
  let got_pl = swap_all (fun v -> lv.lpi_l.(v)) in
  let got_pr = swap_all (fun v -> lv.lpi_r.(v)) in
  let got_d = swap_all (fun v -> lv.ldepth.(v)) in
  let look got v u = List.assoc u got.(v) in
  (* Each endpoint decides, for each incident fundamental edge, whether it
     is the "u" end (smaller LEFT position) and which case applies; the u
     end then sends the case across so the v end can compute its p-term. *)
  let case_of v u =
    (* v plays "u" (normalized first endpoint); u is the far end. *)
    let pl_far = look got_pl v u in
    if pl_far >= lv.lpi_l.(v) && pl_far < lv.lpi_l.(v) + lv.lsize.(v) then begin
      (* ancestor case: orientation from the rotation at v. *)
      let w1 = lchild_toward lv v pl_far in
      if lnpos lv v u > lnpos lv v w1 then case_anc_right else case_anc_left
    end
    else case_unrelated
  in
  let case_sends =
    Array.init n (fun v ->
        List.filter_map
          (fun u ->
            if lv.lpi_l.(v) < look got_pl v u then Some (u, case_of v u) else None)
          (fundamental v))
  in
  let got_case = comms.exchange case_sends in
  (* The far (v) endpoint answers with its p-term for that case. *)
  let p_sends =
    Array.init n (fun x ->
        List.map
          (fun (u_end, case) ->
            (u_end, p_term_local lv ~case ~at_ancestor_end:false x ~other:u_end ~w1:(-1)))
          got_case.(x))
  in
  let got_p = comms.exchange p_sends in
  (* Now every "u" endpoint computes the weight locally. *)
  let results = ref [] in
  for u = 0 to n - 1 do
    List.iter
      (fun v ->
        if lv.lpi_l.(u) < look got_pl u v then begin
          let case = case_of u v in
          let pv = look got_p u v in
          let pl_v = look got_pl u v
          and pr_v = look got_pr u v
          and d_v = look got_d u v in
          let w =
            if case = case_unrelated then begin
              let pu = p_term_local lv ~case ~at_ancestor_end:true u ~other:v ~w1:(-1) in
              pu + pv + pl_v - (lv.lpi_l.(u) + lv.lsize.(u)) + 1
            end
            else begin
              let w1 = lchild_toward lv u pl_v in
              let pu = p_term_local lv ~case ~at_ancestor_end:true u ~other:v ~w1 in
              if case = case_anc_right then
                pu + pv + (pl_v - child_pi_left lv u w1) - (d_v - (lv.ldepth.(u) + 1))
              else
                pu + pv + (pr_v - child_pi_right lv u w1) - (d_v - (lv.ldepth.(u) + 1))
            end
          in
          results := ((u, v), w) :: !results
        end)
      (fundamental u)
  done;
  !results

let weights ?trace g (lv : local_view) =
  let tk = tk_of_view lv in
  with_batched ?trace ~name:"composed.weights" g ~parent:tk.parent ~root:tk.root
    (fun comms -> weights_core comms g lv)

(* ------------------------------------------------------------------ *)
(* Phase 1 (Section 5.3), executed end to end: from purely local data   *)
(* (parent pointers, depths, rotations) to the full local view — sizes, *)
(* LEFT/RIGHT orders — via subtree aggregation and fragment merging.    *)
(* ------------------------------------------------------------------ *)

let phase1_core comms g ~(rot_orders : int array array) ~(parent : int array)
    ~(depth : int array) ~root =
  let n = Graph.n g in
  (* Tree children in clockwise order starting after the parent edge —
     node-local from the rotation. *)
  let children =
    Array.init n (fun v ->
        let rot = rot_orders.(v) in
        let d = Array.length rot in
        let anchor =
          if parent.(v) < 0 then 0
          else begin
            let p = ref 0 in
            Array.iteri (fun i y -> if y = parent.(v) then p := i) rot;
            !p
          end
        in
        let out = ref [] in
        for k = d - 1 downto 0 do
          let y = rot.((anchor + k) mod d) in
          if parent.(y) = v then out := y :: !out
        done;
        Array.of_list !out)
  in
  (* One subtree aggregation and one BFS tree, shared with the order
     computation (the monolith paid the size convergecast twice). *)
  let size = comms.subtree ~op:Prim.Sum (Array.make n 1) in
  let bfs_parent, _ = comms.bfs ~root in
  let orders, _ =
    dfs_orders_core comms g ~children ~parent ~depth ~root ~size ~bfs_parent
  in
  ( {
      lparent = parent;
      ldepth = depth;
      lsize = size;
      lrot = rot_orders;
      lchildren = children;
      lpi_l = orders.pi_left;
      lpi_r = orders.pi_right;
    },
    bfs_parent )

let phase1 ?trace g ~rot_orders ~parent ~depth ~root =
  let (lv, _), st =
    with_batched ?trace ~name:"composed.phase1" g ~parent ~root (fun comms ->
        phase1_core comms g ~rot_orders ~parent ~depth ~root)
  in
  (lv, st)

(* Is [x] an ancestor of [z]?  Purely local once pi_left(z) is known. *)
let is_ancestor_local (tk : tree_knowledge) ~anc ~desc_pi =
  desc_pi >= tk.pi_left.(anc) && desc_pi < tk.pi_left.(anc) + tk.size.(anc)

(* LCA-PROBLEM (Lemma 14): every node learns the LCA of u and v; executed
   as one two-slot batched learn (the endpoint positions) plus one
   aggregation.  Returns the learned positions too — every composed
   caller needs them next. *)
let lca_core comms n (tk : tree_knowledge) ~u ~v =
  let got = comms.learn_batch [| (u, tk.pi_left.(u)); (v, tk.pi_left.(v)) |] in
  let pi_u = got.(0) and pi_v = got.(1) in
  (* Each node checks locally whether it is a common ancestor; the LCA is
     the deepest one — one MAX aggregation over (depth, id). *)
  let enc x d = (d * (n + 1)) + x in
  let values =
    Array.init n (fun x ->
        if is_ancestor_local tk ~anc:x ~desc_pi:pi_u
           && is_ancestor_local tk ~anc:x ~desc_pi:pi_v
        then enc x tk.depth.(x)
        else -1)
  in
  let best = (comms.agg_batch ~op:Prim.Max [| values |]).(0) in
  (best mod (n + 1), pi_u, pi_v)

let lca ?trace g (tk : tree_knowledge) ~u ~v =
  with_batched ?trace ~name:"composed.lca" g ~parent:tk.parent ~root:tk.root
    (fun comms ->
      let w, _, _ = lca_core comms (Graph.n g) tk ~u ~v in
      w)

(* MARK-PATH-PROBLEM (Lemma 13): each node learns whether it lies on the
   tree path between u and v.  With the Phase-1 data this needs only the
   two endpoint positions and the LCA data: x is on the path iff x is an
   ancestor of u or of v, and the LCA is an ancestor of x.  The LCA's
   position and size ride one batched learn; [extra] lets callers
   (detect-face, hidden) piggyback their own scalars on that run. *)
let mark_path_core comms n (tk : tree_knowledge) ~u ~v ~extra =
  let w, pi_u, pi_v = lca_core comms n tk ~u ~v in
  let slots =
    Array.append [| (w, tk.pi_left.(w)); (w, tk.size.(w)) |] extra
  in
  let got = comms.learn_batch slots in
  let pi_w = got.(0) and size_w = got.(1) in
  let marked =
    Array.init n (fun x ->
        (is_ancestor_local tk ~anc:x ~desc_pi:pi_u
        || is_ancestor_local tk ~anc:x ~desc_pi:pi_v)
        && tk.pi_left.(x) >= pi_w
        && tk.pi_left.(x) < pi_w + size_w)
  in
  (marked, Array.sub got 2 (Array.length extra))

let mark_path ?trace g (tk : tree_knowledge) ~u ~v =
  with_batched ?trace ~name:"composed.mark-path" g ~parent:tk.parent
    ~root:tk.root (fun comms ->
      fst (mark_path_core comms (Graph.n g) tk ~u ~v ~extra:[||]))

(* ------------------------------------------------------------------ *)
(* DETECT-FACE-PROBLEM (Lemma 15), executed: every node learns whether  *)
(* it lies on the border or in the interior of the fundamental face of  *)
(* a given real fundamental edge.                                       *)
(*                                                                      *)
(* The endpoints compute locally (rotation + subtree sizes) the          *)
(* interval of LEFT positions taken by their descendants hanging inside *)
(* the face (the paper's I(u), I(v)); these intervals plus the          *)
(* endpoints' positions, the case and the LCA data all ride the         *)
(* mark-path batch — three engine runs in total — after which every     *)
(* node decides membership with Remark 1's local tests.                 *)
(* ------------------------------------------------------------------ *)

(* Interval of LEFT (or RIGHT) positions of the descendants of [x] hanging
   inside the face — x-local.  Returns (lo, len). *)
let inside_interval lv ~case ~at_ancestor_end ~pi_right_order x ~other ~w1 =
  let cs = lv.lchildren.(x) in
  let lo = ref max_int and len = ref 0 in
  Array.iter
    (fun c ->
      let inside =
        if case = case_unrelated then
          if at_ancestor_end then lnpos lv x c < lnpos lv x other
          else lnpos lv x c > lnpos lv x other
        else if at_ancestor_end then begin
          let pc = lnpos lv x c and pv = lnpos lv x other and pw = lnpos lv x w1 in
          if case = case_anc_right then pw < pc && pc < pv else pv < pc && pc < pw
        end
        else if case = case_anc_right then lnpos lv x c > lnpos lv x other
        else lnpos lv x c < lnpos lv x other
      in
      if inside && c <> w1 then begin
        let start =
          if pi_right_order then child_pi_right lv x c else child_pi_left lv x c
        in
        lo := min !lo start;
        len := !len + lv.lsize.(c)
      end)
    cs;
  if !len = 0 then (0, 0) else (!lo, !len)

type face_membership = { border : bool array; inside : bool array }

let detect_face_core comms n (lv : local_view) ~u ~v ~extra =
  let tk = tk_of_view lv in
  (* The u endpoint (smaller LEFT position) decides the case; all data it
     broadcasts is u-local. *)
  let u, v = if lv.lpi_l.(u) < lv.lpi_l.(v) then (u, v) else (v, u) in
  let is_anc =
    lv.lpi_l.(v) >= lv.lpi_l.(u) && lv.lpi_l.(v) < lv.lpi_l.(u) + lv.lsize.(u)
  in
  let w1 = if is_anc then lchild_toward lv u lv.lpi_l.(v) else -1 in
  let case =
    if not is_anc then case_unrelated
    else if lnpos lv u v > lnpos lv u w1 then case_anc_right
    else case_anc_left
  in
  let right_order = case = case_anc_left in
  let iu_lo, iu_len =
    inside_interval lv ~case ~at_ancestor_end:true ~pi_right_order:right_order u
      ~other:v ~w1
  in
  let iv_lo, iv_len =
    inside_interval lv ~case ~at_ancestor_end:false ~pi_right_order:right_order v
      ~other:u ~w1:(-1)
  in
  let pi = if case = case_anc_left then lv.lpi_r else lv.lpi_l in
  (* All twelve decision scalars ride the mark-path batch (plus whatever
     the caller piggybacks). *)
  let face_slots =
    [|
      (u, case);
      (u, pi.(u));
      (v, pi.(v));
      (u, lv.lsize.(u));
      (v, lv.lsize.(v));
      (u, iu_lo);
      (u, iu_len);
      (v, iv_lo);
      (v, iv_len);
      ( u,
        if case = case_unrelated then 0
        else if case = case_anc_left then child_pi_right lv u w1
        else child_pi_left lv u w1 );
      (* In the ancestor cases the subtree-membership tests still need
         LEFT positions (subtree intervals are LEFT intervals). *)
      (u, lv.lpi_l.(u));
      (v, lv.lpi_l.(v));
    |]
  in
  (* Border: the executed MARK-PATH, carrying the face scalars. *)
  let border, got =
    mark_path_core comms n tk ~u ~v ~extra:(Array.append face_slots extra)
  in
  let case_b = got.(0) in
  let pi_u = got.(1)
  and pi_v = got.(2)
  and size_u = got.(3)
  and size_v = got.(4)
  and iu_lo = got.(5)
  and iu_len = got.(6)
  and iv_lo = got.(7)
  and iv_len = got.(8)
  and pi_w1 = got.(9)
  and pil_u = got.(10)
  and pil_v = got.(11) in
  (* Local decision at every node. *)
  let pi = if case_b = case_anc_left then lv.lpi_r else lv.lpi_l in
  let inside = Array.make n false in
  for z = 0 to n - 1 do
    if not border.(z) then begin
      let in_tu = lv.lpi_l.(z) > pil_u && lv.lpi_l.(z) < pil_u + size_u in
      let in_tv = lv.lpi_l.(z) >= pil_v && lv.lpi_l.(z) < pil_v + size_v in
      let pz = pi.(z) in
      inside.(z) <-
        (if case_b = case_unrelated then
           if in_tu then pz >= iu_lo && pz < iu_lo + iu_len
           else if in_tv then pz >= iv_lo && pz < iv_lo + iv_len
           else pz > pi_u + size_u - 1 && pz < pi_v
         else if not in_tu then false
         else if in_tv then pz >= iv_lo && pz < iv_lo + iv_len
         else if pz >= iu_lo && pz < iu_lo + iu_len then true
         else pz >= pi_w1 && pz < pi_v)
    end
  done;
  ({ border; inside }, Array.sub got 12 (Array.length extra))

let detect_face ?trace g (lv : local_view) ~u ~v =
  let tk = tk_of_view lv in
  with_batched ?trace ~name:"composed.detect-face" g ~parent:tk.parent
    ~root:tk.root (fun comms ->
      fst (detect_face_core comms (Graph.n g) lv ~u ~v ~extra:[||]))

(* ------------------------------------------------------------------ *)
(* End-to-end executed separator, Phase 3 case (Section 5.3): when some *)
(* real fundamental face has weight in [n/3, 2n/3], its border path is  *)
(* a cycle separator (Lemma 5).  Pipeline: Phase 1, executed weights, a *)
(* RANGE aggregation to elect an in-range edge, and the marking of its  *)
(* border path.  Returns None when no face is in range (the remaining   *)
(* phases are run in the charged model by Repro_core.Separator).        *)
(* ------------------------------------------------------------------ *)

let separator_phase3_core comms g ~rot_orders ~parent ~depth ~root =
  let n = Graph.n g in
  let lv, bfs_parent = phase1_core comms g ~rot_orders ~parent ~depth ~root in
  let edge_weights = weights_core comms g lv in
  (* RANGE-PROBLEM: elect one in-range edge, known to everyone — one
     part-wise MAX over the single whole-graph part, with the edge encoded
     into an identifier held by its first endpoint.  The BFS tree from
     Phase 1 is reused as the pipeline tree. *)
  let encode (u, v) = (u * n) + v in
  let candidate =
    Array.make n (-1) (* per node: its best in-range incident edge *)
  in
  List.iter
    (fun ((u, v), w) ->
      if 3 * w >= n && 3 * w <= 2 * n then
        candidate.(u) <- max candidate.(u) (encode (u, v)))
    edge_weights;
  let elected =
    (comms.partwise ~bcast_parent:bfs_parent ~op:Prim.Max
       ~parts:(Array.make n 0) [| candidate |]).(0)
  in
  if elected.(root) < 0 then None
  else begin
    let u = elected.(root) / n and v = elected.(root) mod n in
    let tk = tk_of_view lv in
    let marked, _ = mark_path_core comms n tk ~u ~v ~extra:[||] in
    Some ((u, v), marked)
  end

let separator_phase3 ?trace g ~rot_orders ~parent ~depth ~root =
  with_batched ?trace ~name:"composed.separator-phase3" g ~parent ~root
    (fun comms -> separator_phase3_core comms g ~rot_orders ~parent ~depth ~root)

(* ------------------------------------------------------------------ *)
(* JOIN iteration (Lemma 2), executed.                                  *)
(*                                                                      *)
(* One halving iteration of JOIN needs, per active component: the       *)
(* anchor edge (the partial-tree endpoint of maximum DFS depth with an  *)
(* unvisited neighbour in the component), whether the component holds   *)
(* any still-marked node, and — once the preferring forest is rooted    *)
(* at the anchors — the attach target (the deepest marked node of the   *)
(* component's tree).  The per-component scalars for ALL components     *)
(* ride slot-batched part-wise MAX aggregations over the component      *)
(* partition: one two-slot batch for anchor + marked, then (after the   *)
(* host-side forest rooting, which the charged model bills as Lemmas 9  *)
(* and 11) a one-slot batch for the targets, and finally a two-slot     *)
(* whole-graph SUM carrying the post-attach bookkeeping (surviving      *)
(* marked nodes, surviving unvisited nodes).  Four engine runs per      *)
(* iteration, where the serial choreography pays one run per part-wise  *)
(* slot and a convergecast + broadcast pair per global sum.             *)
(*                                                                      *)
(* Candidate codes are computed node-locally after a single one-round   *)
(* exchange (visited nodes tell their neighbours their partial-tree     *)
(* depth); MAX over the codes then realises exactly the host            *)
(* tie-breaks: anchor = deepest visited endpoint, ties to the           *)
(* lexicographically smallest (u, v); target = deepest marked node,     *)
(* ties to the first in component order.  Codes are O(n^3) and so stay  *)
(* within the O(log n)-bit message budget.                              *)
(*                                                                      *)
(* [forest] and [attach] are host callbacks between the batches: the    *)
(* first decodes the elected anchors, roots the preferring forests and  *)
(* returns the node-local target codes; the second decodes the elected  *)
(* targets, activates the paths and returns the node-local bookkeeping  *)
(* bits.                                                                *)
(* ------------------------------------------------------------------ *)

let join_elections_core comms g ~bcast_parent ~parts ~visited_depth ~marked
    ~forest ~attach =
  let n = Graph.n g in
  let sends =
    Array.init n (fun u ->
        if visited_depth.(u) >= 0 then
          Array.to_list
            (Array.map (fun v -> (v, visited_depth.(u))) (Graph.neighbors g u))
        else [])
  in
  let heard = comms.exchange sends in
  let anchor_code = Array.make n 0 in
  let marked_flag = Array.make n 0 in
  for v = 0 to n - 1 do
    (* Candidates exist only at unvisited nodes; nodes outside the active
       components sit in a dummy part whose aggregates nobody reads. *)
    if visited_depth.(v) < 0 then begin
      List.iter
        (fun (u, du) ->
          let code = 1 + (du * n * n) + ((n * n) - 1 - ((u * n) + v)) in
          if code > anchor_code.(v) then anchor_code.(v) <- code)
        heard.(v);
      if marked.(v) then marked_flag.(v) <- 1
    end
  done;
  let a =
    comms.partwise ~bcast_parent ~op:Prim.Max ~parts
      [| anchor_code; marked_flag |]
  in
  let target_code = forest a in
  let b =
    (comms.partwise ~bcast_parent ~op:Prim.Max ~parts [| target_code |]).(0)
  in
  let remaining_flag, unvisited_flag = attach b in
  let t = comms.agg_batch ~op:Prim.Sum [| remaining_flag; unvisited_flag |] in
  (a, b, t)

let join_elections ?trace g ~bcast_parent ~root ~parts ~visited_depth ~marked
    ~forest ~attach =
  with_batched ?trace ~name:"composed.join-elections" g ~parent:bcast_parent
    ~root (fun comms ->
      join_elections_core comms g ~bcast_parent ~parts ~visited_depth ~marked
        ~forest ~attach)

(* ------------------------------------------------------------------ *)
(* Spanning forests by Borůvka (Lemma 9), executed.                     *)
(*                                                                      *)
(* Each phase: every node learns its neighbours' fragment ids (one      *)
(* exchange), proposes its cheapest outgoing edge, the fragment elects  *)
(* the minimum with one part-wise aggregation (parts = fragments), and  *)
(* the merged fragment ids are broadcast (one more part-wise            *)
(* aggregation).  With Lemma 9's 0/1 weights — 0 inside a part of the   *)
(* input partition, 1 across — stopping as soon as every cheapest       *)
(* outgoing edge has weight 1 yields a spanning tree of every part, in  *)
(* parallel.                                                            *)
(*                                                                      *)
(* Chain resolution inside a phase (fragments whose chosen edges form   *)
(* merge trees) is computed from the elected edges, which every node    *)
(* already holds — the classic pointer-halving rounds are elided and    *)
(* their O(log n) factor is part of the charged model.                  *)
(* ------------------------------------------------------------------ *)

let spanning_forest_core comms g ~parts =
  let n = Graph.n g in
  let frag = Array.init n Fun.id in
  let chosen = Hashtbl.create n in
  let encode u v = if u < v then (u * n) + v else (v * n) + u in
  (* One communication tree for all the part-wise aggregations. *)
  let bcast_parent, _ = comms.bfs ~root:0 in
  let continue_ = ref (n > 1) in
  let phases = ref 0 in
  while !continue_ do
    incr phases;
    if !phases > 64 then invalid_arg "Composed.spanning_forest: too many phases";
    (* 1. Learn neighbour fragment ids. *)
    let sends =
      Array.init n (fun v ->
          Graph.neighbors g v |> Array.to_list |> List.map (fun u -> (u, frag.(v))))
    in
    let nbr_frags = comms.exchange sends in
    (* 2. Local cheapest outgoing edge: weight 0 inside the input part,
       weight 1 across parts (Lemma 9's function). *)
    (* The sentinel must still fit the O(log n) message budget. *)
    let sentinel = n * n in
    let candidate =
      Array.init n (fun v ->
          List.fold_left
            (fun acc (u, fu) ->
              if fu = frag.(v) then acc
              else begin
                let w = if parts.(u) = parts.(v) then 0 else 1 in
                (* Lemma 9 stops before crossing parts. *)
                if w = 1 then acc
                else min acc (encode u v)
              end)
            sentinel nbr_frags.(v))
    in
    (* 3. Fragment-wide minimum (part-wise aggregation over fragments). *)
    let elected =
      (comms.partwise ~bcast_parent ~op:Prim.Min ~parts:frag [| candidate |]).(0)
    in
    (* 4. Record the elected edges and inform the far endpoints. *)
    let uf = Repro_util.Union_find.create n in
    Array.iteri (fun v f -> ignore (Repro_util.Union_find.union uf v f)) frag;
    let merged = ref false in
    Array.iteri
      (fun v e ->
        if v = frag.(v) && e <> sentinel then begin
          let a = e / n and b = e mod n in
          if Repro_util.Union_find.union uf a b then begin
            merged := true;
            Hashtbl.replace chosen (encode a b) ()
          end
        end)
      elected;
    if not !merged then continue_ := false
    else begin
      (* 5. Broadcast the new fragment ids (canonical representative). *)
      for v = 0 to n - 1 do
        frag.(v) <- Repro_util.Union_find.find uf v
      done;
      (* The id refresh costs one more part-wise broadcast. *)
      let _ =
        comms.partwise ~bcast_parent ~op:Prim.Min ~parts:frag
          [| Array.init n Fun.id |]
      in
      ()
    end
  done;
  (* Root every fragment at its representative and orient by flooding over
     the chosen edges only. *)
  let forest_edges =
    Hashtbl.fold (fun e () acc -> (e / n, e mod n) :: acc) chosen []
  in
  let forest = Graph.of_edges ~n forest_edges in
  let roots = Array.init n (fun v -> frag.(v) = v) in
  let parent, depth = comms.bfs_forest forest ~roots in
  ((parent, depth, frag), !phases)

let spanning_forest ?trace g ?parts () =
  let n = Graph.n g in
  let parts = match parts with Some p -> p | None -> Array.make n 0 in
  (* No spanning tree exists yet, so the ctx carries no communication
     tree: Borůvka only issues exchanges, part-wise pipelines and BFS
     floods, which are tree-free — the ctx is just the tally. *)
  let (out, phases), st =
    with_batched ?trace ~name:"composed.spanning-forest" g
      ~parent:(Array.make n (-1)) ~root:0 (fun comms ->
        spanning_forest_core comms g ~parts)
  in
  (out, phases, st)

(* ------------------------------------------------------------------ *)
(* SCREENING TALLY: the executed side of the input screen (one-sided   *)
(* property testing in the Levi–Medina–Ron spirit).  One BFS flood     *)
(* doubles as the connectivity probe and the communication tree; the   *)
(* per-vertex tallies the host prepared (degree, face leadership,      *)
(* minimal violating-edge code) then ride the slots of one part-wise   *)
(* pipeline each for Sum and Min: Õ(D) total, like every other         *)
(* collective here.  On a disconnected input the aggregation is        *)
(* skipped — the reach count already decides the verdict.              *)
(* ------------------------------------------------------------------ *)

let screen_tally_core comms g ~root ~sums ~mins =
  let n = Graph.n g in
  let bfs_parent, dist = comms.bfs ~root in
  let reached =
    Array.fold_left (fun a d -> if d >= 0 then a + 1 else a) 0 dist
  in
  if reached < n then
    (Array.map (fun _ -> 0) sums, Array.map (fun _ -> 0) mins, reached)
  else begin
    (* Whole graph = one part; results read off at the root. *)
    let parts = Array.make n 0 in
    let slot op rows =
      if Array.length rows = 0 then [||]
      else
        comms.partwise ~bcast_parent:bfs_parent ~op ~parts rows
        |> Array.map (fun res -> res.(root))
    in
    (slot Prim.Sum sums, slot Prim.Min mins, reached)
  end

let screen_tally ?trace g ~root ~sums ~mins =
  let n = Graph.n g in
  let (s, m, reached), st =
    with_batched ?trace ~name:"composed.screen" g ~parent:(Array.make n (-1))
      ~root (fun comms -> screen_tally_core comms g ~root ~sums ~mins)
  in
  (s, m, reached, st)

(* ------------------------------------------------------------------ *)
(* RE-ROOT-PROBLEM (Lemma 19), executed: same tree edges, new root.     *)
(*                                                                      *)
(* One two-slot batched learn (the new root's LEFT position and depth)  *)
(* plus one ancestor-MAX aggregation (Proposition 5) so every node      *)
(* learns the depth of its LCA with the new root; then all updates are  *)
(* local.  Note: Lemma 19's printed update for nodes that are neither   *)
(* ancestors nor descendants of the new root (d(v) + d(v0)) omits the   *)
(* -2*d(LCA) term; the implementation computes the true distance and    *)
(* the suite checks it against centralized re-rooting.                  *)
(* ------------------------------------------------------------------ *)

let reroot_core comms n (lv : local_view) ~new_root =
  let got =
    comms.learn_batch
      [| (new_root, lv.lpi_l.(new_root)); (new_root, lv.ldepth.(new_root)) |]
  in
  let pi_r0 = got.(0) and d_r0 = got.(1) in
  (* Depth of every node's LCA with the new root: the deepest of its own
     ancestors (itself included) that is also an ancestor of the new
     root — one executed ancestor-MAX aggregation. *)
  let anc_values =
    Array.init n (fun a ->
        if pi_r0 >= lv.lpi_l.(a) && pi_r0 < lv.lpi_l.(a) + lv.lsize.(a) then
          lv.ldepth.(a) + 1
        else 0)
  in
  let lca_depth1 = comms.ancestor ~op:Prim.Max anc_values in
  let parent' = Array.make n (-1) in
  let depth' = Array.make n 0 in
  for v = 0 to n - 1 do
    let is_anc = pi_r0 >= lv.lpi_l.(v) && pi_r0 < lv.lpi_l.(v) + lv.lsize.(v) in
    if v = new_root then begin
      parent'.(v) <- -1;
      depth'.(v) <- 0
    end
    else begin
      let d_lca = lca_depth1.(v) - 1 in
      depth'.(v) <- lv.ldepth.(v) + d_r0 - (2 * d_lca);
      if is_anc then
        (* Flip towards the new root: the child whose interval holds it. *)
        parent'.(v) <- lchild_toward lv v pi_r0
      else parent'.(v) <- lv.lparent.(v)
    end
  done;
  (parent', depth')

let reroot ?trace g (lv : local_view) ~new_root =
  let tk = tk_of_view lv in
  with_batched ?trace ~name:"composed.reroot" g ~parent:tk.parent ~root:tk.root
    (fun comms -> reroot_core comms (Graph.n g) lv ~new_root)

(* ------------------------------------------------------------------ *)
(* HIDDEN-PROBLEM (Lemma 16), executed: given the fundamental edge e    *)
(* and a T-leaf t inside its face, every node learns which of its own   *)
(* incident real fundamental edges hide t (Definition 4).               *)
(*                                                                      *)
(* After DETECT-FACE (with t's LEFT and RIGHT positions riding its      *)
(* batch), the verdict for an edge f = ab is computed at its pi-smaller  *)
(* endpoint from node-local data plus one-round exchanges across f       *)
(* itself (positions, sizes, membership, the far side's t-verdict and    *)
(* inside-interval lengths, and — for Definition 4's condition 2 — the   *)
(* escape verdict evaluated at u itself).  A leaf can only lie on the    *)
(* border of F_f as one of f's endpoints, which keeps every interior     *)
(* test a pure interval comparison.                                      *)
(* ------------------------------------------------------------------ *)

let hidden_core comms g (lv : local_view) ~u ~v ~t =
  let n = Graph.n g in
  let u, v = if lv.lpi_l.(u) < lv.lpi_l.(v) then (u, v) else (v, u) in
  (* t's positions ride the detect-face batch. *)
  let fm, got_t =
    detect_face_core comms n lv ~u ~v
      ~extra:[| (t, lv.lpi_l.(t)); (t, lv.lpi_r.(t)) |]
  in
  let pi_t_l = got_t.(0) and pi_t_r = got_t.(1) in
  let fundamental x =
    Graph.neighbors g x |> Array.to_list
    |> List.filter (fun y -> lv.lparent.(x) <> y && lv.lparent.(y) <> x)
  in
  let swap field =
    let sends =
      Array.init n (fun x -> List.map (fun y -> (y, field x y)) (fundamental x))
    in
    comms.exchange sends
  in
  let member_state x = if fm.inside.(x) then 2 else if fm.border.(x) then 1 else 0 in
  (* Per-edge exchanged data (the sender is the field's first argument). *)
  let got_pl = swap (fun x _ -> lv.lpi_l.(x)) in
  let got_pr = swap (fun x _ -> lv.lpi_r.(x)) in
  let got_sz = swap (fun x _ -> lv.lsize.(x)) in
  let got_mem = swap (fun x _ -> member_state x) in
  let look got x y = List.assoc y got.(x) in
  (* t-verdict at an endpoint x for the edge towards y, as a bitfield:
     bit0 = t lies in my strict subtree; bit1 = inside under the ">"
     (unrelated / anc-right) rule; bit2 = inside under the "<" (anc-left)
     rule.  Only the non-ancestor-end rules are needed from the far side. *)
  let t_verdict x y =
    if not (pi_t_l > lv.lpi_l.(x) && pi_t_l < lv.lpi_l.(x) + lv.lsize.(x)) then 0
    else begin
      let c = lchild_toward lv x pi_t_l in
      let gt = lnpos lv x c > lnpos lv x y in
      1 + (if gt then 2 else 0) + if not gt then 4 else 0
    end
  in
  let got_tv = swap t_verdict in
  (* Inside-interval lengths at an endpoint x for the edge to y, under both
     non-ancestor-end rules (the far side cannot know f's orientation). *)
  let inside_len x y ~rule_gt =
    Array.fold_left
      (fun acc c ->
        let inside =
          if rule_gt then lnpos lv x c > lnpos lv x y
          else lnpos lv x c < lnpos lv x y
        in
        if inside then acc + lv.lsize.(c) else acc)
      0 lv.lchildren.(x)
  in
  let got_len_gt = swap (fun x y -> inside_len x y ~rule_gt:true) in
  let got_len_lt = swap (fun x y -> inside_len x y ~rule_gt:false) in
  (* Orientation of f, sent from the ancestor end (only it can tell):
     0 = not my call, 1 = anc-right, 2 = anc-left. *)
  let got_orient =
    swap (fun x y ->
        let x_anc_y =
          lv.lpi_l.(y) >= lv.lpi_l.(x) && lv.lpi_l.(y) < lv.lpi_l.(x) + lv.lsize.(x)
        in
        if not x_anc_y then 0
        else begin
          let w1 = lchild_toward lv x lv.lpi_l.(y) in
          if lnpos lv x y > lnpos lv x w1 then 1 else 2
        end)
  in
  (* Definition 4 condition-2 verdict, evaluated at u itself for each of its
     incident fundamental edges f = (u, other): does some part of
     T_u ∩ F̊_e escape the closed region of F_f?  Everything u needs about
     the far endpoint has been exchanged above. *)
  let e_w1 =
    let anc =
      lv.lpi_l.(v) >= lv.lpi_l.(u) && lv.lpi_l.(v) < lv.lpi_l.(u) + lv.lsize.(u)
    in
    if anc then lchild_toward lv u lv.lpi_l.(v) else -1
  in
  let e_case =
    if e_w1 < 0 then case_unrelated
    else if lnpos lv u v > lnpos lv u e_w1 then case_anc_right
    else case_anc_left
  in
  let e_inside_child c =
    let p = lnpos lv u c in
    if e_case = case_unrelated then p < lnpos lv u v
    else begin
      let pv = lnpos lv u v and pw = lnpos lv u e_w1 in
      if e_case = case_anc_right then pw < p && p < pv else pv < p && p < pw
    end
  in
  let escape_verdict x other =
    if x <> u then 0
    else begin
      (* f's shape at u: u may be the ancestor end, the descendant end, or
         unrelated to [other]; the descendant end learns the orientation
         from the exchange above. *)
      let u_anc_other =
        lv.lpi_l.(other) >= lv.lpi_l.(u)
        && lv.lpi_l.(other) < lv.lpi_l.(u) + lv.lsize.(u)
      in
      let other_anc_u =
        lv.lpi_l.(u) >= look got_pl u other
        && lv.lpi_l.(u) < look got_pl u other + look got_sz u other
      in
      let f_w1 = if u_anc_other then lchild_toward lv u lv.lpi_l.(other) else -1 in
      let f_case =
        if u_anc_other then
          if lnpos lv u other > lnpos lv u f_w1 then case_anc_right
          else case_anc_left
        else if other_anc_u then
          if look got_orient u other = 1 then case_anc_right else case_anc_left
        else case_unrelated
      in
      let f_inside_child c =
        let p = lnpos lv u c in
        if f_case = case_unrelated then
          (* u is an endpoint of the unrelated edge; the interior side at u
             follows u's role under the normalization. *)
          if lv.lpi_l.(u) < look got_pl u other then p < lnpos lv u other
          else p > lnpos lv u other
        else if other_anc_u then
          (* u is the descendant end: Claim 4 (ii) and its mirror. *)
          if f_case = case_anc_right then p > lnpos lv u other
          else p < lnpos lv u other
        else begin
          let pv = lnpos lv u other and pw = lnpos lv u f_w1 in
          if f_case = case_anc_right then pw < p && p < pv else pv < p && p < pw
        end
      in
      let branch_escapes () =
        (* T_{f_w1}'s face-of-e part versus F_f's window (Claim 5 with the
           corrected orientation pairing) plus the far subtree. *)
        let cpi, far_len =
          if f_case = case_anc_right then
            (child_pi_left lv u f_w1, look got_len_gt u other)
          else (child_pi_right lv u f_w1, look got_len_lt u other)
        in
        let p_other =
          if f_case = case_anc_right then look got_pl u other
          else look got_pr u other
        in
        let sz_other = look got_sz u other in
        (* Tail beyond the far subtree, or far-subtree members outside the
           far inside-interval. *)
        cpi + lv.lsize.(f_w1) > p_other + sz_other || sz_other - 1 > far_len
      in
      let escapes =
        List.exists
          (fun c ->
            if not (e_inside_child c) then false
            else if c = f_w1 then branch_escapes ()
            else not (f_inside_child c))
          (Array.to_list lv.lchildren.(u))
      in
      if escapes then 1 else 0
    end
  in
  let got_escape = swap escape_verdict in
  (* The final verdict, at the pi-smaller endpoint a of f = ab. *)
  let hides a b =
    if (a, b) = (u, v) || (b, a) = (u, v) then false
    else begin
      let mem_a = member_state a and mem_b = look got_mem a b in
      if mem_a = 0 || mem_b = 0 then false
      else begin
        (* Containment of f in F_e. *)
        let contained =
          mem_a = 2 || mem_b = 2
          ||
          (* both endpoints on e's border: the dart a->b must leave into the
             interior arc — the same rule as Faces.child_inside, a-local. *)
          let x = a and c = b in
          if e_case = case_unrelated then begin
            if x = u then lnpos lv x c < lnpos lv x v
            else if x = v then lnpos lv x c > lnpos lv x u
            else begin
              let anc_of_u =
                lv.lpi_l.(u) >= lv.lpi_l.(x)
                && lv.lpi_l.(u) < lv.lpi_l.(x) + lv.lsize.(x)
              in
              let anc_of_v =
                lv.lpi_l.(v) >= lv.lpi_l.(x)
                && lv.lpi_l.(v) < lv.lpi_l.(x) + lv.lsize.(x)
              in
              if anc_of_u && anc_of_v then begin
                let u1 = lchild_toward lv x lv.lpi_l.(u) in
                let v1 = lchild_toward lv x lv.lpi_l.(v) in
                lnpos lv x v1 < lnpos lv x c && lnpos lv x c < lnpos lv x u1
              end
              else if anc_of_u then
                lnpos lv x c < lnpos lv x (lchild_toward lv x lv.lpi_l.(u))
              else lnpos lv x c > lnpos lv x (lchild_toward lv x lv.lpi_l.(v))
            end
          end
          else begin
            if x = u then begin
              let pc = lnpos lv x c and pv = lnpos lv x v and pw = lnpos lv x e_w1 in
              if e_case = case_anc_right then pw < pc && pc < pv
              else pv < pc && pc < pw
            end
            else if x = v then
              if e_case = case_anc_right then lnpos lv x c > lnpos lv x u
              else lnpos lv x c < lnpos lv x u
            else begin
              let next = lchild_toward lv x lv.lpi_l.(v) in
              if e_case = case_anc_right then lnpos lv x c > lnpos lv x next
              else lnpos lv x c < lnpos lv x next
            end
          end
        in
        if not contained then false
        else begin
          (* t strictly inside F_f?  (A leaf is on F_f's border only as an
             endpoint.) *)
          let pl_b = look got_pl a b in
          let a_anc_b = pl_b >= lv.lpi_l.(a) && pl_b < lv.lpi_l.(a) + lv.lsize.(a) in
          let f_w1 = if a_anc_b then lchild_toward lv a pl_b else -1 in
          let f_case =
            if not a_anc_b then case_unrelated
            else if lnpos lv a b > lnpos lv a f_w1 then case_anc_right
            else case_anc_left
          in
          let t_under_a =
            pi_t_l > lv.lpi_l.(a) && pi_t_l < lv.lpi_l.(a) + lv.lsize.(a)
          in
          let t_inside =
            if t = a || t = b then false
            else if t_under_a then begin
              let c = lchild_toward lv a pi_t_l in
              if a_anc_b && c = f_w1 then begin
                (* Under the path branch: the far side or the Claim-5
                   window in the orientation-matched order. *)
                let far = look got_tv a b in
                if far land 1 = 1 then
                  if f_case = case_anc_right then far land 2 > 0
                  else far land 4 > 0
                else if f_case = case_anc_right then
                  child_pi_left lv a f_w1 <= pi_t_l && pi_t_l < pl_b
                else
                  child_pi_right lv a f_w1 <= pi_t_r
                  && pi_t_r < look got_pr a b
              end
              else begin
                (* Hanging at a: classify c against f's arc at a. *)
                let p = lnpos lv a c in
                if f_case = case_unrelated then p < lnpos lv a b
                else begin
                  let pv = lnpos lv a b and pw = lnpos lv a f_w1 in
                  if f_case = case_anc_right then pw < p && p < pv
                  else pv < p && p < pw
                end
              end
            end
            else if not a_anc_b then begin
              (* Unrelated f: the far subtree, or the middle window. *)
              let far = look got_tv a b in
              if far land 1 = 1 then far land 2 > 0
              else pi_t_l > lv.lpi_l.(a) + lv.lsize.(a) - 1 && pi_t_l < pl_b
            end
            else false
          in
          if not t_inside then false
          else if a <> u && b <> u then true
          else begin
            let got = look got_escape a b in
            if a = u then escape_verdict u b = 1 else got = 1
          end
        end
      end
    end
  in
  let verdicts =
    Array.init n (fun a ->
        List.filter_map
          (fun b ->
            if lv.lpi_l.(a) < look got_pl a b && hides a b then Some (a, b)
            else None)
          (fundamental a))
  in
  (* Share each verdict across its edge so both endpoints know. *)
  let shared =
    let sends =
      Array.init n (fun a -> List.map (fun (_, b) -> (b, a)) verdicts.(a))
    in
    comms.exchange sends
  in
  Array.init n (fun x -> verdicts.(x) @ List.map (fun (b, _) -> (b, x)) shared.(x))

let hidden ?trace g (lv : local_view) ~u ~v ~t =
  let tk = tk_of_view lv in
  with_batched ?trace ~name:"composed.hidden" g ~parent:tk.parent ~root:tk.root
    (fun comms -> hidden_core comms g lv ~u ~v ~t)

(* ------------------------------------------------------------------ *)
(* The serial oracle: the identical subroutine cores bound to the       *)
(* pre-refactor one-run-per-scalar choreography.                        *)
(* ------------------------------------------------------------------ *)

module Reference = struct
  let dfs_orders g ~children ~parent ~depth ~root =
    let (orders, phases), st =
      with_serial g ~parent ~root (fun comms ->
          dfs_orders_run comms g ~children ~parent ~depth ~root)
    in
    (orders, phases, st)

  let phase1 g ~rot_orders ~parent ~depth ~root =
    let (lv, _), st =
      with_serial g ~parent ~root (fun comms ->
          phase1_core comms g ~rot_orders ~parent ~depth ~root)
    in
    (lv, st)

  let separator_phase3 g ~rot_orders ~parent ~depth ~root =
    with_serial g ~parent ~root (fun comms ->
        separator_phase3_core comms g ~rot_orders ~parent ~depth ~root)

  let join_elections g ~bcast_parent ~root ~parts ~visited_depth ~marked
      ~forest ~attach =
    with_serial g ~parent:bcast_parent ~root (fun comms ->
        join_elections_core comms g ~bcast_parent ~parts ~visited_depth ~marked
          ~forest ~attach)

  let weights g lv =
    let tk = tk_of_view lv in
    with_serial g ~parent:tk.parent ~root:tk.root (fun comms ->
        weights_core comms g lv)

  let lca g (tk : tree_knowledge) ~u ~v =
    with_serial g ~parent:tk.parent ~root:tk.root (fun comms ->
        let w, _, _ = lca_core comms (Graph.n g) tk ~u ~v in
        w)

  let mark_path g (tk : tree_knowledge) ~u ~v =
    with_serial g ~parent:tk.parent ~root:tk.root (fun comms ->
        fst (mark_path_core comms (Graph.n g) tk ~u ~v ~extra:[||]))

  let detect_face g lv ~u ~v =
    let tk = tk_of_view lv in
    with_serial g ~parent:tk.parent ~root:tk.root (fun comms ->
        fst (detect_face_core comms (Graph.n g) lv ~u ~v ~extra:[||]))

  let spanning_forest g ?parts () =
    let n = Graph.n g in
    let parts = match parts with Some p -> p | None -> Array.make n 0 in
    let (out, phases), st =
      with_serial g ~parent:(Array.make n (-1)) ~root:0 (fun comms ->
          spanning_forest_core comms g ~parts)
    in
    (out, phases, st)

  let screen_tally g ~root ~sums ~mins =
    let n = Graph.n g in
    let (s, m, reached), st =
      with_serial g ~parent:(Array.make n (-1)) ~root (fun comms ->
          screen_tally_core comms g ~root ~sums ~mins)
    in
    (s, m, reached, st)

  let reroot g lv ~new_root =
    let tk = tk_of_view lv in
    with_serial g ~parent:tk.parent ~root:tk.root (fun comms ->
        reroot_core comms (Graph.n g) lv ~new_root)

  let hidden g lv ~u ~v ~t =
    let tk = tk_of_view lv in
    with_serial g ~parent:tk.parent ~root:tk.root (fun comms ->
        hidden_core comms g lv ~u ~v ~t)
end
