(** Message-level CONGEST primitives (real executions in the engine).

    These are the executable counterparts of the black-box primitives that
    the charged mode models: BFS-tree construction, tree broadcast, subtree
    aggregation, and pipelined part-wise aggregation in O(depth + #parts)
    rounds. *)

open Repro_graph

type op = Sum | Min | Max

val apply : op -> int -> int -> int

(** {2 Engine programs}

    The underlying [Engine.PROGRAM] modules, exposed so that the
    differential suite (test/engine_equiv.ml) and the engine
    micro-benchmark (E12) can run the very same programs through both
    [Engine.Make] and [Engine.Reference.Make].  Their [finished]
    predicates are quiescence predicates: true whenever a node would take
    no action on an empty inbox (see prim.ml). *)

module Bfs_program : sig
  include Engine.PROGRAM with type input = bool and type output = int * int
end

module Subtree_program : sig
  type input = { parent : int; value : int; op : op }

  include Engine.PROGRAM with type input := input and type output = int
end

module Ancestor_program : sig
  type input = { parent : int; value : int; op : op }

  include Engine.PROGRAM with type input := input and type output = int
end

module Broadcast_program : sig
  type input = { parent : int; value : int option }

  include Engine.PROGRAM with type input := input and type output = int
end

module Exchange_program : sig
  include
    Engine.PROGRAM
      with type input = (int * int) list
       and type output = (int * int) list
end

module Partwise_program : sig
  type input = { parent : int; part : int; value : int; op : op }

  include Engine.PROGRAM with type input := input and type output = int
end

val bfs_tree :
  ?max_rounds:int ->
  ?bandwidth:int ->
  Graph.t ->
  root:int ->
  (int array * int array) * Engine.stats
(** Parents ([-1] at root) and distances, by flooding. The graph must be
    connected. *)

val bfs_forest :
  ?max_rounds:int ->
  ?bandwidth:int ->
  Graph.t ->
  roots:bool array ->
  (int array * int array) * Engine.stats
(** Multi-source flooding: a BFS forest covering every vertex reachable from
    some root (each root gets parent [-1]). *)

val subtree_agg :
  ?max_rounds:int ->
  ?bandwidth:int ->
  Graph.t ->
  parent:int array ->
  op:op ->
  values:int array ->
  int array * Engine.stats
(** Every node learns the aggregate of its subtree in the given spanning
    tree (DESCENDANT-SUM-PROBLEM). *)

val ancestor_agg :
  ?max_rounds:int ->
  ?bandwidth:int ->
  Graph.t ->
  parent:int array ->
  op:op ->
  values:int array ->
  int array * Engine.stats
(** Every node learns the aggregate of the values on its root path (itself
    included) — the ANCESTOR-SUM-PROBLEM of Proposition 5, as a downcast. *)

val broadcast :
  ?max_rounds:int ->
  ?bandwidth:int ->
  Graph.t ->
  parent:int array ->
  root:int ->
  value:int ->
  int array * Engine.stats
(** Every node learns the root's value (over tree edges). *)

val exchange :
  ?max_rounds:int ->
  ?bandwidth:int ->
  Graph.t ->
  sends:(int * int) list array ->
  (int * int) list array * Engine.stats
(** One synchronous round: node [v] sends [sends.(v)] (neighbour, value)
    pairs and receives the pairs addressed to it. *)

val partwise :
  ?max_rounds:int ->
  ?bandwidth:int ->
  Graph.t ->
  parent:int array ->
  op:op ->
  parts:int array ->
  values:int array ->
  int array * Engine.stats
(** Part-wise aggregation: every node learns the aggregate of the values of
    its own part.  Pipelined over the given global spanning tree; runs in
    O(depth + #parts) rounds. *)
