(* Message-level CONGEST primitives.

   These are real executions in the synchronous engine (no charged costs):
   BFS-tree construction, tree broadcast, subtree aggregation
   (DESCENDANT-SUM-PROBLEM of Proposition 5) and pipelined part-wise
   aggregation over a global BFS tree.  The part-wise implementation runs in
   O(depth + #parts) rounds — the classic pipelining bound — and is the
   executable counterpart of the shortcut-based Õ(D) black box the charged
   mode models.

   Every program's [finished] is a *quiescence* predicate: true whenever
   the node would take no action on an empty inbox, even if it is still
   waiting for input.  Under the event-driven engine only frontier nodes
   are stepped, so e.g. BFS flooding costs O(sum of frontier sizes) work
   instead of O(n * rounds); the message schedule (and hence every
   statistic) is unchanged, because a quiescent node's step was a no-op.
   The trade-off: on inputs that deadlock (a disconnected flood, a broken
   parent array) the engine now returns the partial outputs instead of
   spinning to Did_not_terminate, so callers must pass well-formed
   instances — which all in-repo callers do. *)

type op = Sum | Min | Max

let apply op a b =
  match op with Sum -> a + b | Min -> min a b | Max -> max a b

(* ------------------------------------------------------------------ *)
(* BFS tree construction by flooding.                                  *)
(* ------------------------------------------------------------------ *)

module Bfs_program = struct
  type input = bool (* am I the root? *)

  type state = {
    nbrs : int array;
    mutable dist : int; (* -1 while unknown *)
    mutable parent : int; (* -1 at root, -2 while unknown *)
  }

  type msg = int (* sender's distance *)
  type output = int * int (* parent, dist *)

  let msg_bits = Bandwidth.bits_for_int

  let init ~n:_ ~id:_ ~neighbors is_root =
    if is_root then
      ( { nbrs = neighbors; dist = 0; parent = -1 },
        Array.to_list neighbors |> List.map (fun v -> (v, 0)) )
    else ({ nbrs = neighbors; dist = -1; parent = -2 }, [])

  let step ~round:_ ~id:_ st ~inbox =
    if st.dist >= 0 then (st, [])
    else begin
      match inbox with
      | [] -> (st, [])
      | (src0, d0) :: rest ->
        let best_src, best_d =
          List.fold_left
            (fun (s, d) (s', d') -> if d' < d then (s', d') else (s, d))
            (src0, d0) rest
        in
        st.dist <- best_d + 1;
        st.parent <- best_src;
        let out =
          Array.to_list st.nbrs
          |> List.filter (fun v -> v <> best_src)
          |> List.map (fun v -> (v, st.dist))
        in
        (st, out)
    end

  (* A BFS node only ever acts on message receipt: the root is done after
     its init sends, and everyone else waits quietly for the wave. *)
  let finished _ = true
  let output st = (st.parent, st.dist)
end

module Bfs_engine = Engine.Make (Bfs_program)

let bfs_tree ?max_rounds ?bandwidth g ~root =
  let input = Array.init (Repro_graph.Graph.n g) (fun v -> v = root) in
  let out, stats = Bfs_engine.run ?max_rounds ?bandwidth g ~input in
  let parent = Array.map fst out and dist = Array.map snd out in
  ((parent, dist), stats)

(* Multi-source flooding: a BFS forest (every root gets parent -1). *)
let bfs_forest ?max_rounds ?bandwidth g ~roots =
  let out, stats = Bfs_engine.run ?max_rounds ?bandwidth g ~input:roots in
  let parent = Array.map fst out and dist = Array.map snd out in
  ((parent, dist), stats)

(* ------------------------------------------------------------------ *)
(* Subtree aggregation (convergecast) over a given spanning tree.      *)
(* Every node ends up knowing the aggregate of its own subtree.        *)
(* ------------------------------------------------------------------ *)

module Subtree_program = struct
  type input = { parent : int; value : int; op : op }

  type state = {
    parent : int;
    op : op;
    mutable children : int list; (* known after round 1 *)
    mutable waiting : int; (* children that have not reported *)
    mutable acc : int;
    mutable learned_children : bool;
    mutable reported : bool;
  }

  type msg = Child | Report of int
  type output = int

  let msg_bits = function Child -> 2 | Report x -> 2 + Bandwidth.bits_for_int x

  let init ~n:_ ~id:_ ~neighbors:_ { parent; value; op } =
    let st =
      {
        parent;
        op;
        children = [];
        waiting = 0;
        acc = value;
        learned_children = false;
        reported = false;
      }
    in
    let out = if parent >= 0 then [ (parent, Child) ] else [] in
    (st, out)

  let step ~round ~id:_ st ~inbox =
    if round = 1 then begin
      st.children <- List.filter_map (function s, Child -> Some s | _ -> None) inbox;
      st.waiting <- List.length st.children;
      st.learned_children <- true
    end
    else
      List.iter
        (function
          | _, Report x ->
            st.acc <- apply st.op st.acc x;
            st.waiting <- st.waiting - 1
          | _, Child -> ())
        inbox;
    if st.learned_children && st.waiting = 0 && not st.reported then begin
      st.reported <- true;
      if st.parent >= 0 then (st, [ (st.parent, Report st.acc) ]) else (st, [])
    end
    else (st, [])

  (* Quiescent once reported, and also while waiting on children reports:
     [step] reports in the very round [waiting] reaches 0, so a node that
     still waits only acts on message receipt.  Round 1 (learning the
     children) must run on every node, hence not-learned => active. *)
  let finished st = st.reported || (st.learned_children && st.waiting > 0)
  let output st = st.acc
end

module Subtree_engine = Engine.Make (Subtree_program)

let subtree_agg ?max_rounds ?bandwidth g ~parent ~op ~values =
  let input =
    Array.init (Repro_graph.Graph.n g) (fun v ->
        Subtree_program.{ parent = parent.(v); value = values.(v); op })
  in
  Subtree_engine.run ?max_rounds ?bandwidth g ~input

(* ------------------------------------------------------------------ *)
(* Ancestor aggregation (downcast): every node learns the aggregate of *)
(* the values on its root path, itself included                        *)
(* (ANCESTOR-SUM-PROBLEM of Proposition 5).                            *)
(* ------------------------------------------------------------------ *)

module Ancestor_program = struct
  type input = { parent : int; value : int; op : op }

  type state = {
    parent : int;
    op : op;
    value : int;
    mutable children : int list;
    mutable learned_children : bool;
    mutable acc : int option; (* aggregate over ancestors incl. self *)
    mutable forwarded : bool;
  }

  type msg = Child | Down of int
  type output = int

  let msg_bits = function Child -> 2 | Down x -> 2 + Bandwidth.bits_for_int x

  let init ~n:_ ~id:_ ~neighbors:_ (inp : input) =
    let st =
      {
        parent = inp.parent;
        op = inp.op;
        value = inp.value;
        children = [];
        learned_children = false;
        acc = (if inp.parent < 0 then Some inp.value else None);
        forwarded = false;
      }
    in
    let out = if inp.parent >= 0 then [ (inp.parent, Child) ] else [] in
    (st, out)

  let step ~round ~id:_ st ~inbox =
    if round = 1 then begin
      st.children <- List.filter_map (function s, Child -> Some s | _ -> None) inbox;
      st.learned_children <- true
    end;
    List.iter
      (function
        | _, Down x -> st.acc <- Some (apply st.op st.value x)
        | _, Child -> ())
      inbox;
    match st.acc with
    | Some a when st.learned_children && not st.forwarded ->
      st.forwarded <- true;
      (st, List.map (fun c -> (c, Down a)) st.children)
    | _ -> (st, [])

  (* Quiescent once forwarded, and while waiting for the Down value (the
     forward happens in the same round the value arrives).  Round 1 must
     run everywhere to learn the children. *)
  let finished st = st.forwarded || (st.learned_children && st.acc = None)
  let output st = match st.acc with Some a -> a | None -> assert false
end

module Ancestor_engine = Engine.Make (Ancestor_program)

let ancestor_agg ?max_rounds ?bandwidth g ~parent ~op ~values =
  let input =
    Array.init (Repro_graph.Graph.n g) (fun v ->
        Ancestor_program.{ parent = parent.(v); value = values.(v); op })
  in
  Ancestor_engine.run ?max_rounds ?bandwidth g ~input

(* ------------------------------------------------------------------ *)
(* Broadcast of the root's value over the tree.                        *)
(* ------------------------------------------------------------------ *)

module Broadcast_program = struct
  type input = { parent : int; value : int option (* Some at the root *) }

  type state = {
    parent : int;
    mutable children : int list;
    mutable learned_children : bool;
    mutable value : int option;
    mutable forwarded : bool;
  }

  type msg = Child | Value of int
  type output = int

  let msg_bits = function Child -> 2 | Value x -> 2 + Bandwidth.bits_for_int x

  let init ~n:_ ~id:_ ~neighbors:_ (inp : input) =
    let st =
      {
        parent = inp.parent;
        children = [];
        learned_children = false;
        value = inp.value;
        forwarded = false;
      }
    in
    let parent = inp.parent in
    let out = if parent >= 0 then [ (parent, Child) ] else [] in
    (st, out)

  let step ~round ~id:_ st ~inbox =
    if round = 1 then begin
      st.children <- List.filter_map (function s, Child -> Some s | _ -> None) inbox;
      st.learned_children <- true
    end;
    List.iter
      (function _, Value x -> st.value <- Some x | _, Child -> ())
      inbox;
    match st.value with
    | Some x when st.learned_children && not st.forwarded ->
      st.forwarded <- true;
      (st, List.map (fun c -> (c, Value x)) st.children)
    | _ -> (st, [])

  (* Same quiescence shape as the downcast: waiting for the value is
     passive, learning the children (round 1) is not. *)
  let finished st = st.forwarded || (st.learned_children && st.value = None)
  let output st = match st.value with Some x -> x | None -> assert false
end

module Broadcast_engine = Engine.Make (Broadcast_program)

let broadcast ?max_rounds ?bandwidth g ~parent ~root ~value =
  let input =
    Array.init (Repro_graph.Graph.n g) (fun v ->
        Broadcast_program.{ parent = parent.(v); value = (if v = root then Some value else None) })
  in
  Broadcast_engine.run ?max_rounds ?bandwidth g ~input

(* ------------------------------------------------------------------ *)
(* One-round neighbour exchange: each node sends one integer to chosen  *)
(* neighbours and collects what arrived.                                *)
(* ------------------------------------------------------------------ *)

module Exchange_program = struct
  type input = (int * int) list (* (neighbour, value) pairs to send *)

  type state = { mutable received : (int * int) list; mutable done_ : bool }

  type msg = int
  type output = (int * int) list

  let msg_bits = Bandwidth.bits_for_int

  let init ~n:_ ~id:_ ~neighbors:_ sends =
    ({ received = []; done_ = false }, sends)

  let step ~round:_ ~id:_ st ~inbox =
    st.received <- inbox @ st.received;
    st.done_ <- true;
    (st, [])

  let finished st = st.done_
  let output st = st.received
end

module Exchange_engine = Engine.Make (Exchange_program)

let exchange ?max_rounds ?bandwidth g ~sends =
  Exchange_engine.run ?max_rounds ?bandwidth g ~input:sends

(* ------------------------------------------------------------------ *)
(* Pipelined part-wise aggregation over a global spanning tree.        *)
(*                                                                     *)
(* Every node holds (part, value); at the end every node knows the     *)
(* aggregate of its part.  Upcast: each node merges ascending streams  *)
(* of (part, aggregate) pairs from its children and emits its own      *)
(* ascending stream, one pair per round — a part is emitted once every *)
(* child's stream has passed it, so each pair is final when sent.      *)
(* Downcast: the root pipelines the full result stream back down.      *)
(* Both phases take O(depth + #parts) rounds.                          *)
(* ------------------------------------------------------------------ *)

module Partwise_program = struct
  type input = { parent : int; part : int; value : int; op : op }

  type phase = Up | Down | Finished

  type state = {
    parent : int;
    my_part : int;
    op : op;
    mutable phase : phase;
    mutable children : int list;
    mutable learned_children : bool;
    acc : (int, int) Hashtbl.t; (* part -> aggregate at this node *)
    frontier : (int, int) Hashtbl.t; (* child -> last part id received *)
    mutable emitted_upto : int;
    mutable up_done_sent : bool;
    down_queue : (int * int) Queue.t;
    mutable down_done_received : bool;
    mutable down_done_sent : bool;
    mutable answer : int option;
  }

  type msg = Child | Up of int * int | UpDone | Down of int * int | DownDone
  type output = int

  let msg_bits = function
    | Child | UpDone | DownDone -> 3
    | Up (p, x) | Down (p, x) -> 3 + Bandwidth.bits_for_int p + Bandwidth.bits_for_int x

  let init ~n:_ ~id:_ ~neighbors:_ { parent; part; value; op } =
    let acc = Hashtbl.create 8 in
    Hashtbl.replace acc part value;
    let st =
      {
        parent;
        my_part = part;
        op;
        phase = Up;
        children = [];
        learned_children = false;
        acc;
        frontier = Hashtbl.create 8;
        emitted_upto = -1;
        up_done_sent = false;
        down_queue = Queue.create ();
        down_done_received = false;
        down_done_sent = false;
        answer = None;
      }
    in
    let out = if parent >= 0 then [ (parent, Child) ] else [] in
    (st, out)

  let merge st p x =
    let cur = Hashtbl.find_opt st.acc p in
    Hashtbl.replace st.acc p (match cur with None -> x | Some y -> apply st.op x y)

  (* Smallest not-yet-emitted part that every child's stream has passed. *)
  let emittable st =
    let min_frontier =
      List.fold_left
        (fun m c ->
          match Hashtbl.find_opt st.frontier c with
          | None -> min m (-1)
          | Some f -> min m f)
        max_int st.children
    in
    Hashtbl.fold
      (fun p _ best ->
        if p > st.emitted_upto && p <= min_frontier then
          match best with Some b when b <= p -> best | _ -> Some p
        else best)
      st.acc None

  let all_children_done st =
    List.for_all
      (fun c -> Hashtbl.find_opt st.frontier c = Some max_int)
      st.children

  let pending_up st =
    Hashtbl.fold (fun p _ any -> any || p > st.emitted_upto) st.acc false

  let step ~round ~id:_ st ~inbox =
    if round = 1 then begin
      st.children <- List.filter_map (function s, Child -> Some s | _ -> None) inbox;
      st.learned_children <- true
    end;
    List.iter
      (function
        | c, Up (p, x) ->
          merge st p x;
          Hashtbl.replace st.frontier c p
        | c, UpDone -> Hashtbl.replace st.frontier c max_int
        | _, Down (p, x) ->
          if p = st.my_part then st.answer <- Some x;
          Queue.add (p, x) st.down_queue
        | _, DownDone -> st.down_done_received <- true
        | _, Child -> ())
      inbox;
    if not st.learned_children then (st, [])
    else begin
      match st.phase with
      | Up ->
        if st.parent >= 0 then begin
          (* Interior node: emit one pair, or UpDone when drained. *)
          match emittable st with
          | Some p ->
            st.emitted_upto <- p;
            (st, [ (st.parent, Up (p, Hashtbl.find st.acc p)) ])
          | None ->
            if all_children_done st && not (pending_up st) && not st.up_done_sent
            then begin
              st.up_done_sent <- true;
              st.phase <- Down;
              (st, [ (st.parent, UpDone) ])
            end
            else (st, [])
        end
        else if all_children_done st then begin
          (* Root: aggregation complete; seed the down stream. *)
          st.answer <- Some (Hashtbl.find st.acc st.my_part);
          let pairs =
            Hashtbl.fold (fun p x acc -> (p, x) :: acc) st.acc []
            |> List.sort compare
          in
          List.iter (fun px -> Queue.add px st.down_queue) pairs;
          st.down_done_received <- true;
          st.phase <- Down;
          (st, [])
        end
        else (st, [])
      | Down ->
        if not (Queue.is_empty st.down_queue) then begin
          let (p, x) = Queue.pop st.down_queue in
          if p = st.my_part then st.answer <- Some x;
          (st, List.map (fun c -> (c, Down (p, x))) st.children)
        end
        else if st.down_done_received && not st.down_done_sent then begin
          st.down_done_sent <- true;
          st.phase <- Finished;
          (st, List.map (fun c -> (c, DownDone)) st.children)
        end
        else (st, [])
      | Finished -> (st, [])
    end

  (* Quiescent exactly when [step] would be a no-op on an empty inbox:
     nothing emittable going up, no UpDone/root transition pending, and no
     queued pair or DownDone to push down.  During the up phase this strips
     the already-drained subtrees from the active set; during the down
     phase, the nodes whose streams have not arrived yet. *)
  let finished st =
    st.learned_children
    &&
    match st.phase with
    | Finished -> true
    | Up ->
      if st.parent >= 0 then
        emittable st = None
        && not (all_children_done st && not (pending_up st) && not st.up_done_sent)
      else not (all_children_done st)
    | Down ->
      Queue.is_empty st.down_queue
      && not (st.down_done_received && not st.down_done_sent)

  let output st = match st.answer with Some x -> x | None -> assert false
end

module Partwise_engine = Engine.Make (Partwise_program)

let partwise ?max_rounds ?bandwidth g ~parent ~op ~parts ~values =
  let input =
    Array.init (Repro_graph.Graph.n g) (fun v ->
        Partwise_program.{ parent = parent.(v); part = parts.(v); value = values.(v); op })
  in
  Partwise_engine.run ?max_rounds ?bandwidth g ~input
