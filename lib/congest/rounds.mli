(** Round accounting for the charged-cost execution mode.

    Each of the paper's black-box primitives is charged its published round
    bound; the accountant tracks the total and a per-subroutine breakdown.
    One part-wise aggregation (PA) costs [c_pa * D * log2(n)^e] rounds
    (default [e = 2]), matching the deterministic low-congestion shortcut
    guarantee used by the paper. *)

type params = { c_pa : float; log_exponent : int }

val default_params : params

type t

val create : ?params:params -> ?trace:Repro_trace.Trace.t -> n:int -> d:int -> unit -> t
(** [?trace] attaches a span tracer: every [charge_*] and [note_exec]
    attributes its cost to the tracer's innermost open span.  Omitting it
    keeps the accountant exactly as before (no tracing work at all). *)

val tracer : t -> Repro_trace.Trace.t option

val pa_cost : t -> float
(** Cost in rounds of a single part-wise aggregation. *)

val log2n : t -> float

val charge : t -> label:string -> float -> unit
(** Charge raw rounds under a label. *)

val charge_pa : ?units:int -> t -> label:string -> unit

(** Published bounds of the paper's named subroutines: *)

val charge_embedding : t -> unit
val charge_spanning_forest : t -> unit
val charge_dfs_order : t -> unit
val charge_weights : t -> unit
val charge_mark_path : t -> unit
val charge_lca : t -> unit
val charge_detect_face : t -> unit
val charge_hidden : t -> unit
val charge_not_contained : t -> unit
val charge_aggregate : t -> string -> unit
val charge_reroot : t -> unit
val charge_exact : t -> label:string -> int -> unit

val total : t -> float

val note_exec : t -> Collective.stats -> unit
(** Fold the observability counters of an executed collective tally into
    the accountant (the charged rounds themselves are still added via
    [charge_*]; this only tracks how many engine invocations and logical
    collectives backed them). *)

val engine_runs : t -> int
val collectives : t -> int

val like : t -> t
(** Fresh accountant with the same network parameters.  If the original
    carries a tracer, the copy gets a fresh private tracer (parts of a
    parallel batch never share span state); [absorb] splices it back. *)

val absorb : t -> t -> unit
(** Merge the other accountant's charges into the first (e.g. the heaviest
    part of a batch executed in parallel). *)

val absorb_heaviest : t -> t option array -> unit
(** Absorb the heaviest of the per-part ledgers of a parallel batch (ties:
    lowest index), i.e. charge the batch max-over-parts, deterministically
    and independently of scheduling order. *)

val breakdown : t -> (string * float * int) list
(** [(label, rounds, invocations)], heaviest first. *)

val invocations : t -> int

val label_invocations : t -> string -> int
(** Invocation count charged under one label (0 if the label never
    charged) — lets oracles pin amortization guarantees, e.g. "verify
    balance aggregates at most once per phase". *)

val pp : Format.formatter -> t -> unit
