(** Composed message-level subroutines of Section 5.2.

    Given the Phase-1 data at every node (parent, depth, LEFT order, subtree
    size — the distributed spanning-tree representation the paper assumes),
    the LCA and MARK-PATH subroutines decompose into a constant number of
    broadcasts and aggregations; this module executes that decomposition in
    the synchronous engine and returns genuinely measured statistics.

    Every public subroutine takes an optional [?trace] tracer
    ([Repro_trace.Trace.t]): when given, the subroutine runs under a span
    named after it ("composed.lca", "composed.mark-path", ...) and every
    engine run it issues attributes rounds/messages to that span.  The
    default is no tracer and is bit-identical to the untraced code.

    All communication goes through the collective layer ({!Collective}):
    each subroutine builds one communication-tree context and ships its
    scalar broadcasts as slots of batched, pipelined collectives —
    O(depth + k) rounds for k scalars instead of k · O(depth).  The
    pre-refactor choreography (one engine run per scalar hop) is kept in
    {!Reference} as the oracle for the differential suite: outputs are
    bit-identical, only the execution schedule differs. *)

open Repro_graph

type tree_knowledge = {
  parent : int array;  (** -1 at the root *)
  depth : int array;
  pi_left : int array;
  size : int array;
  root : int;
      (** the unique node with parent -1, stored so the composed
          subroutines never re-derive it with an O(n) scan *)
}

type stats = Collective.stats = {
  rounds : int;
  messages : int;
  max_edge_bits : int;
  total_bits : int;
  engine_runs : int;
  collectives : int;
}
(** Execution statistics are the collective layer's tally: full engine
    counters plus the [engine_runs]/[collectives] observability pair. *)

type orders = { pi_left : int array; pi_right : int array }

val dfs_orders :
  ?trace:Repro_trace.Trace.t ->
  Graph.t ->
  children:int array array ->
  parent:int array ->
  depth:int array ->
  root:int ->
  orders * int * stats
(** DFS-ORDER-PROBLEM (Lemma 11), executed: fragment merging with depth
    halving, every phase built from one-round neighbour exchanges and ONE
    three-slot part-wise broadcast in the engine.  [children] lists each
    node's tree children in clockwise rotation order.  Returns the
    LEFT/RIGHT orders, the number of merging phases (O(log n)) and the
    measured statistics. *)

type local_view = {
  lparent : int array;
  ldepth : int array;
  lsize : int array;
  lrot : int array array;  (** full clockwise neighbour order *)
  lchildren : int array array;  (** tree children, clockwise *)
  lpi_l : int array;
  lpi_r : int array;
}

val phase1 :
  ?trace:Repro_trace.Trace.t ->
  Graph.t ->
  rot_orders:int array array ->
  parent:int array ->
  depth:int array ->
  root:int ->
  local_view * stats
(** Phase 1 of the separator algorithm, executed: from purely local data
    (parent pointers, depths, rotations) to the full local view — children
    in rotation order, subtree sizes, LEFT/RIGHT positions. *)

val separator_phase3 :
  ?trace:Repro_trace.Trace.t ->
  Graph.t ->
  rot_orders:int array array ->
  parent:int array ->
  depth:int array ->
  root:int ->
  ((int * int) * bool array) option * stats
(** End-to-end executed separator for the Phase-3 case: when some real
    fundamental face has weight in [n/3, 2n/3] (Lemma 5), returns the
    elected edge and the marked border path; [None] when no face is in
    range (the remaining phases fall back to the charged-model search).
    The Phase-1 BFS tree is reused for the election pipeline. *)

val join_elections :
  ?trace:Repro_trace.Trace.t ->
  Graph.t ->
  bcast_parent:int array ->
  root:int ->
  parts:int array ->
  visited_depth:int array ->
  marked:bool array ->
  forest:(int array array -> int array) ->
  attach:(int array -> int array * int array) ->
  (int array array * int array * int array) * stats
(** One JOIN iteration (Lemma 2), executed: the per-component election
    scalars for every active component at once, as slot-batched part-wise
    MAX aggregations over the component partition [parts] pipelined along
    [bcast_parent] — a two-slot anchor/marked batch, a one-slot target
    batch, and a two-slot whole-graph SUM of post-attach bookkeeping.
    [visited_depth] is the partial-tree depth (-1 if unvisited); candidate
    codes are formed node-locally after one one-round depth exchange, and
    MAX realises the host tie-breaks (deepest endpoint then
    lexicographically smallest edge; deepest marked node then first in
    component order).  [forest] and [attach] are host callbacks between
    the batches: rooting the preferring forests at the decoded anchors
    (returning the node-local target codes), then activating the elected
    paths (returning the node-local still-marked / still-unvisited bits).
    Returns the anchor/marked rows, the target row and the two sums. *)

val weights :
  ?trace:Repro_trace.Trace.t ->
  Graph.t ->
  local_view ->
  ((int * int) * int) list * stats
(** WEIGHTS-PROBLEM (Lemma 12), executed: the weight of every real
    fundamental face (Definition 2), computed by the edge endpoints from
    node-local data plus six one-round exchanges across the fundamental
    edges themselves.  Edges are normalized ([pi_left u < pi_left v]). *)

val lca :
  ?trace:Repro_trace.Trace.t ->
  Graph.t ->
  tree_knowledge ->
  u:int ->
  v:int ->
  int * stats
(** LCA-PROBLEM (Lemma 14): the LCA of u and v, learned by every node.
    Two batched engine runs (endpoint positions, then the depth-MAX). *)

val mark_path :
  ?trace:Repro_trace.Trace.t ->
  Graph.t ->
  tree_knowledge ->
  u:int ->
  v:int ->
  bool array * stats
(** MARK-PATH-PROBLEM (Lemma 13): for every node, whether it lies on the
    tree path between u and v.  Three batched engine runs. *)

type face_membership = { border : bool array; inside : bool array }

val detect_face :
  ?trace:Repro_trace.Trace.t ->
  Graph.t ->
  local_view ->
  u:int ->
  v:int ->
  face_membership * stats
(** DETECT-FACE-PROBLEM (Lemma 15), executed: border and interior
    membership of the fundamental face of a real fundamental edge, decided
    locally at every node.  All twelve decision scalars ride the MARK-PATH
    batches: still three engine runs in total. *)

val spanning_forest :
  ?trace:Repro_trace.Trace.t ->
  Graph.t ->
  ?parts:int array ->
  unit ->
  (int array * int array * int array) * int * stats
(** Borůvka spanning forests (Lemma 9), executed: with [parts], a spanning
    tree of every part in parallel (0/1 edge weights, stopping before any
    cross-part edge); without, a spanning tree per connected component.
    Returns (parent, depth, fragment id), the number of Borůvka phases
    (O(log n)) and the measured statistics. *)

val screen_tally :
  ?trace:Repro_trace.Trace.t ->
  Graph.t ->
  root:int ->
  sums:int array array ->
  mins:int array array ->
  int array * int array * int * stats
(** Screening collective (input screen, Levi–Medina–Ron spirit),
    executed: one BFS flood from [root] (doubling as the connectivity
    probe and the communication tree), then the per-vertex [sums] /
    [mins] rows ride the slots of one part-wise Sum and one part-wise
    Min pipeline over the whole graph — Õ(D) total.  Returns the
    per-row Sum results, the per-row Min results, the number of vertices
    the flood reached, and the measured statistics.  When the flood
    reaches fewer than [n] vertices the aggregations are skipped and the
    result rows are empty-valued zeros (the reach count already decides
    the verdict). *)

val reroot :
  ?trace:Repro_trace.Trace.t ->
  Graph.t ->
  local_view ->
  new_root:int ->
  (int array * int array) * stats
(** RE-ROOT-PROBLEM (Lemma 19), executed: the same tree edges re-rooted at
    the given node — one two-slot batched learn plus one ancestor
    aggregation, then local updates.  Returns the new parent and depth
    arrays. *)

val hidden :
  ?trace:Repro_trace.Trace.t ->
  Graph.t ->
  local_view ->
  u:int ->
  v:int ->
  t:int ->
  (int * int) list array * stats
(** HIDDEN-PROBLEM (Lemma 16), executed: for a T-leaf [t] inside the face of
    the fundamental edge (u, v), every node learns which of its incident
    real fundamental edges hide [t] (Definition 4) — detect-face with [t]'s
    positions riding its batches, plus a constant number of one-round
    exchanges across the fundamental edges.  Each hiding edge is reported
    at both endpoints, normalized as [(a, b)] with [pi_left a < pi_left b]. *)

(** The serial oracle: the identical subroutine cores bound to the
    pre-refactor choreography — one engine run per scalar convergecast or
    broadcast, a fresh O(n) indicator array per learned value.  Outputs
    are bit-identical to the batched public API; only [stats] differ
    (more [engine_runs] and rounds).  Kept for the differential suite and
    the before/after benchmark. *)
module Reference : sig
  val dfs_orders :
    Graph.t ->
    children:int array array ->
    parent:int array ->
    depth:int array ->
    root:int ->
    orders * int * stats

  val phase1 :
    Graph.t ->
    rot_orders:int array array ->
    parent:int array ->
    depth:int array ->
    root:int ->
    local_view * stats

  val separator_phase3 :
    Graph.t ->
    rot_orders:int array array ->
    parent:int array ->
    depth:int array ->
    root:int ->
    ((int * int) * bool array) option * stats

  val join_elections :
    Graph.t ->
    bcast_parent:int array ->
    root:int ->
    parts:int array ->
    visited_depth:int array ->
    marked:bool array ->
    forest:(int array array -> int array) ->
    attach:(int array -> int array * int array) ->
    (int array array * int array * int array) * stats

  val weights : Graph.t -> local_view -> ((int * int) * int) list * stats
  val lca : Graph.t -> tree_knowledge -> u:int -> v:int -> int * stats

  val mark_path :
    Graph.t -> tree_knowledge -> u:int -> v:int -> bool array * stats

  val detect_face :
    Graph.t -> local_view -> u:int -> v:int -> face_membership * stats

  val spanning_forest :
    Graph.t ->
    ?parts:int array ->
    unit ->
    (int array * int array * int array) * int * stats

  val screen_tally :
    Graph.t ->
    root:int ->
    sums:int array array ->
    mins:int array array ->
    int array * int array * int * stats

  val reroot :
    Graph.t -> local_view -> new_root:int -> (int array * int array) * stats

  val hidden :
    Graph.t ->
    local_view ->
    u:int ->
    v:int ->
    t:int ->
    (int * int) list array * stats
end
