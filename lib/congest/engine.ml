(* Synchronous CONGEST execution engine.

   Nodes run in lock step.  In every round each node consumes the messages
   delivered along its incident edges, updates its local state and emits at
   most one message per incident edge; the engine enforces the per-edge
   bandwidth and reports round/message statistics.  Execution ends when all
   nodes have finished and no message is in flight.

   Two implementations share the same semantics:

   - [Make] is the event-driven scheduler: it maintains an explicit
     worklist of active nodes (nodes holding a message or not yet
     finished), double-buffered flat message queues, a round-stamped
     duplicate-destination check and O(1) quiescence detection, so a round
     costs O(active nodes + messages in flight) instead of O(n).
   - [Reference.Make] is the original dense scheduler that scans all n
     nodes every round.  It is kept as the oracle for the differential
     suite (test/engine_equiv.ml): both engines must produce bit-identical
     outputs and statistics on every program.

   Equivalence argument for the event-driven scheduler: the reference
   steps node v in round r iff v's inbox is non-empty or v is not
   finished.  States only change inside [step], so a finished node with an
   empty inbox stays finished; hence the set of nodes to step next round
   is exactly {destinations of this round's messages} ∪ {nodes whose
   post-step state is unfinished} — which is what the worklist collects.
   The worklist is processed in ascending node order and messages are
   consed onto destination inboxes in delivery order, reproducing the
   reference inbox ordering (and exception ordering) exactly. *)

open Repro_graph

module type PROGRAM = sig
  type input
  type state
  type msg
  type output

  val msg_bits : msg -> int

  val init : n:int -> id:int -> neighbors:int array -> input -> state * (int * msg) list
  (** Initial state and round-0 outbox (destination, message). *)

  val step : round:int -> id:int -> state -> inbox:(int * msg) list -> state * (int * msg) list
  (** One synchronous round: consume the inbox, emit an outbox. *)

  val finished : state -> bool
  (** Quiescence predicate: [true] when the node will take no action on an
      empty inbox (it may still be woken by an incoming message).  The
      engine stops once every node is finished and no message is in
      flight; nodes that report [false] are stepped every round even with
      an empty inbox. *)

  val output : state -> output
end

type stats = {
  rounds : int;
  messages : int;
  max_edge_bits : int;
  total_bits : int;
}

let pp_stats fmt s =
  Format.fprintf fmt "rounds=%d messages=%d max_edge_bits=%d total_bits=%d"
    s.rounds s.messages s.max_edge_bits s.total_bits

exception Bandwidth_exceeded of { src : int; dst : int; bits : int; limit : int }
exception Duplicate_message of { src : int; dst : int }
exception Did_not_terminate of { max_rounds : int }

(* ------------------------------------------------------------------ *)
(* Reference implementation: dense O(n)-per-round scheduler.           *)
(* ------------------------------------------------------------------ *)

module Reference = struct
  module Make (P : PROGRAM) = struct
    let run ?max_rounds ?bandwidth g ~(input : P.input array) =
      let n = Graph.n g in
      if Array.length input <> n then invalid_arg "Engine.run: wrong input arity";
      let bandwidth = match bandwidth with Some b -> b | None -> Bandwidth.default ~n in
      let max_rounds = match max_rounds with Some r -> r | None -> 100 * (n + 10) in
      let states = Array.make n None in
      let inboxes : (int * P.msg) list array = Array.make n [] in
      let messages = ref 0 and max_edge_bits = ref 0 and total_bits = ref 0 in
      let pending = ref 0 in
      let deliver src outbox =
        (* At most one message per incident edge per round. *)
        let seen = Hashtbl.create (List.length outbox) in
        List.iter
          (fun (dst, msg) ->
            if not (Graph.mem_edge g src dst) then
              invalid_arg "Engine: message along a non-edge";
            if Hashtbl.mem seen dst then raise (Duplicate_message { src; dst });
            Hashtbl.add seen dst ();
            let bits = P.msg_bits msg in
            if bits > bandwidth then
              raise (Bandwidth_exceeded { src; dst; bits; limit = bandwidth });
            if bits > !max_edge_bits then max_edge_bits := bits;
            total_bits := !total_bits + bits;
            incr messages;
            incr pending;
            inboxes.(dst) <- (src, msg) :: inboxes.(dst))
          outbox
      in
      for v = 0 to n - 1 do
        let st, outbox = P.init ~n ~id:v ~neighbors:(Graph.neighbors g v) input.(v) in
        states.(v) <- Some st;
        deliver v outbox
      done;
      let round = ref 0 in
      let all_done () =
        !pending = 0
        && Array.for_all
             (function Some st -> P.finished st | None -> true)
             states
      in
      while not (all_done ()) do
        incr round;
        if !round > max_rounds then raise (Did_not_terminate { max_rounds });
        (* Swap in fresh inboxes so this round's sends arrive next round. *)
        let current = Array.copy inboxes in
        Array.fill inboxes 0 n [];
        pending := 0;
        for v = 0 to n - 1 do
          match states.(v) with
          | None -> ()
          | Some st ->
            let inbox = current.(v) in
            if inbox <> [] || not (P.finished st) then begin
              let st', outbox = P.step ~round:!round ~id:v st ~inbox in
              states.(v) <- Some st';
              deliver v outbox
            end
        done
      done;
      let outputs =
        Array.init n (fun v ->
            match states.(v) with
            | Some st -> P.output st
            | None -> assert false)
      in
      ( outputs,
        {
          rounds = !round;
          messages = !messages;
          max_edge_bits = !max_edge_bits;
          total_bits = !total_bits;
        } )
  end
end

(* ------------------------------------------------------------------ *)
(* Event-driven implementation: sparse-activation scheduler.           *)
(* ------------------------------------------------------------------ *)

let compare_int (a : int) (b : int) = compare a b

module Make (P : PROGRAM) = struct
  let run ?trace ?max_rounds ?bandwidth g ~(input : P.input array) =
    let n = Graph.n g in
    if Array.length input <> n then invalid_arg "Engine.run: wrong input arity";
    let bandwidth = match bandwidth with Some b -> b | None -> Bandwidth.default ~n in
    let max_rounds = match max_rounds with Some r -> r | None -> 100 * (n + 10) in
    let states = Array.make n None in
    let messages = ref 0 and max_edge_bits = ref 0 and total_bits = ref 0 in
    (* Double-buffered flat message queues, kept in delivery order.  The
       payload is the exact (src, msg) pair later consed onto the
       destination's inbox, so building an inbox allocates only the list
       spine. *)
    let cur_dst = ref [||] in
    let cur_pay : (int * P.msg) array ref = ref [||] in
    let cur_len = ref 0 in
    let nxt_dst = ref [||] in
    let nxt_pay : (int * P.msg) array ref = ref [||] in
    let nxt_len = ref 0 in
    let push_msg dst pay =
      let len = !nxt_len in
      if len = Array.length !nxt_dst then begin
        let cap = if len = 0 then 64 else 2 * len in
        let dsts = Array.make cap 0 in
        Array.blit !nxt_dst 0 dsts 0 len;
        nxt_dst := dsts;
        let pays = Array.make cap pay in
        Array.blit !nxt_pay 0 pays 0 len;
        nxt_pay := pays
      end;
      !nxt_dst.(len) <- dst;
      !nxt_pay.(len) <- pay;
      nxt_len := len + 1
    in
    (* Worklists: the nodes to step this round (ascending) and the ones
       collected for the next round.  [queued] is stamped with the round
       number that enqueued the node, deduplicating without clearing. *)
    let work = Array.make n 0 in
    let work_len = ref 0 in
    let next_work = Array.make n 0 in
    let next_len = ref 0 in
    let queued = Array.make n (-1) in
    let enqueue ~stamp v =
      if queued.(v) <> stamp then begin
        queued.(v) <- stamp;
        next_work.(!next_len) <- v;
        incr next_len
      end
    in
    (* Per-sender duplicate-destination check: one token-stamped array
       shared by every [deliver] call instead of a Hashtbl per call. *)
    let seen = Array.make n (-1) in
    let token = ref 0 in
    let deliver ~stamp src outbox =
      incr token;
      let tok = !token in
      List.iter
        (fun (dst, msg) ->
          if not (Graph.mem_edge g src dst) then
            invalid_arg "Engine: message along a non-edge";
          if seen.(dst) = tok then raise (Duplicate_message { src; dst });
          seen.(dst) <- tok;
          let bits = P.msg_bits msg in
          if bits > bandwidth then
            raise (Bandwidth_exceeded { src; dst; bits; limit = bandwidth });
          if bits > !max_edge_bits then max_edge_bits := bits;
          total_bits := !total_bits + bits;
          incr messages;
          push_msg dst (src, msg);
          enqueue ~stamp dst)
        outbox
    in
    let inbox : (int * P.msg) list array = Array.make n [] in
    for v = 0 to n - 1 do
      let st, outbox = P.init ~n ~id:v ~neighbors:(Graph.neighbors g v) input.(v) in
      states.(v) <- Some st;
      deliver ~stamp:0 v outbox;
      if not (P.finished st) then enqueue ~stamp:0 v
    done;
    let round = ref 0 in
    (* Quiescence is O(1): the next worklist is empty exactly when no
       message is in flight and every node is finished. *)
    while !next_len > 0 do
      incr round;
      if !round > max_rounds then raise (Did_not_terminate { max_rounds });
      (* Swap the double buffers; this round's sends arrive next round. *)
      let t_dst = !cur_dst and t_pay = !cur_pay in
      cur_dst := !nxt_dst;
      cur_pay := !nxt_pay;
      cur_len := !nxt_len;
      nxt_dst := t_dst;
      nxt_pay := t_pay;
      nxt_len := 0;
      let wl = !next_len in
      Array.blit next_work 0 work 0 wl;
      work_len := wl;
      next_len := 0;
      (* Ascending node order, so deliveries interleave exactly as in the
         reference engine (inbox ordering and exception ordering).  Every
         entry was enqueued with stamp [!round - 1] and stamps strictly
         increase, so on dense rounds one linear scan of [queued] recovers
         the sorted worklist — O(n), but branch-cheap, beating the
         O(wl log wl) sort once most nodes are active anyway. *)
      if wl > 1 then
        if wl >= n / 8 then begin
          let stamp = !round - 1 in
          let k = ref 0 in
          for v = 0 to n - 1 do
            if queued.(v) = stamp then begin
              work.(!k) <- v;
              incr k
            end
          done
        end
        else begin
          let seg = Array.sub work 0 wl in
          Array.sort compare_int seg;
          Array.blit seg 0 work 0 wl
        end;
      let cd = !cur_dst and cp = !cur_pay in
      for i = 0 to !cur_len - 1 do
        let dst = cd.(i) in
        inbox.(dst) <- cp.(i) :: inbox.(dst)
      done;
      let stamp = !round in
      for j = 0 to wl - 1 do
        let v = work.(j) in
        match states.(v) with
        | None -> assert false
        | Some st ->
          let ib = inbox.(v) in
          inbox.(v) <- [];
          let st', outbox = P.step ~round:!round ~id:v st ~inbox:ib in
          states.(v) <- Some st';
          deliver ~stamp v outbox;
          if not (P.finished st') then enqueue ~stamp v
      done
    done;
    let outputs =
      Array.init n (fun v ->
          match states.(v) with
          | Some st -> P.output st
          | None -> assert false)
    in
    (match trace with
    | Some tr ->
      Repro_trace.Trace.note_exec tr ~rounds:!round ~messages:!messages
        ~engine_runs:1 ~collectives:0
    | None -> ());
    ( outputs,
      {
        rounds = !round;
        messages = !messages;
        max_edge_bits = !max_edge_bits;
        total_bits = !total_bits;
      } )
end
