(* Batched convergecast/broadcast collectives over a communication tree.

   The paper's Õ(D) bounds (Theorems 1–2) come from running many tree
   broadcasts and aggregations back to back and *pipelining* them — the
   role the deterministic low-congestion shortcuts of
   Haeupler–Hershkowitz–Wajc play in Section 5.2.  Executed naively, every
   scalar "learn" costs two serial engine runs (a convergecast to the root
   plus a broadcast down), so a subroutine that needs k scalars pays
   k · O(depth) rounds and 2k engine invocations.

   This module provides the substrate the composed subroutines build on:

   - a [ctx]: a communication tree fixed once (parents, root) together
     with an accumulating statistics tally, so callers stop threading
     stats records by hand;
   - the scalar primitives ([convergecast], [broadcast], [learn],
     [subtree_agg], [ancestor_agg], [exchange], ...) — each one engine
     run, recorded in the tally;
   - the batched variants ([learn_batch], [agg_batch],
     [partwise_batch]): k independent scalar collectives multiplexed
     into a single pipelined engine run with k payload slots, costing
     O(depth + k) rounds instead of k · O(depth).

   The batched programs follow the streaming discipline of
   [Prim.Partwise_program]: one (slot, value) pair per edge per round,
   slots strictly ascending, so a pair is emitted only when it is final.
   Unlike the part-wise pipeline the slot count k is globally known, so
   no Done control messages are needed: a node knows it has seen slot i
   from a child exactly when the child's stream has passed i. *)

open Repro_graph

(* ------------------------------------------------------------------ *)
(* Statistics: full engine stats plus execution observability.         *)
(* ------------------------------------------------------------------ *)

type stats = {
  rounds : int;
  messages : int;
  max_edge_bits : int;
  total_bits : int;
  engine_runs : int; (* number of engine invocations *)
  collectives : int; (* number of logical collective ops (batch = k) *)
}

let no_stats =
  {
    rounds = 0;
    messages = 0;
    max_edge_bits = 0;
    total_bits = 0;
    engine_runs = 0;
    collectives = 0;
  }

let add a b =
  {
    rounds = a.rounds + b.rounds;
    messages = a.messages + b.messages;
    max_edge_bits = max a.max_edge_bits b.max_edge_bits;
    total_bits = a.total_bits + b.total_bits;
    engine_runs = a.engine_runs + b.engine_runs;
    collectives = a.collectives + b.collectives;
  }

let of_engine ?(collectives = 1) (s : Engine.stats) =
  {
    rounds = s.Engine.rounds;
    messages = s.Engine.messages;
    max_edge_bits = s.Engine.max_edge_bits;
    total_bits = s.Engine.total_bits;
    engine_runs = 1;
    collectives;
  }

(* ------------------------------------------------------------------ *)
(* The batched collect program: k convergecast+broadcast slots in one   *)
(* pipelined run.                                                       *)
(* ------------------------------------------------------------------ *)

module Collect_program = struct
  type input = {
    parent : int;
    slots : int array; (* per-slot contribution; length >= k *)
    ops : Prim.op array; (* length exactly k; physically shared *)
  }

  type state = {
    parent : int;
    k : int;
    ops : Prim.op array;
    acc : int array; (* per-slot aggregate of this node's subtree so far *)
    result : int array; (* filled by the down stream (root: directly) *)
    mutable children : int list;
    mutable learned_children : bool;
    frontier : (int, int) Hashtbl.t; (* child -> highest slot received *)
    mutable sent_up : int; (* next slot to push to the parent *)
    mutable next_done : int; (* root only: next slot to complete *)
    down_queue : (int * int) Queue.t;
  }

  type msg = Child | Up of int * int | Down of int * int
  type output = int array

  let msg_bits = function
    | Child -> 2
    | Up (i, x) | Down (i, x) ->
      2 + Bandwidth.bits_for_int i + Bandwidth.bits_for_int x

  let init ~n:_ ~id:_ ~neighbors:_ (inp : input) =
    let k = Array.length inp.ops in
    let st =
      {
        parent = inp.parent;
        k;
        ops = inp.ops;
        acc = Array.sub inp.slots 0 k;
        result = Array.make k 0;
        children = [];
        learned_children = false;
        frontier = Hashtbl.create 4;
        sent_up = 0;
        next_done = 0;
        down_queue = Queue.create ();
      }
    in
    let out = if inp.parent >= 0 then [ (inp.parent, Child) ] else [] in
    (st, out)

  (* Slot i of [acc] is final once every child's stream has passed i. *)
  let min_frontier st =
    List.fold_left
      (fun m c ->
        match Hashtbl.find_opt st.frontier c with
        | None -> min m (-1)
        | Some f -> min m f)
      max_int st.children

  let can_send_up st =
    st.parent >= 0 && st.sent_up < st.k && min_frontier st >= st.sent_up

  let root_can_complete st =
    st.parent < 0 && st.next_done < st.k && min_frontier st >= st.next_done

  let step ~round ~id:_ st ~inbox =
    if round = 1 then begin
      st.children <-
        List.filter_map (function s, Child -> Some s | _ -> None) inbox;
      st.learned_children <- true
    end;
    List.iter
      (function
        | c, Up (i, x) ->
          st.acc.(i) <- Prim.apply st.ops.(i) st.acc.(i) x;
          Hashtbl.replace st.frontier c i
        | _, Down (i, x) ->
          st.result.(i) <- x;
          Queue.add (i, x) st.down_queue
        | _, Child -> ())
      inbox;
    if not st.learned_children then (st, [])
    else begin
      let out = ref [] in
      if can_send_up st then begin
        out := [ (st.parent, Up (st.sent_up, st.acc.(st.sent_up))) ];
        st.sent_up <- st.sent_up + 1
      end
      else if root_can_complete st then begin
        st.result.(st.next_done) <- st.acc.(st.next_done);
        Queue.add (st.next_done, st.acc.(st.next_done)) st.down_queue;
        st.next_done <- st.next_done + 1
      end;
      (if not (Queue.is_empty st.down_queue) then
         let i, x = Queue.pop st.down_queue in
         List.iter (fun c -> out := (c, Down (i, x)) :: !out) st.children);
      (st, !out)
    end

  (* Quiescent exactly when [step] would be a no-op on an empty inbox:
     nothing to push up (or complete, at the root) and nothing queued to
     push down.  Round 1 (learning the children) must run everywhere. *)
  let finished st =
    st.learned_children
    && (not (can_send_up st))
    && (not (root_can_complete st))
    && Queue.is_empty st.down_queue

  let output st = st.result
end

module Collect_engine = Engine.Make (Collect_program)

(* ------------------------------------------------------------------ *)
(* The batched part-wise program: k value slots sharing one partition.  *)
(* ------------------------------------------------------------------ *)

module Partwise_batch_program = struct
  type input = {
    parent : int;
    part : int;
    values : int array; (* length >= k: this node's per-slot value *)
    ops : Prim.op array; (* length exactly k; physically shared *)
  }

  type phase = Up | Down | Finished

  (* Identical streaming machinery to [Prim.Partwise_program], over the
     composite key space key = part * k + slot: the k per-part streams
     interleave into one ascending stream, so the pipeline costs
     O(depth + #parts · k) rounds in a single engine run (with k = 1 the
     program degenerates message-for-message to the scalar part-wise).
     The part count is unknown to the nodes, so the UpDone/DownDone
     control messages stay. *)
  type state = {
    parent : int;
    k : int;
    my_part : int;
    ops : Prim.op array;
    mutable phase : phase;
    mutable children : int list;
    mutable learned_children : bool;
    acc : (int, int) Hashtbl.t; (* composite key -> aggregate *)
    frontier : (int, int) Hashtbl.t; (* child -> last key received *)
    mutable emitted_upto : int;
    mutable up_done_sent : bool;
    down_queue : (int * int) Queue.t;
    mutable down_done_received : bool;
    mutable down_done_sent : bool;
    answer : int array; (* per-slot aggregate of my own part *)
  }

  type msg = Child | Up of int * int | UpDone | Down of int * int | DownDone
  type output = int array

  let msg_bits = function
    | Child | UpDone | DownDone -> 3
    | Up (key, x) | Down (key, x) ->
      3 + Bandwidth.bits_for_int key + Bandwidth.bits_for_int x

  let init ~n:_ ~id:_ ~neighbors:_ (inp : input) =
    let k = Array.length inp.ops in
    let acc = Hashtbl.create 8 in
    for j = 0 to k - 1 do
      Hashtbl.replace acc ((inp.part * k) + j) inp.values.(j)
    done;
    let st =
      {
        parent = inp.parent;
        k;
        my_part = inp.part;
        ops = inp.ops;
        phase = Up;
        children = [];
        learned_children = false;
        acc;
        frontier = Hashtbl.create 8;
        emitted_upto = -1;
        up_done_sent = false;
        down_queue = Queue.create ();
        down_done_received = false;
        down_done_sent = false;
        answer = Array.make k 0;
      }
    in
    let out = if inp.parent >= 0 then [ (inp.parent, Child) ] else [] in
    (st, out)

  let record_answer st key x =
    if key / st.k = st.my_part then st.answer.(key mod st.k) <- x

  let merge st key x =
    let cur = Hashtbl.find_opt st.acc key in
    Hashtbl.replace st.acc key
      (match cur with
      | None -> x
      | Some y -> Prim.apply st.ops.(key mod st.k) x y)

  (* Smallest not-yet-emitted key that every child's stream has passed. *)
  let emittable st =
    let min_frontier =
      List.fold_left
        (fun m c ->
          match Hashtbl.find_opt st.frontier c with
          | None -> min m (-1)
          | Some f -> min m f)
        max_int st.children
    in
    Hashtbl.fold
      (fun key _ best ->
        if key > st.emitted_upto && key <= min_frontier then
          match best with Some b when b <= key -> best | _ -> Some key
        else best)
      st.acc None

  let all_children_done st =
    List.for_all
      (fun c -> Hashtbl.find_opt st.frontier c = Some max_int)
      st.children

  let pending_up st =
    Hashtbl.fold (fun key _ any -> any || key > st.emitted_upto) st.acc false

  let step ~round ~id:_ st ~inbox =
    if round = 1 then begin
      st.children <-
        List.filter_map (function s, Child -> Some s | _ -> None) inbox;
      st.learned_children <- true
    end;
    List.iter
      (function
        | c, Up (key, x) ->
          merge st key x;
          Hashtbl.replace st.frontier c key
        | c, UpDone -> Hashtbl.replace st.frontier c max_int
        | _, Down (key, x) ->
          record_answer st key x;
          Queue.add (key, x) st.down_queue
        | _, DownDone -> st.down_done_received <- true
        | _, Child -> ())
      inbox;
    if not st.learned_children then (st, [])
    else begin
      match st.phase with
      | Up ->
        if st.parent >= 0 then begin
          match emittable st with
          | Some key ->
            st.emitted_upto <- key;
            (st, [ (st.parent, Up (key, Hashtbl.find st.acc key)) ])
          | None ->
            if all_children_done st && (not (pending_up st)) && not st.up_done_sent
            then begin
              st.up_done_sent <- true;
              st.phase <- Down;
              (st, [ (st.parent, UpDone) ])
            end
            else (st, [])
        end
        else if all_children_done st then begin
          for j = 0 to st.k - 1 do
            st.answer.(j) <- Hashtbl.find st.acc ((st.my_part * st.k) + j)
          done;
          let pairs =
            Hashtbl.fold (fun key x acc -> (key, x) :: acc) st.acc []
            |> List.sort compare
          in
          List.iter (fun kx -> Queue.add kx st.down_queue) pairs;
          st.down_done_received <- true;
          st.phase <- Down;
          (st, [])
        end
        else (st, [])
      | Down ->
        if not (Queue.is_empty st.down_queue) then begin
          let key, x = Queue.pop st.down_queue in
          record_answer st key x;
          (st, List.map (fun c -> (c, Down (key, x))) st.children)
        end
        else if st.down_done_received && not st.down_done_sent then begin
          st.down_done_sent <- true;
          st.phase <- Finished;
          (st, List.map (fun c -> (c, DownDone)) st.children)
        end
        else (st, [])
      | Finished -> (st, [])
    end

  let finished st =
    st.learned_children
    &&
    match st.phase with
    | Finished -> true
    | Up ->
      if st.parent >= 0 then
        emittable st = None
        && not (all_children_done st && (not (pending_up st)) && not st.up_done_sent)
      else not (all_children_done st)
    | Down ->
      Queue.is_empty st.down_queue
      && not (st.down_done_received && not st.down_done_sent)

  let output st = st.answer
end

module Partwise_batch_engine = Engine.Make (Partwise_batch_program)

(* ------------------------------------------------------------------ *)
(* The context: one communication tree, one accumulating tally.        *)
(* ------------------------------------------------------------------ *)

type ctx = {
  g : Graph.t;
  parent : int array;
  root : int;
  n : int;
  mutable bottom : int array;
  (* shared all-bottom slot template for [learn_batch]: one buffer reused
     by every non-source node instead of an O(n) indicator array per
     scalar (grown to the largest k seen) *)
  mutable max_ops : Prim.op array; (* shared all-Max ops, grown likewise *)
  mutable tally : stats;
  trace : Repro_trace.Trace.t option;
}

let create ?trace g ~parent ~root =
  {
    g;
    parent;
    root;
    n = Graph.n g;
    bottom = [||];
    max_ops = [||];
    tally = no_stats;
    trace;
  }

let tally ctx = ctx.tally
let reset ctx = ctx.tally <- no_stats

(* The single funnel for every engine run issued on a ctx — scalar
   primitives, batched collectives, BFS floods — so attributing here covers
   the whole executed layer. *)
let record ?collectives ctx s =
  let inc = of_engine ?collectives s in
  ctx.tally <- add ctx.tally inc;
  match ctx.trace with
  | Some tr ->
    Repro_trace.Trace.note_exec tr ~rounds:inc.rounds ~messages:inc.messages
      ~engine_runs:inc.engine_runs ~collectives:inc.collectives
  | None -> ()

let ensure_scratch ctx k =
  if Array.length ctx.bottom < k then ctx.bottom <- Array.make k (-1);
  if Array.length ctx.max_ops < k then ctx.max_ops <- Array.make k Prim.Max

(* --- scalar primitives (one engine run each) ----------------------- *)

let subtree_agg ctx ~op ~values =
  let out, s = Prim.subtree_agg ctx.g ~parent:ctx.parent ~op ~values in
  record ctx s;
  out

let ancestor_agg ctx ~op ~values =
  let out, s = Prim.ancestor_agg ctx.g ~parent:ctx.parent ~op ~values in
  record ctx s;
  out

let convergecast ctx ~op ~values = (subtree_agg ctx ~op ~values).(ctx.root)

let broadcast ctx ~value =
  let out, s = Prim.broadcast ctx.g ~parent:ctx.parent ~root:ctx.root ~value in
  record ctx s;
  out

let exchange ctx ~sends =
  let out, s = Prim.exchange ctx.g ~sends in
  record ctx s;
  out

let bfs_tree ctx ~root =
  let out, s = Prim.bfs_tree ctx.g ~root in
  record ctx s;
  out

let bfs_forest ctx ~roots =
  let out, s = Prim.bfs_forest ctx.g ~roots in
  record ctx s;
  out

(* --- batched collectives (k slots, one engine run) ----------------- *)

(* Aggregate k whole-graph reductions and broadcast all k results in one
   pipelined run over the ctx tree: O(depth + k) rounds. *)
let agg_batch ctx ~op (values : int array array) =
  let k = Array.length values in
  if k = 0 then [||]
  else begin
    let ops = Array.make k op in
    let input =
      Array.init ctx.n (fun v ->
          {
            Collect_program.parent = ctx.parent.(v);
            slots = Array.init k (fun j -> values.(j).(v));
            ops;
          })
    in
    let out, s = Collect_engine.run ctx.g ~input in
    record ~collectives:k ctx s;
    out.(ctx.root)
  end

(* k scalar learns — (source, value) pairs, values >= 0 — in one run.
   Non-source nodes all share the ctx's bottom buffer; only the (few)
   sources allocate a k-slot array. *)
let learn_batch ctx (slots : (int * int) array) =
  let k = Array.length slots in
  if k = 0 then [||]
  else begin
    ensure_scratch ctx k;
    let sources = Hashtbl.create 4 in
    Array.iteri
      (fun i (src, value) ->
        let arr =
          match Hashtbl.find_opt sources src with
          | Some a -> a
          | None ->
            let a = Array.make k (-1) in
            Hashtbl.add sources src a;
            a
        in
        arr.(i) <- value)
      slots;
    let ops = Array.sub ctx.max_ops 0 k in
    let bottom = ctx.bottom in
    let input =
      Array.init ctx.n (fun v ->
          {
            Collect_program.parent = ctx.parent.(v);
            slots =
              (match Hashtbl.find_opt sources v with
              | Some a -> a
              | None -> bottom);
            ops;
          })
    in
    let out, s = Collect_engine.run ctx.g ~input in
    record ~collectives:k ctx s;
    out.(ctx.root)
  end

let learn ctx ~source ~value = (learn_batch ctx [| (source, value) |]).(0)

(* k part-wise aggregations sharing one partition, one engine run over an
   explicit broadcast tree (the ctx tree is the *spanning* tree; part-wise
   pipelines usually want the BFS tree to pay depth_BFS). *)
let partwise_batch ctx ~bcast_parent ~op ~parts (values : int array array) =
  let k = Array.length values in
  if k = 0 then [||]
  else begin
    let ops = Array.make k op in
    let input =
      Array.init ctx.n (fun v ->
          {
            Partwise_batch_program.parent = bcast_parent.(v);
            part = parts.(v);
            values = Array.init k (fun j -> values.(j).(v));
            ops;
          })
    in
    let out, s = Partwise_batch_engine.run ctx.g ~input in
    record ~collectives:k ctx s;
    Array.init k (fun j -> Array.init ctx.n (fun v -> out.(v).(j)))
  end
